//! Offline stand-in for `criterion`.
//!
//! Implements the slice of the criterion API the bench targets use —
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::sample_size`],
//! [`BenchmarkGroup::bench_function`], [`Bencher::iter`] and the
//! [`criterion_group!`]/[`criterion_main!`] macros — backed by a plain
//! wall-clock harness: per sample it runs a timed batch of iterations and
//! reports the minimum, mean and maximum nanoseconds per iteration on
//! stdout.  No statistics, plots or HTML reports; the output format is
//! stable (`BENCH <group>/<name> min=… mean=… max=… ns/iter`) so CI can
//! grep it once BENCH_* tracking starts.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::Instant;

pub use std::hint::black_box;

/// Top-level benchmark driver (stand-in for `criterion::Criterion`).
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size: 10,
        }
    }
}

/// A named collection of benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed samples collected per benchmark.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.sample_size = samples.max(2);
        self
    }

    /// Time `routine` and print a one-line summary.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher {
            samples_ns: Vec::new(),
            sample_size: self.sample_size,
        };
        routine(&mut bencher);
        let ns = &bencher.samples_ns;
        if ns.is_empty() {
            println!("BENCH {}/{} (no samples)", self.name, id);
            return self;
        }
        let min = ns.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = ns.iter().cloned().fold(0.0f64, f64::max);
        let mean = ns.iter().sum::<f64>() / ns.len() as f64;
        println!(
            "BENCH {}/{} min={min:.1} mean={mean:.1} max={max:.1} ns/iter ({} samples)",
            self.name,
            id,
            ns.len()
        );
        self
    }

    /// End the group (printing is incremental, so this is a no-op).
    pub fn finish(self) {}
}

/// Passed to each benchmark closure; runs and times the hot loop.
#[derive(Debug)]
pub struct Bencher {
    samples_ns: Vec<f64>,
    sample_size: usize,
}

impl Bencher {
    /// Run `routine` repeatedly, recording nanoseconds per iteration.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up and batch-size calibration: aim for ~5 ms per sample so
        // short routines are not dominated by timer resolution.
        let start = Instant::now();
        black_box(routine());
        let once_ns = start.elapsed().as_nanos().max(1) as f64;
        let batch = ((5_000_000.0 / once_ns) as usize).clamp(1, 1_000_000);

        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let elapsed_ns = start.elapsed().as_nanos() as f64;
            self.samples_ns.push(elapsed_ns / batch as f64);
        }
    }
}

/// Bundle benchmark functions into a callable group, as in criterion.
#[macro_export]
macro_rules! criterion_group {
    ($group_name:ident, $($target:path),+ $(,)?) => {
        fn $group_name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generate `main` for a bench binary (`harness = false`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench`/`cargo test` pass harness flags such as
            // `--bench`; this minimal harness has no options to parse.
            let _ = std::env::args();
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sum_to_1000(c: &mut Criterion) {
        let mut group = c.benchmark_group("stub");
        group.sample_size(3);
        group.bench_function("sum", |b| b.iter(|| (0..1000u64).sum::<u64>()));
        group.finish();
    }

    criterion_group!(benches, sum_to_1000);

    #[test]
    fn harness_runs_and_records() {
        benches();
    }

    #[test]
    fn bencher_collects_requested_samples() {
        let mut b = Bencher {
            samples_ns: Vec::new(),
            sample_size: 4,
        };
        b.iter(|| black_box(2 + 2));
        assert_eq!(b.samples_ns.len(), 4);
        assert!(b.samples_ns.iter().all(|ns| *ns >= 0.0));
    }
}
