//! Offline stand-in for `serde`.
//!
//! No crates.io access is available in this build environment, so this crate
//! supplies just enough of serde's surface for the workspace to compile:
//! `Serialize` and `Deserialize` as **marker traits** (there is no data
//! model and no serialiser to drive), and the matching derives re-exported
//! from the vendored [`serde_derive`].  `ivc-core` derives these on its
//! result/scenario types so that swapping in the real serde later is a
//! manifest-only change.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

// Let the derive-generated `impl serde::Serialize for …` blocks resolve even
// inside this crate's own tests.
extern crate self as serde;

pub use serde_derive::{Deserialize, Serialize};

/// Marker for types that the real serde could serialise.
pub trait Serialize {}

/// Marker for types that the real serde could deserialise.
pub trait Deserialize<'de>: Sized {}

#[cfg(test)]
mod tests {
    use super::{Deserialize, Serialize};

    #[derive(Serialize, Deserialize)]
    #[allow(dead_code)]
    struct Plain {
        x: f64,
    }

    #[derive(Serialize, Deserialize)]
    #[allow(dead_code)]
    enum Choice {
        A,
        B { v: u32 },
    }

    fn assert_both<T: Serialize + for<'a> Deserialize<'a>>() {}

    #[test]
    fn derives_produce_impls() {
        assert_both::<Plain>();
        assert_both::<Choice>();
    }
}
