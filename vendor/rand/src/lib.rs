//! Offline stand-in for the `rand` crate.
//!
//! This build environment has no crates.io access, so the workspace vendors
//! the small slice of the rand 0.8 API it actually uses: [`rngs::StdRng`],
//! [`SeedableRng::seed_from_u64`], [`Rng::gen`] and [`Rng::gen_range`].
//! The generator is xoshiro256++ seeded via SplitMix64 — deterministic for a
//! given seed, which is exactly what the reproduction needs (every noisy
//! component takes an explicit `seed: u64`).  It is **not** cryptographically
//! secure; neither is the real `StdRng` contract relied upon anywhere here.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::Range;

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Produce the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Types that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is fully determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// User-facing sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Sample a value uniformly over `T`'s standard distribution
    /// (`f64` in `[0, 1)`, integers over their full range, `bool` fair).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Sample uniformly from a half-open range.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl<R: RngCore> Rng for R {}

/// Distribution used by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draw one value from `rng`.
    fn sample<R: RngCore>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draw one value inside the range.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                // Modulo bias is < 2^-64 for every span used in this
                // workspace; acceptable for simulation noise.
                let offset = (rng.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }
    )*};
}

int_sample_range!(usize, u64, u32, i64, i32);

/// Concrete generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (stand-in for `rand::rngs::StdRng`).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..10).filter(|_| a.gen::<u64>() == b.gen::<u64>()).count();
        assert!(same < 10);
    }

    #[test]
    fn gen_f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let x = rng.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&x));
            let n = rng.gen_range(3usize..17);
            assert!((3..17).contains(&n));
        }
    }

    #[test]
    fn unit_f64_mean_is_near_half() {
        let mut rng = StdRng::seed_from_u64(9);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.gen::<f64>()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
