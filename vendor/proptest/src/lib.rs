//! Offline stand-in for `proptest`.
//!
//! Supports the subset of the proptest API used by the workspace's property
//! tests: the [`proptest!`] macro (with an optional
//! `#![proptest_config(ProptestConfig::with_cases(n))]` header), range
//! strategies over `f64`/integers, [`collection::vec`], the [`Strategy`]
//! trait for `impl Strategy<Value = …>` helpers, and the
//! [`prop_assert!`]/[`prop_assert_eq!`] assertion macros.
//!
//! Differences from the real crate: inputs are drawn from a deterministic
//! per-test PRNG (seeded from the test's module path and name) and failing
//! cases are **not shrunk** — the panic message reports the case number so a
//! failure is still reproducible by re-running the test.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::ops::Range;

/// Per-test configuration (only the case count is honoured).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases each property is checked against.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` random cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Failure raised by `prop_assert!` and friends inside a property body.
#[derive(Clone, Debug)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Build a failure carrying `message`.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError(message.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Deterministic SplitMix64 generator driving input generation.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed deterministically from a test identifier (module path + name).
    pub fn deterministic(test_id: &str) -> Self {
        // FNV-1a over the identifier: stable across runs and platforms.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_id.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state: h }
    }

    /// Next raw 64-bit word.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `usize` in `[lo, hi)`.
    pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "empty usize range");
        lo + (self.next_u64() as usize) % (hi - lo)
    }
}

/// A source of random values of one type — the proptest `Strategy` trait,
/// reduced to generation (no shrinking).
pub trait Strategy {
    /// The type of values this strategy produces.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty f64 range");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty integer range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(usize, u64, u32, i64, i32);

/// A strategy that always yields clones of one value (`proptest::strategy::Just`).
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Collection strategies (`prop::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy for `Vec`s with element strategy `S` and a length range.
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        elem: S,
        len: Range<usize>,
    }

    /// `Vec` strategy drawing a length from `len` and elements from `elem`.
    pub fn vec<S: Strategy>(elem: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = rng.usize_in(self.len.start, self.len.end);
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

/// The common imports: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
    pub use crate::{Just, ProptestConfig, Strategy, TestCaseError};

    /// Root re-export so `prop::collection::vec(…)` resolves, as in the
    /// real proptest prelude.
    pub use crate as prop;
}

/// Define property tests.
///
/// Accepts the same shape the real crate does for the patterns used in this
/// workspace: an optional `#![proptest_config(…)]` header followed by
/// `#[test] fn name(arg in strategy, …) { … }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!($cfg; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!($crate::ProptestConfig::default(); $($rest)*);
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let cfg: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::deterministic(concat!(
                module_path!(),
                "::",
                stringify!($name)
            ));
            for case in 0..cfg.cases {
                $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)*
                let outcome: ::core::result::Result<(), $crate::TestCaseError> =
                    (|| {
                        $body
                        Ok(())
                    })();
                if let Err(e) = outcome {
                    panic!(
                        "proptest case {}/{} failed: {}",
                        case + 1,
                        cfg.cases,
                        e
                    );
                }
            }
        }
    )*};
}

/// `assert!` that fails the current property case instead of panicking.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// `assert_eq!` for property bodies.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let l = $left;
        let r = $right;
        $crate::prop_assert!(
            l == r,
            "assertion failed: {} == {} (left: {:?}, right: {:?})",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
}

/// `assert_ne!` for property bodies.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let l = $left;
        let r = $right;
        $crate::prop_assert!(
            l != r,
            "assertion failed: {} != {} (both: {:?})",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn rng_is_deterministic_per_id() {
        let mut a = crate::TestRng::deterministic("x");
        let mut b = crate::TestRng::deterministic("x");
        assert_eq!(a.next_u64(), b.next_u64());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_respect_bounds(x in -2.0f64..3.0, n in 1usize..9) {
            prop_assert!((-2.0..3.0).contains(&x));
            prop_assert!((1..9).contains(&n));
        }

        #[test]
        fn vec_strategy_obeys_length(v in prop::collection::vec(0.0f64..1.0, 2..14)) {
            prop_assert!(v.len() >= 2 && v.len() < 14);
            for x in &v {
                prop_assert!(*x >= 0.0 && *x < 1.0, "out of range: {}", x);
            }
        }

        #[test]
        fn assert_eq_passes_on_equal(v in prop::collection::vec(0.0f64..1.0, 2..8)) {
            prop_assert_eq!(v.len(), v.clone().len());
        }
    }

    #[test]
    #[should_panic(expected = "proptest case")]
    fn failing_property_panics_with_case_number() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(4))]

            fn always_fails(x in 0.0f64..1.0) {
                prop_assert!(x < 0.0, "x was {}", x);
            }
        }
        always_fails();
    }
}
