//! Offline stand-in for `serde_derive`.
//!
//! The vendored [`serde`](../serde) crate defines `Serialize` and
//! `Deserialize` as *marker* traits (no data model, no serialisers exist in
//! this offline environment), so the derives only need to name the type and
//! emit empty impls.  Implemented directly on `proc_macro` token streams —
//! `syn`/`quote` are not available offline.
//!
//! Limitation: generic types are rejected; nothing in the workspace derives
//! serde on a generic type.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use proc_macro::{TokenStream, TokenTree};

/// Extract the identifier following the `struct`/`enum`/`union` keyword and
/// reject generic parameter lists.
fn type_name(input: TokenStream) -> Result<String, String> {
    let mut iter = input.into_iter().peekable();
    while let Some(tt) = iter.next() {
        let TokenTree::Ident(id) = &tt else { continue };
        let kw = id.to_string();
        if kw != "struct" && kw != "enum" && kw != "union" {
            continue;
        }
        let Some(TokenTree::Ident(name)) = iter.next() else {
            return Err("expected a type name after `struct`/`enum`".to_string());
        };
        if let Some(TokenTree::Punct(p)) = iter.peek() {
            if p.as_char() == '<' {
                return Err(format!(
                    "offline serde stub cannot derive for generic type `{name}`"
                ));
            }
        }
        return Ok(name.to_string());
    }
    Err("offline serde stub: no `struct` or `enum` found in derive input".to_string())
}

fn emit(input: TokenStream, template: &str) -> TokenStream {
    match type_name(input) {
        Ok(name) => template.replace("__NAME__", &name),
        Err(msg) => format!("compile_error!({msg:?});"),
    }
    .parse()
    .expect("offline serde stub generated invalid Rust")
}

/// Derive the (marker) `serde::Serialize` trait.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    emit(input, "impl serde::Serialize for __NAME__ {}")
}

/// Derive the (marker) `serde::Deserialize` trait.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    emit(input, "impl<'de> serde::Deserialize<'de> for __NAME__ {}")
}
