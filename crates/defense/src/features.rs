//! Non-linearity-trace features.
//!
//! Three features are extracted from every recording, all motivated directly
//! by the physics of square-law demodulation:
//!
//! 1. **Shadow-band power ratio** — power in the sub-fundamental band
//!    (5–80 Hz) relative to the voice band (300–4000 Hz), in dB.  Acoustic
//!    speech carries essentially nothing below its fundamental; the attack's
//!    `m(t)²` term does.
//! 2. **Shadow correlation** — Pearson correlation between the low-band
//!    waveform and the low-pass-filtered *squared envelope* of the voice
//!    band.  For an attack these are the same physical quantity
//!    (`m²` appears in both); for legitimate speech the low band is
//!    unrelated rumble or noise.
//! 3. **Spectral tilt** — the slope of the recording's PSD in dB/kHz.  The
//!    demodulated attack is band-limited to the attacker's 8 kHz baseband
//!    and inherits a squared-envelope low-frequency boost, tilting the
//!    spectrum down harder than natural speech recorded through the same
//!    microphone.

use crate::error::{DefenseError, Result};
use ivc_dsp::correlation::pearson_correlation;
use ivc_dsp::db::power_to_db;
use ivc_dsp::envelope::hilbert_envelope;
use ivc_dsp::filter::biquad::BiquadCascade;
use ivc_dsp::signal::Signal;
use ivc_dsp::spectrum::welch_psd;
use ivc_dsp::window::WindowKind;

/// The shadow band searched for the non-linearity trace, in Hz.
pub const SHADOW_BAND_HZ: (f64, f64) = (5.0, 80.0);
/// The voice band used as the reference, in Hz.
pub const VOICE_BAND_HZ: (f64, f64) = (300.0, 4_000.0);

/// A feature vector ready for classification.
pub type FeatureVector = Vec<f64>;

/// Extracted defense features for one recording.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DefenseFeatures {
    /// Shadow-band to voice-band power ratio, in dB.
    pub shadow_power_ratio_db: f64,
    /// Correlation between the shadow band and the squared voice envelope.
    pub shadow_correlation: f64,
    /// Spectral tilt of the recording, in dB per kHz.
    pub spectral_tilt_db_per_khz: f64,
}

impl DefenseFeatures {
    /// Number of features.
    pub const DIMENSION: usize = 3;

    /// Names of the features, index-aligned with [`DefenseFeatures::to_vector`].
    pub const NAMES: [&'static str; 3] = [
        "shadow_power_ratio_db",
        "shadow_correlation",
        "spectral_tilt_db_per_khz",
    ];

    /// Extracts the features from a digital recording (any rate ≥ 8 kHz).
    pub fn extract(recording: &Signal) -> Result<Self> {
        if recording.is_empty() {
            return Err(DefenseError::invalid("recording", "empty signal"));
        }
        let fs = recording.sample_rate_hz();
        if fs < 8_000.0 {
            return Err(DefenseError::invalid(
                "recording",
                "sample rate must be at least 8 kHz",
            ));
        }
        // Work on a level-normalised copy so features are level-invariant.
        let mut signal = recording.clone();
        signal.remove_dc();
        signal.normalize_rms(0.1);
        let samples = signal.samples();

        // --- Feature 1: shadow-band power ratio -------------------------
        let seg = samples.len().clamp(1_024, 16_384);
        let psd = welch_psd(samples, fs, seg, 0.5, WindowKind::Hann)?;
        let shadow_power = psd.band_power(SHADOW_BAND_HZ.0, SHADOW_BAND_HZ.1);
        let voice_power = psd.band_power(VOICE_BAND_HZ.0, VOICE_BAND_HZ.1);
        let shadow_power_ratio_db = power_to_db(shadow_power.max(1e-24) / voice_power.max(1e-24));

        // --- Feature 2: shadow / squared-envelope correlation -----------
        // Low band: everything below ~80 Hz.
        let low_lpf = BiquadCascade::butterworth_low_pass(SHADOW_BAND_HZ.1, 4, fs)?;
        let high_cut = BiquadCascade::butterworth_high_pass(SHADOW_BAND_HZ.0.max(2.0), 2, fs)?;
        let shadow_track = high_cut.filtfilt(&low_lpf.filtfilt(samples));
        // Voice band envelope squared, then restricted to the same low band.
        let voice_bpf =
            BiquadCascade::butterworth_band_pass(VOICE_BAND_HZ.0, VOICE_BAND_HZ.1, 4, fs)?;
        let voice_band = voice_bpf.filtfilt(samples);
        let envelope = hilbert_envelope(&voice_band)?;
        let squared_env: Vec<f64> = envelope.iter().map(|e| e * e).collect();
        let env_low = high_cut.filtfilt(&low_lpf.filtfilt(&squared_env));
        // Trim filter edge transients before correlating.
        let trim = (fs * 0.05) as usize;
        let shadow_correlation = if shadow_track.len() > 2 * trim + 16 {
            pearson_correlation(
                &shadow_track[trim..shadow_track.len() - trim],
                &env_low[trim..env_low.len() - trim],
            )?
        } else {
            pearson_correlation(&shadow_track, &env_low)?
        };

        // --- Feature 3: spectral tilt ------------------------------------
        let spectral_tilt_db_per_khz = psd.tilt_db_per_khz();

        Ok(DefenseFeatures {
            shadow_power_ratio_db,
            shadow_correlation,
            spectral_tilt_db_per_khz,
        })
    }

    /// The features as a vector (for the classifier).
    pub fn to_vector(self) -> FeatureVector {
        vec![
            self.shadow_power_ratio_db,
            self.shadow_correlation,
            self.spectral_tilt_db_per_khz,
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ivc_acoustics::environment::AirEnvironment;
    use ivc_acoustics::microphone::DevicePreset;
    use ivc_acoustics::propagation::propagate;
    use ivc_acoustics::speaker::UltrasonicSpeaker;
    use ivc_acoustics::spl::spl_db_to_pressure;
    use ivc_attack::baseband::BasebandConfig;
    use ivc_attack::single::SingleSpeakerAttack;

    fn synthetic_voice() -> Signal {
        // Amplitude-modulated voice-like signal: components at 350/1200/2500
        // Hz with a 4 Hz syllabic envelope (gives the envelope² trace
        // something to correlate with).
        let fs = 48_000.0;
        let n = (0.6 * fs) as usize;
        let samples: Vec<f64> = (0..n)
            .map(|i| {
                let t = i as f64 / fs;
                let syllable = 0.55 + 0.45 * (2.0 * std::f64::consts::PI * 4.0 * t).sin();
                syllable
                    * (0.5 * (2.0 * std::f64::consts::PI * 350.0 * t).sin()
                        + 0.35 * (2.0 * std::f64::consts::PI * 1_200.0 * t).sin()
                        + 0.2 * (2.0 * std::f64::consts::PI * 2_500.0 * t).sin())
            })
            .collect();
        let mut s = Signal::new(samples, fs).unwrap();
        s.normalize_peak(0.5);
        s
    }

    fn legit_recording() -> Signal {
        // Voice at conversational level propagated 1.5 m to the phone.
        let voice = synthetic_voice();
        let pressure =
            voice.scaled(spl_db_to_pressure(68.0) * std::f64::consts::SQRT_2 / voice.peak());
        let env = AirEnvironment::default();
        let at_mic = propagate(&pressure, 1.5, &env).unwrap();
        DevicePreset::AndroidPhone
            .microphone()
            .capture(&at_mic, 11)
            .unwrap()
    }

    fn attack_recording() -> Signal {
        let voice = synthetic_voice();
        let attack =
            SingleSpeakerAttack::build(&voice, 40_000.0, 0.9, &BasebandConfig::default()).unwrap();
        let speaker = UltrasonicSpeaker::default();
        let emitted = speaker.emit_at_1m(&attack.drive, 25.0).unwrap();
        let env = AirEnvironment::default();
        let at_mic = propagate(&emitted, 1.5, &env).unwrap();
        DevicePreset::AndroidPhone
            .microphone()
            .capture(&at_mic, 12)
            .unwrap()
    }

    #[test]
    fn validation() {
        assert!(DefenseFeatures::extract(&Signal::new(vec![], 48_000.0).unwrap()).is_err());
        assert!(
            DefenseFeatures::extract(&Signal::tone(100.0, 0.3, 0.2, 4_000.0).unwrap()).is_err()
        );
        assert_eq!(DefenseFeatures::NAMES.len(), DefenseFeatures::DIMENSION);
    }

    #[test]
    fn feature_vector_has_fixed_dimension() {
        let rec = legit_recording();
        let f = DefenseFeatures::extract(&rec).unwrap();
        assert_eq!(f.to_vector().len(), DefenseFeatures::DIMENSION);
        for v in f.to_vector() {
            assert!(v.is_finite());
        }
    }

    #[test]
    fn attack_recordings_have_stronger_shadow_band() {
        let legit = DefenseFeatures::extract(&legit_recording()).unwrap();
        let attack = DefenseFeatures::extract(&attack_recording()).unwrap();
        assert!(
            attack.shadow_power_ratio_db > legit.shadow_power_ratio_db + 6.0,
            "attack {} dB vs legit {} dB",
            attack.shadow_power_ratio_db,
            legit.shadow_power_ratio_db
        );
    }

    #[test]
    fn attack_recordings_have_higher_shadow_correlation() {
        let legit = DefenseFeatures::extract(&legit_recording()).unwrap();
        let attack = DefenseFeatures::extract(&attack_recording()).unwrap();
        assert!(
            attack.shadow_correlation > legit.shadow_correlation + 0.15,
            "attack {} vs legit {}",
            attack.shadow_correlation,
            legit.shadow_correlation
        );
    }

    #[test]
    fn features_are_level_invariant() {
        let rec = attack_recording();
        let quiet = rec.scaled(0.05);
        let a = DefenseFeatures::extract(&rec).unwrap();
        let b = DefenseFeatures::extract(&quiet).unwrap();
        assert!((a.shadow_power_ratio_db - b.shadow_power_ratio_db).abs() < 1.0);
        assert!((a.shadow_correlation - b.shadow_correlation).abs() < 0.1);
    }
}
