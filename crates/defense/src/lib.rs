//! # ivc-defense — detecting injected inaudible voice commands
//!
//! The defense exploits the same physics as the attack.  When a microphone's
//! quadratic non-linearity demodulates an AM ultrasound signal, the square of
//! the received waveform contains not only the voice `m(t)` (the
//! carrier × sideband product) but also `m(t)²` (the sideband × sideband
//! product).  That squared term is an unavoidable *trace*: it deposits energy
//! below the voice fundamental (the "shadow" band, a few hertz to ~80 Hz)
//! and that energy is strongly correlated with the squared envelope of the
//! voice band.  Legitimate speech arriving acoustically has neither
//! property.
//!
//! The crate provides:
//!
//! * [`features`] — extraction of the non-linearity-trace features from a
//!   recording (shadow-band power ratio, shadow/envelope² correlation,
//!   spectral tilt).
//! * [`classifier`] — a small logistic-regression classifier with
//!   standardisation and gradient-descent training.
//! * [`dataset`] — seeded generation of labelled corpora of legitimate and
//!   attack recordings across speakers, commands, devices and distances.
//! * [`evaluation`] — ROC/AUC, confusion matrices and cross-validation.
//! * [`countermeasures`] — the adaptive attacker who tries to suppress the
//!   shadow, and what that costs them.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod classifier;
pub mod countermeasures;
pub mod dataset;
pub mod error;
pub mod evaluation;
pub mod features;

pub use classifier::LogisticRegression;
pub use error::{DefenseError, Result};
pub use features::{DefenseFeatures, FeatureVector};

/// Commonly used items, re-exported for glob import.
pub mod prelude {
    pub use crate::classifier::LogisticRegression;
    pub use crate::dataset::{Dataset, DatasetConfig, LabeledRecording};
    pub use crate::error::{DefenseError, Result};
    pub use crate::evaluation::{ConfusionMatrix, RocCurve};
    pub use crate::features::{DefenseFeatures, FeatureVector};
}
