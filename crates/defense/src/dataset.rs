//! Labelled corpus generation: legitimate and attack recordings produced by
//! the same simulated devices, for training and evaluating the detector.
//!
//! Everything is seeded and deterministic; the same configuration always
//! produces the same corpus.

use crate::error::{DefenseError, Result};
use crate::features::{DefenseFeatures, FeatureVector};
use ivc_acoustics::array::SpeakerArray;
use ivc_acoustics::environment::AirEnvironment;
use ivc_acoustics::microphone::DevicePreset;
use ivc_acoustics::noise::room_noise_pa;
use ivc_acoustics::propagation::propagate;
use ivc_acoustics::speaker::UltrasonicSpeaker;
use ivc_acoustics::spl::spl_db_to_pressure;
use ivc_attack::baseband::BasebandConfig;
use ivc_attack::multispeaker::{single_speaker_element_drives, MultiSpeakerAttack};
use ivc_attack::single::SingleSpeakerAttack;
use ivc_dsp::signal::Signal;
use ivc_speech::commands::corpus;
use ivc_speech::synthesis::{SpeakerProfile, Synthesizer};

/// One labelled recording.
#[derive(Debug, Clone, PartialEq)]
pub struct LabeledRecording {
    /// The digital recording as the device's software would see it.
    pub recording: Signal,
    /// `true` if this recording was produced by an ultrasonic injection.
    pub is_attack: bool,
    /// Distance between source (talker or array) and device, in metres.
    pub distance_m: f64,
    /// Device preset that captured the recording.
    pub device: DevicePreset,
    /// Index of the command in the speech corpus.
    pub command_index: usize,
}

/// Configuration for corpus generation.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetConfig {
    /// Device capturing the recordings.
    pub device: DevicePreset,
    /// Source–device distances to cover, in metres.
    pub distances_m: Vec<f64>,
    /// Number of synthetic speaker variants for the legitimate recordings.
    pub num_speaker_variants: usize,
    /// Indices into the speech corpus to use.
    pub command_indices: Vec<usize>,
    /// Number of array elements for the attack recordings (1 = single
    /// speaker baseline, ≥2 = segmented multi-speaker attack).
    pub attack_elements: usize,
    /// Total electrical power of the attack, in watt.
    pub attack_total_power_w: f64,
    /// Carrier frequency of the attack, in Hz.
    pub carrier_hz: f64,
    /// Level of the legitimate talker, as SPL at 1 m, in dB.
    pub talker_spl_db: f64,
    /// Ambient room noise level, in dB SPL.
    pub ambient_noise_spl_db: f64,
    /// Truncate each synthesised command to at most this many seconds
    /// (keeps corpus generation affordable; `f64::INFINITY` keeps it all).
    pub max_voice_duration_s: f64,
    /// Master seed.
    pub seed: u64,
}

impl Default for DatasetConfig {
    fn default() -> Self {
        DatasetConfig {
            device: DevicePreset::AndroidPhone,
            distances_m: vec![1.0, 2.0, 3.0],
            num_speaker_variants: 4,
            command_indices: vec![0, 1, 2],
            attack_elements: 8,
            attack_total_power_w: 40.0,
            carrier_hz: 40_000.0,
            talker_spl_db: 65.0,
            ambient_noise_spl_db: 40.0,
            max_voice_duration_s: f64::INFINITY,
            seed: 7,
        }
    }
}

/// Feature vectors paired with their attack/legitimate labels.
pub type LabeledFeatures = Vec<(FeatureVector, bool)>;

/// A labelled corpus of recordings.
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset {
    /// All recordings (legitimate and attack, interleaved).
    pub recordings: Vec<LabeledRecording>,
}

/// Produces a legitimate recording: the talker's voice propagated through
/// the air and captured by the device.
pub fn generate_legit_recording(
    voice: &Signal,
    device: DevicePreset,
    distance_m: f64,
    talker_spl_db: f64,
    ambient_noise_spl_db: f64,
    env: &AirEnvironment,
    seed: u64,
) -> Result<Signal> {
    // Scale the voice waveform so its SPL at the 1 m reference matches the
    // talker level.
    let rms = voice.rms().max(1e-12);
    let target_rms_pa = spl_db_to_pressure(talker_spl_db);
    let pressure_at_1m = voice.scaled(target_rms_pa / rms);
    let mut at_mic = propagate(&pressure_at_1m, distance_m, env)?;
    let noise = room_noise_pa(
        ambient_noise_spl_db,
        at_mic.duration_s(),
        at_mic.sample_rate_hz(),
        seed ^ 0xA5A5_5A5A,
    )?;
    at_mic.mix(&noise)?;
    Ok(device.microphone().capture(&at_mic, seed)?)
}

/// Produces an attack recording: the ultrasonic injection played by a
/// speaker (or array), propagated and captured by the device.
#[allow(clippy::too_many_arguments)]
pub fn generate_attack_recording(
    voice: &Signal,
    device: DevicePreset,
    distance_m: f64,
    attack_elements: usize,
    total_power_w: f64,
    carrier_hz: f64,
    ambient_noise_spl_db: f64,
    env: &AirEnvironment,
    seed: u64,
) -> Result<Signal> {
    if attack_elements == 0 {
        return Err(DefenseError::invalid(
            "attack_elements",
            "must be at least 1",
        ));
    }
    let speaker = UltrasonicSpeaker::default();
    let baseband_cfg = BasebandConfig::default();
    let (array, drives) = if attack_elements == 1 {
        let attack = SingleSpeakerAttack::build(voice, carrier_hz, 0.9, &baseband_cfg)?;
        let array = SpeakerArray::new(speaker.clone(), 1, 0.03)?;
        let power = total_power_w.min(speaker.max_power_w);
        (array, single_speaker_element_drives(&attack, power)?)
    } else {
        let attack = MultiSpeakerAttack::build(voice, carrier_hz, attack_elements, &baseband_cfg)?;
        let array = SpeakerArray::new(speaker.clone(), attack_elements, 0.03)?;
        let drives = attack.element_drives(total_power_w, 0.3, speaker.max_power_w)?;
        (array, drives)
    };
    let mut at_mic = array.field_at_target(&drives, distance_m, env)?;
    let noise = room_noise_pa(
        ambient_noise_spl_db,
        at_mic.duration_s(),
        at_mic.sample_rate_hz(),
        seed ^ 0x5A5A_A5A5,
    )?;
    at_mic.mix(&noise)?;
    Ok(device.microphone().capture(&at_mic, seed)?)
}

impl Dataset {
    /// Generates the corpus described by `config`.
    ///
    /// For every (command, distance) pair, one attack recording is produced,
    /// plus one legitimate recording per speaker variant — so the corpus has
    /// `commands × distances × (1 + variants)` entries.
    pub fn generate(config: &DatasetConfig) -> Result<Dataset> {
        if config.distances_m.is_empty() || config.command_indices.is_empty() {
            return Err(DefenseError::invalid(
                "DatasetConfig",
                "need at least one distance and one command",
            ));
        }
        if config.num_speaker_variants == 0 {
            return Err(DefenseError::invalid(
                "num_speaker_variants",
                "must be at least 1",
            ));
        }
        let env = AirEnvironment::default();
        let commands = corpus();
        let synth = Synthesizer::new(48_000.0)?;
        let mut recordings = Vec::new();
        let mut seed = config.seed;

        for &ci in &config.command_indices {
            let command = commands.get(ci).ok_or_else(|| {
                DefenseError::invalid("command_indices", format!("index {ci} out of range"))
            })?;
            for &distance in &config.distances_m {
                // Legitimate recordings from several speakers.
                for variant in 0..config.num_speaker_variants {
                    let profile = SpeakerProfile::variant(variant + (seed as usize % 3));
                    let utterance = synth.render(command, &profile)?;
                    let voice = clip_duration(&utterance.signal, config.max_voice_duration_s);
                    seed = seed.wrapping_add(1);
                    let rec = generate_legit_recording(
                        &voice,
                        config.device,
                        distance,
                        config.talker_spl_db,
                        config.ambient_noise_spl_db,
                        &env,
                        seed,
                    )?;
                    recordings.push(LabeledRecording {
                        recording: rec,
                        is_attack: false,
                        distance_m: distance,
                        device: config.device,
                        command_index: ci,
                    });
                }
                // One attack recording (the attacker uses the canonical TTS
                // voice, as in the paper).
                let utterance = synth.render(command, &SpeakerProfile::canonical())?;
                let voice = clip_duration(&utterance.signal, config.max_voice_duration_s);
                seed = seed.wrapping_add(1);
                let rec = generate_attack_recording(
                    &voice,
                    config.device,
                    distance,
                    config.attack_elements,
                    config.attack_total_power_w,
                    config.carrier_hz,
                    config.ambient_noise_spl_db,
                    &env,
                    seed,
                )?;
                recordings.push(LabeledRecording {
                    recording: rec,
                    is_attack: true,
                    distance_m: distance,
                    device: config.device,
                    command_index: ci,
                });
            }
        }
        Ok(Dataset { recordings })
    }

    /// Number of recordings.
    pub fn len(&self) -> usize {
        self.recordings.len()
    }

    /// `true` if the corpus is empty.
    pub fn is_empty(&self) -> bool {
        self.recordings.is_empty()
    }

    /// Number of attack recordings.
    pub fn num_attacks(&self) -> usize {
        self.recordings.iter().filter(|r| r.is_attack).count()
    }

    /// Extracts defense features for every recording.
    pub fn to_feature_samples(&self) -> Result<LabeledFeatures> {
        self.recordings
            .iter()
            .map(|r| {
                Ok((
                    DefenseFeatures::extract(&r.recording)?.to_vector(),
                    r.is_attack,
                ))
            })
            .collect()
    }

    /// Deterministic split into train and test sets: every `1/test_every`-th
    /// sample of each class goes to the test set.
    pub fn split_features(&self, test_every: usize) -> Result<(LabeledFeatures, LabeledFeatures)> {
        if test_every < 2 {
            return Err(DefenseError::invalid("test_every", "must be at least 2"));
        }
        let all = self.to_feature_samples()?;
        let mut train = Vec::new();
        let mut test = Vec::new();
        let mut class_counters = [0usize; 2];
        for (f, y) in all {
            let c = &mut class_counters[usize::from(y)];
            if *c % test_every == test_every - 1 {
                test.push((f, y));
            } else {
                train.push((f, y));
            }
            *c += 1;
        }
        Ok((train, test))
    }
}

fn clip_duration(signal: &Signal, max_s: f64) -> Signal {
    if signal.duration_s() <= max_s {
        signal.clone()
    } else {
        signal.slice_seconds(0.0, max_s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config() -> DatasetConfig {
        DatasetConfig {
            distances_m: vec![1.5],
            num_speaker_variants: 2,
            command_indices: vec![0],
            attack_elements: 4,
            attack_total_power_w: 30.0,
            max_voice_duration_s: 0.9,
            ..DatasetConfig::default()
        }
    }

    #[test]
    fn validation() {
        let mut cfg = tiny_config();
        cfg.distances_m.clear();
        assert!(Dataset::generate(&cfg).is_err());
        let mut cfg = tiny_config();
        cfg.command_indices = vec![99];
        assert!(Dataset::generate(&cfg).is_err());
        let mut cfg = tiny_config();
        cfg.num_speaker_variants = 0;
        assert!(Dataset::generate(&cfg).is_err());
    }

    #[test]
    fn generates_expected_counts_and_labels() {
        let cfg = tiny_config();
        let ds = Dataset::generate(&cfg).unwrap();
        // 1 command x 1 distance x (2 legit + 1 attack) = 3 recordings.
        assert_eq!(ds.len(), 3);
        assert_eq!(ds.num_attacks(), 1);
        assert!(!ds.is_empty());
        for r in &ds.recordings {
            assert_eq!(r.device, DevicePreset::AndroidPhone);
            assert!(r.recording.len() > 1_000);
            assert_eq!(r.distance_m, 1.5);
        }
    }

    #[test]
    fn feature_samples_align_with_labels() {
        let cfg = tiny_config();
        let ds = Dataset::generate(&cfg).unwrap();
        let samples = ds.to_feature_samples().unwrap();
        assert_eq!(samples.len(), ds.len());
        assert_eq!(samples.iter().filter(|(_, y)| *y).count(), ds.num_attacks());
        for (f, _) in &samples {
            assert_eq!(f.len(), DefenseFeatures::DIMENSION);
        }
    }

    #[test]
    fn split_keeps_both_classes_apart_deterministically() {
        let mut cfg = tiny_config();
        cfg.distances_m = vec![1.0, 2.0];
        let ds = Dataset::generate(&cfg).unwrap();
        assert!(ds.split_features(1).is_err());
        let (train, test) = ds.split_features(2).unwrap();
        assert_eq!(train.len() + test.len(), ds.len());
        assert!(!train.is_empty() && !test.is_empty());
        // Deterministic: same call gives the same split.
        let (train2, test2) = ds.split_features(2).unwrap();
        assert_eq!(train.len(), train2.len());
        assert_eq!(test.len(), test2.len());
    }

    #[test]
    fn generation_is_reproducible() {
        let cfg = tiny_config();
        let a = Dataset::generate(&cfg).unwrap();
        let b = Dataset::generate(&cfg).unwrap();
        assert_eq!(a, b);
    }
}
