//! Error type for the defense crate.

use std::fmt;

/// Convenience alias used across the crate.
pub type Result<T> = std::result::Result<T, DefenseError>;

/// Errors produced by feature extraction, training or evaluation.
#[derive(Debug, Clone, PartialEq)]
pub enum DefenseError {
    /// A parameter was outside its valid range.
    InvalidParameter {
        /// Parameter name.
        name: &'static str,
        /// Description of the violation.
        message: String,
    },
    /// Training or evaluation was attempted on an empty or degenerate dataset.
    DegenerateDataset {
        /// Description of the problem.
        message: String,
    },
    /// An error bubbled up from the DSP layer.
    Dsp(ivc_dsp::DspError),
    /// An error bubbled up from the acoustics layer.
    Acoustics(ivc_acoustics::AcousticsError),
    /// An error bubbled up from the speech layer.
    Speech(ivc_speech::SpeechError),
    /// An error bubbled up from the attack crate (dataset generation).
    Attack(ivc_attack::AttackError),
}

impl fmt::Display for DefenseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DefenseError::InvalidParameter { name, message } => {
                write!(f, "invalid defense parameter `{name}`: {message}")
            }
            DefenseError::DegenerateDataset { message } => {
                write!(f, "degenerate dataset: {message}")
            }
            DefenseError::Dsp(e) => write!(f, "dsp error: {e}"),
            DefenseError::Acoustics(e) => write!(f, "acoustics error: {e}"),
            DefenseError::Speech(e) => write!(f, "speech error: {e}"),
            DefenseError::Attack(e) => write!(f, "attack error: {e}"),
        }
    }
}

impl std::error::Error for DefenseError {}

impl From<ivc_dsp::DspError> for DefenseError {
    fn from(e: ivc_dsp::DspError) -> Self {
        DefenseError::Dsp(e)
    }
}
impl From<ivc_acoustics::AcousticsError> for DefenseError {
    fn from(e: ivc_acoustics::AcousticsError) -> Self {
        DefenseError::Acoustics(e)
    }
}
impl From<ivc_speech::SpeechError> for DefenseError {
    fn from(e: ivc_speech::SpeechError) -> Self {
        DefenseError::Speech(e)
    }
}
impl From<ivc_attack::AttackError> for DefenseError {
    fn from(e: ivc_attack::AttackError) -> Self {
        DefenseError::Attack(e)
    }
}

impl DefenseError {
    /// Helper to build an [`DefenseError::InvalidParameter`].
    pub fn invalid(name: &'static str, message: impl Into<String>) -> Self {
        DefenseError::InvalidParameter {
            name,
            message: message.into(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_conversions() {
        assert!(DefenseError::invalid("x", "bad").to_string().contains("x"));
        assert!(DefenseError::DegenerateDataset {
            message: "empty".into()
        }
        .to_string()
        .contains("empty"));
        let e: DefenseError = ivc_dsp::DspError::EmptyInput { operation: "f" }.into();
        assert!(e.to_string().contains("dsp"));
        let e: DefenseError = ivc_speech::SpeechError::NoTemplates.into();
        assert!(e.to_string().contains("speech"));
        let e: DefenseError = ivc_attack::AttackError::invalid("p", "m").into();
        assert!(e.to_string().contains("attack"));
        let e: DefenseError = ivc_acoustics::AcousticsError::invalid("d", "m").into();
        assert!(e.to_string().contains("acoustics"));
    }
}
