//! The adaptive attacker: trying to hide the non-linearity trace.
//!
//! A defence is only interesting if it survives an attacker who knows about
//! it.  The natural evasion is *shadow pre-compensation*: before modulating,
//! the attacker adds to the baseband a low-frequency component designed to
//! cancel (part of) the `m(t)²` shadow that the microphone will create.
//! This module builds such pre-compensated attacks and exposes the two
//! quantities the paper's robustness analysis needs: how much the trace
//! shrinks, and what the compensation does to the injected command itself
//! (the compensation signal eats into the modulation budget and adds
//! audible-band rumble at the victim that the recogniser must tolerate).

use crate::error::{DefenseError, Result};
use ivc_dsp::envelope::hilbert_envelope;
use ivc_dsp::filter::biquad::BiquadCascade;
use ivc_dsp::signal::Signal;

/// Builds the pre-compensated baseband an adaptive attacker would transmit.
///
/// `suppression` in `[0, 1]` scales the compensation: 0 is the oblivious
/// attacker, 1 subtracts the full predicted shadow.
pub fn precompensated_baseband(voice: &Signal, suppression: f64) -> Result<Signal> {
    if voice.is_empty() {
        return Err(DefenseError::invalid("voice", "empty signal"));
    }
    if !(0.0..=1.0).contains(&suppression) {
        return Err(DefenseError::invalid(
            "suppression",
            "must be within [0, 1]",
        ));
    }
    if suppression == 0.0 {
        return Ok(voice.clone());
    }
    let fs = voice.sample_rate_hz();
    // Predict the shadow: the low-frequency part of the squared envelope of
    // the voice signal (this is exactly what the microphone's square law
    // will add).
    let envelope = hilbert_envelope(voice.samples())?;
    let squared: Vec<f64> = envelope.iter().map(|e| e * e).collect();
    let lpf = BiquadCascade::butterworth_low_pass(80.0, 4, fs)?;
    let mut shadow = Signal::new(lpf.filtfilt(&squared), fs)?;
    shadow.remove_dc();
    // Scale the predicted shadow relative to the voice and subtract.
    let voice_rms = voice.rms().max(1e-12);
    let shadow_rms = shadow.rms().max(1e-12);
    let compensation = shadow.scaled(-suppression * 0.5 * voice_rms / shadow_rms);
    let mut out = voice.clone();
    out.mix(&compensation)?;
    Ok(out)
}

/// Summary of one adaptive-attack working point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CountermeasureOutcome {
    /// The suppression factor the attacker applied.
    pub suppression: f64,
    /// Probability the detector assigns to "attack" for this recording.
    pub detection_probability: f64,
    /// Word accuracy the injected command still achieves at the recogniser.
    pub attack_word_accuracy: f64,
}

impl CountermeasureOutcome {
    /// `true` if the attacker simultaneously evaded the detector (probability
    /// below 0.5) and kept the command intelligible (accuracy ≥ 0.6) — the
    /// combination the paper argues is unattainable.
    pub fn attacker_wins(&self) -> bool {
        self.detection_probability < 0.5 && self.attack_word_accuracy >= 0.6
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ivc_dsp::spectrum::band_power;

    fn syllabic_voice() -> Signal {
        let fs = 48_000.0;
        let n = (0.6 * fs) as usize;
        let samples: Vec<f64> = (0..n)
            .map(|i| {
                let t = i as f64 / fs;
                let syllable = 0.55 + 0.45 * (2.0 * std::f64::consts::PI * 4.0 * t).sin();
                syllable * (2.0 * std::f64::consts::PI * 700.0 * t).sin()
            })
            .collect();
        Signal::new(samples, fs).unwrap()
    }

    #[test]
    fn validation() {
        let v = syllabic_voice();
        assert!(precompensated_baseband(&Signal::new(vec![], 48_000.0).unwrap(), 0.5).is_err());
        assert!(precompensated_baseband(&v, -0.1).is_err());
        assert!(precompensated_baseband(&v, 1.5).is_err());
    }

    #[test]
    fn zero_suppression_is_identity() {
        let v = syllabic_voice();
        let out = precompensated_baseband(&v, 0.0).unwrap();
        assert_eq!(out.samples(), v.samples());
    }

    #[test]
    fn suppression_adds_low_frequency_compensation() {
        let v = syllabic_voice();
        let compensated = precompensated_baseband(&v, 1.0).unwrap();
        let fs = v.sample_rate_hz();
        // The compensated baseband contains added energy below 80 Hz
        // (the anti-shadow), which the original lacked.
        let low_orig = band_power(v.samples(), fs, 2.0, 80.0).unwrap();
        let low_comp = band_power(compensated.samples(), fs, 2.0, 80.0).unwrap();
        assert!(
            low_comp > low_orig * 5.0,
            "orig {low_orig} vs comp {low_comp}"
        );
        // The voice band is essentially untouched.
        let voice_orig = band_power(v.samples(), fs, 600.0, 800.0).unwrap();
        let voice_comp = band_power(compensated.samples(), fs, 600.0, 800.0).unwrap();
        assert!((voice_orig - voice_comp).abs() / voice_orig < 0.05);
    }

    #[test]
    fn compensation_scales_with_suppression() {
        let v = syllabic_voice();
        let fs = v.sample_rate_hz();
        let half = precompensated_baseband(&v, 0.5).unwrap();
        let full = precompensated_baseband(&v, 1.0).unwrap();
        let low_half = band_power(half.samples(), fs, 2.0, 80.0).unwrap();
        let low_full = band_power(full.samples(), fs, 2.0, 80.0).unwrap();
        assert!(low_full > low_half * 2.0);
    }

    #[test]
    fn outcome_win_condition() {
        let win = CountermeasureOutcome {
            suppression: 0.5,
            detection_probability: 0.2,
            attack_word_accuracy: 0.8,
        };
        assert!(win.attacker_wins());
        let detected = CountermeasureOutcome {
            detection_probability: 0.9,
            ..win
        };
        assert!(!detected.attacker_wins());
        let garbled = CountermeasureOutcome {
            attack_word_accuracy: 0.3,
            ..win
        };
        assert!(!garbled.attacker_wins());
    }
}
