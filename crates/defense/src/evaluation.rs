//! Detector evaluation: confusion matrices, ROC curves and cross-validation.

use crate::classifier::{LogisticRegression, TrainingConfig};
use crate::error::{DefenseError, Result};
use crate::features::FeatureVector;

/// Binary confusion matrix for attack detection ("positive" = attack).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ConfusionMatrix {
    /// Attacks correctly flagged.
    pub true_positives: usize,
    /// Legitimate recordings wrongly flagged.
    pub false_positives: usize,
    /// Legitimate recordings correctly passed.
    pub true_negatives: usize,
    /// Attacks missed.
    pub false_negatives: usize,
}

impl ConfusionMatrix {
    /// Total number of samples.
    pub fn total(&self) -> usize {
        self.true_positives + self.false_positives + self.true_negatives + self.false_negatives
    }

    /// Overall accuracy.
    pub fn accuracy(&self) -> f64 {
        if self.total() == 0 {
            return 0.0;
        }
        (self.true_positives + self.true_negatives) as f64 / self.total() as f64
    }

    /// True-positive rate (recall / detection rate).
    pub fn true_positive_rate(&self) -> f64 {
        let p = self.true_positives + self.false_negatives;
        if p == 0 {
            0.0
        } else {
            self.true_positives as f64 / p as f64
        }
    }

    /// False-positive rate.
    pub fn false_positive_rate(&self) -> f64 {
        let n = self.false_positives + self.true_negatives;
        if n == 0 {
            0.0
        } else {
            self.false_positives as f64 / n as f64
        }
    }

    /// Precision.
    pub fn precision(&self) -> f64 {
        let flagged = self.true_positives + self.false_positives;
        if flagged == 0 {
            0.0
        } else {
            self.true_positives as f64 / flagged as f64
        }
    }

    /// Adds one observation.
    pub fn record(&mut self, predicted_attack: bool, is_attack: bool) {
        match (predicted_attack, is_attack) {
            (true, true) => self.true_positives += 1,
            (true, false) => self.false_positives += 1,
            (false, false) => self.true_negatives += 1,
            (false, true) => self.false_negatives += 1,
        }
    }

    /// Builds a confusion matrix from `(score, is_attack)` pairs at the
    /// given decision threshold (scores at or above it are flagged as
    /// attacks) — the archived-probability flavour of [`evaluate`], used
    /// by campaign-backed detection tables.
    pub fn from_scores(scored: &[(f64, bool)], threshold: f64) -> ConfusionMatrix {
        let mut matrix = ConfusionMatrix::default();
        for &(score, is_attack) in scored {
            matrix.record(score >= threshold, is_attack);
        }
        matrix
    }
}

/// Evaluates a trained model on labelled feature samples at threshold 0.5.
pub fn evaluate(
    model: &LogisticRegression,
    samples: &[(FeatureVector, bool)],
) -> Result<ConfusionMatrix> {
    let mut matrix = ConfusionMatrix::default();
    for (f, y) in samples {
        matrix.record(model.predict(f)?, *y);
    }
    Ok(matrix)
}

/// One point on an ROC curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RocPoint {
    /// Decision threshold that produced this point.
    pub threshold: f64,
    /// False-positive rate at this threshold.
    pub false_positive_rate: f64,
    /// True-positive rate at this threshold.
    pub true_positive_rate: f64,
}

/// A receiver-operating-characteristic curve.
#[derive(Debug, Clone, PartialEq)]
pub struct RocCurve {
    /// Points ordered by increasing false-positive rate.
    pub points: Vec<RocPoint>,
    /// Area under the curve.
    pub auc: f64,
}

impl RocCurve {
    /// Builds the ROC curve from `(score, is_attack)` pairs, where higher
    /// scores mean "more attack-like".
    pub fn compute(scored: &[(f64, bool)]) -> Result<RocCurve> {
        let positives = scored.iter().filter(|(_, y)| *y).count();
        let negatives = scored.len() - positives;
        if positives == 0 || negatives == 0 {
            return Err(DefenseError::DegenerateDataset {
                message: "ROC needs both classes".into(),
            });
        }
        // Sweep thresholds over the observed scores (plus sentinels).
        let mut thresholds: Vec<f64> = scored.iter().map(|(s, _)| *s).collect();
        thresholds.push(f64::INFINITY);
        thresholds.push(f64::NEG_INFINITY);
        thresholds.sort_by(|a, b| b.partial_cmp(a).unwrap_or(std::cmp::Ordering::Equal));
        thresholds.dedup();
        let mut points = Vec::with_capacity(thresholds.len());
        for t in thresholds {
            let mut tp = 0usize;
            let mut fp = 0usize;
            for (s, y) in scored {
                if *s >= t {
                    if *y {
                        tp += 1;
                    } else {
                        fp += 1;
                    }
                }
            }
            points.push(RocPoint {
                threshold: t,
                false_positive_rate: fp as f64 / negatives as f64,
                true_positive_rate: tp as f64 / positives as f64,
            });
        }
        points.sort_by(|a, b| {
            a.false_positive_rate
                .partial_cmp(&b.false_positive_rate)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(
                    a.true_positive_rate
                        .partial_cmp(&b.true_positive_rate)
                        .unwrap_or(std::cmp::Ordering::Equal),
                )
        });
        // Trapezoidal AUC.
        let mut auc = 0.0;
        for w in points.windows(2) {
            let dx = w[1].false_positive_rate - w[0].false_positive_rate;
            auc += dx * (w[0].true_positive_rate + w[1].true_positive_rate) / 2.0;
        }
        Ok(RocCurve { points, auc })
    }

    /// ROC curve of a trained model over labelled feature samples.
    pub fn from_model(
        model: &LogisticRegression,
        samples: &[(FeatureVector, bool)],
    ) -> Result<RocCurve> {
        let scored: Vec<(f64, bool)> = samples
            .iter()
            .map(|(f, y)| Ok((model.predict_probability(f)?, *y)))
            .collect::<Result<_>>()?;
        RocCurve::compute(&scored)
    }
}

/// K-fold cross-validation accuracy of the logistic-regression detector over
/// a labelled feature set.  Returns per-fold confusion matrices.
pub fn cross_validate(
    samples: &[(FeatureVector, bool)],
    folds: usize,
    config: &TrainingConfig,
) -> Result<Vec<ConfusionMatrix>> {
    if folds < 2 || samples.len() < folds * 2 {
        return Err(DefenseError::invalid(
            "folds",
            "need at least 2 folds and 2 samples per fold",
        ));
    }
    let mut matrices = Vec::with_capacity(folds);
    for fold in 0..folds {
        let test: Vec<(FeatureVector, bool)> = samples
            .iter()
            .enumerate()
            .filter(|(i, _)| i % folds == fold)
            .map(|(_, s)| s.clone())
            .collect();
        let train: Vec<(FeatureVector, bool)> = samples
            .iter()
            .enumerate()
            .filter(|(i, _)| i % folds != fold)
            .map(|(_, s)| s.clone())
            .collect();
        let has_both = |set: &[(FeatureVector, bool)]| {
            set.iter().any(|(_, y)| *y) && set.iter().any(|(_, y)| !*y)
        };
        if !has_both(&train) || test.is_empty() {
            continue;
        }
        let model = LogisticRegression::train(&train, config)?;
        matrices.push(evaluate(&model, &test)?);
    }
    if matrices.is_empty() {
        return Err(DefenseError::DegenerateDataset {
            message: "no fold had both classes in its training split".into(),
        });
    }
    Ok(matrices)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classifier::TrainingConfig;

    fn separable_samples(n: usize) -> Vec<(FeatureVector, bool)> {
        let mut out = Vec::new();
        for i in 0..n {
            let jitter = (i as f64 * 0.7).sin();
            out.push((vec![-40.0 + jitter, 0.05], false));
            out.push((vec![-15.0 + jitter, 0.8], true));
        }
        out
    }

    #[test]
    fn confusion_matrix_arithmetic() {
        let mut m = ConfusionMatrix::default();
        assert_eq!(m.accuracy(), 0.0);
        m.record(true, true);
        m.record(true, true);
        m.record(false, true);
        m.record(false, false);
        m.record(true, false);
        assert_eq!(m.total(), 5);
        assert!((m.accuracy() - 0.6).abs() < 1e-12);
        assert!((m.true_positive_rate() - 2.0 / 3.0).abs() < 1e-12);
        assert!((m.false_positive_rate() - 0.5).abs() < 1e-12);
        assert!((m.precision() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn from_scores_thresholds_like_record() {
        let scored = [(0.9, true), (0.5, true), (0.4, true), (0.2, false)];
        let m = ConfusionMatrix::from_scores(&scored, 0.5);
        assert_eq!(m.true_positives, 2);
        assert_eq!(m.false_negatives, 1);
        assert_eq!(m.true_negatives, 1);
        assert_eq!(m.false_positives, 0);
        // The boundary score counts as flagged.
        let strict = ConfusionMatrix::from_scores(&scored, 0.91);
        assert_eq!(strict.true_positives, 0);
        assert_eq!(strict.false_negatives, 3);
    }

    #[test]
    fn perfect_scores_give_auc_one() {
        let scored: Vec<(f64, bool)> = (0..20)
            .map(|i| {
                let attack = i % 2 == 0;
                (if attack { 0.9 } else { 0.1 }, attack)
            })
            .collect();
        let roc = RocCurve::compute(&scored).unwrap();
        assert!((roc.auc - 1.0).abs() < 1e-9, "auc {}", roc.auc);
        assert!(roc.points.first().unwrap().false_positive_rate <= 1e-12);
        assert!(roc.points.last().unwrap().true_positive_rate >= 1.0 - 1e-12);
    }

    #[test]
    fn random_scores_give_auc_near_half() {
        let scored: Vec<(f64, bool)> = (0..400)
            .map(|i| {
                let score = ((i as f64 * 0.61803).fract() * 10.0).fract();
                (score, i % 2 == 0)
            })
            .collect();
        let roc = RocCurve::compute(&scored).unwrap();
        assert!((roc.auc - 0.5).abs() < 0.12, "auc {}", roc.auc);
    }

    #[test]
    fn roc_requires_both_classes() {
        let only_attacks: Vec<(f64, bool)> = (0..10).map(|i| (i as f64, true)).collect();
        assert!(RocCurve::compute(&only_attacks).is_err());
    }

    #[test]
    fn evaluate_and_roc_from_trained_model() {
        let samples = separable_samples(20);
        let model = LogisticRegression::train(&samples, &TrainingConfig::default()).unwrap();
        let matrix = evaluate(&model, &samples).unwrap();
        assert_eq!(matrix.total(), samples.len());
        assert!(matrix.accuracy() > 0.99);
        let roc = RocCurve::from_model(&model, &samples).unwrap();
        assert!(roc.auc > 0.99);
    }

    #[test]
    fn cross_validation_on_a_separable_problem() {
        let samples = separable_samples(20);
        assert!(cross_validate(&samples, 1, &TrainingConfig::default()).is_err());
        let matrices = cross_validate(&samples, 4, &TrainingConfig::default()).unwrap();
        assert_eq!(matrices.len(), 4);
        for m in matrices {
            assert!(m.accuracy() > 0.9, "fold accuracy {}", m.accuracy());
        }
    }
}
