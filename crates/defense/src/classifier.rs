//! A small logistic-regression classifier with feature standardisation.
//!
//! Deliberately simple: the defense features separate the classes almost
//! linearly, and a transparent model keeps the experiments interpretable
//! (weights can be read as "how much each trace contributes").

use crate::error::{DefenseError, Result};
use crate::features::FeatureVector;

/// Logistic-regression model for attack detection.
#[derive(Debug, Clone, PartialEq)]
pub struct LogisticRegression {
    weights: Vec<f64>,
    bias: f64,
    feature_means: Vec<f64>,
    feature_stds: Vec<f64>,
}

/// Training hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrainingConfig {
    /// Gradient-descent learning rate.
    pub learning_rate: f64,
    /// Number of full passes over the training set.
    pub epochs: usize,
    /// L2 regularisation strength.
    pub l2: f64,
}

impl Default for TrainingConfig {
    fn default() -> Self {
        TrainingConfig {
            learning_rate: 0.2,
            epochs: 400,
            l2: 1e-3,
        }
    }
}

impl LogisticRegression {
    /// Trains a model on `(feature_vector, is_attack)` pairs.
    pub fn train(samples: &[(FeatureVector, bool)], config: &TrainingConfig) -> Result<Self> {
        if samples.len() < 4 {
            return Err(DefenseError::DegenerateDataset {
                message: format!("need at least 4 samples, got {}", samples.len()),
            });
        }
        let dim = samples[0].0.len();
        if dim == 0 || samples.iter().any(|(f, _)| f.len() != dim) {
            return Err(DefenseError::DegenerateDataset {
                message: "inconsistent feature dimensions".into(),
            });
        }
        let positives = samples.iter().filter(|(_, y)| *y).count();
        if positives == 0 || positives == samples.len() {
            return Err(DefenseError::DegenerateDataset {
                message: "training set must contain both classes".into(),
            });
        }
        if config.learning_rate <= 0.0 || config.epochs == 0 {
            return Err(DefenseError::invalid(
                "TrainingConfig",
                "learning_rate must be positive and epochs at least 1",
            ));
        }

        // Standardise features.
        let n = samples.len() as f64;
        let mut means = vec![0.0; dim];
        for (f, _) in samples {
            for (m, x) in means.iter_mut().zip(f.iter()) {
                *m += x / n;
            }
        }
        let mut stds = vec![0.0; dim];
        for (f, _) in samples {
            for ((s, x), m) in stds.iter_mut().zip(f.iter()).zip(means.iter()) {
                *s += (x - m) * (x - m) / n;
            }
        }
        for s in &mut stds {
            *s = s.sqrt().max(1e-9);
        }
        let standardise = |f: &FeatureVector| -> Vec<f64> {
            f.iter()
                .zip(means.iter())
                .zip(stds.iter())
                .map(|((x, m), s)| (x - m) / s)
                .collect()
        };

        // Batch gradient descent on the logistic loss.
        let mut weights = vec![0.0; dim];
        let mut bias = 0.0;
        for _ in 0..config.epochs {
            let mut grad_w = vec![0.0; dim];
            let mut grad_b = 0.0;
            for (f, y) in samples {
                let x = standardise(f);
                let z: f64 = weights
                    .iter()
                    .zip(x.iter())
                    .map(|(w, v)| w * v)
                    .sum::<f64>()
                    + bias;
                let p = sigmoid(z);
                let err = p - if *y { 1.0 } else { 0.0 };
                for (g, v) in grad_w.iter_mut().zip(x.iter()) {
                    *g += err * v / n;
                }
                grad_b += err / n;
            }
            for (w, g) in weights.iter_mut().zip(grad_w.iter()) {
                *w -= config.learning_rate * (g + config.l2 * *w);
            }
            bias -= config.learning_rate * grad_b;
        }
        Ok(LogisticRegression {
            weights,
            bias,
            feature_means: means,
            feature_stds: stds,
        })
    }

    /// Probability that `features` describe an attack recording.
    pub fn predict_probability(&self, features: &FeatureVector) -> Result<f64> {
        if features.len() != self.weights.len() {
            return Err(DefenseError::invalid(
                "features",
                format!(
                    "dimension {} does not match the model's {}",
                    features.len(),
                    self.weights.len()
                ),
            ));
        }
        let z: f64 = features
            .iter()
            .zip(self.feature_means.iter())
            .zip(self.feature_stds.iter())
            .zip(self.weights.iter())
            .map(|(((x, m), s), w)| w * (x - m) / s)
            .sum::<f64>()
            + self.bias;
        Ok(sigmoid(z))
    }

    /// Hard decision at a threshold of 0.5.
    pub fn predict(&self, features: &FeatureVector) -> Result<bool> {
        Ok(self.predict_probability(features)? >= 0.5)
    }

    /// The trained weights in standardised-feature space (for inspection).
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// The trained bias term.
    pub fn bias(&self) -> f64 {
        self.bias
    }
}

fn sigmoid(z: f64) -> f64 {
    1.0 / (1.0 + (-z).exp())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A linearly separable synthetic problem in 2D.
    fn toy_dataset(n_per_class: usize) -> Vec<(FeatureVector, bool)> {
        let mut samples = Vec::new();
        for i in 0..n_per_class {
            let jitter = (i as f64 * 0.37).sin() * 0.3;
            samples.push((vec![-40.0 + jitter, 0.05 + jitter * 0.02], false));
            samples.push((vec![-15.0 + jitter, 0.75 + jitter * 0.02], true));
        }
        samples
    }

    #[test]
    fn validation() {
        assert!(LogisticRegression::train(&[], &TrainingConfig::default()).is_err());
        let one_class: Vec<(FeatureVector, bool)> =
            (0..8).map(|i| (vec![i as f64], false)).collect();
        assert!(LogisticRegression::train(&one_class, &TrainingConfig::default()).is_err());
        let mixed_dims = vec![
            (vec![1.0], true),
            (vec![1.0, 2.0], false),
            (vec![1.0], true),
            (vec![1.0], false),
        ];
        assert!(LogisticRegression::train(&mixed_dims, &TrainingConfig::default()).is_err());
        let bad_config = TrainingConfig {
            learning_rate: 0.0,
            ..TrainingConfig::default()
        };
        assert!(LogisticRegression::train(&toy_dataset(4), &bad_config).is_err());
    }

    #[test]
    fn learns_a_separable_problem() {
        let data = toy_dataset(20);
        let model = LogisticRegression::train(&data, &TrainingConfig::default()).unwrap();
        for (f, y) in &data {
            assert_eq!(model.predict(f).unwrap(), *y);
        }
        // Confident on both sides.
        assert!(model.predict_probability(&vec![-40.0, 0.05]).unwrap() < 0.1);
        assert!(model.predict_probability(&vec![-15.0, 0.75]).unwrap() > 0.9);
        assert_eq!(model.weights().len(), 2);
        assert!(model.bias().is_finite());
    }

    #[test]
    fn probability_is_monotonic_along_the_attack_direction() {
        let data = toy_dataset(20);
        let model = LogisticRegression::train(&data, &TrainingConfig::default()).unwrap();
        let mut last = 0.0;
        for step in 0..=10 {
            let x = -40.0 + 25.0 * step as f64 / 10.0;
            let c = 0.05 + 0.7 * step as f64 / 10.0;
            let p = model.predict_probability(&vec![x, c]).unwrap();
            assert!(p >= last - 1e-9, "not monotonic at step {step}");
            last = p;
        }
    }

    #[test]
    fn rejects_mismatched_dimensions_at_prediction_time() {
        let model =
            LogisticRegression::train(&toy_dataset(10), &TrainingConfig::default()).unwrap();
        assert!(model.predict_probability(&vec![1.0]).is_err());
        assert!(model.predict(&vec![1.0, 2.0, 3.0]).is_err());
    }

    #[test]
    fn training_is_deterministic() {
        let data = toy_dataset(12);
        let a = LogisticRegression::train(&data, &TrainingConfig::default()).unwrap();
        let b = LogisticRegression::train(&data, &TrainingConfig::default()).unwrap();
        assert_eq!(a, b);
    }
}
