//! Error type for the room-acoustics subsystem.

use std::fmt;

/// Convenience alias used across the crate.
pub type Result<T> = std::result::Result<T, RoomError>;

/// Errors produced by the room models.
#[derive(Debug, Clone, PartialEq)]
pub enum RoomError {
    /// A geometric or material parameter was outside its valid range.
    InvalidParameter {
        /// Parameter name.
        name: &'static str,
        /// Description of the violation.
        message: String,
    },
    /// An error bubbled up from the acoustics layer.
    Acoustics(ivc_acoustics::AcousticsError),
    /// An error bubbled up from the DSP layer.
    Dsp(ivc_dsp::DspError),
}

impl fmt::Display for RoomError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RoomError::InvalidParameter { name, message } => {
                write!(f, "invalid room parameter `{name}`: {message}")
            }
            RoomError::Acoustics(e) => write!(f, "acoustics error: {e}"),
            RoomError::Dsp(e) => write!(f, "dsp error: {e}"),
        }
    }
}

impl std::error::Error for RoomError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RoomError::Acoustics(e) => Some(e),
            RoomError::Dsp(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ivc_acoustics::AcousticsError> for RoomError {
    fn from(e: ivc_acoustics::AcousticsError) -> Self {
        RoomError::Acoustics(e)
    }
}

impl From<ivc_dsp::DspError> for RoomError {
    fn from(e: ivc_dsp::DspError) -> Self {
        RoomError::Dsp(e)
    }
}

impl RoomError {
    /// Helper to build an [`RoomError::InvalidParameter`].
    pub fn invalid(name: &'static str, message: impl Into<String>) -> Self {
        RoomError::InvalidParameter {
            name,
            message: message.into(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_conversions() {
        let e = RoomError::invalid("length_m", "must be positive");
        assert!(e.to_string().contains("length_m"));
        let e: RoomError = ivc_dsp::DspError::invalid_parameter("taps", "empty").into();
        assert!(matches!(e, RoomError::Dsp(_)));
        assert!(e.to_string().contains("taps"));
        let e: RoomError = ivc_acoustics::AcousticsError::invalid("distance_m", "bad").into();
        assert!(matches!(e, RoomError::Acoustics(_)));
    }
}
