//! Line-segment occlusion: partitions drawn on the room's floor plan.
//!
//! An occluder is a vertical partition (a wall section, a closed door)
//! represented by its floor-plan segment.  A propagation path is occluded
//! when its straight source→receiver segment crosses the occluder's
//! segment; every crossing multiplies the path's amplitude by the
//! partition's frequency-dependent transmission coefficient.  Because
//! transmission loss grows with frequency (mass law), a wall in the way
//! attenuates a 40 kHz carrier by tens of dB more than it attenuates
//! audible speech.
//!
//! Simplification: the crossing test uses the straight floor-plan segment
//! of the *direct* path, and the resulting attenuation is applied to every
//! tap of that path's impulse response (reflected paths through the same
//! doorway share the doorway).  Diffraction around edges is not modelled —
//! an un-occluded path through a doorway gap passes at full strength.

use crate::geometry::{segments_intersect, Point3};
use crate::material::{PartitionMaterial, NUM_ANCHORS};

/// A vertical partition on the room's floor plan.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Occluder {
    /// Floor-plan start of the partition `(x, y)`, in metres.
    pub start: (f64, f64),
    /// Floor-plan end of the partition `(x, y)`, in metres.
    pub end: (f64, f64),
    /// What the partition is made of.
    pub material: PartitionMaterial,
}

impl Occluder {
    /// Creates an occluder.
    pub fn new(start: (f64, f64), end: (f64, f64), material: PartitionMaterial) -> Self {
        Occluder {
            start,
            end,
            material,
        }
    }

    /// `true` when the straight path `a → b` crosses this partition on the
    /// floor plan.
    pub fn blocks(&self, a: &Point3, b: &Point3) -> bool {
        segments_intersect(a.floor_plan(), b.floor_plan(), self.start, self.end)
    }
}

/// The occluders of `occluders` whose segments the path `a → b` crosses.
pub fn crossed_occluders<'a>(
    occluders: &'a [Occluder],
    a: &Point3,
    b: &Point3,
) -> Vec<&'a Occluder> {
    occluders.iter().filter(|o| o.blocks(a, b)).collect()
}

/// Combined amplitude transmission of a set of crossed partitions, per
/// anchor frequency (the product of the individual coefficients — each
/// crossed wall attenuates independently, so attenuation is monotone in
/// the number of walls).
pub fn occlusion_amplitude_at_anchors(crossed: &[&Occluder]) -> [f64; NUM_ANCHORS] {
    let mut amplitude = [1.0; NUM_ANCHORS];
    for occluder in crossed {
        for (i, a) in amplitude.iter_mut().enumerate() {
            *a *= occluder.material.transmission_amplitude_at_anchor(i);
        }
    }
    amplitude
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wall(x: f64, y0: f64, y1: f64) -> Occluder {
        Occluder::new((x, y0), (x, y1), PartitionMaterial::drywall_partition())
    }

    #[test]
    fn doorway_gap_lets_the_path_through() {
        // A wall at x = 2 with a doorway gap y ∈ (1.0, 1.9).
        let occluders = vec![wall(2.0, 0.0, 1.0), wall(2.0, 1.9, 4.0)];
        let source = Point3::new(1.0, 1.45, 1.2);
        let through_door = Point3::new(5.0, 1.45, 1.2);
        let behind_wall = Point3::new(5.0, 3.5, 1.2);
        assert!(crossed_occluders(&occluders, &source, &through_door).is_empty());
        assert_eq!(
            crossed_occluders(&occluders, &source, &behind_wall).len(),
            1
        );
    }

    #[test]
    fn attenuation_is_monotone_in_wall_count() {
        let walls = [
            wall(2.0, 0.0, 4.0),
            wall(3.0, 0.0, 4.0),
            wall(4.0, 0.0, 4.0),
        ];
        let mut previous = [1.0; NUM_ANCHORS];
        for count in 1..=3 {
            let crossed: Vec<&Occluder> = walls[..count].iter().collect();
            let amplitude = occlusion_amplitude_at_anchors(&crossed);
            for i in 0..NUM_ANCHORS {
                assert!(amplitude[i] < previous[i], "count {count}, anchor {i}");
                assert!(amplitude[i] > 0.0);
            }
            previous = amplitude;
        }
    }

    #[test]
    fn ultrasound_is_attenuated_far_more_than_voice() {
        let crossed = [wall(2.0, 0.0, 4.0)];
        let refs: Vec<&Occluder> = crossed.iter().collect();
        let amplitude = occlusion_amplitude_at_anchors(&refs);
        // Anchor 3 = 1 kHz, anchor 9 = 32 kHz.
        assert!(amplitude[9] < amplitude[3] / 10.0);
    }

    #[test]
    fn no_occluders_is_the_identity() {
        assert_eq!(occlusion_amplitude_at_anchors(&[]), [1.0; NUM_ANCHORS]);
    }
}
