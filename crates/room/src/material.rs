//! Surface and partition materials with frequency-dependent behaviour.
//!
//! Reflection is characterised by the random-incidence energy absorption
//! coefficient `α(f)`; a bounce multiplies the pressure amplitude by
//! `β(f) = √(1 − α(f))`.  Published tables stop at 4 kHz; the ultrasonic
//! anchors extrapolate the audible trend (porous materials keep absorbing
//! harder, hard surfaces stay reflective), which is the behaviour that
//! matters for this workspace: a 40 kHz carrier survives concrete and
//! glass but dies in carpet and acoustic tile.
//!
//! Occluding partitions are characterised by a transmission loss `TL(f)`
//! in dB that grows with frequency (mass law, ~6 dB per octave): walls
//! block ultrasound far more effectively than audible speech, which is why
//! the `ThroughDoorway` scenario changes the attack/leakage balance.

use crate::error::{Result, RoomError};

/// The frequencies (Hz) at which every material curve is anchored.  Gain
/// curves handed to the propagation layer sample these exact points;
/// between them the propagation layer interpolates linearly in
/// log-frequency (see `ivc_acoustics::propagation::interpolate_gain_curve`).
pub const ANCHOR_FREQUENCIES_HZ: [f64; 12] = [
    125.0, 250.0, 500.0, 1_000.0, 2_000.0, 4_000.0, 8_000.0, 16_000.0, 24_000.0, 32_000.0,
    48_000.0, 64_000.0,
];

/// Number of anchor frequencies.
pub const NUM_ANCHORS: usize = ANCHOR_FREQUENCIES_HZ.len();

/// A room surface: a name plus its absorption coefficient at each anchor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SurfaceMaterial {
    /// Human-readable material name.
    pub name: &'static str,
    absorption: [f64; NUM_ANCHORS],
}

impl SurfaceMaterial {
    /// Creates a material after validating every coefficient is in `[0, 1]`.
    pub fn new(name: &'static str, absorption: [f64; NUM_ANCHORS]) -> Result<Self> {
        for &a in &absorption {
            if !(0.0..=1.0).contains(&a) {
                return Err(RoomError::invalid(
                    "absorption",
                    format!("{name}: coefficient {a} outside [0, 1]"),
                ));
            }
        }
        Ok(SurfaceMaterial { name, absorption })
    }

    /// Energy absorption coefficient at anchor index `i`.
    pub fn absorption_at_anchor(&self, i: usize) -> f64 {
        self.absorption[i]
    }

    /// Energy absorption coefficient at an arbitrary frequency
    /// (log-frequency interpolation, clamped beyond the anchors).
    pub fn absorption_at(&self, frequency_hz: f64) -> f64 {
        let curve: Vec<(f64, f64)> = ANCHOR_FREQUENCIES_HZ
            .iter()
            .zip(self.absorption.iter())
            .map(|(&f, &a)| (f, a))
            .collect();
        ivc_acoustics::propagation::interpolate_gain_curve(&curve, frequency_hz)
    }

    /// Pressure-amplitude reflection coefficient `β = √(1 − α)` at anchor
    /// index `i`.
    pub fn reflection_amplitude_at_anchor(&self, i: usize) -> f64 {
        (1.0 - self.absorption[i]).max(0.0).sqrt()
    }

    /// A perfect absorber: every incident ray dies at the wall, so the
    /// image-source engine reduces to the direct path (free field).
    pub fn anechoic() -> Self {
        SurfaceMaterial {
            name: "anechoic",
            absorption: [1.0; NUM_ANCHORS],
        }
    }

    /// Painted concrete / masonry: hard and reflective at every frequency.
    pub fn painted_concrete() -> Self {
        SurfaceMaterial {
            name: "painted concrete",
            absorption: [
                0.01, 0.01, 0.015, 0.02, 0.02, 0.025, 0.03, 0.04, 0.05, 0.06, 0.08, 0.10,
            ],
        }
    }

    /// Gypsum board on studs: a light panel absorber (resonant at low
    /// frequency, mildly absorptive above).
    pub fn gypsum_wall() -> Self {
        SurfaceMaterial {
            name: "gypsum wall",
            absorption: [
                0.29, 0.10, 0.05, 0.04, 0.07, 0.09, 0.10, 0.12, 0.14, 0.16, 0.20, 0.24,
            ],
        }
    }

    /// Carpet on concrete: porous, increasingly absorptive with frequency.
    pub fn carpet_on_concrete() -> Self {
        SurfaceMaterial {
            name: "carpet on concrete",
            absorption: [
                0.02, 0.06, 0.14, 0.37, 0.60, 0.65, 0.70, 0.75, 0.80, 0.85, 0.90, 0.92,
            ],
        }
    }

    /// Suspended acoustic ceiling tile: absorptive across the band.
    pub fn acoustic_ceiling_tile() -> Self {
        SurfaceMaterial {
            name: "acoustic ceiling tile",
            absorption: [
                0.70, 0.66, 0.72, 0.92, 0.88, 0.75, 0.70, 0.65, 0.62, 0.60, 0.60, 0.60,
            ],
        }
    }

    /// A large glass pane: reflective except at its low-frequency panel
    /// resonance.
    pub fn glass_window() -> Self {
        SurfaceMaterial {
            name: "glass window",
            absorption: [
                0.35, 0.25, 0.18, 0.12, 0.07, 0.04, 0.03, 0.03, 0.03, 0.04, 0.05, 0.06,
            ],
        }
    }

    /// Hardwood floor on joists.
    pub fn hardwood_floor() -> Self {
        SurfaceMaterial {
            name: "hardwood floor",
            absorption: [
                0.15, 0.11, 0.10, 0.07, 0.06, 0.07, 0.08, 0.09, 0.10, 0.11, 0.12, 0.14,
            ],
        }
    }
}

/// An occluding partition's transmission behaviour: how many dB a sound
/// loses crossing it, per anchor frequency.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PartitionMaterial {
    /// Human-readable partition name.
    pub name: &'static str,
    transmission_loss_db: [f64; NUM_ANCHORS],
}

impl PartitionMaterial {
    /// Creates a partition after validating every loss is non-negative.
    pub fn new(name: &'static str, transmission_loss_db: [f64; NUM_ANCHORS]) -> Result<Self> {
        for &tl in &transmission_loss_db {
            if !(tl >= 0.0) || !tl.is_finite() {
                return Err(RoomError::invalid(
                    "transmission_loss_db",
                    format!("{name}: loss {tl} must be finite and non-negative"),
                ));
            }
        }
        Ok(PartitionMaterial {
            name,
            transmission_loss_db,
        })
    }

    /// Transmission loss in dB at anchor index `i`.
    pub fn transmission_loss_db_at_anchor(&self, i: usize) -> f64 {
        self.transmission_loss_db[i]
    }

    /// Pressure-amplitude transmission coefficient `10^(−TL/20)` at anchor
    /// index `i`.
    pub fn transmission_amplitude_at_anchor(&self, i: usize) -> f64 {
        10f64.powf(-self.transmission_loss_db[i] / 20.0)
    }

    /// A single-stud drywall partition (STC ≈ 34), mass-law slope above.
    pub fn drywall_partition() -> Self {
        PartitionMaterial {
            name: "drywall partition",
            transmission_loss_db: [
                15.0, 25.0, 32.0, 39.0, 45.0, 50.0, 55.0, 60.0, 63.0, 66.0, 70.0, 72.0,
            ],
        }
    }

    /// A masonry wall: heavier, higher loss at every frequency.
    pub fn masonry_wall() -> Self {
        PartitionMaterial {
            name: "masonry wall",
            transmission_loss_db: [
                30.0, 36.0, 41.0, 46.0, 51.0, 56.0, 61.0, 66.0, 69.0, 72.0, 76.0, 78.0,
            ],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation() {
        assert!(SurfaceMaterial::new("bad", [1.5; NUM_ANCHORS]).is_err());
        assert!(SurfaceMaterial::new("ok", [0.5; NUM_ANCHORS]).is_ok());
        assert!(PartitionMaterial::new("bad", [-1.0; NUM_ANCHORS]).is_err());
        assert!(PartitionMaterial::new("ok", [10.0; NUM_ANCHORS]).is_ok());
    }

    #[test]
    fn anchors_are_sorted_and_span_the_ultrasonic_band() {
        for pair in ANCHOR_FREQUENCIES_HZ.windows(2) {
            assert!(pair[0] < pair[1]);
        }
        let (first, last) = (
            ANCHOR_FREQUENCIES_HZ[0],
            *ANCHOR_FREQUENCIES_HZ.last().unwrap(),
        );
        assert!(first <= 125.0 && last >= 48_000.0, "{first}..{last}");
    }

    #[test]
    fn anechoic_reflects_nothing_and_concrete_nearly_everything() {
        let dead = SurfaceMaterial::anechoic();
        let hard = SurfaceMaterial::painted_concrete();
        for i in 0..NUM_ANCHORS {
            assert_eq!(dead.reflection_amplitude_at_anchor(i), 0.0);
            assert!(hard.reflection_amplitude_at_anchor(i) > 0.94);
        }
    }

    #[test]
    fn absorption_interpolates_between_anchors() {
        let carpet = SurfaceMaterial::carpet_on_concrete();
        assert_eq!(carpet.absorption_at(1_000.0), 0.37);
        let mid = carpet.absorption_at(1_500.0);
        assert!(mid > 0.37 && mid < 0.60, "mid {mid}");
        // Clamped outside the table.
        assert_eq!(carpet.absorption_at(10.0), 0.02);
        assert_eq!(carpet.absorption_at(1e6), 0.92);
    }

    #[test]
    fn partitions_block_ultrasound_harder_than_voice() {
        for wall in [
            PartitionMaterial::drywall_partition(),
            PartitionMaterial::masonry_wall(),
        ] {
            // Anchor 3 is 1 kHz (voice), anchor 9 is 32 kHz (ultrasound).
            assert!(
                wall.transmission_loss_db_at_anchor(9)
                    > wall.transmission_loss_db_at_anchor(3) + 20.0
            );
            assert!(wall.transmission_amplitude_at_anchor(9) < 0.001);
        }
    }
}
