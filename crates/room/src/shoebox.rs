//! The shoebox room: a rectangular box with one material per surface, and
//! the classical Sabine/Eyring reverberation-time estimates.

use crate::error::{Result, RoomError};
use crate::geometry::Point3;
use crate::material::SurfaceMaterial;

/// Number of surfaces of a shoebox room.
pub const NUM_SURFACES: usize = 6;

/// Surface indices into a [`Shoebox`]'s material array.
///
/// Order: wall at `x = 0`, wall at `x = L`, wall at `y = 0`, wall at
/// `y = W`, floor (`z = 0`), ceiling (`z = H`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Surface {
    /// Wall at `x = 0` (behind the source in the preset layouts).
    WallX0,
    /// Wall at `x = L` (behind the target).
    WallXL,
    /// Wall at `y = 0`.
    WallY0,
    /// Wall at `y = W`.
    WallYW,
    /// Floor, `z = 0`.
    Floor,
    /// Ceiling, `z = H`.
    Ceiling,
}

/// A rectangular room `[0, L] × [0, W] × [0, H]` with per-surface
/// materials.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Shoebox {
    /// Length along `x`, in metres.
    pub length_m: f64,
    /// Width along `y`, in metres.
    pub width_m: f64,
    /// Height along `z`, in metres.
    pub height_m: f64,
    /// Materials in [`Surface`] order.
    pub surfaces: [SurfaceMaterial; NUM_SURFACES],
}

impl Shoebox {
    /// Creates a validated room.  Dimensions must lie in `[0.5, 100]` m.
    pub fn new(
        length_m: f64,
        width_m: f64,
        height_m: f64,
        surfaces: [SurfaceMaterial; NUM_SURFACES],
    ) -> Result<Self> {
        for (name, value) in [
            ("length_m", length_m),
            ("width_m", width_m),
            ("height_m", height_m),
        ] {
            if !(0.5..=100.0).contains(&value) {
                return Err(RoomError::invalid(
                    name,
                    format!("{value} outside [0.5, 100] metres"),
                ));
            }
        }
        Ok(Shoebox {
            length_m,
            width_m,
            height_m,
            surfaces,
        })
    }

    /// A room with the same material on every surface.
    pub fn uniform(
        length_m: f64,
        width_m: f64,
        height_m: f64,
        material: SurfaceMaterial,
    ) -> Result<Self> {
        Shoebox::new(length_m, width_m, height_m, [material; NUM_SURFACES])
    }

    /// Room volume in m³.
    pub fn volume_m3(&self) -> f64 {
        self.length_m * self.width_m * self.height_m
    }

    /// Area of one surface in m².
    pub fn surface_area_m2(&self, surface: usize) -> f64 {
        match surface {
            0 | 1 => self.width_m * self.height_m,
            2 | 3 => self.length_m * self.height_m,
            _ => self.length_m * self.width_m,
        }
    }

    /// Total interior surface area in m².
    pub fn total_surface_area_m2(&self) -> f64 {
        (0..NUM_SURFACES).map(|i| self.surface_area_m2(i)).sum()
    }

    /// Area-weighted mean absorption coefficient at `frequency_hz`.
    pub fn mean_absorption_at(&self, frequency_hz: f64) -> f64 {
        let total: f64 = (0..NUM_SURFACES)
            .map(|i| self.surface_area_m2(i) * self.surfaces[i].absorption_at(frequency_hz))
            .sum();
        total / self.total_surface_area_m2()
    }

    /// Sabine reverberation time `T60 = 0.161 · V / (S·ᾱ)` at
    /// `frequency_hz`, in seconds.  Surface losses only; atmospheric
    /// absorption (which dominates in the ultrasonic band) is applied
    /// per-path by the propagation layer instead.
    pub fn sabine_rt60_s(&self, frequency_hz: f64) -> f64 {
        let a = self.total_surface_area_m2() * self.mean_absorption_at(frequency_hz);
        if a <= 0.0 {
            return f64::INFINITY;
        }
        0.161 * self.volume_m3() / a
    }

    /// Eyring reverberation time `T60 = 0.161 · V / (−S·ln(1 − ᾱ))` at
    /// `frequency_hz`, in seconds.  More accurate than Sabine in absorbent
    /// rooms; 0 for a perfectly absorbent room.
    pub fn eyring_rt60_s(&self, frequency_hz: f64) -> f64 {
        let mean = self.mean_absorption_at(frequency_hz);
        if mean >= 1.0 {
            return 0.0;
        }
        if mean <= 0.0 {
            return f64::INFINITY;
        }
        0.161 * self.volume_m3() / (-self.total_surface_area_m2() * (1.0 - mean).ln())
    }

    /// `true` when `point` lies inside the room with at least `margin_m`
    /// clearance from every surface.
    pub fn contains(&self, point: &Point3, margin_m: f64) -> bool {
        point.x >= margin_m
            && point.x <= self.length_m - margin_m
            && point.y >= margin_m
            && point.y <= self.width_m - margin_m
            && point.z >= margin_m
            && point.z <= self.height_m - margin_m
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn office() -> Shoebox {
        Shoebox::new(
            8.0,
            4.0,
            2.7,
            [
                SurfaceMaterial::gypsum_wall(),
                SurfaceMaterial::gypsum_wall(),
                SurfaceMaterial::gypsum_wall(),
                SurfaceMaterial::gypsum_wall(),
                SurfaceMaterial::carpet_on_concrete(),
                SurfaceMaterial::acoustic_ceiling_tile(),
            ],
        )
        .unwrap()
    }

    #[test]
    fn validation_and_geometry() {
        assert!(Shoebox::uniform(0.2, 4.0, 2.7, SurfaceMaterial::gypsum_wall()).is_err());
        assert!(Shoebox::uniform(8.0, 4.0, 200.0, SurfaceMaterial::gypsum_wall()).is_err());
        let room = office();
        assert!((room.volume_m3() - 86.4).abs() < 1e-9);
        assert!(
            (room.total_surface_area_m2() - (2.0 * 32.0 + 2.0 * 10.8 + 2.0 * 21.6)).abs() < 1e-9
        );
        assert!(room.contains(&Point3::new(1.0, 2.0, 1.2), 0.5));
        assert!(!room.contains(&Point3::new(7.8, 2.0, 1.2), 0.5));
    }

    #[test]
    fn absorbent_rooms_decay_faster() {
        let dead = office();
        let live = Shoebox::uniform(8.0, 4.0, 2.7, SurfaceMaterial::painted_concrete()).unwrap();
        for f in [500.0, 1_000.0, 4_000.0] {
            assert!(dead.sabine_rt60_s(f) < live.sabine_rt60_s(f) / 4.0);
        }
        // Plausible magnitudes: a furnished office well under a second, a
        // bare concrete box several seconds.
        let t_office = dead.sabine_rt60_s(1_000.0);
        let t_concrete = live.sabine_rt60_s(1_000.0);
        assert!((0.2..1.0).contains(&t_office), "office T60 {t_office}");
        assert!(t_concrete > 3.0, "concrete T60 {t_concrete}");
    }

    #[test]
    fn eyring_is_shorter_than_sabine_and_handles_the_limits() {
        let room = office();
        let f = 1_000.0;
        assert!(room.eyring_rt60_s(f) < room.sabine_rt60_s(f));
        let anechoic = Shoebox::uniform(8.0, 4.0, 2.7, SurfaceMaterial::anechoic()).unwrap();
        assert_eq!(anechoic.eyring_rt60_s(f), 0.0);
        let lossless = Shoebox::uniform(
            8.0,
            4.0,
            2.7,
            SurfaceMaterial::new("none", [0.0; 12]).unwrap(),
        )
        .unwrap();
        assert_eq!(lossless.sabine_rt60_s(f), f64::INFINITY);
        assert_eq!(lossless.eyring_rt60_s(f), f64::INFINITY);
    }
}
