//! # ivc-room — room acoustics for the inaudible-voice-commands pipeline
//!
//! The paper's attack and defense live in real rooms: reflections smear
//! the demodulated baseband, reverberation bends the word-accuracy-vs-
//! distance curves, and walls decide whether a bystander hears the
//! audible leakage at all.  This crate replaces the free-field-only
//! channel with a physical room model:
//!
//! * [`shoebox`] — a rectangular room with one [`material`] per surface
//!   and Sabine/Eyring RT60 estimates.
//! * [`image_source`] — the Allen–Berkley image-source engine: every
//!   specular reflection path up to a configurable bounce order, with
//!   per-surface bounce counts.
//! * [`rir`] — the sparse room impulse response built from those images:
//!   per-tap delay plus a frequency-dependent gain curve (surface
//!   absorption per bounce × occlusion), sampled at the material anchor
//!   frequencies.
//! * [`occlusion`] — line-segment partitions on the floor plan whose
//!   transmission loss grows with frequency, so a wall blocks a 40 kHz
//!   carrier tens of dB harder than audible speech.
//! * [`propagate`] — applies an impulse response to a signal: the direct
//!   path through the exact free-field machinery (aperture-aware
//!   collimation, per-bin absorption — **bit-identical** to free field
//!   when there are no reflections), reflected taps through a banded
//!   sparse convolution.
//! * [`presets`] — named rooms (`Anechoic`, `Office`, `ConferenceRoom`,
//!   `Corridor`, `ThroughDoorway`) that place source, target and
//!   bystander for a concrete scenario.
//!
//! ## What the model captures, and what it does not
//!
//! Image sources reproduce the *early, specular* reflections exactly —
//! the part of a room response that matters most for a demodulated
//! AM baseband and for speech intelligibility metrics.  Truncating at a
//! finite order discards the diffuse late tail, surfaces are treated as
//! angle-independent absorbers, occlusion is a straight-line transmission
//! test (no edge diffraction), and reflected paths lose the array's
//! collimation gain (they leave the beam axis).  RT60 estimates therefore
//! come from the classical Sabine/Eyring formulas, with the image-source
//! decay checked against them in tests rather than used as the reverb
//! tail itself.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod error;
pub mod geometry;
pub mod image_source;
pub mod material;
pub mod occlusion;
pub mod presets;
pub mod propagate;
pub mod rir;
pub mod shoebox;

pub use error::{Result, RoomError};
pub use material::{PartitionMaterial, SurfaceMaterial};
pub use presets::{RoomInstance, RoomPreset};
pub use propagate::propagate_in_room;
pub use rir::{RirTap, RoomImpulseResponse};
pub use shoebox::Shoebox;

/// Commonly used items, re-exported for glob import.
pub mod prelude {
    pub use crate::error::{Result, RoomError};
    pub use crate::material::{PartitionMaterial, SurfaceMaterial};
    pub use crate::occlusion::Occluder;
    pub use crate::presets::{RoomInstance, RoomPreset};
    pub use crate::propagate::propagate_in_room;
    pub use crate::rir::{RirTap, RoomImpulseResponse};
    pub use crate::shoebox::Shoebox;
}
