//! Minimal 3-D points and the 2-D segment-intersection test used by
//! occlusion.

/// A point in room coordinates (metres).  The room occupies
/// `[0, L] × [0, W] × [0, H]` with `z` up.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Point3 {
    /// Along the room's length.
    pub x: f64,
    /// Across the room's width.
    pub y: f64,
    /// Height above the floor.
    pub z: f64,
}

impl Point3 {
    /// Creates a point.
    pub fn new(x: f64, y: f64, z: f64) -> Self {
        Point3 { x, y, z }
    }

    /// Euclidean distance to `other`.
    pub fn distance_to(&self, other: &Point3) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        let dz = self.z - other.z;
        (dx * dx + dy * dy + dz * dz).sqrt()
    }

    /// The floor-plan projection `(x, y)`.
    pub fn floor_plan(&self) -> (f64, f64) {
        (self.x, self.y)
    }
}

/// Sign of the turn `a → b → c` (positive = counter-clockwise).
fn orientation(a: (f64, f64), b: (f64, f64), c: (f64, f64)) -> f64 {
    (b.0 - a.0) * (c.1 - a.1) - (b.1 - a.1) * (c.0 - a.0)
}

fn within_bounding_box(p: (f64, f64), a: (f64, f64), b: (f64, f64)) -> bool {
    p.0 >= a.0.min(b.0) && p.0 <= a.0.max(b.0) && p.1 >= a.1.min(b.1) && p.1 <= a.1.max(b.1)
}

/// `true` when the closed segments `a1–a2` and `b1–b2` intersect,
/// including touching endpoints and collinear overlap (an acoustic path
/// that grazes a wall edge is treated as occluded — the conservative
/// choice for a shadow-zone model).
pub fn segments_intersect(a1: (f64, f64), a2: (f64, f64), b1: (f64, f64), b2: (f64, f64)) -> bool {
    let d1 = orientation(b1, b2, a1);
    let d2 = orientation(b1, b2, a2);
    let d3 = orientation(a1, a2, b1);
    let d4 = orientation(a1, a2, b2);
    if ((d1 > 0.0 && d2 < 0.0) || (d1 < 0.0 && d2 > 0.0))
        && ((d3 > 0.0 && d4 < 0.0) || (d3 < 0.0 && d4 > 0.0))
    {
        return true;
    }
    (d1 == 0.0 && within_bounding_box(a1, b1, b2))
        || (d2 == 0.0 && within_bounding_box(a2, b1, b2))
        || (d3 == 0.0 && within_bounding_box(b1, a1, a2))
        || (d4 == 0.0 && within_bounding_box(b2, a1, a2))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distances_and_projection() {
        let a = Point3::new(0.0, 0.0, 0.0);
        let b = Point3::new(3.0, 4.0, 12.0);
        assert!((a.distance_to(&b) - 13.0).abs() < 1e-12);
        assert_eq!(b.floor_plan(), (3.0, 4.0));
    }

    #[test]
    fn crossing_segments_intersect() {
        assert!(segments_intersect(
            (0.0, 0.0),
            (2.0, 2.0),
            (0.0, 2.0),
            (2.0, 0.0)
        ));
        assert!(!segments_intersect(
            (0.0, 0.0),
            (1.0, 0.0),
            (0.0, 1.0),
            (1.0, 1.0)
        ));
    }

    #[test]
    fn touching_and_collinear_cases_count_as_intersecting() {
        // Endpoint on the other segment.
        assert!(segments_intersect(
            (0.0, 0.0),
            (1.0, 1.0),
            (1.0, 1.0),
            (2.0, 0.0)
        ));
        // Collinear overlap.
        assert!(segments_intersect(
            (0.0, 0.0),
            (2.0, 0.0),
            (1.0, 0.0),
            (3.0, 0.0)
        ));
        // Collinear but disjoint.
        assert!(!segments_intersect(
            (0.0, 0.0),
            (1.0, 0.0),
            (2.0, 0.0),
            (3.0, 0.0)
        ));
    }

    #[test]
    fn parallel_offset_segments_do_not_intersect() {
        assert!(!segments_intersect(
            (0.0, 0.0),
            (5.0, 0.0),
            (0.0, 0.1),
            (5.0, 0.1)
        ));
    }
}
