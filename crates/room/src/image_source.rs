//! The image-source reflection engine (Allen & Berkley, JASA 1979).
//!
//! A rectangular room's specular reflections are exactly the direct paths
//! from an infinite lattice of mirror images of the source.  Mirroring the
//! source across each wall (and mirror images of mirror images, and so on)
//! produces, for every axis, image coordinates
//!
//! ```text
//! x_img = (1 − 2q)·x_s + 2·m·L      q ∈ {0, 1},  m ∈ ℤ
//! ```
//!
//! and the image indexed by `(q, m)` reaches the receiver after
//! `|m − q|` bounces off the wall at `x = 0` and `|m|` bounces off the
//! wall at `x = L` (likewise per axis for `y` and `z`).  The engine
//! enumerates every image whose **total** bounce count is at most
//! `max_order` and records, per image, the path length and the per-surface
//! bounce counts — the raw material from which an impulse-response tap's
//! delay and frequency-dependent gain are computed.
//!
//! Limits inherited from the model: reflections are specular (no
//! scattering), walls are rigid planes with angle-independent absorption,
//! and truncating at `max_order` discards the late tail — the early
//! reflections that smear a demodulated baseband are captured, a full
//! late-field reverb tail is not.

use crate::error::{Result, RoomError};
use crate::geometry::Point3;
use crate::shoebox::{Shoebox, NUM_SURFACES};

/// One propagation path (direct or reflected) from source to receiver.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ImageTap {
    /// Total path length in metres.
    pub path_length_m: f64,
    /// Total number of wall bounces (0 for the direct path).
    pub order: usize,
    /// Bounce count per surface, in [`crate::shoebox::Surface`] order.
    pub surface_counts: [u32; NUM_SURFACES],
}

/// Per-axis image candidates: mirrored coordinate plus the bounce counts
/// against the low (`coord = 0`) and high (`coord = len`) walls.
fn axis_images(source: f64, length: f64, max_order: usize) -> Vec<(f64, u32, u32)> {
    let k = max_order as i64;
    let mut images = Vec::new();
    for q in 0..=1i64 {
        for m in -k..=k {
            let low = (m - q).unsigned_abs() as u32;
            let high = m.unsigned_abs() as u32;
            if (low + high) as usize > max_order {
                continue;
            }
            let coord = (1 - 2 * q) as f64 * source + 2.0 * m as f64 * length;
            images.push((coord, low, high));
        }
    }
    images
}

/// Enumerates every image-source path of total order ≤ `max_order` from
/// `source` to `receiver` inside `room`, sorted by path length (direct
/// path first).
pub fn image_taps(
    room: &Shoebox,
    source: &Point3,
    receiver: &Point3,
    max_order: usize,
) -> Result<Vec<ImageTap>> {
    if max_order > 12 {
        return Err(RoomError::invalid(
            "max_order",
            format!("{max_order} exceeds the supported maximum of 12"),
        ));
    }
    for (name, point) in [("source", source), ("receiver", receiver)] {
        if !room.contains(point, 0.0) {
            return Err(RoomError::invalid(
                "position",
                format!("{name} {point:?} is outside the room"),
            ));
        }
    }
    let xs = axis_images(source.x, room.length_m, max_order);
    let ys = axis_images(source.y, room.width_m, max_order);
    let zs = axis_images(source.z, room.height_m, max_order);
    let mut taps = Vec::new();
    for &(x, x_low, x_high) in &xs {
        let order_x = (x_low + x_high) as usize;
        for &(y, y_low, y_high) in &ys {
            let order_xy = order_x + (y_low + y_high) as usize;
            if order_xy > max_order {
                continue;
            }
            for &(z, z_low, z_high) in &zs {
                let order = order_xy + (z_low + z_high) as usize;
                if order > max_order {
                    continue;
                }
                let image = Point3::new(x, y, z);
                taps.push(ImageTap {
                    path_length_m: image.distance_to(receiver),
                    order,
                    surface_counts: [x_low, x_high, y_low, y_high, z_low, z_high],
                });
            }
        }
    }
    // Deterministic order: by arrival time, ties broken by the bounce
    // pattern so equal-length symmetric paths have a stable order.
    taps.sort_by(|a, b| {
        a.path_length_m
            .total_cmp(&b.path_length_m)
            .then_with(|| a.surface_counts.cmp(&b.surface_counts))
    });
    Ok(taps)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::material::SurfaceMaterial;

    fn room() -> Shoebox {
        Shoebox::uniform(8.0, 4.0, 2.7, SurfaceMaterial::painted_concrete()).unwrap()
    }

    #[test]
    fn validation() {
        let room = room();
        let inside = Point3::new(1.0, 2.0, 1.2);
        let outside = Point3::new(9.0, 2.0, 1.2);
        assert!(image_taps(&room, &inside, &outside, 1).is_err());
        assert!(image_taps(&room, &outside, &inside, 1).is_err());
        assert!(image_taps(&room, &inside, &inside, 13).is_err());
    }

    #[test]
    fn tap_count_grows_with_reflection_order() {
        let room = room();
        let s = Point3::new(1.0, 1.5, 1.2);
        let r = Point3::new(5.0, 2.5, 1.4);
        // Closed-form counts for a shoebox: 1 direct; 6 first-order images
        // (one per wall); 18 second-order (2 per axis plus 12 two-axis
        // combinations).
        let counts: Vec<usize> = (0..=3)
            .map(|k| image_taps(&room, &s, &r, k).unwrap().len())
            .collect();
        assert_eq!(counts[0], 1);
        assert_eq!(counts[1], 7);
        assert_eq!(counts[2], 25);
        assert!(counts[3] > counts[2]);
        for (k, count) in counts.iter().enumerate() {
            let taps = image_taps(&room, &s, &r, k).unwrap();
            assert_eq!(taps.len(), *count);
            assert!(taps.iter().all(|t| t.order <= k));
        }
    }

    #[test]
    fn direct_path_is_first_and_exact() {
        let room = room();
        let s = Point3::new(1.0, 1.5, 1.2);
        let r = Point3::new(5.0, 2.5, 1.4);
        let taps = image_taps(&room, &s, &r, 2).unwrap();
        assert_eq!(taps[0].order, 0);
        assert!((taps[0].path_length_m - s.distance_to(&r)).abs() < 1e-12);
        assert_eq!(taps[0].surface_counts, [0; 6]);
        // Every reflected path is longer than the direct one.
        for tap in &taps[1..] {
            assert!(tap.path_length_m > taps[0].path_length_m);
        }
    }

    #[test]
    fn first_order_path_lengths_match_mirror_geometry() {
        let room = room();
        let s = Point3::new(2.0, 2.0, 1.0);
        let r = Point3::new(6.0, 2.0, 1.0);
        let taps = image_taps(&room, &s, &r, 1).unwrap();
        // Floor bounce: mirror the source to z = −1; path = |(4, 0, 2)|.
        let expected = (16.0f64 + 4.0).sqrt();
        let floor = taps
            .iter()
            .find(|t| t.surface_counts[4] == 1)
            .expect("floor image present");
        assert!((floor.path_length_m - expected).abs() < 1e-12);
        // Ceiling bounce: mirror to z = 2·2.7 − 1 = 4.4; path = |(4, 0, 3.4)|.
        let ceiling = taps
            .iter()
            .find(|t| t.surface_counts[5] == 1)
            .expect("ceiling image present");
        assert!((ceiling.path_length_m - (16.0f64 + 3.4 * 3.4).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn surface_counts_sum_to_the_order() {
        let room = room();
        let s = Point3::new(1.0, 1.5, 1.2);
        let r = Point3::new(5.0, 2.5, 1.4);
        for tap in image_taps(&room, &s, &r, 3).unwrap() {
            let sum: u32 = tap.surface_counts.iter().sum();
            assert_eq!(sum as usize, tap.order);
        }
    }
}
