//! The sparse room impulse response: image-source taps with
//! frequency-dependent gains, ready for the propagation layer.

use crate::error::Result;
use crate::geometry::Point3;
use crate::image_source::image_taps;
use crate::material::{ANCHOR_FREQUENCIES_HZ, NUM_ANCHORS};
use crate::occlusion::{crossed_occluders, occlusion_amplitude_at_anchors, Occluder};
use crate::shoebox::{Shoebox, NUM_SURFACES};

/// One tap of a room impulse response: a propagation path with its length
/// and the amplitude gain it accumulated at walls and partitions.
///
/// The gain curve holds only what the *room* did to the path — surface
/// reflection losses and occlusion — sampled at
/// [`ANCHOR_FREQUENCIES_HZ`].  Spreading over `distance_m` and atmospheric
/// absorption are left to the propagation layer, which computes them
/// per frequency bin exactly as it does for the free-field path.
#[derive(Debug, Clone, PartialEq)]
pub struct RirTap {
    /// Total path length in metres.
    pub distance_m: f64,
    /// Number of wall bounces (0 for the direct path).
    pub order: usize,
    /// Sampled spectral amplitude gain `(frequency_hz, gain)`; empty means
    /// unity (an unobstructed direct path).
    pub gain_curve: Vec<(f64, f64)>,
}

/// A sparse room impulse response between one source and one receiver.
///
/// The first tap is always the direct path; any number of reflected taps
/// follow in order of arrival.  Taps whose gain is identically zero
/// (a bounce off a perfect absorber) are dropped at construction, so an
/// anechoic room reduces to exactly the direct path.
#[derive(Debug, Clone, PartialEq)]
pub struct RoomImpulseResponse {
    /// Physical aperture of the source in metres (collimates the *direct*
    /// path only; reflected paths leave the beam and spread spherically).
    pub aperture_m: f64,
    taps: Vec<RirTap>,
}

impl RoomImpulseResponse {
    /// Builds the impulse response from the image-source model of `room`
    /// between `source` and `receiver`, with reflections up to
    /// `max_order` bounces, occlusion from `occluders`, and a source of
    /// physical aperture `aperture_m` (0 for a point source).
    pub fn image_source(
        room: &Shoebox,
        source: &Point3,
        receiver: &Point3,
        max_order: usize,
        occluders: &[Occluder],
        aperture_m: f64,
    ) -> Result<Self> {
        let images = image_taps(room, source, receiver, max_order)?;
        // Occlusion is evaluated once on the direct floor-plan segment and
        // applied to every tap of this path (see `crate::occlusion`).
        let crossed = crossed_occluders(occluders, source, receiver);
        let occlusion = occlusion_amplitude_at_anchors(&crossed);
        let occluded = !crossed.is_empty();

        let mut taps = Vec::with_capacity(images.len());
        for image in images {
            let mut gains = [0.0f64; NUM_ANCHORS];
            let mut all_zero = true;
            for (i, gain) in gains.iter_mut().enumerate() {
                let mut g = occlusion[i];
                for s in 0..NUM_SURFACES {
                    for _ in 0..image.surface_counts[s] {
                        g *= room.surfaces[s].reflection_amplitude_at_anchor(i);
                    }
                }
                *gain = g;
                if g != 0.0 {
                    all_zero = false;
                }
            }
            if image.order > 0 && all_zero {
                continue;
            }
            // An unobstructed direct path keeps an empty curve: the
            // propagation layer treats it as exactly unity, which is what
            // makes the anechoic room bit-identical to free field.
            let gain_curve = if image.order == 0 && !occluded {
                Vec::new()
            } else {
                ANCHOR_FREQUENCIES_HZ
                    .iter()
                    .zip(gains.iter())
                    .map(|(&f, &g)| (f, g))
                    .collect()
            };
            taps.push(RirTap {
                distance_m: image.path_length_m,
                order: image.order,
                gain_curve,
            });
        }
        Ok(RoomImpulseResponse { aperture_m, taps })
    }

    /// All taps, direct path first, in order of arrival.
    pub fn taps(&self) -> &[RirTap] {
        &self.taps
    }

    /// The direct-path tap.
    pub fn direct(&self) -> &RirTap {
        &self.taps[0]
    }

    /// The reflected taps (everything after the direct path).
    pub fn reflected(&self) -> &[RirTap] {
        &self.taps[1..]
    }

    /// Number of taps, direct path included.
    pub fn num_taps(&self) -> usize {
        self.taps.len()
    }

    /// Estimates the reverberation time at `frequency_hz` from the taps'
    /// energy decay: a least-squares fit of the Schroeder backward
    /// integral (in dB) against arrival time, extrapolated to −60 dB.
    ///
    /// Only surface losses and spreading enter the estimate (no air
    /// absorption), matching what [`Shoebox::sabine_rt60_s`] and
    /// [`Shoebox::eyring_rt60_s`] predict.  Returns `None` when there are
    /// too few reflected taps to fit a slope, or the fit does not decay.
    pub fn energy_decay_rt60_s(
        &self,
        frequency_hz: f64,
        speed_of_sound_m_per_s: f64,
    ) -> Option<f64> {
        let reflected = self.reflected();
        if reflected.len() < 8 {
            return None;
        }
        let energies: Vec<(f64, f64)> = reflected
            .iter()
            .map(|tap| {
                let g = ivc_acoustics::propagation::interpolate_gain_curve(
                    &tap.gain_curve,
                    frequency_hz,
                ) / tap.distance_m.max(1.0);
                (tap.distance_m / speed_of_sound_m_per_s, g * g)
            })
            .collect();
        let total: f64 = energies.iter().map(|(_, e)| e).sum();
        if total <= 0.0 {
            return None;
        }
        // Schroeder backward integration over the discrete taps.  The fit
        // stops at −30 dB (a T30-style estimate): below that the truncated
        // image order makes the integral decay artificially fast.
        let mut remaining = total;
        let mut points = Vec::with_capacity(energies.len());
        for &(t, e) in &energies {
            let level_db = 10.0 * (remaining / total).max(1e-30).log10();
            if level_db >= -30.0 {
                points.push((t, level_db));
            }
            remaining -= e;
        }
        if points.len() < 4 {
            return None;
        }
        // Least-squares slope of decay (dB) vs time (s).
        let n = points.len() as f64;
        let sum_t: f64 = points.iter().map(|(t, _)| t).sum();
        let sum_y: f64 = points.iter().map(|(_, y)| y).sum();
        let sum_tt: f64 = points.iter().map(|(t, _)| t * t).sum();
        let sum_ty: f64 = points.iter().map(|(t, y)| t * y).sum();
        let denom = n * sum_tt - sum_t * sum_t;
        if denom <= 0.0 {
            return None;
        }
        let slope = (n * sum_ty - sum_t * sum_y) / denom;
        if slope >= -1e-9 {
            return None;
        }
        Some(-60.0 / slope)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::material::{PartitionMaterial, SurfaceMaterial};

    fn positions() -> (Point3, Point3) {
        (Point3::new(1.0, 1.5, 1.2), Point3::new(5.0, 2.5, 1.4))
    }

    #[test]
    fn anechoic_room_reduces_to_the_direct_path() {
        let room = Shoebox::uniform(8.0, 4.0, 2.7, SurfaceMaterial::anechoic()).unwrap();
        let (s, r) = positions();
        let rir = RoomImpulseResponse::image_source(&room, &s, &r, 3, &[], 0.5).unwrap();
        assert_eq!(rir.num_taps(), 1);
        assert_eq!(rir.direct().order, 0);
        assert!(rir.direct().gain_curve.is_empty());
        assert!(rir.reflected().is_empty());
        assert_eq!(rir.aperture_m, 0.5);
    }

    #[test]
    fn reflective_room_keeps_every_image() {
        let room = Shoebox::uniform(8.0, 4.0, 2.7, SurfaceMaterial::painted_concrete()).unwrap();
        let (s, r) = positions();
        let rir = RoomImpulseResponse::image_source(&room, &s, &r, 2, &[], 0.0).unwrap();
        assert_eq!(rir.num_taps(), 25);
        // Higher-order taps carry smaller surface gains at every anchor.
        let first_bounce = &rir.reflected()[0];
        assert_eq!(first_bounce.gain_curve.len(), NUM_ANCHORS);
        for &(_, g) in &first_bounce.gain_curve {
            assert!(g > 0.9, "one concrete bounce keeps most amplitude: {g}");
        }
    }

    #[test]
    fn mixed_materials_attenuate_reflections_differently() {
        // Carpet floor vs concrete ceiling: the floor bounce must be much
        // weaker than the ceiling bounce at high frequency.
        let room = Shoebox::new(
            8.0,
            4.0,
            2.7,
            [
                SurfaceMaterial::painted_concrete(),
                SurfaceMaterial::painted_concrete(),
                SurfaceMaterial::painted_concrete(),
                SurfaceMaterial::painted_concrete(),
                SurfaceMaterial::carpet_on_concrete(),
                SurfaceMaterial::painted_concrete(),
            ],
        )
        .unwrap();
        let (s, r) = positions();
        let rir = RoomImpulseResponse::image_source(&room, &s, &r, 1, &[], 0.0).unwrap();
        let gain_at = |tap: &RirTap, f: f64| {
            ivc_acoustics::propagation::interpolate_gain_curve(&tap.gain_curve, f)
        };
        let floor = rir.reflected().iter().find(|t| {
            // The floor image is below: shortest vertical bounce from two
            // points at ~1.2-1.4 m height in a 2.7 m room.
            gain_at(t, 32_000.0) < 0.7
        });
        assert!(
            floor.is_some(),
            "carpet bounce should be heavily attenuated"
        );
    }

    #[test]
    fn occlusion_attenuates_every_tap_of_the_path() {
        let room = Shoebox::uniform(8.0, 4.0, 2.7, SurfaceMaterial::painted_concrete()).unwrap();
        let (s, r) = positions();
        let wall = Occluder::new(
            (3.0, 0.0),
            (3.0, 4.0),
            PartitionMaterial::drywall_partition(),
        );
        let clear = RoomImpulseResponse::image_source(&room, &s, &r, 1, &[], 0.0).unwrap();
        let blocked = RoomImpulseResponse::image_source(&room, &s, &r, 1, &[wall], 0.0).unwrap();
        assert!(!blocked.direct().gain_curve.is_empty());
        for (c, b) in clear.taps().iter().zip(blocked.taps().iter()) {
            let f = 1_000.0;
            let gc = ivc_acoustics::propagation::interpolate_gain_curve(&c.gain_curve, f);
            let gb = ivc_acoustics::propagation::interpolate_gain_curve(&b.gain_curve, f);
            assert!(gb < gc * 0.05, "tap at {} m: {gb} vs {gc}", c.distance_m);
        }
    }

    #[test]
    fn energy_decay_matches_the_eyring_estimate() {
        // A uniformly half-absorbent room decays ~3 dB per bounce, so the
        // order-6 image set covers the whole T30 fit range; compare at
        // 1 kHz where air absorption (which the tap estimate deliberately
        // excludes) is negligible.
        let half = SurfaceMaterial::new("half absorber", [0.5; NUM_ANCHORS]).unwrap();
        let room = Shoebox::uniform(6.0, 5.0, 3.0, half).unwrap();
        let (s, r) = (Point3::new(1.3, 1.9, 1.2), Point3::new(4.1, 3.2, 1.5));
        let rir = RoomImpulseResponse::image_source(&room, &s, &r, 6, &[], 0.0).unwrap();
        let measured = rir
            .energy_decay_rt60_s(1_000.0, 343.0)
            .expect("fit succeeds");
        let eyring = room.eyring_rt60_s(1_000.0);
        assert!(
            measured > eyring * 0.5 && measured < eyring * 2.0,
            "decay-fit T60 {measured} vs Eyring {eyring}"
        );
    }
}
