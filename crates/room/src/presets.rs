//! Named room presets and their scenario-ready instantiation.
//!
//! A preset fixes a room's dimensions, materials, occluders and reflection
//! order; [`RoomPreset::instantiate`] then places the source, target
//! microphone and bystander for a concrete scenario (source-to-target
//! distance, source-to-bystander distance) and validates that everything
//! fits inside the box.
//!
//! Layout convention: the room's long axis is `x`; the source sits near
//! the `x = 0` wall at `(source_x, W/2, 1.2)`, the target `distance_m`
//! farther down the axis at the same height, and the bystander stands
//! beside the source (offset in `+y`, or through the partition for
//! [`RoomPreset::ThroughDoorway`]).

use crate::error::{Result, RoomError};
use crate::geometry::Point3;
use crate::material::{PartitionMaterial, SurfaceMaterial};
use crate::occlusion::Occluder;
use crate::rir::RoomImpulseResponse;
use crate::shoebox::Shoebox;

/// Height (m) at which sources, microphones and bystander ears sit.
const DEVICE_HEIGHT_M: f64 = 1.2;
/// Clearance kept between the target and the far wall.
const TARGET_MARGIN_M: f64 = 0.5;
/// Clearance kept between the bystander and any surface.
const BYSTANDER_MARGIN_M: f64 = 0.05;

/// A named room scenario.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RoomPreset {
    /// Perfectly absorbent walls: the direct path only.  Produces
    /// bit-identical results to the free-field (no-room) pipeline — the
    /// regression anchor for everything else.
    Anechoic,
    /// A furnished office: gypsum walls, carpet, acoustic-tile ceiling.
    /// Mild early reflections, short reverberation.
    Office,
    /// A large, live meeting room: glass and concrete walls, hardwood
    /// floor.  Strong reflections and a long reverberant tail.
    ConferenceRoom,
    /// A long concrete corridor: very live, strongly guided reflections.
    Corridor,
    /// The attacker stands outside an office and fires through an open
    /// doorway; the bystander is inside, behind the drywall partition.
    /// The ultrasonic path to the device is clear, the audible leak to
    /// the bystander is through the wall.
    ThroughDoorway,
}

impl RoomPreset {
    /// All presets, in a stable order.
    pub const ALL: [RoomPreset; 5] = [
        RoomPreset::Anechoic,
        RoomPreset::Office,
        RoomPreset::ConferenceRoom,
        RoomPreset::Corridor,
        RoomPreset::ThroughDoorway,
    ];

    /// Stable token used in JSON archives.
    pub fn token(&self) -> &'static str {
        match self {
            RoomPreset::Anechoic => "anechoic",
            RoomPreset::Office => "office",
            RoomPreset::ConferenceRoom => "conference_room",
            RoomPreset::Corridor => "corridor",
            RoomPreset::ThroughDoorway => "through_doorway",
        }
    }

    /// Parses an archive token back into a preset.
    pub fn from_token(token: &str) -> Option<RoomPreset> {
        RoomPreset::ALL.into_iter().find(|p| p.token() == token)
    }

    /// Maximum image-source reflection order used for this preset.
    pub fn max_order(&self) -> usize {
        match self {
            RoomPreset::Anechoic => 0,
            RoomPreset::Office | RoomPreset::ThroughDoorway => 2,
            RoomPreset::ConferenceRoom | RoomPreset::Corridor => 3,
        }
    }

    /// The preset's room box.
    pub fn room(&self) -> Shoebox {
        let gypsum = SurfaceMaterial::gypsum_wall();
        let concrete = SurfaceMaterial::painted_concrete();
        match self {
            // Oversized so that every room-scale scenario fits (targets
            // out to 58.5 m given the 1 m source offset and 0.5 m wall
            // clearance); the walls never reflect anyway.  Past that
            // bound `instantiate` errors even though the free-field
            // (`room: None`) channel would still accept the distance —
            // the documented geometry checks apply to every preset.
            RoomPreset::Anechoic => Shoebox::uniform(60.0, 20.0, 20.0, SurfaceMaterial::anechoic()),
            RoomPreset::Office => Shoebox::new(
                8.0,
                4.0,
                2.7,
                [
                    gypsum,
                    gypsum,
                    gypsum,
                    gypsum,
                    SurfaceMaterial::carpet_on_concrete(),
                    SurfaceMaterial::acoustic_ceiling_tile(),
                ],
            ),
            RoomPreset::ConferenceRoom => Shoebox::new(
                12.0,
                7.0,
                3.2,
                [
                    concrete,
                    SurfaceMaterial::glass_window(),
                    concrete,
                    SurfaceMaterial::glass_window(),
                    SurfaceMaterial::hardwood_floor(),
                    gypsum,
                ],
            ),
            RoomPreset::Corridor => Shoebox::new(
                30.0,
                2.2,
                2.6,
                [
                    concrete,
                    concrete,
                    concrete,
                    concrete,
                    SurfaceMaterial::hardwood_floor(),
                    concrete,
                ],
            ),
            RoomPreset::ThroughDoorway => Shoebox::new(
                10.0,
                5.0,
                2.7,
                [
                    gypsum,
                    gypsum,
                    gypsum,
                    gypsum,
                    SurfaceMaterial::carpet_on_concrete(),
                    SurfaceMaterial::acoustic_ceiling_tile(),
                ],
            ),
        }
        .expect("preset dimensions are valid")
    }

    /// The preset's partitions (only [`RoomPreset::ThroughDoorway`] has
    /// one: a drywall wall at `x = 1.6` with a 0.8 m doorway gap).
    pub fn occluders(&self) -> Vec<Occluder> {
        match self {
            RoomPreset::ThroughDoorway => {
                let drywall = PartitionMaterial::drywall_partition();
                vec![
                    Occluder::new((1.6, 0.0), (1.6, 2.0), drywall),
                    Occluder::new((1.6, 2.8), (1.6, 5.0), drywall),
                ]
            }
            _ => Vec::new(),
        }
    }

    /// Places source, target and bystander for a concrete scenario and
    /// validates the geometry.
    pub fn instantiate(&self, distance_m: f64, bystander_distance_m: f64) -> Result<RoomInstance> {
        if !(distance_m > 0.0) || !distance_m.is_finite() {
            return Err(RoomError::invalid(
                "distance_m",
                format!("{distance_m} must be positive and finite"),
            ));
        }
        if !(bystander_distance_m > 0.0) || !bystander_distance_m.is_finite() {
            return Err(RoomError::invalid(
                "bystander_distance_m",
                format!("{bystander_distance_m} must be positive and finite"),
            ));
        }
        let room = self.room();
        let source = Point3::new(1.0, room.width_m / 2.0, DEVICE_HEIGHT_M);
        let target = Point3::new(source.x + distance_m, source.y, DEVICE_HEIGHT_M);
        if !room.contains(&target, TARGET_MARGIN_M) {
            return Err(RoomError::invalid(
                "distance_m",
                format!(
                    "target at {distance_m} m does not fit a {} m {} (needs {TARGET_MARGIN_M} m \
                     wall clearance)",
                    room.length_m,
                    self.token()
                ),
            ));
        }
        // The doorway layout additionally requires the target past the
        // partition: the scenario is "through" the doorway, not in front
        // of it.  The bystander walks diagonally through the partition
        // (direction (0.8, 0.6)); elsewhere they stand beside the source.
        let bystander = match self {
            RoomPreset::ThroughDoorway => {
                if target.x <= 1.8 {
                    return Err(RoomError::invalid(
                        "distance_m",
                        format!(
                            "{distance_m} m leaves the target in front of the doorway \
                             partition at x = 1.6 (need at least 1.0 m)"
                        ),
                    ));
                }
                Point3::new(
                    source.x + 0.8 * bystander_distance_m,
                    source.y + 0.6 * bystander_distance_m,
                    DEVICE_HEIGHT_M,
                )
            }
            _ => Point3::new(source.x, source.y + bystander_distance_m, DEVICE_HEIGHT_M),
        };
        if !room.contains(&bystander, BYSTANDER_MARGIN_M) {
            return Err(RoomError::invalid(
                "bystander_distance_m",
                format!(
                    "bystander at {bystander_distance_m} m does not fit the {} preset",
                    self.token()
                ),
            ));
        }
        Ok(RoomInstance {
            preset: *self,
            room,
            source,
            target,
            bystander,
            occluders: self.occluders(),
            max_order: self.max_order(),
        })
    }
}

/// A preset placed for one concrete scenario: the room plus the three
/// positions every trial needs.
#[derive(Debug, Clone, PartialEq)]
pub struct RoomInstance {
    /// The preset this instance came from.
    pub preset: RoomPreset,
    /// The room box.
    pub room: Shoebox,
    /// The attacking array / talker position.
    pub source: Point3,
    /// The victim microphone position.
    pub target: Point3,
    /// The bystander's ear position.
    pub bystander: Point3,
    /// Partitions on the floor plan.
    pub occluders: Vec<Occluder>,
    /// Image-source reflection order.
    pub max_order: usize,
}

impl RoomInstance {
    /// Impulse response from the source to the target microphone, for a
    /// source of physical aperture `aperture_m` (the array's length; 0
    /// for a point source).
    pub fn target_rir(&self, aperture_m: f64) -> Result<RoomImpulseResponse> {
        RoomImpulseResponse::image_source(
            &self.room,
            &self.source,
            &self.target,
            self.max_order,
            &self.occluders,
            aperture_m,
        )
    }

    /// Impulse response from the source to the bystander's ear (the
    /// bystander stands off-axis, so the source is a point source here).
    pub fn bystander_rir(&self) -> Result<RoomImpulseResponse> {
        RoomImpulseResponse::image_source(
            &self.room,
            &self.source,
            &self.bystander,
            self.max_order,
            &self.occluders,
            0.0,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokens_round_trip() {
        for preset in RoomPreset::ALL {
            assert_eq!(RoomPreset::from_token(preset.token()), Some(preset));
        }
        assert_eq!(RoomPreset::from_token("cathedral"), None);
    }

    #[test]
    fn presets_instantiate_at_standard_distances() {
        for preset in RoomPreset::ALL {
            for distance in [1.0, 2.0, 4.0, 6.0] {
                let instance = preset
                    .instantiate(distance, 1.0)
                    .unwrap_or_else(|e| panic!("{} at {distance} m: {e}", preset.token()));
                assert!((instance.source.distance_to(&instance.target) - distance).abs() < 1e-9);
                assert!(
                    (instance.source.distance_to(&instance.bystander) - 1.0).abs() < 1e-9,
                    "{}: bystander distance",
                    preset.token()
                );
            }
        }
    }

    #[test]
    fn geometry_violations_are_rejected() {
        assert!(RoomPreset::Office.instantiate(0.0, 1.0).is_err());
        assert!(RoomPreset::Office.instantiate(2.0, -1.0).is_err());
        // Office is 8 m long: a 7 m throw cannot keep its wall clearance.
        assert!(RoomPreset::Office.instantiate(7.0, 1.0).is_err());
        assert!(RoomPreset::Corridor.instantiate(7.0, 1.0).is_ok());
        // The corridor is 2.2 m wide: a 2 m bystander offset hits the wall.
        assert!(RoomPreset::Corridor.instantiate(2.0, 2.0).is_err());
        // The doorway preset needs the target past the partition.
        assert!(RoomPreset::ThroughDoorway.instantiate(0.5, 1.0).is_err());
        assert!(RoomPreset::ThroughDoorway.instantiate(3.0, 1.0).is_ok());
    }

    #[test]
    fn doorway_occludes_the_bystander_but_not_the_target() {
        let instance = RoomPreset::ThroughDoorway.instantiate(3.0, 1.0).unwrap();
        let target = instance.target_rir(0.3).unwrap();
        let bystander = instance.bystander_rir().unwrap();
        // Target path goes through the doorway gap: unity direct curve.
        assert!(target.direct().gain_curve.is_empty());
        // Bystander path crosses the partition: attenuated direct curve.
        let curve = &bystander.direct().gain_curve;
        assert!(!curve.is_empty());
        assert!(curve.iter().all(|&(_, g)| g < 0.2));
    }

    #[test]
    fn anechoic_instance_has_no_reflections() {
        let instance = RoomPreset::Anechoic.instantiate(5.0, 1.0).unwrap();
        assert_eq!(instance.target_rir(1.8).unwrap().num_taps(), 1);
        assert_eq!(instance.bystander_rir().unwrap().num_taps(), 1);
    }

    #[test]
    fn livelier_presets_have_longer_rt60() {
        let f = 1_000.0;
        let office = RoomPreset::Office.room().sabine_rt60_s(f);
        let conference = RoomPreset::ConferenceRoom.room().sabine_rt60_s(f);
        let corridor = RoomPreset::Corridor.room().sabine_rt60_s(f);
        assert!(office < 0.8, "office T60 {office}");
        assert!(conference > 2.0 * office, "conference T60 {conference}");
        assert!(corridor > office, "corridor T60 {corridor}");
        assert_eq!(RoomPreset::Anechoic.room().eyring_rt60_s(f), 0.0);
    }
}
