//! Multipath propagation of a [`Signal`] through a room impulse response.
//!
//! The direct path goes through the exact free-field machinery
//! ([`ivc_acoustics::propagation::propagate_with_gain_curve`]): per-bin
//! spreading (aperture-aware, so a collimated ultrasonic beam keeps its
//! Rayleigh-distance reach), per-bin atmospheric absorption, whole-sample
//! delay.  With no reflections and no occlusion this *is* the free-field
//! result, bit for bit.
//!
//! Reflected taps are applied with a banded sparse convolution: the source
//! spectrum is split into the bands around the material anchor
//! frequencies, each band's waveform is convolved against the taps'
//! delay/gain lists (gains evaluated at the band's anchor: surface losses
//! × occlusion × air absorption over the path × spherical spreading), and
//! the bands are summed.  Bands carrying negligible energy are skipped —
//! an AM-ultrasound drive only occupies a few bands, so the work stays
//! close to one FFT plus a handful of sparse convolutions.
//!
//! Reflected paths are treated as point sources (no collimation): a beam
//! that bounced off a wall has left the array's axis, so the `1/r` law
//! over the full path length is the right spreading model.

use crate::error::Result;
use crate::material::ANCHOR_FREQUENCIES_HZ;
use crate::rir::RoomImpulseResponse;
use ivc_acoustics::absorption::absorption_gain;
use ivc_acoustics::environment::AirEnvironment;
use ivc_acoustics::propagation::{
    interpolate_gain_curve, propagate_with_gain_curve, propagation_delay_samples,
};
use ivc_dsp::complex::Complex;
use ivc_dsp::fft::{bin_frequency, fft_in_place, next_power_of_two};
use ivc_dsp::signal::Signal;
use ivc_dsp::sparse::{convolve_sparse_into, SparseTap, SparseTaps};

/// Relative band-power threshold below which a band's reflections are
/// skipped (the band carries no meaningful signal energy).
const BAND_POWER_SKIP_FRACTION: f64 = 1e-24;

/// Band edges around the anchor frequencies: band `i` covers the
/// frequencies closest (in log-frequency) to anchor `i`.
fn band_bounds(i: usize) -> (f64, f64) {
    let anchors = &ANCHOR_FREQUENCIES_HZ;
    let lo = if i == 0 {
        0.0
    } else {
        (anchors[i - 1] * anchors[i]).sqrt()
    };
    let hi = if i + 1 == anchors.len() {
        f64::INFINITY
    } else {
        (anchors[i] * anchors[i + 1]).sqrt()
    };
    (lo, hi)
}

/// Propagates `source_at_1m` (a pressure waveform referenced to 1 m from
/// the source) through every path of `rir`, returning the pressure at the
/// receiver.
///
/// The output is long enough for the latest reflection's tail; for a
/// direct-path-only response it is exactly the free-field result.
pub fn propagate_in_room(
    source_at_1m: &Signal,
    rir: &RoomImpulseResponse,
    env: &AirEnvironment,
) -> Result<Signal> {
    let direct = rir.direct();
    let direct_signal = propagate_with_gain_curve(
        source_at_1m,
        direct.distance_m,
        rir.aperture_m,
        &direct.gain_curve,
        env,
    )?;
    let reflected = rir.reflected();
    if reflected.is_empty() {
        return Ok(direct_signal);
    }

    let fs = source_at_1m.sample_rate_hz();
    let len = source_at_1m.len();
    // Delay rounding is owned by the acoustics layer, so reflected taps
    // share the direct path's exact time axis.
    let delay_of = |distance_m: f64| propagation_delay_samples(distance_m, fs, env);
    let max_delay = reflected
        .iter()
        .map(|t| delay_of(t.distance_m))
        .max()
        .expect("reflected is non-empty");
    let mut out = direct_signal.into_samples();
    out.resize(out.len().max(len + max_delay), 0.0);

    // One forward FFT; each active band re-uses it via a masked inverse.
    let n = next_power_of_two(len);
    let mut spectrum = vec![Complex::ZERO; n];
    for (slot, &x) in spectrum.iter_mut().zip(source_at_1m.samples().iter()) {
        *slot = Complex::from_real(x);
    }
    fft_in_place(&mut spectrum, false)?;
    let total_power: f64 = spectrum.iter().map(|v| v.re * v.re + v.im * v.im).sum();

    let mut buffer: Vec<Complex> = Vec::with_capacity(n);
    let mut band_time: Vec<f64> = Vec::with_capacity(len);
    let mut contribution: Vec<f64> = Vec::new();

    for (band, &anchor_hz) in ANCHOR_FREQUENCIES_HZ.iter().enumerate() {
        let (lo, hi) = band_bounds(band);
        let in_band = |k: usize| {
            let f = bin_frequency(k, n, fs).abs();
            f >= lo && f < hi
        };
        let band_power: f64 = spectrum
            .iter()
            .enumerate()
            .filter(|&(k, _)| in_band(k))
            .map(|(_, v)| v.re * v.re + v.im * v.im)
            .sum();
        if band_power <= total_power * BAND_POWER_SKIP_FRACTION {
            continue;
        }

        // Per-tap gain at this band's anchor: what the walls did, what the
        // air does over the path, and spherical spreading (clamped at the
        // 1 m reference, matching the free-field convention).
        let mut taps = Vec::with_capacity(reflected.len());
        for tap in reflected {
            let surface = interpolate_gain_curve(&tap.gain_curve, anchor_hz);
            let air = absorption_gain(anchor_hz, tap.distance_m, env)?;
            let spreading = (1.0 / tap.distance_m).min(1.0);
            taps.push(SparseTap {
                delay_samples: delay_of(tap.distance_m),
                gain: surface * air * spreading,
            });
        }
        let taps = SparseTaps::new(taps)?;

        // The masked inverse reuses one complex workspace and one
        // convolution output buffer across bands: memcpy + in-place ops
        // instead of a fresh allocation per band, with identical numerics.
        buffer.clear();
        buffer.extend_from_slice(&spectrum);
        for (k, value) in buffer.iter_mut().enumerate() {
            if !in_band(k) {
                *value = Complex::ZERO;
            }
        }
        fft_in_place(&mut buffer, true)?;
        band_time.clear();
        band_time.extend(buffer.iter().take(len).map(|v| v.re));
        let band_signal = Signal::new(std::mem::take(&mut band_time), fs)?;
        convolve_sparse_into(&band_signal, &taps, &mut contribution)?;
        band_time = band_signal.into_samples();
        for (o, &x) in out.iter_mut().zip(contribution.iter()) {
            *o += x;
        }
    }
    Ok(Signal::new(out, fs)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::Point3;
    use crate::material::SurfaceMaterial;
    use crate::shoebox::Shoebox;
    use ivc_acoustics::propagation::propagate_from_aperture;
    use ivc_acoustics::spl::waveform_spl_db;

    fn tone(freq: f64, fs: f64) -> Signal {
        Signal::tone(freq, 0.5, 0.1, fs).unwrap()
    }

    fn rir_between(
        material: SurfaceMaterial,
        order: usize,
        aperture_m: f64,
    ) -> RoomImpulseResponse {
        let room = Shoebox::uniform(8.0, 4.0, 2.7, material).unwrap();
        let s = Point3::new(1.0, 2.0, 1.2);
        let r = Point3::new(5.0, 2.0, 1.2);
        RoomImpulseResponse::image_source(&room, &s, &r, order, &[], aperture_m).unwrap()
    }

    #[test]
    fn anechoic_room_is_bit_identical_to_free_field() {
        let env = AirEnvironment::default();
        let signal = tone(40_000.0, 192_000.0);
        let rir = rir_between(SurfaceMaterial::anechoic(), 3, 0.5);
        let in_room = propagate_in_room(&signal, &rir, &env).unwrap();
        let free = propagate_from_aperture(&signal, rir.direct().distance_m, 0.5, &env).unwrap();
        assert_eq!(in_room.samples(), free.samples());
    }

    #[test]
    fn reflections_add_energy_and_a_tail() {
        let env = AirEnvironment::default();
        let signal = tone(1_000.0, 48_000.0);
        let dead = rir_between(SurfaceMaterial::anechoic(), 2, 0.0);
        let live = rir_between(SurfaceMaterial::painted_concrete(), 2, 0.0);
        let direct_only = propagate_in_room(&signal, &dead, &env).unwrap();
        let reverberant = propagate_in_room(&signal, &live, &env).unwrap();
        // The reverberant output lasts longer (the latest image's tail)…
        assert!(reverberant.len() > direct_only.len());
        // …and carries more energy (25 in-phase-ish images of a concrete
        // box add several dB on top of the direct path).
        let direct_spl = waveform_spl_db(direct_only.samples());
        let room_spl = waveform_spl_db(&reverberant.samples()[..direct_only.len()]);
        assert!(
            room_spl > direct_spl + 1.0,
            "reverberant {room_spl} dB vs direct {direct_spl} dB"
        );
    }

    #[test]
    fn band_gains_respect_the_materials() {
        // Carpet absorbs 32 kHz reflections far harder than 1 kHz ones:
        // the energy the room adds on top of the direct path must be much
        // larger for the audible tone than for the ultrasonic one.
        let env = AirEnvironment::default();
        let fs = 192_000.0;
        let carpet = rir_between(SurfaceMaterial::carpet_on_concrete(), 2, 0.0);
        let dead = rir_between(SurfaceMaterial::anechoic(), 2, 0.0);
        let energy = |sig: &Signal| -> f64 { sig.samples().iter().map(|x| x * x).sum() };
        let added_for = |freq: f64| {
            let signal = tone(freq, fs);
            let in_room = energy(&propagate_in_room(&signal, &carpet, &env).unwrap());
            let direct = energy(&propagate_in_room(&signal, &dead, &env).unwrap());
            in_room / direct - 1.0
        };
        let audible = added_for(1_000.0);
        let ultrasonic = added_for(32_000.0);
        assert!(audible > 0.05, "audible reflections add energy: {audible}");
        assert!(
            audible > 3.0 * ultrasonic.max(0.0),
            "added energy: audible {audible} vs ultrasonic {ultrasonic}"
        );
    }

    #[test]
    fn silent_bands_are_skipped_without_changing_the_result() {
        // A pure tone occupies one band; the other eleven are skipped.
        // The result must still contain the reflections of that band.
        let env = AirEnvironment::default();
        let signal = tone(1_000.0, 48_000.0);
        let rir = rir_between(SurfaceMaterial::painted_concrete(), 1, 0.0);
        let out = propagate_in_room(&signal, &rir, &env).unwrap();
        let expected_len = signal.len()
            + (rir.reflected().last().unwrap().distance_m / env.speed_of_sound_m_per_s() * 48_000.0)
                .round() as usize;
        assert_eq!(out.len(), expected_len);
    }
}
