//! # ivc-speech — the voice substrate
//!
//! The paper's evaluation asks one question of every recording: *would the
//! victim's speech recogniser accept this as the intended voice command?*
//! Reproducing that without the proprietary recognisers (Google Assistant,
//! Alexa) requires two things, both provided here:
//!
//! 1. **A voice-command generator** — a small formant synthesiser
//!    ([`formant`], [`phoneme`], [`synthesis`]) that renders the paper's
//!    commands ("OK Google, take a picture", "Alexa, add milk to my shopping
//!    list", …) as waveforms with the spectro-temporal structure of voiced
//!    speech: a fundamental with harmonics, formant resonances, noise bursts
//!    for fricatives and stops, and word-level timing ([`commands`]).
//! 2. **A recogniser stand-in** — an MFCC front-end ([`mfcc`]), an
//!    energy-based voice-activity detector ([`vad`]) and a dynamic
//!    time-warping template matcher ([`dtw`], [`recognizer`]) that scores a
//!    recording against each known command and reports per-word accuracy.
//!    Its absolute accuracy is irrelevant; what matters is that it degrades
//!    with the same channel impairments (band-limiting, distortion, noise)
//!    that degrade a production recogniser, so accuracy-versus-distance
//!    curves keep their shape.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod commands;
pub mod dtw;
pub mod error;
pub mod formant;
pub mod metrics;
pub mod mfcc;
pub mod phoneme;
pub mod prosody;
pub mod recognizer;
pub mod synthesis;
pub mod vad;

pub use cache::{TalkerKey, UtteranceCache};
pub use commands::{CommandId, VoiceCommand};
pub use error::{Result, SpeechError};
pub use recognizer::{RecognitionOutcome, Recognizer, RecognizerConfig};
pub use synthesis::{SpeakerProfile, Synthesizer};

/// Commonly used items, re-exported for glob import.
pub mod prelude {
    pub use crate::commands::{CommandId, VoiceCommand};
    pub use crate::error::{Result, SpeechError};
    pub use crate::mfcc::MfccConfig;
    pub use crate::recognizer::{RecognitionOutcome, Recognizer, RecognizerConfig};
    pub use crate::synthesis::{SpeakerProfile, Synthesizer};
}
