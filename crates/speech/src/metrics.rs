//! Recognition metrics: edit distance, word error rate and word accuracy.

/// Levenshtein edit distance between two word sequences.
pub fn edit_distance(reference: &[&str], hypothesis: &[&str]) -> usize {
    let n = reference.len();
    let m = hypothesis.len();
    let mut dp = vec![vec![0usize; m + 1]; n + 1];
    for (i, row) in dp.iter_mut().enumerate() {
        row[0] = i;
    }
    for (j, cell) in dp[0].iter_mut().enumerate() {
        *cell = j;
    }
    for i in 1..=n {
        for j in 1..=m {
            let substitution_cost = usize::from(reference[i - 1] != hypothesis[j - 1]);
            dp[i][j] = (dp[i - 1][j] + 1)
                .min(dp[i][j - 1] + 1)
                .min(dp[i - 1][j - 1] + substitution_cost);
        }
    }
    dp[n][m]
}

/// Word error rate: edit distance divided by the reference length.
/// Returns 0 when both sequences are empty.
pub fn word_error_rate(reference: &[&str], hypothesis: &[&str]) -> f64 {
    if reference.is_empty() {
        return if hypothesis.is_empty() { 0.0 } else { 1.0 };
    }
    edit_distance(reference, hypothesis) as f64 / reference.len() as f64
}

/// Word accuracy: `max(0, 1 - WER)`.
pub fn word_accuracy(reference: &[&str], hypothesis: &[&str]) -> f64 {
    (1.0 - word_error_rate(reference, hypothesis)).max(0.0)
}

/// Aggregates a set of boolean trial outcomes into a success rate in `[0, 1]`.
pub fn success_rate(outcomes: &[bool]) -> f64 {
    if outcomes.is_empty() {
        return 0.0;
    }
    outcomes.iter().filter(|&&b| b).count() as f64 / outcomes.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edit_distance_cases() {
        assert_eq!(edit_distance(&[], &[]), 0);
        assert_eq!(edit_distance(&["a"], &[]), 1);
        assert_eq!(edit_distance(&[], &["a"]), 1);
        assert_eq!(edit_distance(&["ok", "google"], &["ok", "google"]), 0);
        assert_eq!(edit_distance(&["ok", "google"], &["ok", "giggle"]), 1);
        assert_eq!(
            edit_distance(&["take", "a", "picture"], &["take", "picture"]),
            1
        );
        assert_eq!(
            edit_distance(&["alexa", "add", "milk"], &["ok", "google", "call", "mom"]),
            4
        );
    }

    #[test]
    fn wer_and_accuracy() {
        let reference = ["ok", "google", "take", "a", "picture"];
        assert_eq!(word_error_rate(&reference, &reference), 0.0);
        assert_eq!(word_accuracy(&reference, &reference), 1.0);
        let hyp = ["ok", "google", "take", "picture"];
        assert!((word_error_rate(&reference, &hyp) - 0.2).abs() < 1e-12);
        assert!((word_accuracy(&reference, &hyp) - 0.8).abs() < 1e-12);
        // Catastrophic hypothesis clamps to zero accuracy.
        let garbage = ["x", "y", "z", "w", "v", "u", "t", "s"];
        assert_eq!(word_accuracy(&reference, &garbage), 0.0);
        assert_eq!(word_error_rate(&[], &[]), 0.0);
        assert_eq!(word_error_rate(&[], &["a"]), 1.0);
    }

    #[test]
    fn success_rate_aggregation() {
        assert_eq!(success_rate(&[]), 0.0);
        assert_eq!(success_rate(&[true, true, false, false]), 0.5);
        assert_eq!(success_rate(&[true; 50]), 1.0);
        let mut outcomes = vec![true; 40];
        outcomes.extend(vec![false; 10]);
        assert!((success_rate(&outcomes) - 0.8).abs() < 1e-12);
    }
}
