//! The template-matching recogniser that stands in for Google Assistant /
//! Alexa in the evaluation.
//!
//! Templates are the corpus commands rendered by the canonical synthetic
//! speaker; a recording is accepted when its MFCC sequence DTW-aligns to a
//! template with a small normalised distance, and per-word accuracy is the
//! fraction of the template's words whose aligned path cost stays below a
//! threshold.  The recogniser is intentionally simple — what matters is that
//! its accuracy *degrades monotonically* with band-limiting, distortion and
//! noise, mirroring a production recogniser's behaviour across the attack
//! distance sweep.

use crate::commands::{corpus, CommandId, VoiceCommand};
use crate::dtw::{align_with_costs, cost_matrix};
use crate::error::{Result, SpeechError};
use crate::mfcc::{mfcc, MfccConfig, MfccFrames};
use crate::synthesis::{SpeakerProfile, Synthesizer, Utterance};
use crate::vad::{detect_speech, VadConfig};
use ivc_dsp::resample::resample;
use ivc_dsp::signal::Signal;

/// Configuration of the recogniser.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RecognizerConfig {
    /// MFCC front-end configuration (shared by templates and queries).
    pub mfcc: MfccConfig,
    /// Internal analysis rate; recordings are resampled to this before
    /// feature extraction.
    pub analysis_rate_hz: f64,
    /// Mean per-frame DTW distance below which a word counts as recognised.
    pub word_distance_threshold: f64,
    /// Overall normalised distance above which a recording is rejected
    /// outright (treated as "not a known command").
    pub rejection_distance: f64,
    /// Minimum fraction of words that must be recognised for the command to
    /// count as accepted end-to-end (the wake word plus most of the payload).
    pub acceptance_word_fraction: f64,
    /// Apply per-utterance cepstral mean normalisation to templates and
    /// queries.  This removes linear-channel mismatch (microphone roll-off,
    /// the demodulation path's spectral tilt) and helps when templates and
    /// recordings come from different recording chains.  Off by default:
    /// `word_distance_threshold` and `rejection_distance` are calibrated for
    /// un-normalised cepstra, and CMN also shrinks the distance gap between
    /// speech and non-speech recordings, so enabling it calls for re-tuned
    /// thresholds.
    pub cepstral_mean_normalization: bool,
}

impl Default for RecognizerConfig {
    fn default() -> Self {
        RecognizerConfig {
            mfcc: MfccConfig::default(),
            analysis_rate_hz: 16_000.0,
            word_distance_threshold: 11.0,
            rejection_distance: 14.0,
            acceptance_word_fraction: 0.6,
            cepstral_mean_normalization: false,
        }
    }
}

/// A command template: features plus per-word frame ranges.
#[derive(Debug, Clone, PartialEq)]
pub struct CommandTemplate {
    /// The command this template renders.
    pub command: VoiceCommand,
    frames: MfccFrames,
    /// `(start_frame, end_frame)` for each word.
    word_frame_ranges: Vec<(usize, usize)>,
}

/// Outcome of recognising one recording.
#[derive(Debug, Clone, PartialEq)]
pub struct RecognitionOutcome {
    /// The best-matching command, or `None` if every template was rejected.
    pub command: Option<CommandId>,
    /// Normalised DTW distance to the best template.
    pub best_distance: f64,
    /// Normalised DTW distance to the runner-up template.
    pub second_distance: f64,
    /// Fraction of the best template's words recognised.
    pub word_accuracy: f64,
}

impl RecognitionOutcome {
    /// Margin between the best and runner-up distances (larger = more
    /// confident).
    pub fn margin(&self) -> f64 {
        self.second_distance - self.best_distance
    }
}

/// Everything a trial needs from the recogniser about one recording,
/// measured against one expected command — computed from a single prepared
/// query (see [`Recognizer::evaluate`]).
#[derive(Debug, Clone, PartialEq)]
pub struct TrialEvaluation {
    /// Open-set recognition against every enrolled template.
    pub outcome: RecognitionOutcome,
    /// Per-word `(word, recognised)` verdicts against the expected
    /// command's template, in word order.
    pub word_recognition: Vec<(String, bool)>,
    /// Recognised fraction of `word_recognition`.
    pub word_accuracy: f64,
    /// The end-to-end acceptance verdict — **the** acceptance rule (the
    /// expected command must win recognition and enough of its words must
    /// be intelligible); [`Recognizer::command_accepted`] delegates here.
    pub accepted: bool,
}

/// The template-matching recogniser.
#[derive(Debug, Clone, PartialEq)]
pub struct Recognizer {
    config: RecognizerConfig,
    templates: Vec<CommandTemplate>,
}

impl Recognizer {
    /// Creates an empty recogniser with the given configuration.
    pub fn new(config: RecognizerConfig) -> Self {
        Recognizer {
            config,
            templates: Vec::new(),
        }
    }

    /// Creates a recogniser pre-enrolled with the full command corpus,
    /// rendered by the canonical speaker.
    pub fn with_default_corpus() -> Result<Self> {
        let mut recognizer = Recognizer::new(RecognizerConfig::default());
        let synth = Synthesizer::new(48_000.0)?;
        for command in corpus() {
            let utterance = synth.render(&command, &SpeakerProfile::canonical())?;
            recognizer.enroll(&utterance, command)?;
        }
        Ok(recognizer)
    }

    /// Configuration in use.
    pub fn config(&self) -> &RecognizerConfig {
        &self.config
    }

    /// Number of enrolled templates.
    pub fn num_templates(&self) -> usize {
        self.templates.len()
    }

    /// Enrolls `utterance` as the template for `command`.
    pub fn enroll(&mut self, utterance: &Utterance, command: VoiceCommand) -> Result<()> {
        if utterance.word_boundaries.len() != command.num_words() {
            return Err(SpeechError::invalid(
                "utterance",
                "word boundary count does not match the command's word count",
            ));
        }
        let prepared = self.prepare(&utterance.signal)?;
        let frames = self.features(&prepared)?;
        // Word boundaries are expressed in the original signal's time base;
        // preparation trims leading silence, so shift accordingly.
        let trim_offset = self.leading_trim_s(&utterance.signal)?;
        let word_frame_ranges = utterance
            .word_boundaries
            .iter()
            .map(|b| {
                let start = frames.frame_at_time((b.start_s - trim_offset).max(0.0));
                let end = frames
                    .frame_at_time((b.end_s - trim_offset).max(0.0))
                    .max(start + 1);
                (start, end)
            })
            .collect();
        self.templates.push(CommandTemplate {
            command,
            frames,
            word_frame_ranges,
        });
        Ok(())
    }

    /// Recognises a recording against all enrolled templates.
    pub fn recognize(&self, recording: &Signal) -> Result<RecognitionOutcome> {
        Ok(self.recognize_with_flags(recording, None)?.0)
    }

    /// Shared scoring pass: one prepared query aligned against every
    /// template, optionally also extracting the per-word verdicts for
    /// `expected` from the same alignments.
    fn recognize_with_flags(
        &self,
        recording: &Signal,
        expected: Option<CommandId>,
    ) -> Result<(RecognitionOutcome, Option<Vec<(String, bool)>>)> {
        if self.templates.is_empty() {
            return Err(SpeechError::NoTemplates);
        }
        let prepared = self.prepare(recording)?;
        let query = self.features(&prepared)?;
        let mut scored: Vec<(usize, f64, f64)> = Vec::new(); // (template idx, distance, word accuracy)
        let mut expected_flags: Option<Vec<(String, bool)>> = None;
        for (idx, template) in self.templates.iter().enumerate() {
            let costs = cost_matrix(&template.frames.frames, &query.frames);
            let alignment = align_with_costs(&costs)?;
            let accuracy = self.word_accuracy_from_alignment(template, &alignment, &costs);
            if expected == Some(template.command.id) {
                expected_flags = Some(self.per_word_recognition(template, &alignment, &costs));
            }
            scored.push((idx, alignment.normalized_distance, accuracy));
        }
        scored.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));
        let best = scored[0];
        let second_distance = scored.get(1).map(|s| s.1).unwrap_or(f64::INFINITY);
        let accepted = best.1 <= self.config.rejection_distance;
        let outcome = RecognitionOutcome {
            command: accepted.then(|| self.templates[best.0].command.id),
            best_distance: best.1,
            second_distance,
            word_accuracy: best.2,
        };
        Ok((outcome, expected_flags))
    }

    /// Word accuracy of `recording` measured against the template for
    /// `expected`, regardless of which command the recogniser would pick.
    pub fn word_accuracy(&self, recording: &Signal, expected: CommandId) -> Result<f64> {
        let flags = self.word_recognition(recording, expected)?;
        Ok(Self::fraction_recognized(&flags))
    }

    /// Per-word recognition verdicts of `recording` against the template
    /// for `expected`: one `(word, recognised)` pair per template word, in
    /// word order.  [`Recognizer::word_accuracy`] is the recognised
    /// fraction of this list; result aggregation (campaign reports) archives
    /// the list itself.
    pub fn word_recognition(
        &self,
        recording: &Signal,
        expected: CommandId,
    ) -> Result<Vec<(String, bool)>> {
        let template = self
            .templates
            .iter()
            .find(|t| t.command.id == expected)
            .ok_or(SpeechError::NoTemplates)?;
        let prepared = self.prepare(recording)?;
        let query = self.features(&prepared)?;
        let costs = cost_matrix(&template.frames.frames, &query.frames);
        let alignment = align_with_costs(&costs)?;
        Ok(self.per_word_recognition(template, &alignment, &costs))
    }

    fn fraction_recognized(flags: &[(String, bool)]) -> f64 {
        if flags.is_empty() {
            return 0.0;
        }
        flags.iter().filter(|(_, recognized)| *recognized).count() as f64 / flags.len() as f64
    }

    /// End-to-end acceptance: would the voice assistant act on this
    /// recording as the expected command?  Requires the expected command to
    /// win recognition and enough of its words to be intelligible.
    pub fn command_accepted(&self, recording: &Signal, expected: CommandId) -> Result<bool> {
        Ok(self.evaluate(recording, expected)?.accepted)
    }

    /// Recognition, per-word verdicts and the acceptance rule from **one**
    /// prepared query: the recording is resampled/trimmed/featurised once
    /// and every template aligned once, instead of the separate
    /// [`Recognizer::recognize`] + [`Recognizer::word_recognition`] passes.
    /// This is what the trial pipeline (and therefore every campaign
    /// trial) runs.
    pub fn evaluate(&self, recording: &Signal, expected: CommandId) -> Result<TrialEvaluation> {
        let (outcome, expected_flags) = self.recognize_with_flags(recording, Some(expected))?;
        // `None` here means `expected` is not enrolled — the same condition
        // `word_accuracy` reports as NoTemplates.
        let word_recognition = expected_flags.ok_or(SpeechError::NoTemplates)?;
        let word_accuracy = Self::fraction_recognized(&word_recognition);
        let accepted = outcome.command == Some(expected)
            && word_accuracy >= self.config.acceptance_word_fraction;
        Ok(TrialEvaluation {
            outcome,
            word_recognition,
            word_accuracy,
            accepted,
        })
    }

    fn word_accuracy_from_alignment(
        &self,
        template: &CommandTemplate,
        alignment: &crate::dtw::DtwAlignment,
        costs: &[Vec<f64>],
    ) -> f64 {
        Self::fraction_recognized(&self.per_word_recognition(template, alignment, costs))
    }

    fn per_word_recognition(
        &self,
        template: &CommandTemplate,
        alignment: &crate::dtw::DtwAlignment,
        costs: &[Vec<f64>],
    ) -> Vec<(String, bool)> {
        template
            .word_frame_ranges
            .iter()
            .zip(template.command.words.iter())
            .map(|((start, end), (word, _))| {
                let recognized = alignment
                    .mean_distance_in_template_range(*start, *end, costs)
                    .map(|d| d <= self.config.word_distance_threshold)
                    .unwrap_or(false);
                (word.to_string(), recognized)
            })
            .collect()
    }

    /// MFCC extraction plus (optional) cepstral mean normalisation — the
    /// shared front-end for templates and queries.
    fn features(&self, prepared: &Signal) -> Result<crate::mfcc::MfccFrames> {
        let mut frames = mfcc(prepared, &self.config.mfcc)?;
        if self.config.cepstral_mean_normalization {
            // Normalise the cepstra but leave the appended log-energy term.
            frames.apply_mean_normalization(self.config.mfcc.num_coefficients);
        }
        Ok(frames)
    }

    /// Resamples to the analysis rate, trims silence around the detected
    /// speech and normalises the level — the same preparation for templates
    /// and queries.
    fn prepare(&self, signal: &Signal) -> Result<Signal> {
        if signal.is_empty() {
            return Err(SpeechError::invalid("recording", "empty signal"));
        }
        let resampled = if (signal.sample_rate_hz() - self.config.analysis_rate_hz).abs() > 1e-6 {
            resample(signal, self.config.analysis_rate_hz)?
        } else {
            signal.clone()
        };
        let trimmed = self.trim_to_speech(&resampled)?;
        let mut normalised = trimmed;
        normalised.remove_dc();
        normalised.normalize_peak(0.5);
        Ok(normalised)
    }

    fn trim_to_speech(&self, signal: &Signal) -> Result<Signal> {
        let regions = detect_speech(signal, &VadConfig::default())?;
        if regions.is_empty() {
            return Ok(signal.clone());
        }
        let start = regions.first().unwrap().start_s;
        let end = regions.last().unwrap().end_s;
        Ok(signal.slice_seconds(
            (start - 0.05).max(0.0),
            (end + 0.05).min(signal.duration_s()),
        ))
    }

    fn leading_trim_s(&self, signal: &Signal) -> Result<f64> {
        let resampled = if (signal.sample_rate_hz() - self.config.analysis_rate_hz).abs() > 1e-6 {
            resample(signal, self.config.analysis_rate_hz)?
        } else {
            signal.clone()
        };
        let regions = detect_speech(&resampled, &VadConfig::default())?;
        Ok(regions
            .first()
            .map(|r| (r.start_s - 0.05).max(0.0))
            .unwrap_or(0.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn noisy(signal: &Signal, rms: f64, seed: u64) -> Signal {
        let mut rng = StdRng::seed_from_u64(seed);
        let noise: Vec<f64> = (0..signal.len())
            .map(|_| rng.gen_range(-1.0..1.0) * rms)
            .collect();
        let mut out = signal.clone();
        for (s, n) in out.samples_mut().iter_mut().zip(noise.iter()) {
            *s += n;
        }
        out
    }

    #[test]
    fn empty_recogniser_rejects_queries() {
        let r = Recognizer::new(RecognizerConfig::default());
        let s = Signal::tone(440.0, 0.5, 0.5, 16_000.0).unwrap();
        assert!(matches!(r.recognize(&s), Err(SpeechError::NoTemplates)));
        assert_eq!(r.num_templates(), 0);
    }

    #[test]
    fn clean_template_playback_is_recognised_with_full_word_accuracy() {
        let r = Recognizer::with_default_corpus().unwrap();
        assert_eq!(r.num_templates(), corpus().len());
        let synth = Synthesizer::new(48_000.0).unwrap();
        for command in corpus().iter().take(3) {
            let utt = synth.render(command, &SpeakerProfile::canonical()).unwrap();
            let outcome = r.recognize(&utt.signal).unwrap();
            assert_eq!(
                outcome.command,
                Some(command.id),
                "command {}",
                command.text
            );
            assert!(
                outcome.word_accuracy > 0.99,
                "accuracy {}",
                outcome.word_accuracy
            );
            assert!(r.command_accepted(&utt.signal, command.id).unwrap());
        }
    }

    #[test]
    fn commands_are_not_confused_with_each_other() {
        let r = Recognizer::with_default_corpus().unwrap();
        let synth = Synthesizer::new(48_000.0).unwrap();
        let commands = corpus();
        let utt = synth
            .render(&commands[1], &SpeakerProfile::canonical())
            .unwrap();
        // The Alexa shopping-list command must not be accepted as the
        // camera command.
        assert!(!r.command_accepted(&utt.signal, commands[0].id).unwrap());
    }

    #[test]
    fn moderate_noise_degrades_but_does_not_destroy_recognition() {
        let r = Recognizer::with_default_corpus().unwrap();
        let synth = Synthesizer::new(48_000.0).unwrap();
        let command = &corpus()[0];
        let utt = synth.render(command, &SpeakerProfile::canonical()).unwrap();
        let slightly_noisy = noisy(&utt.signal, 0.01, 1);
        let acc_clean = r.word_accuracy(&utt.signal, command.id).unwrap();
        let acc_noisy = r.word_accuracy(&slightly_noisy, command.id).unwrap();
        assert!(acc_clean >= acc_noisy - 1e-9);
        assert!(acc_noisy > 0.5, "accuracy {acc_noisy}");
    }

    #[test]
    fn heavy_noise_is_rejected() {
        let r = Recognizer::with_default_corpus().unwrap();
        let command = &corpus()[0];
        // Pure noise, no speech at all.
        let noise = noisy(&Signal::silence(2.0, 48_000.0).unwrap(), 0.3, 2);
        let acc = r.word_accuracy(&noise, command.id).unwrap();
        assert!(acc < 0.4, "accuracy {acc}");
        assert!(!r.command_accepted(&noise, command.id).unwrap());
    }

    #[test]
    fn level_invariance() {
        // The recogniser normalises level, so a quiet recording of the right
        // command is still accepted (this models the tiny demodulated
        // amplitude of an attack recording).
        let r = Recognizer::with_default_corpus().unwrap();
        let synth = Synthesizer::new(48_000.0).unwrap();
        let command = &corpus()[2];
        let utt = synth.render(command, &SpeakerProfile::canonical()).unwrap();
        let quiet = utt.signal.scaled(0.002);
        assert!(r.command_accepted(&quiet, command.id).unwrap());
    }

    #[test]
    fn cmn_recognizer_still_recognises_clean_speech() {
        // CMN changes the distance scale, so it is opt-in; with it enabled a
        // clean rendering of an enrolled command must still match its own
        // template essentially perfectly (distance ~ 0).
        let mut r = Recognizer::new(RecognizerConfig {
            cepstral_mean_normalization: true,
            ..RecognizerConfig::default()
        });
        let synth = Synthesizer::new(48_000.0).unwrap();
        for command in corpus() {
            let utt = synth
                .render(&command, &SpeakerProfile::canonical())
                .unwrap();
            r.enroll(&utt, command).unwrap();
        }
        let command = &corpus()[0];
        let utt = synth.render(command, &SpeakerProfile::canonical()).unwrap();
        let outcome = r.recognize(&utt.signal).unwrap();
        assert_eq!(outcome.command, Some(command.id));
        assert!(
            outcome.best_distance < 1.0,
            "distance {}",
            outcome.best_distance
        );
        assert!(outcome.word_accuracy > 0.99);
    }

    #[test]
    fn word_recognition_lists_words_and_matches_accuracy() {
        let r = Recognizer::with_default_corpus().unwrap();
        let synth = Synthesizer::new(48_000.0).unwrap();
        let command = &corpus()[0];
        let utt = synth.render(command, &SpeakerProfile::canonical()).unwrap();
        let flags = r.word_recognition(&utt.signal, command.id).unwrap();
        assert_eq!(flags.len(), command.num_words());
        // The words come back in command order.
        for (flag, (word, _)) in flags.iter().zip(command.words.iter()) {
            assert_eq!(flag.0, *word);
        }
        // A clean rendition recognises every word, and the accuracy is
        // exactly the recognised fraction.
        assert!(flags.iter().all(|(_, ok)| *ok));
        let accuracy = r.word_accuracy(&utt.signal, command.id).unwrap();
        let fraction = flags.iter().filter(|(_, ok)| *ok).count() as f64 / flags.len() as f64;
        assert_eq!(accuracy, fraction);
        // Pure noise recognises (essentially) nothing.
        let noise = noisy(&Signal::silence(1.5, 48_000.0).unwrap(), 0.3, 7);
        let noise_flags = r.word_recognition(&noise, command.id).unwrap();
        assert!(noise_flags.iter().filter(|(_, ok)| *ok).count() <= 1);
    }

    #[test]
    fn evaluate_agrees_with_the_separate_passes() {
        let r = Recognizer::with_default_corpus().unwrap();
        let synth = Synthesizer::new(48_000.0).unwrap();
        let command = &corpus()[1];
        let utt = synth.render(command, &SpeakerProfile::canonical()).unwrap();
        let evaluation = r.evaluate(&utt.signal, command.id).unwrap();
        assert_eq!(evaluation.outcome, r.recognize(&utt.signal).unwrap());
        assert_eq!(
            evaluation.word_recognition,
            r.word_recognition(&utt.signal, command.id).unwrap()
        );
        assert_eq!(
            evaluation.word_accuracy,
            r.word_accuracy(&utt.signal, command.id).unwrap()
        );
        assert_eq!(
            evaluation.accepted,
            r.command_accepted(&utt.signal, command.id).unwrap()
        );
        assert!(evaluation.accepted);
        // Evaluating against a different expected command flips acceptance
        // but keeps the open-set outcome.
        let other = r.evaluate(&utt.signal, corpus()[0].id).unwrap();
        assert!(!other.accepted);
        assert_eq!(other.outcome, evaluation.outcome);
        // An unenrolled command id is an error, matching word_accuracy.
        assert!(r.evaluate(&utt.signal, CommandId(999)).is_err());
    }

    #[test]
    fn enrollment_validates_word_boundaries() {
        let mut r = Recognizer::new(RecognizerConfig::default());
        let synth = Synthesizer::new(48_000.0).unwrap();
        let commands = corpus();
        let utt = synth
            .render(&commands[0], &SpeakerProfile::canonical())
            .unwrap();
        // Enrolling with a mismatched command (different word count) fails.
        assert!(r.enroll(&utt, commands[1].clone()).is_err());
        assert!(r.enroll(&utt, commands[0].clone()).is_ok());
        assert_eq!(r.num_templates(), 1);
    }
}
