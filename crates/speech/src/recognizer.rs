//! The template-matching recogniser that stands in for Google Assistant /
//! Alexa in the evaluation.
//!
//! Templates are the corpus commands rendered by the canonical synthetic
//! speaker; a recording is accepted when its MFCC sequence DTW-aligns to a
//! template with a small normalised distance, and per-word accuracy is the
//! fraction of the template's words whose aligned path cost stays below a
//! threshold.  The recogniser is intentionally simple — what matters is that
//! its accuracy *degrades monotonically* with band-limiting, distortion and
//! noise, mirroring a production recogniser's behaviour across the attack
//! distance sweep.

use crate::commands::{corpus, CommandId, VoiceCommand};
use crate::dtw::{align_with_costs, cost_matrix};
use crate::error::{Result, SpeechError};
use crate::mfcc::{mfcc, MfccConfig, MfccFrames};
use crate::synthesis::{SpeakerProfile, Synthesizer, Utterance};
use crate::vad::{detect_speech, VadConfig};
use ivc_dsp::resample::resample;
use ivc_dsp::signal::Signal;

/// Configuration of the recogniser.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RecognizerConfig {
    /// MFCC front-end configuration (shared by templates and queries).
    pub mfcc: MfccConfig,
    /// Internal analysis rate; recordings are resampled to this before
    /// feature extraction.
    pub analysis_rate_hz: f64,
    /// Mean per-frame DTW distance below which a word counts as recognised.
    pub word_distance_threshold: f64,
    /// Overall normalised distance above which a recording is rejected
    /// outright (treated as "not a known command").
    pub rejection_distance: f64,
    /// Minimum fraction of words that must be recognised for the command to
    /// count as accepted end-to-end (the wake word plus most of the payload).
    pub acceptance_word_fraction: f64,
    /// Apply per-utterance cepstral mean normalisation to templates and
    /// queries.  This removes linear-channel mismatch (microphone roll-off,
    /// the demodulation path's spectral tilt) and helps when templates and
    /// recordings come from different recording chains.  Off by default:
    /// `word_distance_threshold` and `rejection_distance` are calibrated for
    /// un-normalised cepstra, and CMN also shrinks the distance gap between
    /// speech and non-speech recordings, so enabling it calls for re-tuned
    /// thresholds.
    pub cepstral_mean_normalization: bool,
}

impl Default for RecognizerConfig {
    fn default() -> Self {
        RecognizerConfig {
            mfcc: MfccConfig::default(),
            analysis_rate_hz: 16_000.0,
            word_distance_threshold: 11.0,
            rejection_distance: 14.0,
            acceptance_word_fraction: 0.6,
            cepstral_mean_normalization: false,
        }
    }
}

/// A command template: features plus per-word frame ranges.
#[derive(Debug, Clone, PartialEq)]
pub struct CommandTemplate {
    /// The command this template renders.
    pub command: VoiceCommand,
    frames: MfccFrames,
    /// `(start_frame, end_frame)` for each word.
    word_frame_ranges: Vec<(usize, usize)>,
}

/// Outcome of recognising one recording.
#[derive(Debug, Clone, PartialEq)]
pub struct RecognitionOutcome {
    /// The best-matching command, or `None` if every template was rejected.
    pub command: Option<CommandId>,
    /// Normalised DTW distance to the best template.
    pub best_distance: f64,
    /// Normalised DTW distance to the runner-up template.
    pub second_distance: f64,
    /// Fraction of the best template's words recognised.
    pub word_accuracy: f64,
}

impl RecognitionOutcome {
    /// Margin between the best and runner-up distances (larger = more
    /// confident).
    pub fn margin(&self) -> f64 {
        self.second_distance - self.best_distance
    }
}

/// The template-matching recogniser.
#[derive(Debug, Clone, PartialEq)]
pub struct Recognizer {
    config: RecognizerConfig,
    templates: Vec<CommandTemplate>,
}

impl Recognizer {
    /// Creates an empty recogniser with the given configuration.
    pub fn new(config: RecognizerConfig) -> Self {
        Recognizer {
            config,
            templates: Vec::new(),
        }
    }

    /// Creates a recogniser pre-enrolled with the full command corpus,
    /// rendered by the canonical speaker.
    pub fn with_default_corpus() -> Result<Self> {
        let mut recognizer = Recognizer::new(RecognizerConfig::default());
        let synth = Synthesizer::new(48_000.0)?;
        for command in corpus() {
            let utterance = synth.render(&command, &SpeakerProfile::canonical())?;
            recognizer.enroll(&utterance, command)?;
        }
        Ok(recognizer)
    }

    /// Configuration in use.
    pub fn config(&self) -> &RecognizerConfig {
        &self.config
    }

    /// Number of enrolled templates.
    pub fn num_templates(&self) -> usize {
        self.templates.len()
    }

    /// Enrolls `utterance` as the template for `command`.
    pub fn enroll(&mut self, utterance: &Utterance, command: VoiceCommand) -> Result<()> {
        if utterance.word_boundaries.len() != command.num_words() {
            return Err(SpeechError::invalid(
                "utterance",
                "word boundary count does not match the command's word count",
            ));
        }
        let prepared = self.prepare(&utterance.signal)?;
        let frames = self.features(&prepared)?;
        // Word boundaries are expressed in the original signal's time base;
        // preparation trims leading silence, so shift accordingly.
        let trim_offset = self.leading_trim_s(&utterance.signal)?;
        let word_frame_ranges = utterance
            .word_boundaries
            .iter()
            .map(|b| {
                let start = frames.frame_at_time((b.start_s - trim_offset).max(0.0));
                let end = frames
                    .frame_at_time((b.end_s - trim_offset).max(0.0))
                    .max(start + 1);
                (start, end)
            })
            .collect();
        self.templates.push(CommandTemplate {
            command,
            frames,
            word_frame_ranges,
        });
        Ok(())
    }

    /// Recognises a recording against all enrolled templates.
    pub fn recognize(&self, recording: &Signal) -> Result<RecognitionOutcome> {
        if self.templates.is_empty() {
            return Err(SpeechError::NoTemplates);
        }
        let prepared = self.prepare(recording)?;
        let query = self.features(&prepared)?;
        let mut scored: Vec<(usize, f64, f64)> = Vec::new(); // (template idx, distance, word accuracy)
        for (idx, template) in self.templates.iter().enumerate() {
            let costs = cost_matrix(&template.frames.frames, &query.frames);
            let alignment = align_with_costs(&costs)?;
            let accuracy = self.word_accuracy_from_alignment(template, &alignment, &costs);
            scored.push((idx, alignment.normalized_distance, accuracy));
        }
        scored.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));
        let best = scored[0];
        let second_distance = scored.get(1).map(|s| s.1).unwrap_or(f64::INFINITY);
        let accepted = best.1 <= self.config.rejection_distance;
        Ok(RecognitionOutcome {
            command: accepted.then(|| self.templates[best.0].command.id),
            best_distance: best.1,
            second_distance,
            word_accuracy: best.2,
        })
    }

    /// Word accuracy of `recording` measured against the template for
    /// `expected`, regardless of which command the recogniser would pick.
    pub fn word_accuracy(&self, recording: &Signal, expected: CommandId) -> Result<f64> {
        let template = self
            .templates
            .iter()
            .find(|t| t.command.id == expected)
            .ok_or(SpeechError::NoTemplates)?;
        let prepared = self.prepare(recording)?;
        let query = self.features(&prepared)?;
        let costs = cost_matrix(&template.frames.frames, &query.frames);
        let alignment = align_with_costs(&costs)?;
        Ok(self.word_accuracy_from_alignment(template, &alignment, &costs))
    }

    /// End-to-end acceptance: would the voice assistant act on this
    /// recording as the expected command?  Requires the expected command to
    /// win recognition and enough of its words to be intelligible.
    pub fn command_accepted(&self, recording: &Signal, expected: CommandId) -> Result<bool> {
        let outcome = self.recognize(recording)?;
        if outcome.command != Some(expected) {
            return Ok(false);
        }
        let accuracy = self.word_accuracy(recording, expected)?;
        Ok(accuracy >= self.config.acceptance_word_fraction)
    }

    fn word_accuracy_from_alignment(
        &self,
        template: &CommandTemplate,
        alignment: &crate::dtw::DtwAlignment,
        costs: &[Vec<f64>],
    ) -> f64 {
        if template.word_frame_ranges.is_empty() {
            return 0.0;
        }
        let recognised = template
            .word_frame_ranges
            .iter()
            .filter(|(start, end)| {
                alignment
                    .mean_distance_in_template_range(*start, *end, costs)
                    .map(|d| d <= self.config.word_distance_threshold)
                    .unwrap_or(false)
            })
            .count();
        recognised as f64 / template.word_frame_ranges.len() as f64
    }

    /// MFCC extraction plus (optional) cepstral mean normalisation — the
    /// shared front-end for templates and queries.
    fn features(&self, prepared: &Signal) -> Result<crate::mfcc::MfccFrames> {
        let mut frames = mfcc(prepared, &self.config.mfcc)?;
        if self.config.cepstral_mean_normalization {
            // Normalise the cepstra but leave the appended log-energy term.
            frames.apply_mean_normalization(self.config.mfcc.num_coefficients);
        }
        Ok(frames)
    }

    /// Resamples to the analysis rate, trims silence around the detected
    /// speech and normalises the level — the same preparation for templates
    /// and queries.
    fn prepare(&self, signal: &Signal) -> Result<Signal> {
        if signal.is_empty() {
            return Err(SpeechError::invalid("recording", "empty signal"));
        }
        let resampled = if (signal.sample_rate_hz() - self.config.analysis_rate_hz).abs() > 1e-6 {
            resample(signal, self.config.analysis_rate_hz)?
        } else {
            signal.clone()
        };
        let trimmed = self.trim_to_speech(&resampled)?;
        let mut normalised = trimmed;
        normalised.remove_dc();
        normalised.normalize_peak(0.5);
        Ok(normalised)
    }

    fn trim_to_speech(&self, signal: &Signal) -> Result<Signal> {
        let regions = detect_speech(signal, &VadConfig::default())?;
        if regions.is_empty() {
            return Ok(signal.clone());
        }
        let start = regions.first().unwrap().start_s;
        let end = regions.last().unwrap().end_s;
        Ok(signal.slice_seconds(
            (start - 0.05).max(0.0),
            (end + 0.05).min(signal.duration_s()),
        ))
    }

    fn leading_trim_s(&self, signal: &Signal) -> Result<f64> {
        let resampled = if (signal.sample_rate_hz() - self.config.analysis_rate_hz).abs() > 1e-6 {
            resample(signal, self.config.analysis_rate_hz)?
        } else {
            signal.clone()
        };
        let regions = detect_speech(&resampled, &VadConfig::default())?;
        Ok(regions
            .first()
            .map(|r| (r.start_s - 0.05).max(0.0))
            .unwrap_or(0.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn noisy(signal: &Signal, rms: f64, seed: u64) -> Signal {
        let mut rng = StdRng::seed_from_u64(seed);
        let noise: Vec<f64> = (0..signal.len())
            .map(|_| rng.gen_range(-1.0..1.0) * rms)
            .collect();
        let mut out = signal.clone();
        for (s, n) in out.samples_mut().iter_mut().zip(noise.iter()) {
            *s += n;
        }
        out
    }

    #[test]
    fn empty_recogniser_rejects_queries() {
        let r = Recognizer::new(RecognizerConfig::default());
        let s = Signal::tone(440.0, 0.5, 0.5, 16_000.0).unwrap();
        assert!(matches!(r.recognize(&s), Err(SpeechError::NoTemplates)));
        assert_eq!(r.num_templates(), 0);
    }

    #[test]
    fn clean_template_playback_is_recognised_with_full_word_accuracy() {
        let r = Recognizer::with_default_corpus().unwrap();
        assert_eq!(r.num_templates(), corpus().len());
        let synth = Synthesizer::new(48_000.0).unwrap();
        for command in corpus().iter().take(3) {
            let utt = synth.render(command, &SpeakerProfile::canonical()).unwrap();
            let outcome = r.recognize(&utt.signal).unwrap();
            assert_eq!(
                outcome.command,
                Some(command.id),
                "command {}",
                command.text
            );
            assert!(
                outcome.word_accuracy > 0.99,
                "accuracy {}",
                outcome.word_accuracy
            );
            assert!(r.command_accepted(&utt.signal, command.id).unwrap());
        }
    }

    #[test]
    fn commands_are_not_confused_with_each_other() {
        let r = Recognizer::with_default_corpus().unwrap();
        let synth = Synthesizer::new(48_000.0).unwrap();
        let commands = corpus();
        let utt = synth
            .render(&commands[1], &SpeakerProfile::canonical())
            .unwrap();
        // The Alexa shopping-list command must not be accepted as the
        // camera command.
        assert!(!r.command_accepted(&utt.signal, commands[0].id).unwrap());
    }

    #[test]
    fn moderate_noise_degrades_but_does_not_destroy_recognition() {
        let r = Recognizer::with_default_corpus().unwrap();
        let synth = Synthesizer::new(48_000.0).unwrap();
        let command = &corpus()[0];
        let utt = synth.render(command, &SpeakerProfile::canonical()).unwrap();
        let slightly_noisy = noisy(&utt.signal, 0.01, 1);
        let acc_clean = r.word_accuracy(&utt.signal, command.id).unwrap();
        let acc_noisy = r.word_accuracy(&slightly_noisy, command.id).unwrap();
        assert!(acc_clean >= acc_noisy - 1e-9);
        assert!(acc_noisy > 0.5, "accuracy {acc_noisy}");
    }

    #[test]
    fn heavy_noise_is_rejected() {
        let r = Recognizer::with_default_corpus().unwrap();
        let command = &corpus()[0];
        // Pure noise, no speech at all.
        let noise = noisy(&Signal::silence(2.0, 48_000.0).unwrap(), 0.3, 2);
        let acc = r.word_accuracy(&noise, command.id).unwrap();
        assert!(acc < 0.4, "accuracy {acc}");
        assert!(!r.command_accepted(&noise, command.id).unwrap());
    }

    #[test]
    fn level_invariance() {
        // The recogniser normalises level, so a quiet recording of the right
        // command is still accepted (this models the tiny demodulated
        // amplitude of an attack recording).
        let r = Recognizer::with_default_corpus().unwrap();
        let synth = Synthesizer::new(48_000.0).unwrap();
        let command = &corpus()[2];
        let utt = synth.render(command, &SpeakerProfile::canonical()).unwrap();
        let quiet = utt.signal.scaled(0.002);
        assert!(r.command_accepted(&quiet, command.id).unwrap());
    }

    #[test]
    fn cmn_recognizer_still_recognises_clean_speech() {
        // CMN changes the distance scale, so it is opt-in; with it enabled a
        // clean rendering of an enrolled command must still match its own
        // template essentially perfectly (distance ~ 0).
        let mut r = Recognizer::new(RecognizerConfig {
            cepstral_mean_normalization: true,
            ..RecognizerConfig::default()
        });
        let synth = Synthesizer::new(48_000.0).unwrap();
        for command in corpus() {
            let utt = synth
                .render(&command, &SpeakerProfile::canonical())
                .unwrap();
            r.enroll(&utt, command).unwrap();
        }
        let command = &corpus()[0];
        let utt = synth.render(command, &SpeakerProfile::canonical()).unwrap();
        let outcome = r.recognize(&utt.signal).unwrap();
        assert_eq!(outcome.command, Some(command.id));
        assert!(
            outcome.best_distance < 1.0,
            "distance {}",
            outcome.best_distance
        );
        assert!(outcome.word_accuracy > 0.99);
    }

    #[test]
    fn enrollment_validates_word_boundaries() {
        let mut r = Recognizer::new(RecognizerConfig::default());
        let synth = Synthesizer::new(48_000.0).unwrap();
        let commands = corpus();
        let utt = synth
            .render(&commands[0], &SpeakerProfile::canonical())
            .unwrap();
        // Enrolling with a mismatched command (different word count) fails.
        assert!(r.enroll(&utt, commands[1].clone()).is_err());
        assert!(r.enroll(&utt, commands[0].clone()).is_ok());
        assert_eq!(r.num_templates(), 1);
    }
}
