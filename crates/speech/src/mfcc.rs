//! MFCC front-end: pre-emphasis, framing, mel filterbank, DCT.
//!
//! Mel-frequency cepstral coefficients are the lingua franca of classical
//! speech recognition; the DTW recogniser matches sequences of these
//! vectors.  The implementation follows the standard HTK-style recipe.

use crate::error::{Result, SpeechError};
use ivc_dsp::fft::{fft_real_n, next_power_of_two};
use ivc_dsp::signal::Signal;
use ivc_dsp::window::WindowKind;

/// Configuration of the MFCC front-end.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MfccConfig {
    /// Analysis frame length in seconds.
    pub frame_s: f64,
    /// Hop between frames in seconds.
    pub hop_s: f64,
    /// Number of triangular mel filters.
    pub num_filters: usize,
    /// Number of cepstral coefficients to keep (excluding C0).
    pub num_coefficients: usize,
    /// Pre-emphasis coefficient.
    pub pre_emphasis: f64,
    /// Lower edge of the filterbank in Hz.
    pub low_freq_hz: f64,
    /// Upper edge of the filterbank in Hz (clamped to Nyquist).
    pub high_freq_hz: f64,
    /// Whether to append the frame's log energy as an extra dimension.
    pub append_energy: bool,
}

impl Default for MfccConfig {
    fn default() -> Self {
        MfccConfig {
            frame_s: 0.025,
            hop_s: 0.010,
            num_filters: 26,
            num_coefficients: 13,
            pre_emphasis: 0.97,
            low_freq_hz: 80.0,
            high_freq_hz: 8_000.0,
            append_energy: true,
        }
    }
}

impl MfccConfig {
    fn validate(&self) -> Result<()> {
        if self.frame_s <= 0.0 || self.hop_s <= 0.0 || self.hop_s > self.frame_s {
            return Err(SpeechError::invalid(
                "frame/hop",
                "need 0 < hop_s <= frame_s",
            ));
        }
        if self.num_filters < 4
            || self.num_coefficients == 0
            || self.num_coefficients > self.num_filters
        {
            return Err(SpeechError::invalid(
                "filterbank",
                "need 4 <= num_filters and 1 <= num_coefficients <= num_filters",
            ));
        }
        if self.low_freq_hz < 0.0 || self.high_freq_hz <= self.low_freq_hz {
            return Err(SpeechError::invalid(
                "band edges",
                "need 0 <= low_freq_hz < high_freq_hz",
            ));
        }
        Ok(())
    }

    /// Dimensionality of each output frame.
    pub fn frame_dimension(&self) -> usize {
        self.num_coefficients + usize::from(self.append_energy)
    }
}

/// A sequence of MFCC frames.
#[derive(Debug, Clone, PartialEq)]
pub struct MfccFrames {
    /// One vector per frame.
    pub frames: Vec<Vec<f64>>,
    /// Hop between frames in seconds.
    pub hop_s: f64,
    /// Centre time of the first frame in seconds.
    pub first_frame_time_s: f64,
}

impl MfccFrames {
    /// Number of frames.
    pub fn len(&self) -> usize {
        self.frames.len()
    }

    /// `true` if no frames were produced.
    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }

    /// Centre time of frame `i` in seconds.
    pub fn frame_time_s(&self, i: usize) -> f64 {
        self.first_frame_time_s + i as f64 * self.hop_s
    }

    /// Index of the frame whose centre is closest to `time_s`.
    pub fn frame_at_time(&self, time_s: f64) -> usize {
        if self.frames.is_empty() {
            return 0;
        }
        let idx = ((time_s - self.first_frame_time_s) / self.hop_s).round();
        idx.clamp(0.0, (self.frames.len() - 1) as f64) as usize
    }

    /// Cepstral mean normalisation: subtract the per-dimension mean over the
    /// whole utterance.
    ///
    /// A linear channel (speaker response, microphone roll-off, the spectral
    /// tilt the ultrasonic demodulation path imposes) multiplies every
    /// frame's spectrum by the same transfer function, which adds the same
    /// constant to every cepstral vector — removing the utterance mean
    /// removes the channel.  Applied to both templates and queries it makes
    /// the DTW distance compare *speech content* rather than *recording
    /// chains*.
    ///
    /// Only the first `num_dims` dimensions are normalised, so callers can
    /// exclude the appended log-energy term (the usual CMN practice: energy
    /// carries the speech/silence contour, which the channel does not bias
    /// the way it biases the spectral envelope).
    pub fn apply_mean_normalization(&mut self, num_dims: usize) {
        if self.frames.is_empty() {
            return;
        }
        let dim = self.frames[0].len().min(num_dims);
        let mut mean = vec![0.0; dim];
        for frame in &self.frames {
            for (m, x) in mean.iter_mut().zip(frame.iter()) {
                *m += x;
            }
        }
        let n = self.frames.len() as f64;
        for m in &mut mean {
            *m /= n;
        }
        for frame in &mut self.frames {
            for (x, m) in frame.iter_mut().zip(mean.iter()) {
                *x -= m;
            }
        }
    }
}

fn hz_to_mel(f: f64) -> f64 {
    2595.0 * (1.0 + f / 700.0).log10()
}

fn mel_to_hz(m: f64) -> f64 {
    700.0 * (10f64.powf(m / 2595.0) - 1.0)
}

/// Extracts MFCC frames from `signal`.
pub fn mfcc(signal: &Signal, config: &MfccConfig) -> Result<MfccFrames> {
    config.validate()?;
    if signal.is_empty() {
        return Err(SpeechError::invalid("signal", "empty input"));
    }
    let fs = signal.sample_rate_hz();
    let frame_len = (config.frame_s * fs).round() as usize;
    let hop = (config.hop_s * fs).round().max(1.0) as usize;
    if frame_len < 8 {
        return Err(SpeechError::invalid(
            "frame_s",
            "too short for this sample rate",
        ));
    }
    // Pre-emphasis.
    let mut emphasised = Vec::with_capacity(signal.len());
    let samples = signal.samples();
    emphasised.push(samples[0]);
    for i in 1..samples.len() {
        emphasised.push(samples[i] - config.pre_emphasis * samples[i - 1]);
    }

    let nfft = next_power_of_two(frame_len);
    let n_bins = nfft / 2 + 1;
    let window = WindowKind::Hamming.periodic(frame_len);
    let filterbank = build_filterbank(config, fs, nfft, n_bins);

    let mut frames = Vec::new();
    let mut start = 0usize;
    while start + frame_len <= emphasised.len() || (start == 0 && !emphasised.is_empty()) {
        let end = (start + frame_len).min(emphasised.len());
        let mut frame: Vec<f64> = emphasised[start..end]
            .iter()
            .zip(window.iter())
            .map(|(s, w)| s * w)
            .collect();
        frame.resize(nfft, 0.0);
        let energy: f64 = frame.iter().map(|x| x * x).sum::<f64>().max(1e-12);
        let spec = fft_real_n(&frame, nfft)?;
        let power: Vec<f64> = (0..n_bins).map(|k| spec[k].norm_sqr()).collect();
        // Mel filterbank energies.
        let mut log_mel = Vec::with_capacity(config.num_filters);
        for filter in &filterbank {
            let e: f64 = filter.iter().zip(power.iter()).map(|(w, p)| w * p).sum();
            log_mel.push(e.max(1e-12).ln());
        }
        // DCT-II to cepstral coefficients C1..Cn (C0 discarded in favour of
        // the explicit energy term).
        let mut coeffs = Vec::with_capacity(config.frame_dimension());
        for k in 1..=config.num_coefficients {
            let mut acc = 0.0;
            for (m, &lm) in log_mel.iter().enumerate() {
                acc += lm
                    * (std::f64::consts::PI * k as f64 * (m as f64 + 0.5)
                        / config.num_filters as f64)
                        .cos();
            }
            coeffs.push(acc * (2.0 / config.num_filters as f64).sqrt());
        }
        if config.append_energy {
            coeffs.push(energy.ln());
        }
        frames.push(coeffs);
        if start + frame_len >= emphasised.len() {
            break;
        }
        start += hop;
    }
    Ok(MfccFrames {
        frames,
        hop_s: config.hop_s,
        first_frame_time_s: config.frame_s / 2.0,
    })
}

fn build_filterbank(config: &MfccConfig, fs: f64, nfft: usize, n_bins: usize) -> Vec<Vec<f64>> {
    let high = config.high_freq_hz.min(fs / 2.0);
    let mel_low = hz_to_mel(config.low_freq_hz);
    let mel_high = hz_to_mel(high);
    let n = config.num_filters;
    let mel_points: Vec<f64> = (0..n + 2)
        .map(|i| mel_low + (mel_high - mel_low) * i as f64 / (n + 1) as f64)
        .collect();
    let bin_of = |f: f64| f / fs * nfft as f64;
    let mut filterbank = Vec::with_capacity(n);
    for m in 1..=n {
        let left = bin_of(mel_to_hz(mel_points[m - 1]));
        let centre = bin_of(mel_to_hz(mel_points[m]));
        let right = bin_of(mel_to_hz(mel_points[m + 1]));
        let mut filter = vec![0.0; n_bins];
        for (k, w) in filter.iter_mut().enumerate() {
            let kf = k as f64;
            if kf >= left && kf <= centre && centre > left {
                *w = (kf - left) / (centre - left);
            } else if kf > centre && kf <= right && right > centre {
                *w = (right - kf) / (right - centre);
            }
        }
        filterbank.push(filter);
    }
    filterbank
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tone(freq: f64, fs: f64, dur: f64) -> Signal {
        Signal::tone(freq, 0.5, dur, fs).unwrap()
    }

    #[test]
    fn validation() {
        let bad_frame = MfccConfig {
            hop_s: 0.05,
            frame_s: 0.02,
            ..MfccConfig::default()
        };
        assert!(mfcc(&tone(440.0, 16_000.0, 0.5), &bad_frame).is_err());
        let bad_filters = MfccConfig {
            num_filters: 2,
            ..MfccConfig::default()
        };
        assert!(mfcc(&tone(440.0, 16_000.0, 0.5), &bad_filters).is_err());
        let bad_band = MfccConfig {
            low_freq_hz: 5_000.0,
            high_freq_hz: 1_000.0,
            ..MfccConfig::default()
        };
        assert!(mfcc(&tone(440.0, 16_000.0, 0.5), &bad_band).is_err());
        let empty = Signal::new(vec![], 16_000.0).unwrap();
        assert!(mfcc(&empty, &MfccConfig::default()).is_err());
    }

    #[test]
    fn frame_count_matches_hop_arithmetic() {
        let fs = 16_000.0;
        let s = tone(440.0, fs, 1.0);
        let cfg = MfccConfig::default();
        let frames = mfcc(&s, &cfg).unwrap();
        // (1.0 - 0.025) / 0.010 + 1 ~ 98-99 frames.
        assert!(
            frames.len() >= 96 && frames.len() <= 100,
            "frames {}",
            frames.len()
        );
        assert_eq!(frames.frames[0].len(), cfg.frame_dimension());
        assert!((frames.frame_time_s(1) - frames.frame_time_s(0) - 0.01).abs() < 1e-12);
    }

    #[test]
    fn different_vowel_like_spectra_give_different_mfccs() {
        let fs = 16_000.0;
        let cfg = MfccConfig::default();
        // Two tones at very different frequencies act as crude vowel stand-ins.
        let a = mfcc(&tone(300.0, fs, 0.3), &cfg).unwrap();
        let b = mfcc(&tone(2_500.0, fs, 0.3), &cfg).unwrap();
        let mid_a = &a.frames[a.len() / 2];
        let mid_b = &b.frames[b.len() / 2];
        let dist: f64 = mid_a
            .iter()
            .zip(mid_b.iter())
            .map(|(x, y)| (x - y) * (x - y))
            .sum::<f64>()
            .sqrt();
        assert!(dist > 5.0, "distance {dist}");
    }

    #[test]
    fn identical_signals_give_identical_mfccs() {
        let fs = 16_000.0;
        let cfg = MfccConfig::default();
        let s = tone(700.0, fs, 0.3);
        assert_eq!(mfcc(&s, &cfg).unwrap(), mfcc(&s, &cfg).unwrap());
    }

    #[test]
    fn energy_term_tracks_amplitude() {
        let fs = 16_000.0;
        let cfg = MfccConfig::default();
        let quiet = mfcc(&tone(500.0, fs, 0.3).scaled(0.1), &cfg).unwrap();
        let loud = mfcc(&tone(500.0, fs, 0.3), &cfg).unwrap();
        let dim = cfg.frame_dimension();
        let e_quiet = quiet.frames[quiet.len() / 2][dim - 1];
        let e_loud = loud.frames[loud.len() / 2][dim - 1];
        assert!(e_loud > e_quiet + 2.0);
    }

    #[test]
    fn frame_at_time_lookup() {
        let fs = 16_000.0;
        let frames = mfcc(&tone(500.0, fs, 0.5), &MfccConfig::default()).unwrap();
        assert_eq!(frames.frame_at_time(-1.0), 0);
        assert_eq!(frames.frame_at_time(100.0), frames.len() - 1);
        let mid = frames.frame_at_time(0.25);
        assert!(mid > 10 && mid < frames.len() - 10);
    }

    #[test]
    fn mean_normalization_zeroes_cepstral_means_but_keeps_energy() {
        let fs = 16_000.0;
        let cfg = MfccConfig::default();
        let mut frames = mfcc(&tone(700.0, fs, 0.4), &cfg).unwrap();
        let energy_before: Vec<f64> = frames
            .frames
            .iter()
            .map(|f| f[cfg.frame_dimension() - 1])
            .collect();
        frames.apply_mean_normalization(cfg.num_coefficients);
        let n = frames.len() as f64;
        for k in 0..cfg.num_coefficients {
            let mean: f64 = frames.frames.iter().map(|f| f[k]).sum::<f64>() / n;
            assert!(mean.abs() < 1e-9, "dim {k} mean {mean}");
        }
        let energy_after: Vec<f64> = frames
            .frames
            .iter()
            .map(|f| f[cfg.frame_dimension() - 1])
            .collect();
        assert_eq!(energy_before, energy_after);
    }

    #[test]
    fn mean_normalization_removes_a_constant_spectral_tilt() {
        // A linear channel (here: pre-emphasis difference acting as a tilt)
        // shifts every frame's cepstrum by the same offset; after CMN the
        // two versions of the same signal should be nearly identical.
        let fs = 16_000.0;
        let cfg = MfccConfig::default();
        let tilted_cfg = MfccConfig {
            pre_emphasis: 0.5,
            ..cfg
        };
        let s = tone(700.0, fs, 0.4);
        let mut a = mfcc(&s, &cfg).unwrap();
        let mut b = mfcc(&s, &tilted_cfg).unwrap();
        let dist = |x: &MfccFrames, y: &MfccFrames| -> f64 {
            x.frames
                .iter()
                .zip(y.frames.iter())
                .map(|(p, q)| {
                    p.iter()
                        .take(cfg.num_coefficients)
                        .zip(q.iter())
                        .map(|(u, v)| (u - v) * (u - v))
                        .sum::<f64>()
                        .sqrt()
                })
                .sum::<f64>()
                / x.len() as f64
        };
        let before = dist(&a, &b);
        a.apply_mean_normalization(cfg.num_coefficients);
        b.apply_mean_normalization(cfg.num_coefficients);
        let after = dist(&a, &b);
        assert!(after < before * 0.5, "before {before} after {after}");
    }

    #[test]
    fn short_signal_produces_at_least_one_frame() {
        let fs = 16_000.0;
        let s = tone(500.0, fs, 0.01);
        let frames = mfcc(&s, &MfccConfig::default()).unwrap();
        assert_eq!(frames.len(), 1);
    }
}
