//! Formant synthesis of individual phonemes.
//!
//! A classic source–filter recipe: voiced phonemes start from a glottal
//! pulse train at the requested fundamental, obstruents start from shaped
//! noise, and both are passed through resonators (biquad band-pass sections)
//! at the phoneme's formant targets.  The output is deliberately "robotic"
//! but carries the properties the rest of the system cares about: harmonics
//! of a low fundamental, formant structure in 300–3000 Hz, fricative energy
//! up to 8 kHz and word-level amplitude modulation.

use crate::error::{Result, SpeechError};
use crate::phoneme::{Manner, Phoneme};
use ivc_dsp::filter::biquad::{Biquad, BiquadCascade};
use ivc_dsp::signal::Signal;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Renders one phoneme at `f0_hz`, returning samples at `sample_rate_hz`.
///
/// `duration_scale` stretches or compresses the phoneme's nominal duration
/// (speaking rate), and `seed` makes the noise components reproducible.
pub fn render_phoneme(
    phoneme: &Phoneme,
    f0_hz: f64,
    duration_scale: f64,
    sample_rate_hz: f64,
    seed: u64,
) -> Result<Signal> {
    if !(sample_rate_hz > 8_000.0) {
        return Err(SpeechError::invalid(
            "sample_rate_hz",
            "must exceed 8 kHz for speech synthesis",
        ));
    }
    if !(50.0..=400.0).contains(&f0_hz) {
        return Err(SpeechError::invalid(
            "f0_hz",
            format!("{f0_hz} outside [50, 400]"),
        ));
    }
    if !(0.25..=4.0).contains(&duration_scale) {
        return Err(SpeechError::invalid(
            "duration_scale",
            "must be within [0.25, 4.0]",
        ));
    }
    let duration_s = phoneme.duration_s * duration_scale;
    let n = (duration_s * sample_rate_hz).round().max(1.0) as usize;

    let samples = match phoneme.manner {
        Manner::Silence => vec![0.0; n],
        Manner::Vowel | Manner::Nasal => {
            let source = glottal_source(f0_hz, n, sample_rate_hz);
            let filtered = formant_filter(&source, phoneme, sample_rate_hz)?;

            if phoneme.manner == Manner::Nasal {
                // Nasals are muffled: an extra low-pass around 1 kHz.
                let lpf = BiquadCascade::butterworth_low_pass(1_000.0, 2, sample_rate_hz)?;
                lpf.filter(&filtered)
            } else {
                filtered
            }
        }
        Manner::Fricative => {
            let noise = noise_source(n, seed);
            let mut shaped = band_shape(&noise, phoneme.noise_band_hz, sample_rate_hz)?;
            if phoneme.voiced {
                // Voiced fricatives mix in a weak voiced component.
                let source = glottal_source(f0_hz, n, sample_rate_hz);
                let voiced = formant_filter(
                    &source,
                    Phoneme::lookup("AH").as_ref().unwrap(),
                    sample_rate_hz,
                )?;
                for (s, v) in shaped.iter_mut().zip(voiced.iter()) {
                    *s = 0.7 * *s + 0.3 * v;
                }
            }
            shaped
        }
        Manner::Stop => {
            // A stop: ~60 % closure (silence), then a burst of shaped noise.
            let closure = (n as f64 * 0.6) as usize;
            let burst_len = n - closure;
            let noise = noise_source(burst_len.max(1), seed);
            let mut burst = band_shape(&noise, phoneme.noise_band_hz, sample_rate_hz)?;
            // Exponential decay over the burst.
            for (i, b) in burst.iter_mut().enumerate() {
                *b *= (-4.0 * i as f64 / burst_len.max(1) as f64).exp();
            }
            let mut out = vec![0.0; closure];
            out.extend(burst);
            out.truncate(n);
            out
        }
    };

    let mut signal = Signal::new(samples, sample_rate_hz)?;
    // Normalise then apply the phoneme's relative amplitude and an
    // onset/offset ramp so concatenation does not click.
    if signal.peak() > 0.0 {
        signal.normalize_peak(phoneme.amplitude);
    }
    signal.fade(0.008);
    Ok(signal)
}

/// Glottal source: a band-limited pulse train at `f0_hz` (sum of the first
/// harmonics with a gentle -6 dB/octave tilt, which approximates a glottal
/// flow derivative spectrum).
fn glottal_source(f0_hz: f64, n: usize, sample_rate_hz: f64) -> Vec<f64> {
    let nyquist = sample_rate_hz / 2.0;
    let max_harmonic = ((8_000.0_f64.min(nyquist * 0.9)) / f0_hz).floor() as usize;
    let mut out = vec![0.0; n];
    for h in 1..=max_harmonic.max(1) {
        let f = f0_hz * h as f64;
        let amp = 1.0 / h as f64; // spectral tilt
        let w = 2.0 * std::f64::consts::PI * f / sample_rate_hz;
        for (i, o) in out.iter_mut().enumerate() {
            *o += amp * (w * i as f64).sin();
        }
    }
    out
}

/// White noise source with unit-ish amplitude.
fn noise_source(n: usize, seed: u64) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect()
}

/// Passes the source through the phoneme's three formant resonators in
/// parallel (F1 strongest, F3 weakest), like a parallel formant synthesiser.
fn formant_filter(source: &[f64], phoneme: &Phoneme, sample_rate_hz: f64) -> Result<Vec<f64>> {
    let gains = [1.0, 0.63, 0.35];
    let mut out = vec![0.0; source.len()];
    for (k, (&f, &bw)) in phoneme
        .formants_hz
        .iter()
        .zip(phoneme.bandwidths_hz.iter())
        .enumerate()
    {
        if f <= 0.0 || f >= sample_rate_hz / 2.0 {
            continue;
        }
        let q = (f / bw.max(1.0)).clamp(1.0, 20.0);
        let resonator = Biquad::band_pass(f, q, sample_rate_hz)?;
        let filtered = resonator.filter(source);
        for (o, v) in out.iter_mut().zip(filtered.iter()) {
            *o += gains[k] * v;
        }
    }
    Ok(out)
}

/// Band-limits a noise source to the phoneme's noise band.
fn band_shape(noise: &[f64], band_hz: (f64, f64), sample_rate_hz: f64) -> Result<Vec<f64>> {
    let (low, high) = band_hz;
    let nyq = sample_rate_hz / 2.0;
    let low = low.max(100.0).min(nyq * 0.8);
    let high = high.max(low * 1.2).min(nyq * 0.95);
    let bpf = BiquadCascade::butterworth_band_pass(low, high, 4, sample_rate_hz)?;
    Ok(bpf.filter(noise))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ivc_dsp::spectrum::{band_power, welch_psd};
    use ivc_dsp::window::WindowKind;

    #[test]
    fn validation() {
        let aa = Phoneme::lookup("AA").unwrap();
        assert!(render_phoneme(&aa, 120.0, 1.0, 4_000.0, 0).is_err());
        assert!(render_phoneme(&aa, 20.0, 1.0, 48_000.0, 0).is_err());
        assert!(render_phoneme(&aa, 120.0, 10.0, 48_000.0, 0).is_err());
    }

    #[test]
    fn vowel_has_harmonic_structure_at_f0() {
        let aa = Phoneme::lookup("AA").unwrap();
        let s = render_phoneme(&aa, 120.0, 2.0, 48_000.0, 1).unwrap();
        assert!(s.len() > 1_000);
        // Strong component at F1 region (~730 Hz) and at the fundamental's
        // low harmonics; little energy above 5 kHz.
        let low = band_power(s.samples(), 48_000.0, 80.0, 2_000.0).unwrap();
        let high = band_power(s.samples(), 48_000.0, 5_000.0, 20_000.0).unwrap();
        assert!(low / high.max(1e-18) > 100.0, "low/high {}", low / high);
    }

    #[test]
    fn vowel_formant_peak_is_near_target() {
        let iy = Phoneme::lookup("IY").unwrap(); // F2 ~ 2290 Hz
        let s = render_phoneme(&iy, 110.0, 2.0, 48_000.0, 1).unwrap();
        let psd = welch_psd(s.samples(), 48_000.0, 4_096, 0.5, WindowKind::Hann).unwrap();
        // Power around F2 should clearly exceed power in a reference band
        // away from any formant (e.g. 4-5 kHz).
        let near_f2 = psd.band_power(2_000.0, 2_600.0);
        let away = psd.band_power(4_000.0, 5_000.0);
        assert!(near_f2 / away.max(1e-18) > 20.0);
    }

    #[test]
    fn fricative_energy_is_high_frequency() {
        let s_ph = Phoneme::lookup("S").unwrap();
        let s = render_phoneme(&s_ph, 120.0, 2.0, 48_000.0, 1).unwrap();
        let high = band_power(s.samples(), 48_000.0, 4_000.0, 8_000.0).unwrap();
        let low = band_power(s.samples(), 48_000.0, 100.0, 1_000.0).unwrap();
        assert!(high / low.max(1e-18) > 20.0, "high/low {}", high / low);
    }

    #[test]
    fn stop_starts_with_closure_silence() {
        let t = Phoneme::lookup("T").unwrap();
        let s = render_phoneme(&t, 120.0, 1.0, 48_000.0, 1).unwrap();
        let n = s.len();
        let first_half_energy: f64 = s.samples()[..n / 2].iter().map(|x| x * x).sum();
        let second_half_energy: f64 = s.samples()[n / 2..].iter().map(|x| x * x).sum();
        assert!(second_half_energy > first_half_energy * 5.0);
    }

    #[test]
    fn silence_is_silent_and_duration_scales() {
        let sil = Phoneme::PAUSE;
        let s = render_phoneme(&sil, 120.0, 1.0, 48_000.0, 1).unwrap();
        assert_eq!(s.rms(), 0.0);
        let s2 = render_phoneme(&sil, 120.0, 2.0, 48_000.0, 1).unwrap();
        assert!((s2.len() as f64 / s.len() as f64 - 2.0).abs() < 0.05);
    }

    #[test]
    fn rendering_is_deterministic_per_seed() {
        let s_ph = Phoneme::lookup("SH").unwrap();
        let a = render_phoneme(&s_ph, 120.0, 1.0, 48_000.0, 5).unwrap();
        let b = render_phoneme(&s_ph, 120.0, 1.0, 48_000.0, 5).unwrap();
        let c = render_phoneme(&s_ph, 120.0, 1.0, 48_000.0, 6).unwrap();
        assert_eq!(a.samples(), b.samples());
        assert_ne!(a.samples(), c.samples());
    }

    #[test]
    fn nasal_is_muffled_compared_to_vowel() {
        let m = Phoneme::lookup("M").unwrap();
        let aa = Phoneme::lookup("AA").unwrap();
        let sm = render_phoneme(&m, 120.0, 2.0, 48_000.0, 1).unwrap();
        let sa = render_phoneme(&aa, 120.0, 2.0, 48_000.0, 1).unwrap();
        let hi_m = band_power(sm.samples(), 48_000.0, 1_500.0, 4_000.0).unwrap() / sm.energy();
        let hi_a = band_power(sa.samples(), 48_000.0, 1_500.0, 4_000.0).unwrap() / sa.energy();
        assert!(hi_m < hi_a, "nasal should carry less high-frequency energy");
    }
}
