//! Energy-based voice activity detection.
//!
//! The defense only needs a coarse segmentation: which part of a recording
//! contains the (real or injected) command, so that features are computed
//! over speech rather than silence.

use crate::error::{Result, SpeechError};
use ivc_dsp::signal::Signal;

/// Configuration of the energy-based VAD.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VadConfig {
    /// Analysis frame length in seconds.
    pub frame_s: f64,
    /// Threshold above the noise floor, in dB, for a frame to count as speech.
    pub threshold_db: f64,
    /// Minimum speech duration in seconds for a region to be kept.
    pub min_region_s: f64,
}

impl Default for VadConfig {
    fn default() -> Self {
        VadConfig {
            frame_s: 0.02,
            threshold_db: 9.0,
            min_region_s: 0.05,
        }
    }
}

/// A detected speech region.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpeechRegion {
    /// Start time in seconds.
    pub start_s: f64,
    /// End time in seconds.
    pub end_s: f64,
}

impl SpeechRegion {
    /// Duration of the region in seconds.
    pub fn duration_s(&self) -> f64 {
        self.end_s - self.start_s
    }
}

/// Detects speech regions in `signal`.
pub fn detect_speech(signal: &Signal, config: &VadConfig) -> Result<Vec<SpeechRegion>> {
    if signal.is_empty() {
        return Err(SpeechError::invalid("signal", "empty input"));
    }
    if config.frame_s <= 0.0 || config.min_region_s < 0.0 {
        return Err(SpeechError::invalid(
            "VadConfig",
            "frame_s must be positive",
        ));
    }
    let fs = signal.sample_rate_hz();
    let frame_len = ((config.frame_s * fs).round() as usize).max(1);
    let samples = signal.samples();
    let n_frames = samples.len().div_ceil(frame_len);
    let energies: Vec<f64> = (0..n_frames)
        .map(|i| {
            let start = i * frame_len;
            let end = (start + frame_len).min(samples.len());
            let e: f64 = samples[start..end].iter().map(|x| x * x).sum();
            (e / (end - start).max(1) as f64).max(1e-20)
        })
        .collect();
    // Noise floor: the 20th percentile of frame energies.
    let mut sorted = energies.clone();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let floor = sorted[(sorted.len() as f64 * 0.2) as usize].max(1e-20);
    let threshold = floor * 10f64.powf(config.threshold_db / 10.0);

    let mut regions = Vec::new();
    let mut start: Option<usize> = None;
    for (i, &e) in energies.iter().enumerate() {
        if e >= threshold {
            if start.is_none() {
                start = Some(i);
            }
        } else if let Some(s) = start.take() {
            push_region(&mut regions, s, i, frame_len, fs, config.min_region_s);
        }
    }
    if let Some(s) = start {
        push_region(
            &mut regions,
            s,
            energies.len(),
            frame_len,
            fs,
            config.min_region_s,
        );
    }
    Ok(regions)
}

fn push_region(
    regions: &mut Vec<SpeechRegion>,
    start_frame: usize,
    end_frame: usize,
    frame_len: usize,
    fs: f64,
    min_region_s: f64,
) {
    let region = SpeechRegion {
        start_s: start_frame as f64 * frame_len as f64 / fs,
        end_s: end_frame as f64 * frame_len as f64 / fs,
    };
    if region.duration_s() >= min_region_s {
        regions.push(region);
    }
}

/// Fraction of the signal's duration judged to be speech.
pub fn speech_fraction(signal: &Signal, config: &VadConfig) -> Result<f64> {
    let regions = detect_speech(signal, config)?;
    let speech: f64 = regions.iter().map(|r| r.duration_s()).sum();
    Ok(speech / signal.duration_s().max(1e-12))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation() {
        let empty = Signal::new(vec![], 16_000.0).unwrap();
        assert!(detect_speech(&empty, &VadConfig::default()).is_err());
        let s = Signal::tone(440.0, 0.5, 0.2, 16_000.0).unwrap();
        let bad = VadConfig {
            frame_s: 0.0,
            ..VadConfig::default()
        };
        assert!(detect_speech(&s, &bad).is_err());
    }

    #[test]
    fn detects_a_burst_in_silence() {
        let fs = 16_000.0;
        let mut s = Signal::silence(0.5, fs).unwrap();
        let burst = Signal::tone(800.0, 0.5, 0.3, fs).unwrap();
        s.append(&burst).unwrap();
        s.append(&Signal::silence(0.5, fs).unwrap()).unwrap();
        let regions = detect_speech(&s, &VadConfig::default()).unwrap();
        assert_eq!(regions.len(), 1);
        let r = regions[0];
        assert!((r.start_s - 0.5).abs() < 0.06, "start {}", r.start_s);
        assert!((r.end_s - 0.8).abs() < 0.06, "end {}", r.end_s);
        assert!((speech_fraction(&s, &VadConfig::default()).unwrap() - 0.23).abs() < 0.08);
    }

    #[test]
    fn detects_multiple_bursts() {
        let fs = 16_000.0;
        let mut s = Signal::silence(0.3, fs).unwrap();
        s.append(&Signal::tone(600.0, 0.5, 0.2, fs).unwrap())
            .unwrap();
        s.append(&Signal::silence(0.3, fs).unwrap()).unwrap();
        s.append(&Signal::tone(600.0, 0.5, 0.2, fs).unwrap())
            .unwrap();
        s.append(&Signal::silence(0.3, fs).unwrap()).unwrap();
        let regions = detect_speech(&s, &VadConfig::default()).unwrap();
        assert_eq!(regions.len(), 2);
    }

    #[test]
    fn short_blips_are_discarded() {
        let fs = 16_000.0;
        let mut s = Signal::silence(0.5, fs).unwrap();
        s.append(&Signal::tone(600.0, 0.5, 0.01, fs).unwrap())
            .unwrap();
        s.append(&Signal::silence(0.5, fs).unwrap()).unwrap();
        let regions = detect_speech(&s, &VadConfig::default()).unwrap();
        assert!(regions.is_empty());
    }

    #[test]
    fn pure_silence_has_no_regions() {
        let fs = 16_000.0;
        let s = Signal::silence(1.0, fs).unwrap();
        let regions = detect_speech(&s, &VadConfig::default()).unwrap();
        assert!(regions.is_empty());
        assert_eq!(speech_fraction(&s, &VadConfig::default()).unwrap(), 0.0);
    }
}
