//! Utterance-level synthesis: rendering a [`VoiceCommand`] as a waveform.
//!
//! The synthesiser concatenates per-phoneme renderings (see
//! [`crate::formant`]) under a pitch contour and speaker profile, and keeps
//! track of where each word starts and ends — the recogniser uses those
//! boundaries to score per-word accuracy.

use crate::commands::VoiceCommand;
use crate::error::{Result, SpeechError};
use crate::formant::render_phoneme;
use crate::phoneme::Phoneme;
use crate::prosody::PitchContour;
use ivc_dsp::signal::Signal;

/// A speaker profile: what distinguishes one synthetic talker from another.
#[derive(Debug, Clone, PartialEq)]
pub struct SpeakerProfile {
    /// Pitch contour (base F0, declination, intonation).
    pub pitch: PitchContour,
    /// Multiplicative shift applied to all formant frequencies (vocal-tract
    /// length difference); 1.0 is the canonical talker.
    pub formant_shift: f64,
    /// Speaking-rate multiplier applied to phoneme durations.
    pub rate: f64,
    /// Seed for the stochastic components (noise sources).
    pub seed: u64,
}

impl SpeakerProfile {
    /// The canonical adult male profile used for recogniser templates.
    pub fn canonical() -> Self {
        SpeakerProfile {
            pitch: PitchContour::male(),
            formant_shift: 1.0,
            rate: 1.0,
            seed: 0,
        }
    }

    /// A female profile.
    pub fn female(seed: u64) -> Self {
        SpeakerProfile {
            pitch: PitchContour::female(),
            formant_shift: 1.12,
            rate: 1.05,
            seed,
        }
    }

    /// A deterministic family of profiles indexed by `index`, spanning a
    /// plausible range of pitch, vocal-tract length and speaking rate.  Used
    /// to build multi-speaker datasets for the defense.
    pub fn variant(index: usize) -> Self {
        let base_f0 = 95.0 + 20.0 * (index % 8) as f64; // 95..235 Hz
        let pitch = PitchContour::new(
            base_f0.min(250.0),
            0.1 + 0.02 * (index % 5) as f64,
            0.04 + 0.01 * (index % 4) as f64,
            2.0 + 0.3 * (index % 3) as f64,
        )
        .expect("variant parameters are in range");
        SpeakerProfile {
            pitch,
            formant_shift: 0.92 + 0.04 * (index % 6) as f64,
            rate: 0.85 + 0.07 * (index % 5) as f64,
            seed: index as u64,
        }
    }

    fn validate(&self) -> Result<()> {
        if !(0.7..=1.4).contains(&self.formant_shift) {
            return Err(SpeechError::invalid(
                "formant_shift",
                "must be within [0.7, 1.4]",
            ));
        }
        if !(0.5..=2.0).contains(&self.rate) {
            return Err(SpeechError::invalid("rate", "must be within [0.5, 2.0]"));
        }
        Ok(())
    }
}

/// Word-level timing of a synthesised utterance.
#[derive(Debug, Clone, PartialEq)]
pub struct WordBoundary {
    /// The word's text.
    pub word: String,
    /// Start time in seconds.
    pub start_s: f64,
    /// End time in seconds.
    pub end_s: f64,
}

/// A synthesised utterance: the waveform plus word timing.
#[derive(Debug, Clone, PartialEq)]
pub struct Utterance {
    /// The rendered waveform (peak-normalised to 0.5).
    pub signal: Signal,
    /// Word boundaries, in order.
    pub word_boundaries: Vec<WordBoundary>,
    /// The text that was rendered.
    pub text: String,
}

/// The utterance synthesiser.
#[derive(Debug, Clone, PartialEq)]
pub struct Synthesizer {
    sample_rate_hz: f64,
}

impl Synthesizer {
    /// Creates a synthesiser producing waveforms at `sample_rate_hz`.
    pub fn new(sample_rate_hz: f64) -> Result<Self> {
        if !(16_000.0..=384_000.0).contains(&sample_rate_hz) {
            return Err(SpeechError::invalid(
                "sample_rate_hz",
                "must be within [16 kHz, 384 kHz]",
            ));
        }
        Ok(Synthesizer { sample_rate_hz })
    }

    /// Output sample rate in Hz.
    pub fn sample_rate_hz(&self) -> f64 {
        self.sample_rate_hz
    }

    /// Renders `command` with the given speaker profile.
    pub fn render(&self, command: &VoiceCommand, profile: &SpeakerProfile) -> Result<Utterance> {
        profile.validate()?;
        let symbols = command.phoneme_symbols();
        if symbols.is_empty() {
            return Err(SpeechError::invalid("command", "has no phonemes"));
        }
        // Total nominal duration for the pitch contour's normalised clock.
        let total_nominal: f64 = symbols
            .iter()
            .map(|s| phoneme_for(s).duration_s * profile.rate)
            .sum();

        let mut signal = Signal::new(Vec::new(), self.sample_rate_hz)?;
        // Leading silence so that onsets are not at t = 0.
        signal.pad_end(0.05);
        let mut word_boundaries = Vec::new();
        let mut elapsed = 0.0f64;

        let mut word_iter = command.words.iter();
        let mut current_word = word_iter.next();
        let mut word_start = signal.duration_s();
        let mut phones_left_in_word = current_word.map(|(_, p)| p.len()).unwrap_or(0);

        for symbol in &symbols {
            let mut phoneme = phoneme_for(symbol);
            // Apply the speaker's formant shift to voiced sonorants.
            for f in phoneme.formants_hz.iter_mut() {
                *f *= profile.formant_shift;
            }
            let x = (elapsed / total_nominal.max(1e-9)).clamp(0.0, 1.0);
            let f0 = profile.pitch.f0_at(x);
            let seed = profile
                .seed
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(elapsed.to_bits());
            let rendered = render_phoneme(&phoneme, f0, profile.rate, self.sample_rate_hz, seed)?;
            elapsed += phoneme.duration_s * profile.rate;
            signal.append(&rendered)?;

            if *symbol == "sil" {
                continue;
            }
            phones_left_in_word = phones_left_in_word.saturating_sub(1);
            if phones_left_in_word == 0 {
                if let Some((word, _)) = current_word {
                    word_boundaries.push(WordBoundary {
                        word: (*word).to_string(),
                        start_s: word_start,
                        end_s: signal.duration_s(),
                    });
                }
                current_word = word_iter.next();
                phones_left_in_word = current_word.map(|(_, p)| p.len()).unwrap_or(0);
                // The next word starts after the upcoming pause; we simply
                // mark it at the current end and let the pause be part of
                // the gap.
                word_start = signal.duration_s() + Phoneme::PAUSE.duration_s * profile.rate;
            }
        }
        // Trailing silence.
        signal.pad_end(0.05);
        signal.normalize_peak(0.5);
        Ok(Utterance {
            signal,
            word_boundaries,
            text: command.text.to_string(),
        })
    }
}

fn phoneme_for(symbol: &str) -> Phoneme {
    if symbol == "sil" {
        Phoneme::PAUSE
    } else {
        Phoneme::lookup(symbol).unwrap_or(Phoneme::PAUSE)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::commands::corpus;
    use ivc_dsp::spectrum::band_power;

    #[test]
    fn validation() {
        assert!(Synthesizer::new(8_000.0).is_err());
        assert!(Synthesizer::new(48_000.0).is_ok());
        let synth = Synthesizer::new(48_000.0).unwrap();
        let bad_profile = SpeakerProfile {
            formant_shift: 2.0,
            ..SpeakerProfile::canonical()
        };
        assert!(synth.render(&corpus()[0], &bad_profile).is_err());
    }

    #[test]
    fn rendered_command_has_speechlike_properties() {
        let synth = Synthesizer::new(48_000.0).unwrap();
        let utt = synth
            .render(&corpus()[0], &SpeakerProfile::canonical())
            .unwrap();
        // A five-word command takes on the order of 1-3 seconds.
        assert!(utt.signal.duration_s() > 0.8 && utt.signal.duration_s() < 4.0);
        assert_eq!(utt.word_boundaries.len(), corpus()[0].num_words());
        // Speech energy is concentrated below 8 kHz.
        let low = band_power(utt.signal.samples(), 48_000.0, 80.0, 8_000.0).unwrap();
        let high = band_power(utt.signal.samples(), 48_000.0, 10_000.0, 20_000.0).unwrap();
        assert!(low / high.max(1e-18) > 100.0);
        assert!((utt.signal.peak() - 0.5).abs() < 1e-6);
    }

    #[test]
    fn word_boundaries_are_ordered_and_inside_the_signal() {
        let synth = Synthesizer::new(48_000.0).unwrap();
        for command in corpus().iter().take(4) {
            let utt = synth.render(command, &SpeakerProfile::canonical()).unwrap();
            let mut last_end = 0.0;
            for b in &utt.word_boundaries {
                assert!(
                    b.start_s >= last_end - 1e-9,
                    "overlapping words in {}",
                    command.text
                );
                assert!(b.end_s > b.start_s);
                assert!(b.end_s <= utt.signal.duration_s() + 1e-9);
                last_end = b.end_s;
            }
        }
    }

    #[test]
    fn different_speakers_produce_different_waveforms() {
        let synth = Synthesizer::new(48_000.0).unwrap();
        let c = &corpus()[0];
        let a = synth.render(c, &SpeakerProfile::canonical()).unwrap();
        let b = synth.render(c, &SpeakerProfile::female(3)).unwrap();
        assert_ne!(a.signal.samples(), b.signal.samples());
        // Variants are all valid.
        for i in 0..12 {
            let v = SpeakerProfile::variant(i);
            assert!(synth.render(c, &v).is_ok(), "variant {i}");
        }
    }

    #[test]
    fn same_profile_is_deterministic() {
        let synth = Synthesizer::new(48_000.0).unwrap();
        let c = &corpus()[1];
        let a = synth.render(c, &SpeakerProfile::canonical()).unwrap();
        let b = synth.render(c, &SpeakerProfile::canonical()).unwrap();
        assert_eq!(a.signal.samples(), b.signal.samples());
    }

    #[test]
    fn rendering_at_high_rate_supports_ultrasonic_pipelines() {
        let synth = Synthesizer::new(192_000.0).unwrap();
        let utt = synth
            .render(&corpus()[4], &SpeakerProfile::canonical())
            .unwrap();
        assert_eq!(utt.signal.sample_rate_hz(), 192_000.0);
        assert!(utt.signal.duration_s() > 0.5);
    }
}
