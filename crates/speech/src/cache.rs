//! A thread-safe cache of rendered utterances.
//!
//! Synthesis is the single most repeated computation in a campaign: every
//! trial of every cell speaks one of a handful of `(command, talker)`
//! combinations.  [`UtteranceCache`] renders each combination once and
//! hands out shared references, so the per-trial (and per-cell) cost of a
//! campaign drops to the channel simulation itself.
//!
//! The cache key is the *identity* of the talker, not the profile values:
//! the legitimate-delivery semantics select a talker as `seed % 8`
//! ([`TalkerKey::Variant`]), and the attacker always uses the canonical
//! TTS voice ([`TalkerKey::Canonical`]).  Rendering is deterministic, so a
//! cached utterance is bit-identical to a fresh render.

use crate::commands::{CommandId, VoiceCommand};
use crate::error::Result;
use crate::synthesis::{SpeakerProfile, Synthesizer, Utterance};
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// Which synthetic talker speaks the command.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TalkerKey {
    /// The canonical TTS voice (attack deliveries, recogniser templates).
    Canonical,
    /// One of the deterministic talker variants
    /// ([`SpeakerProfile::variant`]); legitimate deliveries use
    /// `seed % 8`.
    Variant(usize),
}

impl TalkerKey {
    /// The speaker profile this key stands for.
    pub fn profile(&self) -> SpeakerProfile {
        match self {
            TalkerKey::Canonical => SpeakerProfile::canonical(),
            TalkerKey::Variant(index) => SpeakerProfile::variant(*index),
        }
    }
}

/// A thread-safe render-once cache of `(command, talker)` utterances.
#[derive(Debug, Default)]
pub struct UtteranceCache {
    entries: Mutex<HashMap<(CommandId, TalkerKey), Arc<Utterance>>>,
}

impl UtteranceCache {
    /// An empty cache.
    pub fn new() -> Self {
        UtteranceCache::default()
    }

    /// The utterance of `command` spoken by `talker`, rendering it with
    /// `synth` on the first request and returning the shared copy after.
    pub fn rendered(
        &self,
        synth: &Synthesizer,
        command: &VoiceCommand,
        talker: TalkerKey,
    ) -> Result<Arc<Utterance>> {
        let key = (command.id, talker);
        if let Some(hit) = self
            .entries
            .lock()
            .expect("utterance cache poisoned")
            .get(&key)
        {
            return Ok(Arc::clone(hit));
        }
        // Render outside the lock: synthesis is the expensive part, and
        // concurrent misses on *different* keys should not serialise.  A
        // concurrent miss on the same key renders twice and keeps the
        // first insertion — wasteful but correct (rendering is pure).
        let rendered = Arc::new(synth.render(command, &talker.profile())?);
        let mut entries = self.entries.lock().expect("utterance cache poisoned");
        Ok(Arc::clone(entries.entry(key).or_insert(rendered)))
    }

    /// Number of distinct `(command, talker)` renders held.
    pub fn len(&self) -> usize {
        self.entries.lock().expect("utterance cache poisoned").len()
    }

    /// `true` if nothing has been rendered yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::commands::corpus;

    #[test]
    fn cache_hits_are_bit_identical_to_fresh_renders_and_rendered_once() {
        let synth = Synthesizer::new(48_000.0).unwrap();
        let cache = UtteranceCache::new();
        let command = &corpus()[0];
        let first = cache
            .rendered(&synth, command, TalkerKey::Variant(3))
            .unwrap();
        let again = cache
            .rendered(&synth, command, TalkerKey::Variant(3))
            .unwrap();
        // Same allocation, not merely equal content.
        assert!(Arc::ptr_eq(&first, &again));
        let fresh = synth.render(command, &SpeakerProfile::variant(3)).unwrap();
        assert_eq!(first.signal.samples(), fresh.signal.samples());
        assert_eq!(cache.len(), 1);
        // A different talker (or command) is a distinct entry.
        cache
            .rendered(&synth, command, TalkerKey::Canonical)
            .unwrap();
        cache
            .rendered(&synth, &corpus()[1], TalkerKey::Variant(3))
            .unwrap();
        assert_eq!(cache.len(), 3);
        assert!(!cache.is_empty());
    }
}
