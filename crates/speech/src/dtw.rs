//! Dynamic time warping over feature-vector sequences.
//!
//! DTW aligns a recording's MFCC sequence against a command template even
//! when the two differ in speaking rate or have been shifted by propagation
//! delay, and the per-cell costs along the optimal path provide per-word
//! match quality for the accuracy metric.

use crate::error::{Result, SpeechError};

/// Result of a DTW alignment.
#[derive(Debug, Clone, PartialEq)]
pub struct DtwAlignment {
    /// Total accumulated distance along the optimal path.
    pub total_distance: f64,
    /// Total distance divided by the path length.
    pub normalized_distance: f64,
    /// The optimal path as `(template_index, query_index)` pairs, from the
    /// start of both sequences to their ends.
    pub path: Vec<(usize, usize)>,
}

impl DtwAlignment {
    /// Query indices aligned to template index `i` (empty if none).
    pub fn query_indices_for_template(&self, template_index: usize) -> Vec<usize> {
        self.path
            .iter()
            .filter(|(t, _)| *t == template_index)
            .map(|(_, q)| *q)
            .collect()
    }

    /// Mean per-step distance over the path cells whose template index lies
    /// in `[start, end)` — the per-word match quality used by the
    /// recogniser.  Returns `None` if the range is empty on the path.
    pub fn mean_distance_in_template_range(
        &self,
        start: usize,
        end: usize,
        costs: &[Vec<f64>],
    ) -> Option<f64> {
        let cells: Vec<&(usize, usize)> = self
            .path
            .iter()
            .filter(|(t, _)| *t >= start && *t < end)
            .collect();
        if cells.is_empty() {
            return None;
        }
        let sum: f64 = cells.iter().map(|(t, q)| costs[*t][*q]).sum();
        Some(sum / cells.len() as f64)
    }
}

/// Euclidean distance between two equal-length feature vectors.
pub fn euclidean(a: &[f64], b: &[f64]) -> f64 {
    a.iter()
        .zip(b.iter())
        .map(|(x, y)| (x - y) * (x - y))
        .sum::<f64>()
        .sqrt()
}

/// Computes the full pairwise cost matrix between two feature sequences.
pub fn cost_matrix(template: &[Vec<f64>], query: &[Vec<f64>]) -> Vec<Vec<f64>> {
    template
        .iter()
        .map(|t| query.iter().map(|q| euclidean(t, q)).collect())
        .collect()
}

/// Aligns `query` against `template` with classic DTW (step pattern:
/// match / insertion / deletion, no slope constraint).
pub fn align(template: &[Vec<f64>], query: &[Vec<f64>]) -> Result<DtwAlignment> {
    if template.is_empty() || query.is_empty() {
        return Err(SpeechError::invalid(
            "dtw",
            "both sequences must be non-empty",
        ));
    }
    let costs = cost_matrix(template, query);
    align_with_costs(&costs)
}

/// Aligns two sequences given a precomputed cost matrix
/// (`costs[template_index][query_index]`).
pub fn align_with_costs(costs: &[Vec<f64>]) -> Result<DtwAlignment> {
    let n = costs.len();
    if n == 0 || costs[0].is_empty() {
        return Err(SpeechError::invalid("dtw", "empty cost matrix"));
    }
    let m = costs[0].len();
    let mut acc = vec![vec![f64::INFINITY; m]; n];
    // Backpointers: 0 = diagonal, 1 = from left (query insertion), 2 = from
    // above (template insertion).
    let mut back = vec![vec![0u8; m]; n];
    acc[0][0] = costs[0][0];
    for j in 1..m {
        acc[0][j] = acc[0][j - 1] + costs[0][j];
        back[0][j] = 1;
    }
    for i in 1..n {
        acc[i][0] = acc[i - 1][0] + costs[i][0];
        back[i][0] = 2;
        for j in 1..m {
            let diag = acc[i - 1][j - 1];
            let left = acc[i][j - 1];
            let up = acc[i - 1][j];
            let (best, dir) = if diag <= left && diag <= up {
                (diag, 0)
            } else if left <= up {
                (left, 1)
            } else {
                (up, 2)
            };
            acc[i][j] = best + costs[i][j];
            back[i][j] = dir;
        }
    }
    // Trace back the optimal path.
    let mut path = Vec::new();
    let (mut i, mut j) = (n - 1, m - 1);
    loop {
        path.push((i, j));
        if i == 0 && j == 0 {
            break;
        }
        match back[i][j] {
            0 => {
                i -= 1;
                j -= 1;
            }
            1 => j -= 1,
            _ => i -= 1,
        }
    }
    path.reverse();
    let total = acc[n - 1][m - 1];
    Ok(DtwAlignment {
        total_distance: total,
        normalized_distance: total / path.len() as f64,
        path,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq(values: &[f64]) -> Vec<Vec<f64>> {
        values.iter().map(|&v| vec![v]).collect()
    }

    #[test]
    fn validation() {
        assert!(align(&[], &seq(&[1.0])).is_err());
        assert!(align(&seq(&[1.0]), &[]).is_err());
        assert!(align_with_costs(&[]).is_err());
    }

    #[test]
    fn identical_sequences_have_zero_distance() {
        let a = seq(&[0.0, 1.0, 2.0, 3.0, 2.0, 1.0]);
        let out = align(&a, &a).unwrap();
        assert!(out.total_distance < 1e-12);
        assert!(out.normalized_distance < 1e-12);
        // The path is the diagonal.
        for (k, (i, j)) in out.path.iter().enumerate() {
            assert_eq!(k, *i);
            assert_eq!(k, *j);
        }
    }

    #[test]
    fn time_stretched_sequence_still_aligns_cheaply() {
        let template = seq(&[0.0, 1.0, 2.0, 3.0, 2.0, 1.0, 0.0]);
        // The same shape, but each value doubled in duration.
        let stretched = seq(&[
            0.0, 0.0, 1.0, 1.0, 2.0, 2.0, 3.0, 3.0, 2.0, 2.0, 1.0, 1.0, 0.0, 0.0,
        ]);
        let different = seq(&[5.0, -3.0, 7.0, -2.0, 6.0, -1.0, 5.0]);
        let good = align(&template, &stretched).unwrap();
        let bad = align(&template, &different).unwrap();
        assert!(
            good.normalized_distance < 0.2,
            "{}",
            good.normalized_distance
        );
        assert!(bad.normalized_distance > good.normalized_distance * 5.0);
    }

    #[test]
    fn path_is_monotonic_and_covers_both_ends() {
        let a = seq(&[0.0, 1.0, 0.5, 2.0]);
        let b = seq(&[0.0, 0.9, 0.6, 0.4, 2.1]);
        let out = align(&a, &b).unwrap();
        assert_eq!(out.path.first(), Some(&(0usize, 0usize)));
        assert_eq!(out.path.last(), Some(&(3usize, 4usize)));
        for w in out.path.windows(2) {
            assert!(w[1].0 >= w[0].0);
            assert!(w[1].1 >= w[0].1);
            assert!(w[1].0 - w[0].0 <= 1);
            assert!(w[1].1 - w[0].1 <= 1);
        }
    }

    #[test]
    fn per_range_distance_identifies_the_corrupted_segment() {
        let template = seq(&[1.0, 1.0, 1.0, 5.0, 5.0, 5.0]);
        // Second half corrupted.
        let query = seq(&[1.0, 1.0, 1.0, 9.0, 9.0, 9.0]);
        let costs = cost_matrix(&template, &query);
        let out = align_with_costs(&costs).unwrap();
        let first = out.mean_distance_in_template_range(0, 3, &costs).unwrap();
        let second = out.mean_distance_in_template_range(3, 6, &costs).unwrap();
        assert!(first < 0.5);
        assert!(second > 2.0);
        assert!(out
            .mean_distance_in_template_range(10, 20, &costs)
            .is_none());
    }

    #[test]
    fn query_indices_lookup() {
        let a = seq(&[0.0, 1.0, 2.0]);
        let b = seq(&[0.0, 1.0, 1.0, 2.0]);
        let out = align(&a, &b).unwrap();
        let idx = out.query_indices_for_template(1);
        assert!(!idx.is_empty());
        assert!(idx.iter().all(|&q| q < 4));
    }

    #[test]
    fn euclidean_distance_basics() {
        assert_eq!(euclidean(&[0.0, 0.0], &[3.0, 4.0]), 5.0);
        assert_eq!(euclidean(&[1.0], &[1.0]), 0.0);
    }
}
