//! A compact phoneme inventory sufficient to render the voice commands the
//! paper uses.
//!
//! Each phoneme carries the acoustic recipe the synthesiser needs: whether
//! it is voiced, its typical duration, and either formant targets (voiced
//! sonorants) or a noise band (obstruents).

/// Manner class of a phoneme, which selects the synthesis recipe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Manner {
    /// Vowels and approximants: voiced source through formant resonators.
    Vowel,
    /// Nasals: voiced source, low-passed, weak upper formants.
    Nasal,
    /// Fricatives: shaped noise, possibly with a voiced component.
    Fricative,
    /// Stops/plosives: brief silence followed by a noise burst.
    Stop,
    /// Silence / pause.
    Silence,
}

/// One phoneme of the synthesiser's inventory.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Phoneme {
    /// ARPAbet-style symbol.
    pub symbol: &'static str,
    /// Manner class.
    pub manner: Manner,
    /// Whether the source is voiced.
    pub voiced: bool,
    /// Nominal duration in seconds (scaled by speaking rate).
    pub duration_s: f64,
    /// Formant frequencies in Hz (used by vowels, nasals, approximants).
    pub formants_hz: [f64; 3],
    /// Formant bandwidths in Hz.
    pub bandwidths_hz: [f64; 3],
    /// Noise band for obstruents `(low_hz, high_hz)`.
    pub noise_band_hz: (f64, f64),
    /// Relative amplitude (1.0 = typical vowel).
    pub amplitude: f64,
}

impl Phoneme {
    const fn vowel(symbol: &'static str, f1: f64, f2: f64, f3: f64, duration_s: f64) -> Self {
        Phoneme {
            symbol,
            manner: Manner::Vowel,
            voiced: true,
            duration_s,
            formants_hz: [f1, f2, f3],
            bandwidths_hz: [80.0, 110.0, 160.0],
            noise_band_hz: (0.0, 0.0),
            amplitude: 1.0,
        }
    }

    const fn nasal(symbol: &'static str, f1: f64, f2: f64, f3: f64) -> Self {
        Phoneme {
            symbol,
            manner: Manner::Nasal,
            voiced: true,
            duration_s: 0.07,
            formants_hz: [f1, f2, f3],
            bandwidths_hz: [100.0, 150.0, 200.0],
            noise_band_hz: (0.0, 0.0),
            amplitude: 0.55,
        }
    }

    const fn fricative(
        symbol: &'static str,
        low: f64,
        high: f64,
        voiced: bool,
        amplitude: f64,
    ) -> Self {
        Phoneme {
            symbol,
            manner: Manner::Fricative,
            voiced,
            duration_s: 0.09,
            formants_hz: [0.0, 0.0, 0.0],
            bandwidths_hz: [0.0, 0.0, 0.0],
            noise_band_hz: (low, high),
            amplitude,
        }
    }

    const fn stop(symbol: &'static str, low: f64, high: f64, voiced: bool) -> Self {
        Phoneme {
            symbol,
            manner: Manner::Stop,
            voiced,
            duration_s: 0.06,
            formants_hz: [0.0, 0.0, 0.0],
            bandwidths_hz: [0.0, 0.0, 0.0],
            noise_band_hz: (low, high),
            amplitude: 0.7,
        }
    }

    /// The inter-word / inter-phrase pause.
    pub const PAUSE: Phoneme = Phoneme {
        symbol: "sil",
        manner: Manner::Silence,
        voiced: false,
        duration_s: 0.08,
        formants_hz: [0.0, 0.0, 0.0],
        bandwidths_hz: [0.0, 0.0, 0.0],
        noise_band_hz: (0.0, 0.0),
        amplitude: 0.0,
    };

    /// Looks a phoneme up by its ARPAbet-style symbol.
    pub fn lookup(symbol: &str) -> Option<Phoneme> {
        INVENTORY.iter().copied().find(|p| p.symbol == symbol)
    }

    /// The full inventory.
    pub fn inventory() -> &'static [Phoneme] {
        INVENTORY
    }
}

/// The synthesiser's phoneme inventory.  Formant targets follow the classic
/// Peterson–Barney style average values for an adult speaker.
static INVENTORY: &[Phoneme] = &[
    // Vowels.
    Phoneme::vowel("AA", 730.0, 1090.0, 2440.0, 0.14), // f-a-ther
    Phoneme::vowel("AE", 660.0, 1720.0, 2410.0, 0.13), // c-a-t
    Phoneme::vowel("AH", 640.0, 1190.0, 2390.0, 0.10), // b-u-t
    Phoneme::vowel("AO", 570.0, 840.0, 2410.0, 0.14),  // c-augh-t
    Phoneme::vowel("EH", 530.0, 1840.0, 2480.0, 0.11), // b-e-d
    Phoneme::vowel("ER", 490.0, 1350.0, 1690.0, 0.12), // b-ir-d
    Phoneme::vowel("EY", 480.0, 2000.0, 2600.0, 0.13), // b-ai-t
    Phoneme::vowel("IH", 390.0, 1990.0, 2550.0, 0.09), // b-i-t
    Phoneme::vowel("IY", 270.0, 2290.0, 3010.0, 0.11), // b-ee-t
    Phoneme::vowel("OW", 490.0, 910.0, 2450.0, 0.13),  // b-oa-t
    Phoneme::vowel("UH", 440.0, 1020.0, 2240.0, 0.09), // b-oo-k
    Phoneme::vowel("UW", 300.0, 870.0, 2240.0, 0.12),  // b-oo-t
    Phoneme::vowel("AY", 660.0, 1200.0, 2550.0, 0.15), // b-uy (rendered as a single target)
    // Approximants rendered as short vowels.
    Phoneme::vowel("L", 360.0, 1300.0, 2600.0, 0.06),
    Phoneme::vowel("R", 420.0, 1300.0, 1600.0, 0.06),
    Phoneme::vowel("W", 320.0, 720.0, 2300.0, 0.06),
    Phoneme::vowel("Y", 290.0, 2200.0, 3000.0, 0.06),
    // Nasals.
    Phoneme::nasal("M", 280.0, 1050.0, 2200.0),
    Phoneme::nasal("N", 280.0, 1700.0, 2600.0),
    Phoneme::nasal("NG", 280.0, 2300.0, 2750.0),
    // Fricatives.
    Phoneme::fricative("S", 4_000.0, 8_000.0, false, 0.45),
    Phoneme::fricative("SH", 2_000.0, 6_000.0, false, 0.5),
    Phoneme::fricative("F", 1_500.0, 7_000.0, false, 0.3),
    Phoneme::fricative("TH", 1_400.0, 7_500.0, false, 0.25),
    Phoneme::fricative("Z", 3_500.0, 7_500.0, true, 0.4),
    Phoneme::fricative("V", 1_000.0, 5_000.0, true, 0.3),
    Phoneme::fricative("HH", 500.0, 4_000.0, false, 0.25),
    // Stops.
    Phoneme::stop("P", 800.0, 2_000.0, false),
    Phoneme::stop("B", 400.0, 1_500.0, true),
    Phoneme::stop("T", 3_000.0, 6_000.0, false),
    Phoneme::stop("D", 2_500.0, 4_500.0, true),
    Phoneme::stop("K", 1_500.0, 3_500.0, false),
    Phoneme::stop("G", 1_200.0, 2_800.0, true),
    Phoneme::stop("CH", 2_500.0, 6_000.0, false),
    Phoneme::stop("JH", 2_000.0, 5_000.0, true),
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inventory_lookup_works() {
        let aa = Phoneme::lookup("AA").unwrap();
        assert_eq!(aa.manner, Manner::Vowel);
        assert!(aa.voiced);
        assert!(Phoneme::lookup("ZZ").is_none());
        assert!(Phoneme::inventory().len() > 30);
    }

    #[test]
    fn symbols_are_unique() {
        let inv = Phoneme::inventory();
        for (i, a) in inv.iter().enumerate() {
            for b in &inv[i + 1..] {
                assert_ne!(a.symbol, b.symbol, "duplicate symbol {}", a.symbol);
            }
        }
    }

    #[test]
    fn vowels_have_ordered_formants() {
        for p in Phoneme::inventory() {
            if p.manner == Manner::Vowel {
                assert!(p.formants_hz[0] < p.formants_hz[1]);
                assert!(p.formants_hz[1] < p.formants_hz[2]);
                assert!(p.formants_hz[0] > 200.0 && p.formants_hz[2] < 4_000.0);
            }
        }
    }

    #[test]
    fn obstruents_have_valid_noise_bands() {
        for p in Phoneme::inventory() {
            match p.manner {
                Manner::Fricative | Manner::Stop => {
                    assert!(p.noise_band_hz.0 < p.noise_band_hz.1, "{}", p.symbol);
                    assert!(p.noise_band_hz.1 <= 8_000.0, "{}", p.symbol);
                }
                _ => {}
            }
        }
    }

    #[test]
    fn durations_are_reasonable() {
        for p in Phoneme::inventory() {
            assert!(p.duration_s > 0.02 && p.duration_s < 0.3, "{}", p.symbol);
        }
        assert_eq!(Phoneme::PAUSE.amplitude, 0.0);
        assert_eq!(Phoneme::PAUSE.manner, Manner::Silence);
    }
}
