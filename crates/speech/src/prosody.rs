//! Prosody: pitch contours and speaking-rate control.
//!
//! Natural-sounding pitch is not the goal; what matters for the defense
//! evaluation is that synthesised "legitimate" speech has a realistic
//! fundamental-frequency range (85–255 Hz for adult speakers), some
//! declination over an utterance, and speaker-to-speaker variation.

use crate::error::{Result, SpeechError};

/// A pitch contour over an utterance.
#[derive(Debug, Clone, PartialEq)]
pub struct PitchContour {
    /// Base fundamental frequency in Hz.
    pub base_f0_hz: f64,
    /// Total declination over the utterance, as a fraction of base F0.
    pub declination: f64,
    /// Depth of the slow sinusoidal intonation wobble, as a fraction of F0.
    pub intonation_depth: f64,
    /// Frequency of the intonation wobble in Hz.
    pub intonation_rate_hz: f64,
}

impl PitchContour {
    /// Creates a validated contour.
    pub fn new(
        base_f0_hz: f64,
        declination: f64,
        intonation_depth: f64,
        intonation_rate_hz: f64,
    ) -> Result<Self> {
        if !(50.0..=400.0).contains(&base_f0_hz) {
            return Err(SpeechError::invalid(
                "base_f0_hz",
                format!("{base_f0_hz} outside [50, 400]"),
            ));
        }
        if !(0.0..=0.5).contains(&declination) || !(0.0..=0.5).contains(&intonation_depth) {
            return Err(SpeechError::invalid(
                "contour shape",
                "declination and intonation depth must be within [0, 0.5]",
            ));
        }
        if !(0.0..=10.0).contains(&intonation_rate_hz) {
            return Err(SpeechError::invalid(
                "intonation_rate_hz",
                "must be within [0, 10] Hz",
            ));
        }
        Ok(PitchContour {
            base_f0_hz,
            declination,
            intonation_depth,
            intonation_rate_hz,
        })
    }

    /// A typical adult male contour.
    pub fn male() -> Self {
        PitchContour::new(115.0, 0.15, 0.06, 2.3).expect("valid constants")
    }

    /// A typical adult female contour.
    pub fn female() -> Self {
        PitchContour::new(210.0, 0.15, 0.07, 2.7).expect("valid constants")
    }

    /// Instantaneous F0 at normalised utterance position `x` in `[0, 1]`.
    pub fn f0_at(&self, x: f64) -> f64 {
        let x = x.clamp(0.0, 1.0);
        let declined = self.base_f0_hz * (1.0 - self.declination * x);
        let wobble = 1.0
            + self.intonation_depth
                * (2.0 * std::f64::consts::PI * self.intonation_rate_hz * x).sin();
        declined * wobble
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation() {
        assert!(PitchContour::new(30.0, 0.1, 0.05, 2.0).is_err());
        assert!(PitchContour::new(120.0, 0.9, 0.05, 2.0).is_err());
        assert!(PitchContour::new(120.0, 0.1, 0.05, 20.0).is_err());
        assert!(PitchContour::new(120.0, 0.1, 0.05, 2.0).is_ok());
    }

    #[test]
    fn presets_sit_in_expected_ranges() {
        let m = PitchContour::male();
        let f = PitchContour::female();
        assert!(m.base_f0_hz > 85.0 && m.base_f0_hz < 155.0);
        assert!(f.base_f0_hz > 165.0 && f.base_f0_hz < 255.0);
    }

    #[test]
    fn f0_declines_over_the_utterance() {
        let c = PitchContour::new(120.0, 0.2, 0.0, 0.0).unwrap();
        assert!(c.f0_at(0.0) > c.f0_at(1.0));
        assert!((c.f0_at(1.0) - 96.0).abs() < 1e-9);
        // Clamped outside [0, 1].
        assert_eq!(c.f0_at(-1.0), c.f0_at(0.0));
        assert_eq!(c.f0_at(2.0), c.f0_at(1.0));
    }

    #[test]
    fn f0_stays_within_voice_range() {
        for contour in [PitchContour::male(), PitchContour::female()] {
            for i in 0..=20 {
                let f0 = contour.f0_at(i as f64 / 20.0);
                assert!(f0 > 70.0 && f0 < 260.0, "f0 {f0}");
            }
        }
    }
}
