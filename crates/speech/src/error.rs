//! Error type for the speech substrate.

use std::fmt;

/// Convenience alias used across the crate.
pub type Result<T> = std::result::Result<T, SpeechError>;

/// Errors produced by synthesis, feature extraction or recognition.
#[derive(Debug, Clone, PartialEq)]
pub enum SpeechError {
    /// A parameter was outside its valid range.
    InvalidParameter {
        /// Parameter name.
        name: &'static str,
        /// Description of the violation.
        message: String,
    },
    /// The recogniser holds no templates for the requested operation.
    NoTemplates,
    /// An error bubbled up from the DSP layer.
    Dsp(ivc_dsp::DspError),
}

impl fmt::Display for SpeechError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpeechError::InvalidParameter { name, message } => {
                write!(f, "invalid speech parameter `{name}`: {message}")
            }
            SpeechError::NoTemplates => write!(f, "recogniser has no enrolled command templates"),
            SpeechError::Dsp(e) => write!(f, "dsp error: {e}"),
        }
    }
}

impl std::error::Error for SpeechError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SpeechError::Dsp(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ivc_dsp::DspError> for SpeechError {
    fn from(e: ivc_dsp::DspError) -> Self {
        SpeechError::Dsp(e)
    }
}

impl SpeechError {
    /// Helper to build an [`SpeechError::InvalidParameter`].
    pub fn invalid(name: &'static str, message: impl Into<String>) -> Self {
        SpeechError::InvalidParameter {
            name,
            message: message.into(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_sources() {
        assert!(SpeechError::invalid("f0", "negative")
            .to_string()
            .contains("f0"));
        assert!(SpeechError::NoTemplates.to_string().contains("templates"));
        let e: SpeechError = ivc_dsp::DspError::EmptyInput { operation: "x" }.into();
        assert!(std::error::Error::source(&e).is_some());
        assert!(std::error::Error::source(&SpeechError::NoTemplates).is_none());
    }
}
