//! The voice-command corpus.
//!
//! These are the commands the paper (and its companion work) actually
//! injects: camera, airplane-mode and shopping-list commands prefixed with
//! the wake words "OK Google" / "Alexa", plus a few extra commands so the
//! recogniser has a non-trivial vocabulary to confuse.

use crate::phoneme::Phoneme;

/// Identifier of a command in the corpus.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CommandId(pub usize);

/// A voice command: its text and its phonetic transcription word by word.
#[derive(Debug, Clone, PartialEq)]
pub struct VoiceCommand {
    /// Identifier (index into the corpus).
    pub id: CommandId,
    /// Human-readable text.
    pub text: &'static str,
    /// Words, each a list of phoneme symbols from the inventory.
    pub words: Vec<(&'static str, Vec<&'static str>)>,
}

impl VoiceCommand {
    /// Number of words in the command.
    pub fn num_words(&self) -> usize {
        self.words.len()
    }

    /// Flat list of phoneme symbols with pauses between words.
    pub fn phoneme_symbols(&self) -> Vec<&'static str> {
        let mut out = Vec::new();
        for (i, (_, phones)) in self.words.iter().enumerate() {
            if i > 0 {
                out.push("sil");
            }
            out.extend(phones.iter().copied());
        }
        out
    }

    /// Checks that every phoneme symbol exists in the inventory.
    pub fn is_renderable(&self) -> bool {
        self.phoneme_symbols()
            .iter()
            .all(|s| *s == "sil" || Phoneme::lookup(s).is_some())
    }
}

/// Returns the full command corpus.
///
/// Index 0 and 1 are the two commands used in the paper's end-to-end attack
/// demonstrations; the rest give the recogniser distractors.
pub fn corpus() -> Vec<VoiceCommand> {
    let defs: Vec<(&'static str, Vec<(&'static str, Vec<&'static str>)>)> = vec![
        (
            "ok google take a picture",
            vec![
                ("ok", vec!["OW", "K", "EY"]),
                ("google", vec!["G", "UW", "G", "AH", "L"]),
                ("take", vec!["T", "EY", "K"]),
                ("a", vec!["AH"]),
                ("picture", vec!["P", "IH", "K", "CH", "ER"]),
            ],
        ),
        (
            "alexa add milk to my shopping list",
            vec![
                ("alexa", vec!["AH", "L", "EH", "K", "S", "AH"]),
                ("add", vec!["AE", "D"]),
                ("milk", vec!["M", "IH", "L", "K"]),
                ("to", vec!["T", "UW"]),
                ("my", vec!["M", "AY"]),
                ("shopping", vec!["SH", "AA", "P", "IH", "NG"]),
                ("list", vec!["L", "IH", "S", "T"]),
            ],
        ),
        (
            "ok google turn on airplane mode",
            vec![
                ("ok", vec!["OW", "K", "EY"]),
                ("google", vec!["G", "UW", "G", "AH", "L"]),
                ("turn", vec!["T", "ER", "N"]),
                ("on", vec!["AA", "N"]),
                ("airplane", vec!["EH", "R", "P", "L", "EY", "N"]),
                ("mode", vec!["M", "OW", "D"]),
            ],
        ),
        (
            "alexa what is the weather",
            vec![
                ("alexa", vec!["AH", "L", "EH", "K", "S", "AH"]),
                ("what", vec!["W", "AH", "T"]),
                ("is", vec!["IH", "Z"]),
                ("the", vec!["TH", "AH"]),
                ("weather", vec!["W", "EH", "TH", "ER"]),
            ],
        ),
        (
            "ok google call mom",
            vec![
                ("ok", vec!["OW", "K", "EY"]),
                ("google", vec!["G", "UW", "G", "AH", "L"]),
                ("call", vec!["K", "AO", "L"]),
                ("mom", vec!["M", "AA", "M"]),
            ],
        ),
        (
            "alexa open the garage door",
            vec![
                ("alexa", vec!["AH", "L", "EH", "K", "S", "AH"]),
                ("open", vec!["OW", "P", "AH", "N"]),
                ("the", vec!["TH", "AH"]),
                ("garage", vec!["G", "AH", "R", "AA", "ZH_FALLBACK"]),
                ("door", vec!["D", "AO", "R"]),
            ],
        ),
        (
            "ok google send a message",
            vec![
                ("ok", vec!["OW", "K", "EY"]),
                ("google", vec!["G", "UW", "G", "AH", "L"]),
                ("send", vec!["S", "EH", "N", "D"]),
                ("a", vec!["AH"]),
                ("message", vec!["M", "EH", "S", "IH", "JH"]),
            ],
        ),
        (
            "alexa turn off the lights",
            vec![
                ("alexa", vec!["AH", "L", "EH", "K", "S", "AH"]),
                ("turn", vec!["T", "ER", "N"]),
                ("off", vec!["AO", "F"]),
                ("the", vec!["TH", "AH"]),
                ("lights", vec!["L", "AY", "T", "S"]),
            ],
        ),
    ];
    defs.into_iter()
        .enumerate()
        .map(|(i, (text, words))| {
            // Map the one placeholder symbol to an in-inventory phoneme.
            let words = words
                .into_iter()
                .map(|(w, phones)| {
                    let phones = phones
                        .into_iter()
                        .map(|p| if p == "ZH_FALLBACK" { "SH" } else { p })
                        .collect();
                    (w, phones)
                })
                .collect();
            VoiceCommand {
                id: CommandId(i),
                text,
                words,
            }
        })
        .collect()
}

/// Looks up a command by its text.
pub fn find_by_text(text: &str) -> Option<VoiceCommand> {
    corpus().into_iter().find(|c| c.text == text)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_is_nonempty_and_renderable() {
        let commands = corpus();
        assert!(commands.len() >= 8);
        for c in &commands {
            assert!(
                c.is_renderable(),
                "command {:?} uses unknown phonemes",
                c.text
            );
            assert!(c.num_words() >= 3);
            assert!(!c.phoneme_symbols().is_empty());
        }
    }

    #[test]
    fn ids_match_positions() {
        for (i, c) in corpus().iter().enumerate() {
            assert_eq!(c.id, CommandId(i));
        }
    }

    #[test]
    fn paper_commands_are_present() {
        assert!(find_by_text("ok google take a picture").is_some());
        assert!(find_by_text("alexa add milk to my shopping list").is_some());
        assert!(find_by_text("ok google turn on airplane mode").is_some());
        assert!(find_by_text("no such command").is_none());
    }

    #[test]
    fn phoneme_symbols_insert_pauses_between_words() {
        let c = find_by_text("ok google call mom").unwrap();
        let symbols = c.phoneme_symbols();
        let pauses = symbols.iter().filter(|s| **s == "sil").count();
        assert_eq!(pauses, c.num_words() - 1);
    }

    #[test]
    fn texts_are_unique() {
        let commands = corpus();
        for (i, a) in commands.iter().enumerate() {
            for b in &commands[i + 1..] {
                assert_ne!(a.text, b.text);
            }
        }
    }
}
