//! Human audibility modelling.
//!
//! The attack is only useful if a bystander (the device owner) does not hear
//! it, so the evaluation needs a stand-in for the paper's human listeners.
//! Audibility here is decided against the absolute threshold of hearing in
//! quiet (Terhardt's analytic approximation of the ISO 226 contour): a
//! signal is judged audible if its SPL within any sub-band of the audible
//! range exceeds the threshold at that band's centre frequency by a safety
//! margin.

use crate::error::{AcousticsError, Result};
use crate::spl::pressure_to_spl_db;
use ivc_dsp::spectrum::welch_psd;
use ivc_dsp::window::WindowKind;

/// Upper edge of human hearing used by the audibility analysis, in Hz.
pub const AUDIBLE_UPPER_HZ: f64 = 18_000.0;
/// Lower edge of human hearing used by the audibility analysis, in Hz.
pub const AUDIBLE_LOWER_HZ: f64 = 30.0;

/// Absolute threshold of hearing in quiet at `frequency_hz`, in dB SPL
/// (Terhardt 1979 approximation).  Rises very steeply above ~15 kHz, which
/// is exactly why a well-designed ultrasonic attack is inaudible.
pub fn hearing_threshold_db_spl(frequency_hz: f64) -> f64 {
    let f_khz = (frequency_hz / 1_000.0).max(0.02);
    3.64 * f_khz.powf(-0.8) - 6.5 * (-0.6 * (f_khz - 3.3).powi(2)).exp() + 1e-3 * f_khz.powi(4)
}

/// Result of an audibility analysis of a pressure waveform.
#[derive(Debug, Clone, PartialEq)]
pub struct AudibilityReport {
    /// `true` if any analysed band exceeded threshold + margin.
    pub audible: bool,
    /// The largest margin (band SPL minus threshold) over all bands, in dB.
    /// Negative values mean the signal is below threshold everywhere.
    pub worst_margin_db: f64,
    /// Centre frequency of the band with the largest margin, in Hz.
    pub worst_band_hz: f64,
    /// Overall unweighted SPL of the audible portion (30 Hz – 18 kHz), dB.
    pub audible_band_spl_db: f64,
}

/// Analyses whether a pressure waveform (pascal) would be heard by a person
/// at the point where it was measured.
///
/// `margin_db` raises the detection bar: a margin of 0 dB means "at
/// threshold", a margin of 10 dB requires the band to be clearly above
/// threshold before it is flagged.
pub fn audibility(
    pressure_samples: &[f64],
    sample_rate_hz: f64,
    margin_db: f64,
) -> Result<AudibilityReport> {
    if pressure_samples.is_empty() {
        return Err(AcousticsError::invalid(
            "pressure_samples",
            "empty waveform",
        ));
    }
    if !(sample_rate_hz > 0.0) {
        return Err(AcousticsError::invalid(
            "sample_rate_hz",
            "must be positive",
        ));
    }
    let seg = pressure_samples.len().clamp(512, 8_192);
    let psd = welch_psd(pressure_samples, sample_rate_hz, seg, 0.5, WindowKind::Hann)?;

    // Third-octave-style analysis bands across the audible range.
    let mut worst_margin = f64::NEG_INFINITY;
    let mut worst_band = AUDIBLE_LOWER_HZ;
    let mut audible_power = 0.0;
    let mut centre = AUDIBLE_LOWER_HZ * 2f64.powf(1.0 / 6.0);
    while centre < AUDIBLE_UPPER_HZ && centre < sample_rate_hz / 2.0 {
        let low = centre / 2f64.powf(1.0 / 6.0);
        let high = centre * 2f64.powf(1.0 / 6.0);
        let band_power = psd.band_power(low, high.min(sample_rate_hz / 2.0));
        audible_power += band_power;
        let band_spl = pressure_to_spl_db(band_power.max(0.0).sqrt());
        let threshold = hearing_threshold_db_spl(centre);
        let margin = band_spl - threshold;
        if margin > worst_margin {
            worst_margin = margin;
            worst_band = centre;
        }
        centre *= 2f64.powf(1.0 / 3.0);
    }
    let audible_band_spl_db = pressure_to_spl_db(audible_power.max(0.0).sqrt());
    Ok(AudibilityReport {
        audible: worst_margin > margin_db,
        worst_margin_db: worst_margin,
        worst_band_hz: worst_band,
        audible_band_spl_db,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spl::spl_db_to_pressure;
    use ivc_dsp::signal::Signal;

    fn tone_pa(freq: f64, spl_db: f64, fs: f64) -> Signal {
        let amp = spl_db_to_pressure(spl_db) * std::f64::consts::SQRT_2;
        Signal::tone(freq, amp, 0.5, fs).unwrap()
    }

    #[test]
    fn validation() {
        assert!(audibility(&[], 48_000.0, 0.0).is_err());
        assert!(audibility(&[1.0; 64], 0.0, 0.0).is_err());
    }

    #[test]
    fn threshold_has_expected_shape() {
        // Most sensitive region is 2-5 kHz, threshold near or below 0 dB SPL.
        assert!(hearing_threshold_db_spl(3_500.0) < 0.0);
        // 1 kHz threshold is a few dB SPL.
        let t1k = hearing_threshold_db_spl(1_000.0);
        assert!(t1k > 0.0 && t1k < 10.0, "t1k {t1k}");
        // Low frequencies need much more level.
        assert!(hearing_threshold_db_spl(50.0) > 35.0);
        // Near-ultrasound needs dramatically more level.
        assert!(hearing_threshold_db_spl(18_000.0) > 60.0);
        assert!(hearing_threshold_db_spl(22_000.0) > 100.0);
    }

    #[test]
    fn a_60_db_1khz_tone_is_audible() {
        let s = tone_pa(1_000.0, 60.0, 48_000.0);
        let report = audibility(s.samples(), 48_000.0, 0.0).unwrap();
        assert!(report.audible);
        assert!((report.worst_band_hz - 1_000.0).abs() < 300.0);
        assert!(report.worst_margin_db > 40.0);
    }

    #[test]
    fn a_faint_tone_is_inaudible() {
        let s = tone_pa(1_000.0, -10.0, 48_000.0);
        let report = audibility(s.samples(), 48_000.0, 0.0).unwrap();
        assert!(!report.audible, "margin {}", report.worst_margin_db);
    }

    #[test]
    fn loud_ultrasound_is_inaudible() {
        // A 40 kHz tone at 110 dB SPL carries no audible-band energy.
        let s = tone_pa(40_000.0, 110.0, 192_000.0);
        let report = audibility(s.samples(), 192_000.0, 0.0).unwrap();
        assert!(!report.audible, "margin {}", report.worst_margin_db);
        assert!(report.audible_band_spl_db < 40.0);
    }

    #[test]
    fn margin_parameter_raises_the_bar() {
        let s = tone_pa(1_000.0, 8.0, 48_000.0);
        let strict = audibility(s.samples(), 48_000.0, 0.0).unwrap();
        let lenient = audibility(s.samples(), 48_000.0, 20.0).unwrap();
        assert!(strict.audible);
        assert!(!lenient.audible);
    }

    #[test]
    fn low_frequency_rumble_below_threshold_is_not_flagged() {
        // 45 Hz at 30 dB SPL is below the ~50+ dB threshold at that frequency.
        let s = tone_pa(45.0, 30.0, 48_000.0);
        let report = audibility(s.samples(), 48_000.0, 0.0).unwrap();
        assert!(!report.audible, "margin {}", report.worst_margin_db);
    }
}
