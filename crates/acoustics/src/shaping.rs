//! Frequency-domain shaping of a signal by an arbitrary magnitude response.
//!
//! Both transducer models (speaker and microphone) are "response + memoryless
//! non-linearity" sandwiches; this helper applies the response part: the
//! signal is transformed, each bin scaled by `gain(|f|)`, and transformed
//! back.  Phase is left untouched (zero-phase shaping), which is appropriate
//! because only magnitudes matter for the effects being studied.

use crate::error::Result;
use ivc_dsp::complex::Complex;
use ivc_dsp::fft::{bin_frequency, fft_in_place, next_power_of_two};
use ivc_dsp::signal::Signal;

/// Applies the magnitude response `gain_at(frequency_hz)` to `input`.
///
/// The gain function receives the absolute frequency in Hz and must return a
/// non-negative linear gain.
pub fn shape_spectrum(input: &Signal, gain_at: impl Fn(f64) -> f64) -> Result<Signal> {
    if input.is_empty() {
        return Ok(input.clone());
    }
    let mut spectrum = Vec::new();
    let mut out = Vec::new();
    shape_spectrum_into(input, gain_at, &mut spectrum, &mut out)?;
    Ok(Signal::new(out, input.sample_rate_hz())?)
}

/// [`shape_spectrum`] writing into caller-owned buffers: `spectrum` is the
/// complex FFT workspace and `out` receives the shaped samples (both are
/// cleared and resized).  Hot paths reuse the allocations across calls.
pub fn shape_spectrum_into(
    input: &Signal,
    gain_at: impl Fn(f64) -> f64,
    spectrum: &mut Vec<Complex>,
    out: &mut Vec<f64>,
) -> Result<()> {
    if input.is_empty() {
        out.clear();
        return Ok(());
    }
    let fs = input.sample_rate_hz();
    let n = next_power_of_two(input.len());
    spectrum.clear();
    spectrum.resize(n, Complex::ZERO);
    for (slot, &x) in spectrum.iter_mut().zip(input.samples().iter()) {
        *slot = Complex::from_real(x);
    }
    fft_in_place(spectrum, false)?;
    for (k, value) in spectrum.iter_mut().enumerate() {
        let f = bin_frequency(k, n, fs).abs();
        let g = gain_at(f).max(0.0);
        *value = value.scale(g);
    }
    fft_in_place(spectrum, true)?;
    out.clear();
    out.extend(spectrum.iter().take(input.len()).map(|c| c.re));
    Ok(())
}

/// First-order low-pass magnitude response with corner `corner_hz`.
pub fn one_pole_low_pass_gain(frequency_hz: f64, corner_hz: f64) -> f64 {
    1.0 / (1.0 + (frequency_hz / corner_hz).powi(2)).sqrt()
}

/// First-order high-pass magnitude response with corner `corner_hz`.
pub fn one_pole_high_pass_gain(frequency_hz: f64, corner_hz: f64) -> f64 {
    let r = frequency_hz / corner_hz;
    r / (1.0 + r * r).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ivc_dsp::spectrum::band_power;

    #[test]
    fn unity_gain_is_identity() {
        let s = Signal::tone(1_000.0, 0.5, 0.2, 48_000.0).unwrap();
        let out = shape_spectrum(&s, |_| 1.0).unwrap();
        for (a, b) in s.samples().iter().zip(out.samples().iter()) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn empty_signal_passes_through() {
        let s = Signal::new(vec![], 48_000.0).unwrap();
        assert!(shape_spectrum(&s, |_| 1.0).unwrap().is_empty());
    }

    #[test]
    fn selective_attenuation_of_one_component() {
        let fs = 48_000.0;
        let mut s = Signal::tone(1_000.0, 0.5, 0.3, fs).unwrap();
        s.mix(&Signal::tone(8_000.0, 0.5, 0.3, fs).unwrap())
            .unwrap();
        let out = shape_spectrum(&s, |f| if f > 4_000.0 { 0.01 } else { 1.0 }).unwrap();
        let low = band_power(out.samples(), fs, 800.0, 1_200.0).unwrap();
        let high = band_power(out.samples(), fs, 7_500.0, 8_500.0).unwrap();
        assert!(low / high > 1_000.0, "ratio {}", low / high);
    }

    #[test]
    fn one_pole_responses_have_correct_corners() {
        assert!(
            (one_pole_low_pass_gain(1_000.0, 1_000.0) - std::f64::consts::FRAC_1_SQRT_2).abs()
                < 1e-9
        );
        assert!(
            (one_pole_high_pass_gain(1_000.0, 1_000.0) - std::f64::consts::FRAC_1_SQRT_2).abs()
                < 1e-9
        );
        assert!(one_pole_low_pass_gain(100.0, 1_000.0) > 0.99);
        assert!(one_pole_low_pass_gain(10_000.0, 1_000.0) < 0.1);
        assert!(one_pole_high_pass_gain(10_000.0, 1_000.0) > 0.99);
        assert!(one_pole_high_pass_gain(100.0, 1_000.0) < 0.1);
    }
}
