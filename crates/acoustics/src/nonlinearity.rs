//! Memoryless polynomial non-linearities.
//!
//! Both the attack and the defense hinge on the same physical fact: real
//! transducers are not perfectly linear.  A signal `s` passing through an
//! amplifier or diaphragm comes out as `g1·s + g2·s² + g3·s³ + …`.  The
//! quadratic term turns a pair of ultrasonic tones at `f1` and `f2` into
//! audible energy at `f2 − f1` (intermodulation) — the attack — and also
//! stamps a characteristic low-frequency shadow onto the recording — the
//! defense's evidence.

use crate::error::{AcousticsError, Result};
use ivc_dsp::signal::Signal;

/// A truncated power-series transfer function `g1·s + g2·s² + g3·s³`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Polynomial {
    /// Linear gain.
    pub g1: f64,
    /// Second-order (quadratic) coefficient; the source of intermodulation.
    pub g2: f64,
    /// Third-order (cubic) coefficient.
    pub g3: f64,
}

impl Polynomial {
    /// A perfectly linear device with unit gain.
    pub const LINEAR: Polynomial = Polynomial {
        g1: 1.0,
        g2: 0.0,
        g3: 0.0,
    };

    /// Creates a polynomial non-linearity.  `g1` must be non-zero (a device
    /// that passes no linear signal is not a transducer).
    pub fn new(g1: f64, g2: f64, g3: f64) -> Result<Self> {
        if g1 == 0.0 || !g1.is_finite() || !g2.is_finite() || !g3.is_finite() {
            return Err(AcousticsError::invalid(
                "polynomial",
                "g1 must be non-zero and all coefficients finite",
            ));
        }
        Ok(Polynomial { g1, g2, g3 })
    }

    /// Applies the transfer function to a single sample.
    #[inline]
    pub fn apply_sample(&self, s: f64) -> f64 {
        self.g1 * s + self.g2 * s * s + self.g3 * s * s * s
    }

    /// Applies the transfer function to every sample of a signal.
    pub fn apply(&self, input: &Signal) -> Signal {
        input.map(|s| self.apply_sample(s))
    }

    /// Applies the transfer function to a raw slice.
    pub fn apply_slice(&self, input: &[f64]) -> Vec<f64> {
        input.iter().map(|&s| self.apply_sample(s)).collect()
    }

    /// Applies the transfer function in place (the function is memoryless,
    /// so in-place application is exact).
    pub fn apply_in_place(&self, samples: &mut [f64]) {
        for s in samples.iter_mut() {
            *s = self.apply_sample(*s);
        }
    }

    /// Second-order intercept-style figure: the input amplitude at which the
    /// quadratic term equals the linear term.  Larger means more linear.
    pub fn second_order_knee(&self) -> f64 {
        if self.g2 == 0.0 {
            f64::INFINITY
        } else {
            (self.g1 / self.g2).abs()
        }
    }

    /// `true` if the device is exactly linear.
    pub fn is_linear(&self) -> bool {
        self.g2 == 0.0 && self.g3 == 0.0
    }
}

/// Measurement of the intermodulation products a non-linearity produces for
/// a two-tone input, used by tests and by the leakage estimator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TwoToneProducts {
    /// Amplitude at the difference frequency `f2 - f1`.
    pub difference: f64,
    /// Amplitude at the sum frequency `f1 + f2`.
    pub sum: f64,
    /// Amplitude at the second harmonic of `f1`.
    pub harmonic_f1: f64,
    /// Amplitude at the fundamental `f1` (linear term).
    pub fundamental_f1: f64,
}

/// Drives the non-linearity with two tones of the given amplitudes and
/// frequencies and measures the resulting products with the Goertzel
/// algorithm.
pub fn measure_two_tone_products(
    poly: &Polynomial,
    f1_hz: f64,
    f2_hz: f64,
    amplitude: f64,
    sample_rate_hz: f64,
) -> Result<TwoToneProducts> {
    if f1_hz <= 0.0 || f2_hz <= f1_hz || f2_hz >= sample_rate_hz / 2.0 {
        return Err(AcousticsError::invalid(
            "two-tone frequencies",
            "need 0 < f1 < f2 < nyquist",
        ));
    }
    let duration_s = 0.2;
    let mut input = Signal::tone(f1_hz, amplitude, duration_s, sample_rate_hz)?;
    input.mix(&Signal::tone(f2_hz, amplitude, duration_s, sample_rate_hz)?)?;
    let output = poly.apply(&input);
    let fs = sample_rate_hz;
    let measure =
        |f: f64| -> Result<f64> { Ok(ivc_dsp::goertzel::tone_amplitude(output.samples(), fs, f)?) };
    Ok(TwoToneProducts {
        difference: measure(f2_hz - f1_hz)?,
        sum: if f1_hz + f2_hz < fs / 2.0 {
            measure(f1_hz + f2_hz)?
        } else {
            0.0
        },
        harmonic_f1: if 2.0 * f1_hz < fs / 2.0 {
            measure(2.0 * f1_hz)?
        } else {
            0.0
        },
        fundamental_f1: measure(f1_hz)?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation() {
        assert!(Polynomial::new(0.0, 0.1, 0.0).is_err());
        assert!(Polynomial::new(f64::NAN, 0.1, 0.0).is_err());
        assert!(Polynomial::new(1.0, f64::INFINITY, 0.0).is_err());
        assert!(Polynomial::new(1.0, 0.1, 0.01).is_ok());
        assert!(
            measure_two_tone_products(&Polynomial::LINEAR, 30_000.0, 25_000.0, 0.5, 192_000.0)
                .is_err()
        );
    }

    #[test]
    fn linear_device_adds_no_products() {
        let p = Polynomial::LINEAR;
        assert!(p.is_linear());
        assert_eq!(p.second_order_knee(), f64::INFINITY);
        let prod = measure_two_tone_products(&p, 25_000.0, 30_000.0, 0.5, 192_000.0).unwrap();
        assert!(prod.difference < 1e-6);
        assert!(prod.sum < 1e-6);
        assert!(prod.harmonic_f1 < 1e-6);
        assert!((prod.fundamental_f1 - 0.5).abs() < 0.01);
    }

    #[test]
    fn quadratic_term_creates_difference_frequency() {
        // The paper's worked example: 25 kHz + 30 kHz in, 5 kHz out.
        let p = Polynomial::new(1.0, 0.3, 0.0).unwrap();
        let prod = measure_two_tone_products(&p, 25_000.0, 30_000.0, 0.5, 192_000.0).unwrap();
        // Expected difference amplitude: g2 * a^2 = 0.3 * 0.25 = 0.075.
        assert!(
            (prod.difference - 0.075).abs() < 0.01,
            "difference {}",
            prod.difference
        );
        // Harmonic at 2*f1: g2 * a^2 / 2 = 0.0375.
        assert!((prod.harmonic_f1 - 0.0375).abs() < 0.01);
    }

    #[test]
    fn products_scale_quadratically_with_amplitude() {
        let p = Polynomial::new(1.0, 0.2, 0.0).unwrap();
        let low = measure_two_tone_products(&p, 25_000.0, 30_000.0, 0.1, 192_000.0).unwrap();
        let high = measure_two_tone_products(&p, 25_000.0, 30_000.0, 0.4, 192_000.0).unwrap();
        let ratio = high.difference / low.difference.max(1e-12);
        assert!((ratio - 16.0).abs() < 1.5, "ratio {ratio}");
        // While the fundamental scales linearly.
        let lin_ratio = high.fundamental_f1 / low.fundamental_f1;
        assert!((lin_ratio - 4.0).abs() < 0.2);
    }

    #[test]
    fn apply_matches_per_sample_definition() {
        let p = Polynomial::new(2.0, 0.5, -0.1).unwrap();
        let s = Signal::new(vec![0.0, 1.0, -1.0, 0.5], 48_000.0).unwrap();
        let out = p.apply(&s);
        let expect = [0.0, 2.0 + 0.5 - 0.1, -2.0 + 0.5 + 0.1, 1.0 + 0.125 - 0.0125];
        for (o, e) in out.samples().iter().zip(expect.iter()) {
            assert!((o - e).abs() < 1e-12);
        }
        assert_eq!(p.apply_slice(s.samples()), out.samples());
    }

    #[test]
    fn knee_reflects_linearity() {
        let mild = Polynomial::new(1.0, 0.05, 0.0).unwrap();
        let strong = Polynomial::new(1.0, 0.5, 0.0).unwrap();
        assert!(mild.second_order_knee() > strong.second_order_knee());
    }
}
