//! The victim device's capture chain.
//!
//! A MEMS microphone followed by an amplifier and an ADC, as sketched in the
//! paper's Figure 2: transducer → amplifier → low-pass filter → ADC.  The
//! security-relevant property is that the transducer + amplifier are *not*
//! perfectly linear and they see the full ultrasonic pressure before any
//! filtering happens; the quadratic term therefore demodulates AM ultrasound
//! into the audible band, where it sails through the anti-alias filter and
//! into the speech recogniser.

use crate::adc::{digitize, AdcConfig};
use crate::error::{AcousticsError, Result};
use crate::noise::add_white_noise;
use crate::nonlinearity::Polynomial;
use crate::shaping::{one_pole_low_pass_gain, shape_spectrum_into};
use crate::spl::spl_db_to_pressure;
use ivc_dsp::complex::Complex;
use ivc_dsp::signal::Signal;

/// Reusable buffers for [`Microphone::capture_with_scratch`]: the complex
/// FFT workspace of the front-end shaping stage and the analog-chain work
/// buffer.  One arena per worker thread removes the per-trial allocations
/// of the capture path.
#[derive(Debug, Default)]
pub struct CaptureScratch {
    spectrum: Vec<Complex>,
    work: Vec<f64>,
}

impl CaptureScratch {
    /// An empty arena; buffers grow on first use and are then reused.
    pub fn new() -> Self {
        CaptureScratch::default()
    }
}

/// Device presets with parameters representative of the paper's targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DevicePreset {
    /// A smartphone with an exposed bottom-port MEMS microphone.
    AndroidPhone,
    /// A smart speaker whose microphones sit behind a plastic grille, which
    /// adds insertion loss that is worst in the ultrasonic range.
    AmazonEcho,
    /// An idealised perfectly linear microphone (for ablations: with no
    /// non-linearity the attack cannot work at all).
    LinearReference,
}

impl DevicePreset {
    /// All presets, in a stable order (useful for tables).
    pub const ALL: [DevicePreset; 3] = [
        DevicePreset::AndroidPhone,
        DevicePreset::AmazonEcho,
        DevicePreset::LinearReference,
    ];

    /// Human-readable device name used in experiment tables.
    pub fn name(&self) -> &'static str {
        match self {
            DevicePreset::AndroidPhone => "Android phone",
            DevicePreset::AmazonEcho => "Amazon Echo",
            DevicePreset::LinearReference => "Linear reference",
        }
    }

    /// Builds the microphone model for this preset.
    pub fn microphone(&self) -> Microphone {
        match self {
            DevicePreset::AndroidPhone => Microphone {
                acoustic_overload_point_db_spl: 120.0,
                grille_loss_audible_db: 0.0,
                grille_loss_ultrasonic_db: 2.0,
                transducer_corner_hz: 35_000.0,
                nonlinearity: Polynomial {
                    g1: 1.0,
                    g2: 0.6,
                    g3: 0.08,
                },
                self_noise_db_spl: 29.0,
                adc: AdcConfig {
                    output_rate_hz: 48_000.0,
                    bits: 16,
                    noise_floor_dbfs: -92.0,
                    anti_alias_fraction: 0.9,
                },
            },
            DevicePreset::AmazonEcho => Microphone {
                acoustic_overload_point_db_spl: 120.0,
                grille_loss_audible_db: 1.0,
                grille_loss_ultrasonic_db: 9.0,
                transducer_corner_hz: 30_000.0,
                nonlinearity: Polynomial {
                    g1: 1.0,
                    g2: 0.55,
                    g3: 0.07,
                },
                self_noise_db_spl: 31.0,
                adc: AdcConfig {
                    output_rate_hz: 48_000.0,
                    bits: 16,
                    noise_floor_dbfs: -90.0,
                    anti_alias_fraction: 0.9,
                },
            },
            DevicePreset::LinearReference => Microphone {
                acoustic_overload_point_db_spl: 120.0,
                grille_loss_audible_db: 0.0,
                grille_loss_ultrasonic_db: 0.0,
                transducer_corner_hz: 35_000.0,
                nonlinearity: Polynomial::LINEAR,
                self_noise_db_spl: 25.0,
                adc: AdcConfig {
                    output_rate_hz: 48_000.0,
                    bits: 16,
                    noise_floor_dbfs: -95.0,
                    anti_alias_fraction: 0.9,
                },
            },
        }
    }
}

/// Full microphone + ADC capture-chain model.
#[derive(Debug, Clone, PartialEq)]
pub struct Microphone {
    /// SPL (dB) that maps to digital full scale.
    pub acoustic_overload_point_db_spl: f64,
    /// Insertion loss of the device's grille/port below 20 kHz, in dB.
    pub grille_loss_audible_db: f64,
    /// Insertion loss of the grille/port above 20 kHz, in dB.  Plastic
    /// covers attenuate ultrasound more than audible sound, which is why the
    /// paper's Echo needed the attacker to stand closer than the phone.
    pub grille_loss_ultrasonic_db: f64,
    /// Corner frequency of the transducer's mechanical response, in Hz.
    /// Ultrasound above this corner still reaches the non-linearity, just
    /// attenuated.
    pub transducer_corner_hz: f64,
    /// Non-linearity of the transducer + amplifier, applied to the
    /// full-scale-normalised analog signal.
    pub nonlinearity: Polynomial,
    /// Equivalent self-noise of the capsule, as an SPL in dB.
    pub self_noise_db_spl: f64,
    /// ADC stage configuration.
    pub adc: AdcConfig,
}

impl Microphone {
    /// Gain of the acoustic front-end (grille + transducer response) at
    /// `frequency_hz`, linear.
    pub fn front_end_gain(&self, frequency_hz: f64) -> f64 {
        let grille_db = if frequency_hz >= 20_000.0 {
            self.grille_loss_ultrasonic_db
        } else {
            self.grille_loss_audible_db
        };
        let grille = 10f64.powf(-grille_db / 20.0);
        // The transducer is flat through the audio band and rolls off above
        // its mechanical corner.
        let mechanical = if frequency_hz <= 20_000.0 {
            1.0
        } else {
            one_pole_low_pass_gain(frequency_hz, self.transducer_corner_hz)
                / one_pole_low_pass_gain(20_000.0, self.transducer_corner_hz)
        };
        grille * mechanical
    }

    /// Converts a pressure waveform at the microphone port (pascal) into the
    /// digital recording the device's software receives.
    ///
    /// The stages, in order: grille/transducer response → capsule self noise
    /// → normalisation against the acoustic overload point → polynomial
    /// non-linearity → anti-alias filter + resampling + quantisation.
    pub fn capture(&self, pressure_at_port: &Signal, seed: u64) -> Result<Signal> {
        self.capture_with_scratch(pressure_at_port, seed, &mut CaptureScratch::new())
    }

    /// [`Microphone::capture`] reusing a caller-owned scratch arena for the
    /// intermediate buffers (front-end shaping workspace and the analog
    /// chain), bit-identical to the allocating path.
    pub fn capture_with_scratch(
        &self,
        pressure_at_port: &Signal,
        seed: u64,
        scratch: &mut CaptureScratch,
    ) -> Result<Signal> {
        if pressure_at_port.is_empty() {
            return Err(AcousticsError::invalid("pressure_at_port", "empty signal"));
        }
        // 1. Acoustic front end, shaped into the scratch work buffer.
        let mut work = std::mem::take(&mut scratch.work);
        shape_spectrum_into(
            pressure_at_port,
            |f| self.front_end_gain(f),
            &mut scratch.spectrum,
            &mut work,
        )?;

        // 2. Capsule self noise (pressure-equivalent, added before the
        //    non-linearity like the real thermal-acoustic noise is).
        let noise_rms_pa = spl_db_to_pressure(self.self_noise_db_spl);
        add_white_noise(
            &mut work,
            noise_rms_pa,
            seed.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        )?;

        // 3. Normalise to full scale at the acoustic overload point.
        let fs_pressure_peak =
            spl_db_to_pressure(self.acoustic_overload_point_db_spl) * std::f64::consts::SQRT_2;
        let gain = 1.0 / fs_pressure_peak;
        for s in work.iter_mut() {
            *s *= gain;
        }

        // 4. Transducer/amplifier non-linearity (memoryless).
        self.nonlinearity.apply_in_place(&mut work);

        // 5. ADC: anti-alias, resample, quantise.
        let analog = Signal::new(work, pressure_at_port.sample_rate_hz())?;
        let digital = digitize(&analog, &self.adc, seed);
        scratch.work = analog.into_samples();
        digital
    }

    /// The demodulation efficiency of the microphone for an AM ultrasound
    /// signal: the ratio (in dB) between the recovered baseband amplitude
    /// and what a perfectly linear microphone would record (nothing), given
    /// the received carrier SPL.  Used by the attack planner's link budget.
    pub fn demodulation_gain_db(&self, carrier_spl_db: f64, carrier_hz: f64) -> f64 {
        // Received carrier, normalised to full scale, after the front end.
        let carrier_pa = spl_db_to_pressure(carrier_spl_db) * std::f64::consts::SQRT_2;
        let fs_pressure_peak =
            spl_db_to_pressure(self.acoustic_overload_point_db_spl) * std::f64::consts::SQRT_2;
        let a = carrier_pa / fs_pressure_peak * self.front_end_gain(carrier_hz);
        // Second-order product amplitude for a fully modulated AM pair is
        // g2 * a^2 (sideband x carrier), relative to full scale.
        let product = self.nonlinearity.g2.abs() * a * a;
        20.0 * product.max(1e-15).log10()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ivc_dsp::spectrum::band_power;

    fn pressure_tone(freq: f64, spl_db: f64, dur: f64, fs: f64) -> Signal {
        let amp = spl_db_to_pressure(spl_db) * std::f64::consts::SQRT_2;
        Signal::tone(freq, amp, dur, fs).unwrap()
    }

    #[test]
    fn presets_have_expected_ordering() {
        let phone = DevicePreset::AndroidPhone.microphone();
        let echo = DevicePreset::AmazonEcho.microphone();
        let linear = DevicePreset::LinearReference.microphone();
        assert!(echo.grille_loss_ultrasonic_db > phone.grille_loss_ultrasonic_db);
        assert!(linear.nonlinearity.is_linear());
        assert!(!phone.nonlinearity.is_linear());
        assert_eq!(DevicePreset::AndroidPhone.name(), "Android phone");
        assert_eq!(DevicePreset::ALL.len(), 3);
    }

    #[test]
    fn capture_rejects_empty_input() {
        let mic = DevicePreset::AndroidPhone.microphone();
        assert!(mic
            .capture(&Signal::new(vec![], 192_000.0).unwrap(), 0)
            .is_err());
    }

    #[test]
    fn normal_speech_level_records_cleanly() {
        // 70 dB SPL of 1 kHz at the port: a normal conversational level.
        let mic = DevicePreset::AndroidPhone.microphone();
        let p = pressure_tone(1_000.0, 70.0, 0.3, 192_000.0);
        let rec = mic.capture(&p, 1).unwrap();
        assert_eq!(rec.sample_rate_hz(), 48_000.0);
        let tone = band_power(rec.samples(), 48_000.0, 800.0, 1_200.0).unwrap();
        let rest = band_power(rec.samples(), 48_000.0, 2_000.0, 20_000.0).unwrap();
        assert!(tone / rest > 100.0, "tone/rest {}", tone / rest);
        // Recording level: 70 dB SPL is 50 dB below the 120 dB AOP,
        // i.e. amplitude ~3e-3 of full scale.
        assert!(
            rec.peak() > 1e-3 && rec.peak() < 1e-2,
            "peak {}",
            rec.peak()
        );
    }

    #[test]
    fn ultrasonic_tone_alone_leaves_almost_nothing_in_recording() {
        // A single strong 40 kHz tone: the non-linearity produces only DC
        // and 80 kHz terms, so the recording should be near the noise floor.
        let mic = DevicePreset::AndroidPhone.microphone();
        let p = pressure_tone(40_000.0, 110.0, 0.3, 192_000.0);
        let rec = mic.capture(&p, 1).unwrap();
        let audible = band_power(rec.samples(), 48_000.0, 300.0, 20_000.0).unwrap();
        assert!(audible < 1e-6, "audible power {audible}");
    }

    #[test]
    fn am_ultrasound_demodulates_into_the_voice_band() {
        // Carrier at 40 kHz, sidebands at 40 +- 1 kHz (an AM pair carrying a
        // 1 kHz "voice"): the quadratic term must put a clear 1 kHz tone in
        // the recording even though nothing below 20 kHz was transmitted.
        let fs = 192_000.0;
        let mic = DevicePreset::AndroidPhone.microphone();
        let spl = 105.0;
        let amp = spl_db_to_pressure(spl) * std::f64::consts::SQRT_2;
        let n = (0.4 * fs) as usize;
        let samples: Vec<f64> = (0..n)
            .map(|i| {
                let t = i as f64 / fs;
                let m = 1.0 + 0.9 * (2.0 * std::f64::consts::PI * 1_000.0 * t).cos();
                0.5 * amp * m * (2.0 * std::f64::consts::PI * 40_000.0 * t).cos()
            })
            .collect();
        let p = Signal::new(samples, fs).unwrap();
        let rec = mic.capture(&p, 1).unwrap();
        let tone = band_power(rec.samples(), 48_000.0, 900.0, 1_100.0).unwrap();
        let background = band_power(rec.samples(), 48_000.0, 5_000.0, 15_000.0).unwrap();
        assert!(
            tone / background > 30.0,
            "demodulated tone/background {}",
            tone / background
        );
    }

    #[test]
    fn linear_reference_microphone_defeats_the_injection() {
        let fs = 192_000.0;
        let mic = DevicePreset::LinearReference.microphone();
        let spl = 105.0;
        let amp = spl_db_to_pressure(spl) * std::f64::consts::SQRT_2;
        let n = (0.4 * fs) as usize;
        let samples: Vec<f64> = (0..n)
            .map(|i| {
                let t = i as f64 / fs;
                let m = 1.0 + 0.9 * (2.0 * std::f64::consts::PI * 1_000.0 * t).cos();
                0.5 * amp * m * (2.0 * std::f64::consts::PI * 40_000.0 * t).cos()
            })
            .collect();
        let p = Signal::new(samples, fs).unwrap();
        let rec = mic.capture(&p, 1).unwrap();
        let tone = band_power(rec.samples(), 48_000.0, 900.0, 1_100.0).unwrap();
        // With no non-linearity the only in-band content is noise.
        let noise = band_power(rec.samples(), 48_000.0, 5_000.0, 15_000.0).unwrap();
        assert!(tone < noise * 10.0, "tone {tone} vs noise {noise}");
    }

    #[test]
    fn echo_grille_attenuates_ultrasound_more_than_phone() {
        let phone = DevicePreset::AndroidPhone.microphone();
        let echo = DevicePreset::AmazonEcho.microphone();
        assert!(echo.front_end_gain(40_000.0) < phone.front_end_gain(40_000.0));
        // Audible band gains are comparable.
        assert!((echo.front_end_gain(1_000.0) - phone.front_end_gain(1_000.0)).abs() < 0.2);
        // And the link-budget view agrees.
        assert!(
            echo.demodulation_gain_db(100.0, 40_000.0)
                < phone.demodulation_gain_db(100.0, 40_000.0)
        );
    }

    #[test]
    fn demodulation_gain_rises_with_received_level() {
        let mic = DevicePreset::AndroidPhone.microphone();
        let quiet = mic.demodulation_gain_db(80.0, 40_000.0);
        let loud = mic.demodulation_gain_db(100.0, 40_000.0);
        // +20 dB carrier -> +40 dB product (square law).
        assert!((loud - quiet - 40.0).abs() < 0.5, "{quiet} -> {loud}");
    }

    #[test]
    fn capture_is_deterministic_per_seed() {
        let mic = DevicePreset::AndroidPhone.microphone();
        let p = pressure_tone(1_000.0, 70.0, 0.2, 192_000.0);
        let a = mic.capture(&p, 7).unwrap();
        let b = mic.capture(&p, 7).unwrap();
        let c = mic.capture(&p, 8).unwrap();
        assert_eq!(a.samples(), b.samples());
        assert_ne!(a.samples(), c.samples());
    }
}
