//! Error type for the acoustics substrate.

use std::fmt;

/// Convenience alias used across the crate.
pub type Result<T> = std::result::Result<T, AcousticsError>;

/// Errors produced by the acoustic models.
#[derive(Debug, Clone, PartialEq)]
pub enum AcousticsError {
    /// A physical parameter was outside its valid range.
    InvalidParameter {
        /// Parameter name.
        name: &'static str,
        /// Description of the violation.
        message: String,
    },
    /// An error bubbled up from the DSP layer.
    Dsp(ivc_dsp::DspError),
}

impl fmt::Display for AcousticsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AcousticsError::InvalidParameter { name, message } => {
                write!(f, "invalid acoustic parameter `{name}`: {message}")
            }
            AcousticsError::Dsp(e) => write!(f, "dsp error: {e}"),
        }
    }
}

impl std::error::Error for AcousticsError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            AcousticsError::Dsp(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ivc_dsp::DspError> for AcousticsError {
    fn from(e: ivc_dsp::DspError) -> Self {
        AcousticsError::Dsp(e)
    }
}

impl AcousticsError {
    /// Helper to build an [`AcousticsError::InvalidParameter`].
    pub fn invalid(name: &'static str, message: impl Into<String>) -> Self {
        AcousticsError::InvalidParameter {
            name,
            message: message.into(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_conversion() {
        let e = AcousticsError::invalid("distance", "must be positive");
        assert!(e.to_string().contains("distance"));
        let d: AcousticsError = ivc_dsp::DspError::EmptyInput { operation: "fft" }.into();
        assert!(d.to_string().contains("fft"));
        assert!(std::error::Error::source(&d).is_some());
        assert!(std::error::Error::source(&e).is_none());
    }
}
