//! The ultrasonic emitter: a piezo tweeter driven by an audio amplifier.
//!
//! The speaker model is where the *long-range attack's core problem* lives.
//! Driving a single tweeter hard enough to cover a room means pushing its
//! diaphragm into its non-linear regime, and the tweeter's own `g2·s²` term
//! then demodulates the AM ultrasound **in the air right next to the
//! attacker**, producing audible leakage that gives the attack away.  The
//! multi-speaker attack exists to break this coupling.

use crate::error::{AcousticsError, Result};
use crate::nonlinearity::Polynomial;
use crate::shaping::{one_pole_high_pass_gain, one_pole_low_pass_gain, shape_spectrum};
use crate::spl::REFERENCE_PRESSURE_PA;
use ivc_dsp::signal::Signal;

/// Model of one ultrasonic speaker (piezo horn tweeter + power amplifier).
#[derive(Debug, Clone, PartialEq)]
pub struct UltrasonicSpeaker {
    /// On-axis sensitivity: SPL at 1 m for 1 W of drive, in dB.
    pub sensitivity_db_spl_1w_1m: f64,
    /// Maximum continuous electrical drive power, in watt.
    pub max_power_w: f64,
    /// Low-frequency corner of the tweeter's response, in Hz.  Piezo horns
    /// reproduce very little below a few kilohertz, which slightly softens
    /// the audible leakage they create.
    pub low_corner_hz: f64,
    /// High-frequency corner of the usable response, in Hz.
    pub high_corner_hz: f64,
    /// Non-linearity of the diaphragm/amplifier chain, applied to the
    /// normalised excursion (1.0 = excursion at maximum rated power).
    pub nonlinearity: Polynomial,
}

impl Default for UltrasonicSpeaker {
    /// Parameters representative of a commodity piezo horn tweeter
    /// (Fostex FT17H class) driven by a consumer stereo amplifier.
    fn default() -> Self {
        UltrasonicSpeaker {
            sensitivity_db_spl_1w_1m: 96.0,
            max_power_w: 30.0,
            low_corner_hz: 4_000.0,
            high_corner_hz: 55_000.0,
            nonlinearity: Polynomial {
                g1: 1.0,
                g2: 0.08,
                g3: 0.01,
            },
        }
    }
}

impl UltrasonicSpeaker {
    /// Creates a validated speaker model.
    pub fn new(
        sensitivity_db_spl_1w_1m: f64,
        max_power_w: f64,
        low_corner_hz: f64,
        high_corner_hz: f64,
        nonlinearity: Polynomial,
    ) -> Result<Self> {
        if !(60.0..=130.0).contains(&sensitivity_db_spl_1w_1m) {
            return Err(AcousticsError::invalid(
                "sensitivity_db_spl_1w_1m",
                "must be within [60, 130] dB",
            ));
        }
        if !(max_power_w > 0.0) || !max_power_w.is_finite() {
            return Err(AcousticsError::invalid("max_power_w", "must be positive"));
        }
        if !(low_corner_hz > 0.0) || !(high_corner_hz > low_corner_hz) {
            return Err(AcousticsError::invalid(
                "corners",
                "need 0 < low_corner_hz < high_corner_hz",
            ));
        }
        Ok(UltrasonicSpeaker {
            sensitivity_db_spl_1w_1m,
            max_power_w,
            low_corner_hz,
            high_corner_hz,
            nonlinearity,
        })
    }

    /// Peak output pressure at 1 m when driven with a full-scale sine at the
    /// maximum rated power, in pascal.
    pub fn full_scale_pressure_pa(&self) -> f64 {
        let rms_at_1w = REFERENCE_PRESSURE_PA * 10f64.powf(self.sensitivity_db_spl_1w_1m / 20.0);
        let rms_at_max = rms_at_1w * self.max_power_w.sqrt();
        rms_at_max * std::f64::consts::SQRT_2
    }

    /// Magnitude response of the tweeter at `frequency_hz`.
    pub fn response_gain(&self, frequency_hz: f64) -> f64 {
        one_pole_high_pass_gain(frequency_hz, self.low_corner_hz)
            * one_pole_low_pass_gain(frequency_hz, self.high_corner_hz)
    }

    /// The dimensionless diaphragm output before frequency shaping: the
    /// drive scaled to the physical excursion implied by `power_w`, passed
    /// through the non-linearity.
    ///
    /// Exposed separately so that a [`crate::array::SpeakerArray`] can sum
    /// the per-element distorted excursions and apply the (shared, linear)
    /// response shaping once for the whole array instead of once per
    /// element — identical output, far less FFT work for large arrays.
    pub fn distorted_excursion(&self, drive: &Signal, power_w: f64) -> Result<Signal> {
        if drive.is_empty() {
            return Err(AcousticsError::invalid("drive", "empty signal"));
        }
        if !(power_w > 0.0) || !power_w.is_finite() {
            return Err(AcousticsError::invalid("power_w", "must be positive"));
        }
        if power_w > self.max_power_w * (1.0 + 1e-9) {
            return Err(AcousticsError::invalid(
                "power_w",
                format!(
                    "{power_w} W exceeds the speaker's rated {max} W",
                    max = self.max_power_w
                ),
            ));
        }
        if drive.peak() > 1.0 + 1e-9 {
            return Err(AcousticsError::invalid(
                "drive",
                format!("peak {peak} exceeds full scale", peak = drive.peak()),
            ));
        }
        // Normalised excursion: full scale at max power maps to 1.0.
        let excursion_scale = (power_w / self.max_power_w).sqrt();
        let excursion = drive.scaled(excursion_scale);
        Ok(self.nonlinearity.apply(&excursion))
    }

    /// Converts a (possibly summed) distorted excursion into pascal at 1 m
    /// on-axis by applying the tweeter's frequency response and sensitivity.
    pub fn excursion_to_pressure_at_1m(&self, distorted: &Signal) -> Result<Signal> {
        let shaped = shape_spectrum(distorted, |f| self.response_gain(f))?;
        Ok(shaped.scaled(self.full_scale_pressure_pa() / self.nonlinearity.g1))
    }

    /// Emits `drive` (a digital waveform normalised to peak ≤ 1) at
    /// electrical power `power_w`, returning the pressure waveform in pascal
    /// at 1 m on-axis.
    ///
    /// The chain is: scale the drive to the physical excursion implied by
    /// the requested power, pass it through the diaphragm non-linearity,
    /// shape it with the tweeter's frequency response, and scale to pascal.
    pub fn emit_at_1m(&self, drive: &Signal, power_w: f64) -> Result<Signal> {
        let distorted = self.distorted_excursion(drive, power_w)?;
        self.excursion_to_pressure_at_1m(&distorted)
    }

    /// SPL at 1 m of a full-scale sine at `power_w`, in dB — the link-budget
    /// view of [`UltrasonicSpeaker::emit_at_1m`].
    pub fn spl_at_1m_db(&self, power_w: f64) -> Result<f64> {
        if !(power_w > 0.0) || power_w > self.max_power_w * (1.0 + 1e-9) {
            return Err(AcousticsError::invalid(
                "power_w",
                "must be positive and within the speaker rating",
            ));
        }
        Ok(self.sensitivity_db_spl_1w_1m + 10.0 * power_w.log10())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spl::waveform_spl_db;
    use ivc_dsp::spectrum::band_power;

    #[test]
    fn validation() {
        let nl = Polynomial::LINEAR;
        assert!(UltrasonicSpeaker::new(40.0, 30.0, 4_000.0, 50_000.0, nl).is_err());
        assert!(UltrasonicSpeaker::new(96.0, 0.0, 4_000.0, 50_000.0, nl).is_err());
        assert!(UltrasonicSpeaker::new(96.0, 30.0, 50_000.0, 4_000.0, nl).is_err());
        let spk = UltrasonicSpeaker::default();
        let drive = Signal::tone(30_000.0, 1.0, 0.1, 192_000.0).unwrap();
        assert!(spk.emit_at_1m(&drive, 0.0).is_err());
        assert!(spk.emit_at_1m(&drive, 100.0).is_err());
        assert!(spk
            .emit_at_1m(&Signal::new(vec![], 192_000.0).unwrap(), 1.0)
            .is_err());
        let hot = drive.scaled(2.0);
        assert!(spk.emit_at_1m(&hot, 1.0).is_err());
        assert!(spk.spl_at_1m_db(0.0).is_err());
    }

    #[test]
    fn sensitivity_sets_output_level() {
        let spk = UltrasonicSpeaker::default();
        let fs = 192_000.0;
        let drive = Signal::tone(30_000.0, 1.0, 0.3, fs).unwrap();
        // At 1 W the mid-band SPL should be close to the 96 dB sensitivity
        // (minus a fraction of a dB of response shaping).
        let out = spk.emit_at_1m(&drive, 1.0).unwrap();
        let spl = waveform_spl_db(out.samples());
        assert!((spl - 96.0).abs() < 2.0, "spl {spl}");
        // At 16 W it should be ~12 dB louder.
        let loud = spk.emit_at_1m(&drive, 16.0).unwrap();
        let spl_loud = waveform_spl_db(loud.samples());
        assert!((spl_loud - spl - 12.0).abs() < 1.0, "{spl} -> {spl_loud}");
        assert!((spk.spl_at_1m_db(16.0).unwrap() - 96.0 - 12.04).abs() < 0.1);
    }

    #[test]
    fn response_attenuates_audible_band() {
        let spk = UltrasonicSpeaker::default();
        assert!(spk.response_gain(30_000.0) > 0.85);
        assert!(spk.response_gain(500.0) < 0.15);
        assert!(spk.response_gain(150_000.0) < 0.4);
    }

    #[test]
    fn hard_drive_creates_audible_intermodulation_leakage() {
        // Two ultrasonic tones 5 kHz apart: the speaker's own g2 makes a
        // 5 kHz audible tone, and it grows faster than the carrier as power
        // rises.  This is the effect that motivates the multi-speaker attack.
        let spk = UltrasonicSpeaker::default();
        let fs = 192_000.0;
        let mut drive = Signal::tone(30_000.0, 0.5, 0.3, fs).unwrap();
        drive
            .mix(&Signal::tone(35_000.0, 0.5, 0.3, fs).unwrap())
            .unwrap();
        let quiet = spk.emit_at_1m(&drive, 2.0).unwrap();
        let loud = spk.emit_at_1m(&drive, 29.0).unwrap();
        let leak_quiet = band_power(quiet.samples(), fs, 4_500.0, 5_500.0).unwrap();
        let leak_loud = band_power(loud.samples(), fs, 4_500.0, 5_500.0).unwrap();
        let carrier_quiet = band_power(quiet.samples(), fs, 29_000.0, 36_000.0).unwrap();
        let carrier_loud = band_power(loud.samples(), fs, 29_000.0, 36_000.0).unwrap();
        let carrier_gain = carrier_loud / carrier_quiet;
        let leak_gain = leak_loud / leak_quiet;
        assert!(
            leak_gain > carrier_gain * 3.0,
            "leakage should grow faster: {leak_gain} vs {carrier_gain}"
        );
    }

    #[test]
    fn linear_speaker_produces_no_leakage() {
        let spk = UltrasonicSpeaker {
            nonlinearity: Polynomial::LINEAR,
            ..UltrasonicSpeaker::default()
        };
        let fs = 192_000.0;
        let mut drive = Signal::tone(30_000.0, 0.5, 0.3, fs).unwrap();
        drive
            .mix(&Signal::tone(35_000.0, 0.5, 0.3, fs).unwrap())
            .unwrap();
        let out = spk.emit_at_1m(&drive, 29.0).unwrap();
        let leak = band_power(out.samples(), fs, 4_500.0, 5_500.0).unwrap();
        let carrier = band_power(out.samples(), fs, 29_000.0, 36_000.0).unwrap();
        assert!(leak / carrier < 1e-6, "leak fraction {}", leak / carrier);
    }

    #[test]
    fn full_scale_pressure_matches_sensitivity_arithmetic() {
        let spk = UltrasonicSpeaker::default();
        // 96 dB + 10*log10(30) ~ 110.8 dB SPL -> rms ~ 6.9 Pa, peak ~ 9.8 Pa.
        let p = spk.full_scale_pressure_pa();
        assert!(p > 8.0 && p < 12.0, "peak pressure {p}");
    }
}
