//! # ivc-acoustics — the physical-world substrate
//!
//! The published system was evaluated with real ultrasonic speaker arrays,
//! real rooms and real devices.  This crate replaces that hardware with a
//! physics-based simulation whose parameters are the ones that actually
//! drive the attack and the defense:
//!
//! * [`environment`] — air temperature, humidity and the speed of sound.
//! * [`spl`] — sound-pressure-level conversions and A-weighting.
//! * [`absorption`] — frequency-dependent atmospheric absorption
//!   (ISO 9613-1 style), the effect that makes ultrasound die off with
//!   distance much faster than audible sound.
//! * [`propagation`] — spherical spreading + absorption + delay applied to a
//!   pressure signal travelling from a source to a receiver.
//! * [`nonlinearity`] — memoryless polynomial transfer functions
//!   (`g1·s + g2·s² + g3·s³`) and helpers to measure the intermodulation
//!   products they create.
//! * [`speaker`] and [`array`] — an ultrasonic emitter with its own
//!   non-linearity (the source of the audible leakage that limits the naive
//!   attack) and an array of such emitters playing different signals.
//! * [`microphone`] and [`adc`] — the victim's capture chain: acoustic
//!   front-end, non-linear transducer/amplifier, anti-alias filter,
//!   resampling, quantisation and noise floor.
//! * [`noise`] — ambient room noise and measurement noise generators.
//! * [`psychoacoustics`] — the absolute threshold of hearing, used to decide
//!   whether a leakage signal would be noticed by a human near the speaker.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod absorption;
pub mod adc;
pub mod array;
pub mod environment;
pub mod error;
pub mod microphone;
pub mod noise;
pub mod nonlinearity;
pub mod propagation;
pub mod psychoacoustics;
pub mod shaping;
pub mod speaker;
pub mod spl;

pub use environment::AirEnvironment;
pub use error::{AcousticsError, Result};
pub use microphone::{DevicePreset, Microphone};
pub use nonlinearity::Polynomial;
pub use speaker::UltrasonicSpeaker;

/// Commonly used items, re-exported for glob import.
pub mod prelude {
    pub use crate::array::SpeakerArray;
    pub use crate::environment::AirEnvironment;
    pub use crate::error::{AcousticsError, Result};
    pub use crate::microphone::{DevicePreset, Microphone};
    pub use crate::nonlinearity::Polynomial;
    pub use crate::propagation::propagate;
    pub use crate::speaker::UltrasonicSpeaker;
    pub use crate::spl::{pressure_to_spl_db, spl_db_to_pressure};
}
