//! Atmospheric absorption of sound (ISO 9613-1 style).
//!
//! Absorption is the physical effect that limits the range of the ultrasonic
//! attack: at 20 °C and 50 % relative humidity, a 1 kHz tone loses about
//! 0.005 dB per metre while a 40 kHz carrier loses more than 1 dB per metre.
//! The attack's demodulated baseband amplitude scales with the *square* of
//! the received ultrasound pressure, so absorption is paid twice.

use crate::environment::AirEnvironment;
use crate::error::{AcousticsError, Result};

/// Absorption coefficient in dB per metre at `frequency_hz` under the given
/// environment, following the ISO 9613-1 formulation.
pub fn absorption_db_per_m(frequency_hz: f64, env: &AirEnvironment) -> Result<f64> {
    if frequency_hz < 0.0 || !frequency_hz.is_finite() {
        return Err(AcousticsError::invalid(
            "frequency_hz",
            format!("{frequency_hz} must be finite and non-negative"),
        ));
    }
    if frequency_hz == 0.0 {
        return Ok(0.0);
    }
    let t = env.temperature_k();
    let t0 = 293.15;
    let p_rel = env.pressure_kpa / 101.325;
    let h = env.water_vapour_molar_concentration_percent();

    // Relaxation frequencies of oxygen and nitrogen (Hz).
    let fr_o = p_rel * (24.0 + 4.04e4 * h * (0.02 + h) / (0.391 + h));
    let fr_n = p_rel
        * (t / t0).powf(-0.5)
        * (9.0 + 280.0 * h * (-4.170 * ((t / t0).powf(-1.0 / 3.0) - 1.0)).exp());

    let f2 = frequency_hz * frequency_hz;
    let classical = 1.84e-11 / p_rel * (t / t0).sqrt();
    let oxygen = 0.01275 * (-2239.1 / t).exp() / (fr_o + f2 / fr_o);
    let nitrogen = 0.1068 * (-3352.0 / t).exp() / (fr_n + f2 / fr_n);
    let alpha = 8.686 * f2 * (classical + (t / t0).powf(-2.5) * (oxygen + nitrogen));
    Ok(alpha)
}

/// Total absorption in dB over `distance_m` at `frequency_hz`.
pub fn absorption_db(frequency_hz: f64, distance_m: f64, env: &AirEnvironment) -> Result<f64> {
    if distance_m < 0.0 || !distance_m.is_finite() {
        return Err(AcousticsError::invalid(
            "distance_m",
            format!("{distance_m} must be finite and non-negative"),
        ));
    }
    Ok(absorption_db_per_m(frequency_hz, env)? * distance_m)
}

/// Amplitude gain (linear, `<= 1`) after travelling `distance_m` at
/// `frequency_hz`, from absorption alone (no spreading loss).
pub fn absorption_gain(frequency_hz: f64, distance_m: f64, env: &AirEnvironment) -> Result<f64> {
    let db = absorption_db(frequency_hz, distance_m, env)?;
    Ok(10f64.powf(-db / 20.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation() {
        let env = AirEnvironment::default();
        assert!(absorption_db_per_m(-1.0, &env).is_err());
        assert!(absorption_db_per_m(f64::NAN, &env).is_err());
        assert!(absorption_db(1_000.0, -1.0, &env).is_err());
        assert_eq!(absorption_db_per_m(0.0, &env).unwrap(), 0.0);
    }

    #[test]
    fn known_magnitudes_at_room_conditions() {
        let env = AirEnvironment::default();
        // ISO 9613-1 tables at 20 C / 50-70 % RH: ~0.005 dB/m at 1 kHz,
        // ~0.1 dB/m at 10 kHz, and around 1-1.5 dB/m at 40 kHz.
        let a1k = absorption_db_per_m(1_000.0, &env).unwrap();
        let a10k = absorption_db_per_m(10_000.0, &env).unwrap();
        let a40k = absorption_db_per_m(40_000.0, &env).unwrap();
        assert!(a1k > 0.002 && a1k < 0.01, "1 kHz: {a1k}");
        assert!(a10k > 0.05 && a10k < 0.3, "10 kHz: {a10k}");
        assert!(a40k > 0.6 && a40k < 2.5, "40 kHz: {a40k}");
    }

    #[test]
    fn absorption_grows_with_frequency() {
        let env = AirEnvironment::default();
        let mut last = 0.0;
        for f in [125.0, 500.0, 2_000.0, 8_000.0, 20_000.0, 40_000.0, 60_000.0] {
            let a = absorption_db_per_m(f, &env).unwrap();
            assert!(a > last, "absorption not monotonic at {f} Hz");
            last = a;
        }
    }

    #[test]
    fn ultrasound_absorbs_much_faster_than_voice_band() {
        let env = AirEnvironment::default();
        let voice = absorption_db_per_m(2_000.0, &env).unwrap();
        let ultra = absorption_db_per_m(40_000.0, &env).unwrap();
        assert!(ultra / voice > 30.0, "ratio {}", ultra / voice);
    }

    #[test]
    fn total_absorption_is_linear_in_distance() {
        let env = AirEnvironment::default();
        let one = absorption_db(30_000.0, 1.0, &env).unwrap();
        let seven = absorption_db(30_000.0, 7.0, &env).unwrap();
        assert!((seven - 7.0 * one).abs() < 1e-9);
        let gain = absorption_gain(30_000.0, 7.0, &env).unwrap();
        assert!(gain < 1.0 && gain > 0.0);
    }

    #[test]
    fn humidity_affects_ultrasonic_absorption() {
        let dry = AirEnvironment::new(20.0, 20.0, 101.325).unwrap();
        let humid = AirEnvironment::new(20.0, 80.0, 101.325).unwrap();
        let a_dry = absorption_db_per_m(40_000.0, &dry).unwrap();
        let a_humid = absorption_db_per_m(40_000.0, &humid).unwrap();
        // They must differ measurably (direction depends on the regime).
        assert!((a_dry - a_humid).abs() / a_dry > 0.05);
    }
}
