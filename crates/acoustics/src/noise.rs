//! Noise sources: white, pink and "room ambience" noise at a target SPL.
//!
//! Every generator takes an explicit seed so experiments are reproducible;
//! the same scenario with the same seed produces bit-identical recordings.

use crate::error::{AcousticsError, Result};
use crate::spl::spl_db_to_pressure;
use ivc_dsp::filter::biquad::BiquadCascade;
use ivc_dsp::signal::Signal;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generates zero-mean white Gaussian noise with the given RMS amplitude.
pub fn white_noise(rms: f64, duration_s: f64, sample_rate_hz: f64, seed: u64) -> Result<Signal> {
    if rms < 0.0 || !rms.is_finite() {
        return Err(AcousticsError::invalid(
            "rms",
            "must be non-negative and finite",
        ));
    }
    let n = (duration_s * sample_rate_hz).round().max(0.0) as usize;
    let mut rng = StdRng::seed_from_u64(seed);
    // Box-Muller style generation via rand's normal-ish approximation:
    // sum of uniform samples (Irwin–Hall, 12 terms) is close enough to
    // Gaussian for acoustic noise and avoids a distributions dependency.
    let samples: Vec<f64> = (0..n)
        .map(|_| {
            let s: f64 = (0..12).map(|_| rng.gen::<f64>()).sum::<f64>() - 6.0;
            s * rms
        })
        .collect();
    Ok(Signal::new(samples, sample_rate_hz)?)
}

/// Adds white Gaussian noise with the given RMS directly onto `samples`,
/// drawing exactly the sequence [`white_noise`] would for the same seed
/// and length — mixing `white_noise` into a buffer and calling this are
/// bit-identical, but this variant allocates nothing.
pub fn add_white_noise(samples: &mut [f64], rms: f64, seed: u64) -> Result<()> {
    if rms < 0.0 || !rms.is_finite() {
        return Err(AcousticsError::invalid(
            "rms",
            "must be non-negative and finite",
        ));
    }
    let mut rng = StdRng::seed_from_u64(seed);
    for slot in samples.iter_mut() {
        let s: f64 = (0..12).map(|_| rng.gen::<f64>()).sum::<f64>() - 6.0;
        *slot += s * rms;
    }
    Ok(())
}

/// Generates pink-ish noise (−3 dB per octave) by low-pass filtering white
/// noise with a gentle cascade and re-normalising the RMS.
pub fn pink_noise(rms: f64, duration_s: f64, sample_rate_hz: f64, seed: u64) -> Result<Signal> {
    let white = white_noise(1.0, duration_s, sample_rate_hz, seed)?;
    if white.is_empty() {
        return Ok(white);
    }
    // The classic Voss–McCartney filter approximated by three one-pole
    // low-pass sections at staggered corners.
    let corners = [
        sample_rate_hz / 300.0,
        sample_rate_hz / 60.0,
        sample_rate_hz / 12.0,
    ];
    let mut acc = vec![0.0; white.len()];
    for (stage, corner) in corners.iter().enumerate() {
        let cutoff = corner.min(sample_rate_hz * 0.45).max(10.0);
        let lpf = BiquadCascade::butterworth_low_pass(cutoff, 2, sample_rate_hz)
            .map_err(AcousticsError::from)?;
        let filtered = lpf.filter(white.samples());
        let gain = 1.0 / (stage as f64 + 1.0);
        for (a, f) in acc.iter_mut().zip(filtered.iter()) {
            *a += gain * f;
        }
    }
    let mut out = Signal::new(acc, sample_rate_hz)?;
    out.remove_dc();
    out.normalize_rms(rms);
    Ok(out)
}

/// Ambient room noise at a target (unweighted) SPL in dB, as a pressure
/// waveform in pascal.  Quiet rooms sit around 35–45 dB SPL.
pub fn room_noise_pa(
    spl_db: f64,
    duration_s: f64,
    sample_rate_hz: f64,
    seed: u64,
) -> Result<Signal> {
    if !(0.0..=120.0).contains(&spl_db) {
        return Err(AcousticsError::invalid(
            "spl_db",
            format!("{spl_db} outside [0, 120]"),
        ));
    }
    let rms_pa = spl_db_to_pressure(spl_db);
    pink_noise(rms_pa, duration_s, sample_rate_hz, seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spl::waveform_spl_db;
    use ivc_dsp::spectrum::band_power;

    #[test]
    fn validation() {
        assert!(white_noise(-1.0, 0.1, 48_000.0, 1).is_err());
        assert!(white_noise(f64::NAN, 0.1, 48_000.0, 1).is_err());
        assert!(room_noise_pa(150.0, 0.1, 48_000.0, 1).is_err());
    }

    #[test]
    fn white_noise_has_requested_rms_and_is_reproducible() {
        let a = white_noise(0.1, 1.0, 48_000.0, 42).unwrap();
        let b = white_noise(0.1, 1.0, 48_000.0, 42).unwrap();
        let c = white_noise(0.1, 1.0, 48_000.0, 43).unwrap();
        assert_eq!(a.samples(), b.samples());
        assert_ne!(a.samples(), c.samples());
        assert!((a.rms() - 0.1).abs() / 0.1 < 0.05, "rms {}", a.rms());
        // Zero mean.
        let mean: f64 = a.samples().iter().sum::<f64>() / a.len() as f64;
        assert!(mean.abs() < 0.01);
    }

    #[test]
    fn white_noise_spectrum_is_roughly_flat() {
        let s = white_noise(0.5, 2.0, 48_000.0, 7).unwrap();
        let low = band_power(s.samples(), 48_000.0, 500.0, 4_500.0).unwrap();
        let high = band_power(s.samples(), 48_000.0, 15_000.0, 19_000.0).unwrap();
        let ratio = low / high;
        assert!(ratio > 0.5 && ratio < 2.0, "ratio {ratio}");
    }

    #[test]
    fn pink_noise_slopes_downwards() {
        let s = pink_noise(0.5, 2.0, 48_000.0, 7).unwrap();
        assert!((s.rms() - 0.5).abs() / 0.5 < 0.05);
        let low = band_power(s.samples(), 48_000.0, 100.0, 1_000.0).unwrap();
        let high = band_power(s.samples(), 48_000.0, 8_000.0, 16_000.0).unwrap();
        assert!(low / high > 4.0, "low/high {}", low / high);
    }

    #[test]
    fn room_noise_hits_target_spl() {
        let s = room_noise_pa(40.0, 1.0, 48_000.0, 11).unwrap();
        let spl = waveform_spl_db(s.samples());
        assert!((spl - 40.0).abs() < 1.0, "spl {spl}");
    }

    #[test]
    fn zero_duration_produces_empty_signal() {
        let s = white_noise(0.1, 0.0, 48_000.0, 1).unwrap();
        assert!(s.is_empty());
    }
}
