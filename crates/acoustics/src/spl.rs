//! Sound-pressure-level conversions and A-weighting.
//!
//! Pressure signals throughout the workspace are expressed in pascal.  The
//! reference pressure for SPL is the standard 20 µPa.

use crate::error::{AcousticsError, Result};

/// Reference RMS pressure for 0 dB SPL, in pascal.
pub const REFERENCE_PRESSURE_PA: f64 = 20e-6;

/// Converts an RMS pressure in pascal to dB SPL.
#[inline]
pub fn pressure_to_spl_db(rms_pressure_pa: f64) -> f64 {
    20.0 * (rms_pressure_pa.abs().max(1e-15) / REFERENCE_PRESSURE_PA).log10()
}

/// Converts a level in dB SPL to an RMS pressure in pascal.
#[inline]
pub fn spl_db_to_pressure(spl_db: f64) -> f64 {
    REFERENCE_PRESSURE_PA * 10f64.powf(spl_db / 20.0)
}

/// A-weighting gain (in dB) at `frequency_hz`, per IEC 61672.
///
/// A-weighting approximates the ear's sensitivity at moderate levels: it
/// strongly attenuates very low and very high frequencies, which is why the
/// near-ultrasonic leakage of a single-speaker attack can carry substantial
/// unweighted power yet stay near the edge of audibility.
pub fn a_weighting_db(frequency_hz: f64) -> f64 {
    let f2 = frequency_hz * frequency_hz;
    let ra = (12194.0f64.powi(2) * f2 * f2)
        / ((f2 + 20.6f64.powi(2))
            * ((f2 + 107.7f64.powi(2)) * (f2 + 737.9f64.powi(2))).sqrt()
            * (f2 + 12194.0f64.powi(2)));
    20.0 * ra.max(1e-15).log10() + 2.0
}

/// RMS pressure of a pressure waveform in pascal.
pub fn waveform_rms_pa(pressure_samples: &[f64]) -> f64 {
    if pressure_samples.is_empty() {
        return 0.0;
    }
    (pressure_samples.iter().map(|p| p * p).sum::<f64>() / pressure_samples.len() as f64).sqrt()
}

/// Overall (unweighted) SPL of a pressure waveform.
pub fn waveform_spl_db(pressure_samples: &[f64]) -> f64 {
    pressure_to_spl_db(waveform_rms_pa(pressure_samples))
}

/// A-weighted SPL of a pressure waveform, computed from its power spectrum.
pub fn waveform_spl_dba(pressure_samples: &[f64], sample_rate_hz: f64) -> Result<f64> {
    if pressure_samples.is_empty() {
        return Err(AcousticsError::invalid(
            "pressure_samples",
            "empty waveform",
        ));
    }
    let seg = pressure_samples.len().clamp(256, 8_192);
    let psd = ivc_dsp::spectrum::welch_psd(
        pressure_samples,
        sample_rate_hz,
        seg,
        0.5,
        ivc_dsp::window::WindowKind::Hann,
    )?;
    let mut weighted_power = 0.0;
    for (f, p) in psd.frequencies_hz.iter().zip(psd.power.iter()) {
        // A-weighting is defined over the audible range; ultrasonic content
        // contributes nothing to a dB(A) reading.
        if *f <= 0.0 || *f > 20_000.0 {
            continue;
        }
        let w = 10f64.powf(a_weighting_db(*f) / 10.0);
        weighted_power += p * w * psd.resolution_hz;
    }
    let rms = weighted_power.max(0.0).sqrt();
    Ok(pressure_to_spl_db(rms))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spl_conversions_roundtrip() {
        for spl in [0.0, 40.0, 60.0, 94.0, 120.0] {
            let p = spl_db_to_pressure(spl);
            assert!((pressure_to_spl_db(p) - spl).abs() < 1e-9);
        }
        // 94 dB SPL is 1 Pa by definition (within 0.01 dB).
        assert!((spl_db_to_pressure(94.0) - 1.0).abs() < 0.01);
    }

    #[test]
    fn a_weighting_reference_points() {
        // A-weighting is 0 dB at 1 kHz by construction.
        assert!(a_weighting_db(1_000.0).abs() < 0.2);
        // Roughly -19 dB at 100 Hz and -9.3 dB at 20 kHz (IEC table values).
        assert!((a_weighting_db(100.0) + 19.1).abs() < 1.0);
        assert!((a_weighting_db(20_000.0) + 9.3).abs() < 1.5);
        // Deep attenuation in the infrasound region.
        assert!(a_weighting_db(10.0) < -60.0);
    }

    #[test]
    fn waveform_spl_of_94db_tone() {
        // A sine with RMS 1 Pa has SPL 94 dB.
        let fs = 48_000.0;
        let amp = std::f64::consts::SQRT_2; // RMS = 1 Pa
        let samples: Vec<f64> = (0..48_000)
            .map(|i| amp * (2.0 * std::f64::consts::PI * 1_000.0 * i as f64 / fs).sin())
            .collect();
        let spl = waveform_spl_db(&samples);
        assert!((spl - 94.0).abs() < 0.1, "spl {spl}");
        // A-weighted SPL at 1 kHz equals unweighted.
        let dba = waveform_spl_dba(&samples, fs).unwrap();
        assert!((dba - 94.0).abs() < 1.0, "dba {dba}");
    }

    #[test]
    fn a_weighting_discounts_ultrasound() {
        let fs = 192_000.0;
        let amp = std::f64::consts::SQRT_2;
        let samples: Vec<f64> = (0..192_000)
            .map(|i| amp * (2.0 * std::f64::consts::PI * 30_000.0 * i as f64 / fs).sin())
            .collect();
        let spl = waveform_spl_db(&samples);
        let dba = waveform_spl_dba(&samples, fs).unwrap();
        assert!((spl - 94.0).abs() < 0.2);
        assert!(dba < spl - 10.0, "dBA {dba} should be well below dB {spl}");
    }

    #[test]
    fn empty_waveform_handling() {
        assert_eq!(waveform_rms_pa(&[]), 0.0);
        assert!(waveform_spl_dba(&[], 48_000.0).is_err());
        // Silence maps to a very low but finite SPL.
        assert!(waveform_spl_db(&[0.0; 64]) < -20.0);
    }
}
