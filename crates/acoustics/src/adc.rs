//! Analog-to-digital conversion: anti-alias filtering, resampling to the
//! device's output rate, quantisation and the converter's noise floor.

use crate::error::{AcousticsError, Result};
use ivc_dsp::filter::fir::FirFilter;
use ivc_dsp::resample::resample;
use ivc_dsp::signal::Signal;
use ivc_dsp::window::WindowKind;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration of an ADC stage.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdcConfig {
    /// Output sampling rate in Hz (44.1 k, 48 k or 16 k for typical devices).
    pub output_rate_hz: f64,
    /// Resolution in bits.
    pub bits: u32,
    /// Equivalent input noise expressed in dB relative to full scale.
    pub noise_floor_dbfs: f64,
    /// Cut-off of the anti-alias filter as a fraction of the output Nyquist.
    pub anti_alias_fraction: f64,
}

impl Default for AdcConfig {
    fn default() -> Self {
        AdcConfig {
            output_rate_hz: 48_000.0,
            bits: 16,
            noise_floor_dbfs: -90.0,
            anti_alias_fraction: 0.9,
        }
    }
}

impl AdcConfig {
    /// Validates the configuration.
    pub fn validate(&self) -> Result<()> {
        if !(self.output_rate_hz > 0.0) {
            return Err(AcousticsError::invalid(
                "output_rate_hz",
                "must be positive",
            ));
        }
        if self.bits < 4 || self.bits > 32 {
            return Err(AcousticsError::invalid("bits", "must be within [4, 32]"));
        }
        if !(0.1..=1.0).contains(&self.anti_alias_fraction) {
            return Err(AcousticsError::invalid(
                "anti_alias_fraction",
                "must be within [0.1, 1.0]",
            ));
        }
        Ok(())
    }
}

/// Converts an analog (high-rate, full-scale-normalised) signal into the
/// digital recording a device would store: anti-alias filter, resample,
/// add converter noise, quantise, clip to full scale.
pub fn digitize(analog_full_scale: &Signal, config: &AdcConfig, seed: u64) -> Result<Signal> {
    config.validate()?;
    if analog_full_scale.is_empty() {
        return Err(AcousticsError::invalid("analog_full_scale", "empty signal"));
    }
    let input_rate = analog_full_scale.sample_rate_hz();
    let cutoff =
        (config.output_rate_hz / 2.0 * config.anti_alias_fraction).min(input_rate / 2.0 * 0.98);

    // Anti-alias low-pass at the output Nyquist (applied at the input rate).
    let filtered = if cutoff < input_rate / 2.0 * 0.98 {
        let lpf = FirFilter::low_pass_cached(cutoff, input_rate, 255, WindowKind::Blackman)?;
        lpf.filter_signal(analog_full_scale)?
    } else {
        analog_full_scale.clone()
    };

    // Resample to the output rate.
    let mut resampled = resample(&filtered, config.output_rate_hz)?;

    // Converter noise.
    let noise_rms = 10f64.powf(config.noise_floor_dbfs / 20.0);
    let mut rng = StdRng::seed_from_u64(seed);
    for x in resampled.samples_mut() {
        let n: f64 = (0..12).map(|_| rng.gen::<f64>()).sum::<f64>() - 6.0;
        *x += n * noise_rms;
    }

    // Quantise and clip.
    let levels = 2f64.powi(config.bits as i32 - 1);
    for x in resampled.samples_mut() {
        let clipped = x.clamp(-1.0, 1.0);
        *x = (clipped * levels).round() / levels;
    }
    Ok(resampled)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ivc_dsp::spectrum::band_power;

    #[test]
    fn validation() {
        let bad_rate = AdcConfig {
            output_rate_hz: 0.0,
            ..AdcConfig::default()
        };
        assert!(bad_rate.validate().is_err());
        let bad_bits = AdcConfig {
            bits: 2,
            ..AdcConfig::default()
        };
        assert!(bad_bits.validate().is_err());
        let bad_fraction = AdcConfig {
            anti_alias_fraction: 1.5,
            ..AdcConfig::default()
        };
        assert!(bad_fraction.validate().is_err());
        let empty = Signal::new(vec![], 192_000.0).unwrap();
        assert!(digitize(&empty, &AdcConfig::default(), 0).is_err());
    }

    #[test]
    fn output_rate_and_duration_are_respected() {
        let s = Signal::tone(1_000.0, 0.5, 0.25, 192_000.0).unwrap();
        let out = digitize(&s, &AdcConfig::default(), 1).unwrap();
        assert_eq!(out.sample_rate_hz(), 48_000.0);
        assert!((out.duration_s() - 0.25).abs() < 0.01);
    }

    #[test]
    fn in_band_tone_survives_conversion() {
        let s = Signal::tone(1_000.0, 0.5, 0.25, 192_000.0).unwrap();
        let out = digitize(&s, &AdcConfig::default(), 1).unwrap();
        let p = band_power(out.samples(), 48_000.0, 800.0, 1_200.0).unwrap();
        let total = band_power(out.samples(), 48_000.0, 20.0, 23_000.0).unwrap();
        assert!(p / total > 0.95, "tone fraction {}", p / total);
    }

    #[test]
    fn out_of_band_ultrasound_is_removed() {
        let mut s = Signal::tone(1_000.0, 0.2, 0.25, 192_000.0).unwrap();
        s.mix(&Signal::tone(40_000.0, 0.8, 0.25, 192_000.0).unwrap())
            .unwrap();
        let out = digitize(&s, &AdcConfig::default(), 1).unwrap();
        // Nothing above 20 kHz can exist at 48 kHz output, and nothing
        // should have aliased into 2-20 kHz either.
        let alias = band_power(out.samples(), 48_000.0, 2_000.0, 20_000.0).unwrap();
        let tone = band_power(out.samples(), 48_000.0, 800.0, 1_200.0).unwrap();
        assert!(alias / tone < 0.01, "alias fraction {}", alias / tone);
    }

    #[test]
    fn quantisation_limits_dynamic_range() {
        let quiet = Signal::tone(1_000.0, 1e-6, 0.25, 192_000.0).unwrap();
        let coarse = AdcConfig {
            bits: 8,
            noise_floor_dbfs: -120.0,
            ..AdcConfig::default()
        };
        let out = digitize(&quiet, &coarse, 1).unwrap();
        // A signal far below half an LSB of an 8-bit converter quantises to
        // silence (plus negligible noise).
        assert!(out.rms() < 1e-3);
    }

    #[test]
    fn full_scale_input_is_clipped_not_wrapped() {
        let loud = Signal::tone(1_000.0, 2.0, 0.1, 192_000.0).unwrap();
        let out = digitize(&loud, &AdcConfig::default(), 1).unwrap();
        assert!(out.peak() <= 1.0 + 1e-9);
    }

    #[test]
    fn conversion_is_deterministic_per_seed() {
        let s = Signal::tone(1_000.0, 0.5, 0.1, 192_000.0).unwrap();
        let a = digitize(&s, &AdcConfig::default(), 9).unwrap();
        let b = digitize(&s, &AdcConfig::default(), 9).unwrap();
        assert_eq!(a.samples(), b.samples());
    }
}
