//! Air environment: temperature, humidity, pressure and the derived speed
//! of sound.

use crate::error::{AcousticsError, Result};

/// Ambient air conditions used by propagation and absorption models.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AirEnvironment {
    /// Air temperature in degrees Celsius.
    pub temperature_c: f64,
    /// Relative humidity in percent (0–100).
    pub relative_humidity_percent: f64,
    /// Static pressure in kilopascal.
    pub pressure_kpa: f64,
}

impl Default for AirEnvironment {
    /// A typical indoor meeting room: 20 °C, 50 % RH, 101.325 kPa.
    fn default() -> Self {
        AirEnvironment {
            temperature_c: 20.0,
            relative_humidity_percent: 50.0,
            pressure_kpa: 101.325,
        }
    }
}

impl AirEnvironment {
    /// Creates a validated environment.
    pub fn new(
        temperature_c: f64,
        relative_humidity_percent: f64,
        pressure_kpa: f64,
    ) -> Result<Self> {
        if !(-50.0..=60.0).contains(&temperature_c) {
            return Err(AcousticsError::invalid(
                "temperature_c",
                format!("{temperature_c} outside [-50, 60]"),
            ));
        }
        if !(0.0..=100.0).contains(&relative_humidity_percent) {
            return Err(AcousticsError::invalid(
                "relative_humidity_percent",
                format!("{relative_humidity_percent} outside [0, 100]"),
            ));
        }
        if !(50.0..=120.0).contains(&pressure_kpa) {
            return Err(AcousticsError::invalid(
                "pressure_kpa",
                format!("{pressure_kpa} outside [50, 120]"),
            ));
        }
        Ok(AirEnvironment {
            temperature_c,
            relative_humidity_percent,
            pressure_kpa,
        })
    }

    /// Temperature in kelvin.
    #[inline]
    pub fn temperature_k(&self) -> f64 {
        self.temperature_c + 273.15
    }

    /// Speed of sound in m/s for the current temperature (the humidity and
    /// pressure corrections are below 0.5 % and ignored).
    pub fn speed_of_sound_m_per_s(&self) -> f64 {
        331.3 * (self.temperature_k() / 273.15).sqrt()
    }

    /// Saturation vapour pressure ratio used by the ISO 9613-1 absorption
    /// formula (molar concentration of water vapour, in percent).
    pub fn water_vapour_molar_concentration_percent(&self) -> f64 {
        let t = self.temperature_k();
        let t01 = 273.16; // triple point of water
        let p_ref = 101.325;
        let csat = -6.8346 * (t01 / t).powf(1.261) + 4.6151;
        let psat_over_pref = 10f64.powf(csat);
        self.relative_humidity_percent * psat_over_pref / (self.pressure_kpa / p_ref)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_room_conditions() {
        let env = AirEnvironment::default();
        assert_eq!(env.temperature_c, 20.0);
        assert_eq!(env.relative_humidity_percent, 50.0);
    }

    #[test]
    fn validation_rejects_unphysical_values() {
        assert!(AirEnvironment::new(-80.0, 50.0, 101.0).is_err());
        assert!(AirEnvironment::new(20.0, 150.0, 101.0).is_err());
        assert!(AirEnvironment::new(20.0, 50.0, 10.0).is_err());
        assert!(AirEnvironment::new(20.0, 50.0, 101.0).is_ok());
    }

    #[test]
    fn speed_of_sound_matches_known_values() {
        let env = AirEnvironment::default();
        let c = env.speed_of_sound_m_per_s();
        assert!((c - 343.0).abs() < 1.5, "c = {c}");
        let cold = AirEnvironment::new(0.0, 50.0, 101.325).unwrap();
        assert!((cold.speed_of_sound_m_per_s() - 331.3).abs() < 0.5);
        // Warmer air is faster.
        let warm = AirEnvironment::new(35.0, 50.0, 101.325).unwrap();
        assert!(warm.speed_of_sound_m_per_s() > c);
    }

    #[test]
    fn humidity_concentration_is_monotonic_in_rh() {
        let dry = AirEnvironment::new(20.0, 20.0, 101.325).unwrap();
        let humid = AirEnvironment::new(20.0, 80.0, 101.325).unwrap();
        assert!(
            humid.water_vapour_molar_concentration_percent()
                > dry.water_vapour_molar_concentration_percent()
        );
        // At 20 C / 50 % RH the molar concentration is roughly 1.1-1.2 %.
        let h = AirEnvironment::default().water_vapour_molar_concentration_percent();
        assert!(h > 0.8 && h < 1.6, "h = {h}");
    }
}
