//! Free-field propagation of a pressure signal from a source to a receiver.
//!
//! Three effects are modelled:
//!
//! 1. **Spherical spreading** — pressure falls as `1/r` relative to the
//!    source's 1-metre reference distance (−6 dB per doubling).
//! 2. **Atmospheric absorption** — frequency-dependent loss per metre (see
//!    [`crate::absorption`]), applied in the frequency domain so that an
//!    ultrasonic carrier and its audible leakage attenuate differently.
//! 3. **Propagation delay** — `r / c` seconds of delay, applied as whole
//!    samples (sub-sample interpolation is irrelevant at the distances and
//!    bandwidths involved).
//!
//! Reflections are intentionally ignored: the paper's experiments were run
//! at line-of-sight in an ordinary room, where the direct path dominates the
//! demodulated baseband; DESIGN.md records this as a simplification.

use crate::absorption::absorption_gain;
use crate::environment::AirEnvironment;
use crate::error::{AcousticsError, Result};
use ivc_dsp::complex::Complex;
use ivc_dsp::fft::{bin_frequency, fft_in_place, next_power_of_two};
use ivc_dsp::signal::Signal;

/// Propagates `source_at_1m` (a pressure waveform in pascal referenced to
/// 1 m from the source) to a receiver `distance_m` away.
///
/// Returns the pressure waveform at the receiver, including spreading loss,
/// absorption and delay.
pub fn propagate(source_at_1m: &Signal, distance_m: f64, env: &AirEnvironment) -> Result<Signal> {
    if !(distance_m > 0.0) || !distance_m.is_finite() {
        return Err(AcousticsError::invalid(
            "distance_m",
            format!("{distance_m} must be positive and finite"),
        ));
    }
    if source_at_1m.is_empty() {
        return Err(AcousticsError::invalid("source_at_1m", "empty signal"));
    }
    let fs = source_at_1m.sample_rate_hz();
    // Spreading: reference distance is 1 m, so gain is 1/r (never > 1; the
    // near field below 1 m is clamped to the 1 m value, which is the common
    // convention for loudspeaker sensitivity figures).
    let spreading_gain = 1.0 / distance_m.max(1.0);

    // Frequency-dependent absorption applied via the FFT.
    let n = next_power_of_two(source_at_1m.len());
    let mut buffer = vec![Complex::ZERO; n];
    for (slot, &x) in buffer.iter_mut().zip(source_at_1m.samples().iter()) {
        *slot = Complex::from_real(x);
    }
    fft_in_place(&mut buffer, false)?;
    for (k, value) in buffer.iter_mut().enumerate() {
        let f = bin_frequency(k, n, fs).abs();
        let gain = absorption_gain(f, distance_m, env)?;
        *value = value.scale(gain * spreading_gain);
    }
    fft_in_place(&mut buffer, true)?;
    let mut samples: Vec<f64> = buffer.into_iter().take(source_at_1m.len()).map(|c| c.re).collect();

    // Whole-sample propagation delay.
    let delay_samples = (distance_m / env.speed_of_sound_m_per_s() * fs).round() as usize;
    if delay_samples > 0 {
        let mut delayed = vec![0.0; delay_samples];
        delayed.extend_from_slice(&samples);
        samples = delayed;
    }
    Ok(Signal::new(samples, fs)?)
}

/// Propagation loss (in dB) for a single frequency over `distance_m`:
/// spreading plus absorption.  Useful for link-budget style calculations in
/// the attack planner without synthesising a waveform.
pub fn path_loss_db(frequency_hz: f64, distance_m: f64, env: &AirEnvironment) -> Result<f64> {
    if !(distance_m > 0.0) || !distance_m.is_finite() {
        return Err(AcousticsError::invalid(
            "distance_m",
            format!("{distance_m} must be positive and finite"),
        ));
    }
    let spreading_db = 20.0 * distance_m.max(1.0).log10();
    let absorption_db = crate::absorption::absorption_db(frequency_hz, distance_m, env)?;
    Ok(spreading_db + absorption_db)
}

/// Delay in seconds over `distance_m`.
pub fn propagation_delay_s(distance_m: f64, env: &AirEnvironment) -> Result<f64> {
    if distance_m < 0.0 || !distance_m.is_finite() {
        return Err(AcousticsError::invalid(
            "distance_m",
            format!("{distance_m} must be non-negative and finite"),
        ));
    }
    Ok(distance_m / env.speed_of_sound_m_per_s())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spl::waveform_spl_db;

    fn ultrasound_tone(freq: f64, spl_1m_db: f64, fs: f64) -> Signal {
        let rms = crate::spl::spl_db_to_pressure(spl_1m_db);
        Signal::tone(freq, rms * std::f64::consts::SQRT_2, 0.3, fs).unwrap()
    }

    #[test]
    fn validation() {
        let env = AirEnvironment::default();
        let s = ultrasound_tone(40_000.0, 100.0, 192_000.0);
        assert!(propagate(&s, 0.0, &env).is_err());
        assert!(propagate(&s, f64::NAN, &env).is_err());
        assert!(propagate(&Signal::new(vec![], 192_000.0).unwrap(), 1.0, &env).is_err());
        assert!(path_loss_db(1_000.0, -1.0, &env).is_err());
        assert!(propagation_delay_s(-1.0, &env).is_err());
    }

    #[test]
    fn one_metre_is_the_reference_distance() {
        let env = AirEnvironment::default();
        let s = ultrasound_tone(1_000.0, 80.0, 48_000.0);
        let at_1m = propagate(&s, 1.0, &env).unwrap();
        // At 1 kHz over 1 m the absorption is negligible, so SPL ~ 80 dB.
        let spl = waveform_spl_db(&at_1m.samples()[at_1m.len() / 4..]);
        assert!((spl - 80.0).abs() < 0.3, "spl {spl}");
    }

    #[test]
    fn spreading_gives_six_db_per_doubling_for_audible_sound() {
        let env = AirEnvironment::default();
        let s = ultrasound_tone(1_000.0, 80.0, 48_000.0);
        let at_2m = propagate(&s, 2.0, &env).unwrap();
        let at_4m = propagate(&s, 4.0, &env).unwrap();
        let spl_2 = waveform_spl_db(&at_2m.samples()[at_2m.len() / 2..]);
        let spl_4 = waveform_spl_db(&at_4m.samples()[at_4m.len() / 2..]);
        assert!((spl_2 - spl_4 - 6.02).abs() < 0.3, "{spl_2} vs {spl_4}");
    }

    #[test]
    fn ultrasound_loses_more_than_spreading_alone() {
        let env = AirEnvironment::default();
        let audible = path_loss_db(1_000.0, 8.0, &env).unwrap();
        let ultrasonic = path_loss_db(40_000.0, 8.0, &env).unwrap();
        // Both share ~18 dB spreading; ultrasound pays several dB more.
        assert!(ultrasonic - audible > 5.0, "difference {}", ultrasonic - audible);
    }

    #[test]
    fn propagated_waveform_matches_path_loss_budget() {
        let env = AirEnvironment::default();
        let fs = 192_000.0;
        let s = ultrasound_tone(40_000.0, 110.0, fs);
        let d = 5.0;
        let received = propagate(&s, d, &env).unwrap();
        let expected_spl = 110.0 - path_loss_db(40_000.0, d, &env).unwrap();
        let measured = waveform_spl_db(&received.samples()[received.len() / 2..]);
        assert!((measured - expected_spl).abs() < 0.5, "{measured} vs {expected_spl}");
    }

    #[test]
    fn delay_matches_speed_of_sound() {
        let env = AirEnvironment::default();
        let c = env.speed_of_sound_m_per_s();
        let fs = 48_000.0;
        let mut s = Signal::silence(0.01, fs).unwrap();
        s.samples_mut()[0] = 1.0;
        let d = 3.43; // ~10 ms at 343 m/s
        let received = propagate(&s, d, &env).unwrap();
        let peak_index = received
            .samples()
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.abs().partial_cmp(&b.1.abs()).unwrap())
            .unwrap()
            .0;
        let expected = (d / c * fs).round() as usize;
        assert_eq!(peak_index, expected);
        assert!((propagation_delay_s(d, &env).unwrap() - d / c).abs() < 1e-12);
    }

    #[test]
    fn near_field_is_clamped_to_reference() {
        let env = AirEnvironment::default();
        let s = ultrasound_tone(1_000.0, 80.0, 48_000.0);
        let near = propagate(&s, 0.25, &env).unwrap();
        let spl = waveform_spl_db(&near.samples()[near.len() / 2..]);
        assert!(spl <= 80.5, "near-field SPL should not exceed the 1 m value: {spl}");
    }
}
