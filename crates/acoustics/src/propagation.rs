//! Free-field propagation of a pressure signal from a source to a receiver.
//!
//! Three effects are modelled:
//!
//! 1. **Spherical spreading** — pressure falls as `1/r` relative to the
//!    source's 1-metre reference distance (−6 dB per doubling).
//! 2. **Atmospheric absorption** — frequency-dependent loss per metre (see
//!    [`crate::absorption`]), applied in the frequency domain so that an
//!    ultrasonic carrier and its audible leakage attenuate differently.
//! 3. **Propagation delay** — `r / c` seconds of delay, applied as whole
//!    samples (sub-sample interpolation is irrelevant at the distances and
//!    bandwidths involved).
//!
//! Reflections are intentionally ignored: the paper's experiments were run
//! at line-of-sight in an ordinary room, where the direct path dominates the
//! demodulated baseband; DESIGN.md records this as a simplification.

use crate::absorption::absorption_gain;
use crate::environment::AirEnvironment;
use crate::error::{AcousticsError, Result};
use ivc_dsp::complex::Complex;
use ivc_dsp::fft::{bin_frequency, fft_in_place, next_power_of_two};
use ivc_dsp::signal::Signal;

/// Propagates `source_at_1m` (a pressure waveform in pascal referenced to
/// 1 m from the source) to a receiver `distance_m` away.
///
/// Returns the pressure waveform at the receiver, including spreading loss,
/// absorption and delay.
pub fn propagate(source_at_1m: &Signal, distance_m: f64, env: &AirEnvironment) -> Result<Signal> {
    propagate_from_aperture(source_at_1m, distance_m, 0.0, env)
}

/// The on-axis distance (m) out to which a source of physical size
/// `aperture_m` keeps its beam collimated at `frequency_hz` — the last
/// axial maximum of a piston radiator, `N = D²·f / (4c)`.
///
/// Beyond `N` the field spreads spherically; inside it the on-axis pressure
/// stays at the source level.  For a point source (`aperture_m = 0`) or for
/// audible frequencies this is well under the 1 m reference distance and the
/// familiar `1/r` law applies everywhere.  For the paper's speaker arrays at
/// 40 kHz (λ ≈ 8.6 mm) it reaches several metres — this collimation is what
/// makes the *long-range* attack long-range.
pub fn rayleigh_distance_m(aperture_m: f64, frequency_hz: f64, env: &AirEnvironment) -> f64 {
    (aperture_m * aperture_m * frequency_hz / (4.0 * env.speed_of_sound_m_per_s())).max(0.0)
}

/// Propagates `source_at_1m` to a receiver `distance_m` away from a source
/// of physical aperture `aperture_m` (0 for a point source).
///
/// Identical to [`propagate`] except that each frequency's spreading loss
/// starts at that frequency's [`rayleigh_distance_m`] instead of at the 1 m
/// reference, so a large ultrasonic array's collimated beam reaches much
/// farther than a point source of the same power, while its audible leakage
/// still decays as `1/r`.
pub fn propagate_from_aperture(
    source_at_1m: &Signal,
    distance_m: f64,
    aperture_m: f64,
    env: &AirEnvironment,
) -> Result<Signal> {
    propagate_with_gain_curve(source_at_1m, distance_m, aperture_m, &[], env)
}

/// Evaluates a sampled spectral gain curve at `frequency_hz` by linear
/// interpolation over log-frequency, clamping beyond the first/last anchor.
///
/// An empty curve is the identity (gain exactly `1.0`), which is what makes
/// [`propagate_from_aperture`] a bit-identical special case of
/// [`propagate_with_gain_curve`].  Anchors must be sorted by frequency.
pub fn interpolate_gain_curve(curve: &[(f64, f64)], frequency_hz: f64) -> f64 {
    if frequency_hz.is_nan() {
        // Propagate NaN (float convention) instead of panicking on the
        // anchor-index underflow a NaN comparison chain would cause.
        return f64::NAN;
    }
    match curve {
        [] => 1.0,
        [(_, g)] => *g,
        _ => {
            let first = curve[0];
            let last = curve[curve.len() - 1];
            if frequency_hz <= first.0 {
                return first.1;
            }
            if frequency_hz >= last.0 {
                return last.1;
            }
            let i = curve.partition_point(|(f, _)| *f <= frequency_hz);
            let (f0, g0) = curve[i - 1];
            let (f1, g1) = curve[i];
            if f1 <= f0 {
                return g0;
            }
            let t = (frequency_hz / f0).ln() / (f1 / f0).ln();
            g0 + (g1 - g0) * t
        }
    }
}

/// The room-aware propagation primitive: [`propagate_from_aperture`] with
/// an extra per-frequency amplitude gain (a sampled curve, see
/// [`interpolate_gain_curve`]) folded into every bin.
///
/// Room models use the curve for what air does not do: surface reflection
/// losses accumulated along an image-source path, or the transmission loss
/// of an occluding wall between source and receiver.  Spreading and
/// atmospheric absorption stay exact per-bin computations over
/// `distance_m`, so a path through a room pays the same physics as the
/// free-field path of the same length.
pub fn propagate_with_gain_curve(
    source_at_1m: &Signal,
    distance_m: f64,
    aperture_m: f64,
    gain_curve: &[(f64, f64)],
    env: &AirEnvironment,
) -> Result<Signal> {
    if !(distance_m > 0.0) || !distance_m.is_finite() {
        return Err(AcousticsError::invalid(
            "distance_m",
            format!("{distance_m} must be positive and finite"),
        ));
    }
    if !(0.0..=10.0).contains(&aperture_m) {
        return Err(AcousticsError::invalid(
            "aperture_m",
            format!("{aperture_m} must be within [0, 10] metres"),
        ));
    }
    if source_at_1m.is_empty() {
        return Err(AcousticsError::invalid("source_at_1m", "empty signal"));
    }
    let fs = source_at_1m.sample_rate_hz();

    // Frequency-dependent spreading and absorption applied via the FFT.
    // Spreading: the reference distance is 1 m, so the point-source gain is
    // 1/r (never > 1; the near field below 1 m is clamped to the 1 m value,
    // which is the common convention for loudspeaker sensitivity figures).
    // An extended source keeps its on-axis level out to the frequency's
    // Rayleigh distance before the 1/r decay starts.
    let n = next_power_of_two(source_at_1m.len());
    let mut buffer = vec![Complex::ZERO; n];
    for (slot, &x) in buffer.iter_mut().zip(source_at_1m.samples().iter()) {
        *slot = Complex::from_real(x);
    }
    fft_in_place(&mut buffer, false)?;
    for (k, value) in buffer.iter_mut().enumerate() {
        let f = bin_frequency(k, n, fs).abs();
        let collimated_to_m = rayleigh_distance_m(aperture_m, f, env).max(1.0);
        let spreading_gain = (collimated_to_m / distance_m).min(1.0);
        let gain = absorption_gain(f, distance_m, env)?;
        // `interpolate_gain_curve` returns exactly 1.0 for an empty curve
        // and `x * 1.0 == x` in IEEE arithmetic, so the free-field result
        // is bit-identical to the pre-room-model implementation.
        let curve_gain = interpolate_gain_curve(gain_curve, f);
        *value = value.scale(gain * spreading_gain * curve_gain);
    }
    fft_in_place(&mut buffer, true)?;
    let mut samples: Vec<f64> = buffer
        .into_iter()
        .take(source_at_1m.len())
        .map(|c| c.re)
        .collect();

    // Whole-sample propagation delay.
    let delay_samples = propagation_delay_samples(distance_m, fs, env);
    if delay_samples > 0 {
        let mut delayed = vec![0.0; delay_samples];
        delayed.extend_from_slice(&samples);
        samples = delayed;
    }
    Ok(Signal::new(samples, fs)?)
}

/// The whole-sample delay of a path of `distance_m` at sample rate `fs` —
/// the single owner of the rounding convention, so multipath taps (see
/// `ivc-room`) land on exactly the same time axis as the direct path
/// delayed here.
pub fn propagation_delay_samples(distance_m: f64, fs: f64, env: &AirEnvironment) -> usize {
    (distance_m / env.speed_of_sound_m_per_s() * fs).round() as usize
}

/// Propagation loss (in dB) for a single frequency over `distance_m`:
/// spreading plus absorption.  Useful for link-budget style calculations in
/// the attack planner without synthesising a waveform.
pub fn path_loss_db(frequency_hz: f64, distance_m: f64, env: &AirEnvironment) -> Result<f64> {
    path_loss_from_aperture_db(frequency_hz, distance_m, 0.0, env)
}

/// [`path_loss_db`] for a source of physical aperture `aperture_m`: the
/// single-frequency view of [`propagate_from_aperture`], with spreading
/// starting at the frequency's [`rayleigh_distance_m`] instead of at 1 m.
/// Keeps planner predictions consistent with the waveform simulation.
pub fn path_loss_from_aperture_db(
    frequency_hz: f64,
    distance_m: f64,
    aperture_m: f64,
    env: &AirEnvironment,
) -> Result<f64> {
    if !(distance_m > 0.0) || !distance_m.is_finite() {
        return Err(AcousticsError::invalid(
            "distance_m",
            format!("{distance_m} must be positive and finite"),
        ));
    }
    if !(0.0..=10.0).contains(&aperture_m) {
        return Err(AcousticsError::invalid(
            "aperture_m",
            format!("{aperture_m} must be within [0, 10] metres"),
        ));
    }
    let collimated_to_m = rayleigh_distance_m(aperture_m, frequency_hz, env).max(1.0);
    let spreading_db = 20.0 * (distance_m / collimated_to_m).max(1.0).log10();
    let absorption_db = crate::absorption::absorption_db(frequency_hz, distance_m, env)?;
    Ok(spreading_db + absorption_db)
}

/// Delay in seconds over `distance_m`.
pub fn propagation_delay_s(distance_m: f64, env: &AirEnvironment) -> Result<f64> {
    if distance_m < 0.0 || !distance_m.is_finite() {
        return Err(AcousticsError::invalid(
            "distance_m",
            format!("{distance_m} must be non-negative and finite"),
        ));
    }
    Ok(distance_m / env.speed_of_sound_m_per_s())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spl::waveform_spl_db;

    fn ultrasound_tone(freq: f64, spl_1m_db: f64, fs: f64) -> Signal {
        let rms = crate::spl::spl_db_to_pressure(spl_1m_db);
        Signal::tone(freq, rms * std::f64::consts::SQRT_2, 0.3, fs).unwrap()
    }

    #[test]
    fn validation() {
        let env = AirEnvironment::default();
        let s = ultrasound_tone(40_000.0, 100.0, 192_000.0);
        assert!(propagate(&s, 0.0, &env).is_err());
        assert!(propagate(&s, f64::NAN, &env).is_err());
        assert!(propagate(&Signal::new(vec![], 192_000.0).unwrap(), 1.0, &env).is_err());
        assert!(path_loss_db(1_000.0, -1.0, &env).is_err());
        assert!(propagation_delay_s(-1.0, &env).is_err());
    }

    #[test]
    fn one_metre_is_the_reference_distance() {
        let env = AirEnvironment::default();
        let s = ultrasound_tone(1_000.0, 80.0, 48_000.0);
        let at_1m = propagate(&s, 1.0, &env).unwrap();
        // At 1 kHz over 1 m the absorption is negligible, so SPL ~ 80 dB.
        let spl = waveform_spl_db(&at_1m.samples()[at_1m.len() / 4..]);
        assert!((spl - 80.0).abs() < 0.3, "spl {spl}");
    }

    #[test]
    fn spreading_gives_six_db_per_doubling_for_audible_sound() {
        let env = AirEnvironment::default();
        let s = ultrasound_tone(1_000.0, 80.0, 48_000.0);
        let at_2m = propagate(&s, 2.0, &env).unwrap();
        let at_4m = propagate(&s, 4.0, &env).unwrap();
        let spl_2 = waveform_spl_db(&at_2m.samples()[at_2m.len() / 2..]);
        let spl_4 = waveform_spl_db(&at_4m.samples()[at_4m.len() / 2..]);
        assert!((spl_2 - spl_4 - 6.02).abs() < 0.3, "{spl_2} vs {spl_4}");
    }

    #[test]
    fn ultrasound_loses_more_than_spreading_alone() {
        let env = AirEnvironment::default();
        let audible = path_loss_db(1_000.0, 8.0, &env).unwrap();
        let ultrasonic = path_loss_db(40_000.0, 8.0, &env).unwrap();
        // Both share ~18 dB spreading; ultrasound pays several dB more.
        assert!(
            ultrasonic - audible > 5.0,
            "difference {}",
            ultrasonic - audible
        );
    }

    #[test]
    fn propagated_waveform_matches_path_loss_budget() {
        let env = AirEnvironment::default();
        let fs = 192_000.0;
        let s = ultrasound_tone(40_000.0, 110.0, fs);
        let d = 5.0;
        let received = propagate(&s, d, &env).unwrap();
        let expected_spl = 110.0 - path_loss_db(40_000.0, d, &env).unwrap();
        let measured = waveform_spl_db(&received.samples()[received.len() / 2..]);
        assert!(
            (measured - expected_spl).abs() < 0.5,
            "{measured} vs {expected_spl}"
        );
    }

    #[test]
    fn delay_matches_speed_of_sound() {
        let env = AirEnvironment::default();
        let c = env.speed_of_sound_m_per_s();
        let fs = 48_000.0;
        let mut s = Signal::silence(0.01, fs).unwrap();
        s.samples_mut()[0] = 1.0;
        let d = 3.43; // ~10 ms at 343 m/s
        let received = propagate(&s, d, &env).unwrap();
        let peak_index = received
            .samples()
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.abs().partial_cmp(&b.1.abs()).unwrap())
            .unwrap()
            .0;
        let expected = (d / c * fs).round() as usize;
        assert_eq!(peak_index, expected);
        assert!((propagation_delay_s(d, &env).unwrap() - d / c).abs() < 1e-12);
    }

    #[test]
    fn rayleigh_distance_scales_with_aperture_and_frequency() {
        let env = AirEnvironment::default();
        assert_eq!(rayleigh_distance_m(0.0, 40_000.0, &env), 0.0);
        let small = rayleigh_distance_m(0.33, 40_000.0, &env);
        let large = rayleigh_distance_m(1.8, 40_000.0, &env);
        let audible = rayleigh_distance_m(1.8, 1_000.0, &env);
        // A 12-element array (0.33 m) collimates for ~3 m at 40 kHz; the
        // paper's 61-element rig (1.8 m) for the better part of 100 m.
        assert!((2.0..5.0).contains(&small), "small-array N {small}");
        assert!(large > 50.0, "large-array N {large}");
        // The same rig at 1 kHz is a point source at room scales.
        assert!(audible < large / 30.0, "audible N {audible}");
    }

    #[test]
    fn zero_aperture_matches_point_source_propagation() {
        let env = AirEnvironment::default();
        let s = ultrasound_tone(40_000.0, 110.0, 192_000.0);
        let point = propagate(&s, 5.0, &env).unwrap();
        let aperture = propagate_from_aperture(&s, 5.0, 0.0, &env).unwrap();
        assert_eq!(point.samples(), aperture.samples());
        assert!(propagate_from_aperture(&s, 5.0, -1.0, &env).is_err());
        assert!(propagate_from_aperture(&s, 5.0, 50.0, &env).is_err());
    }

    #[test]
    fn collimated_ultrasound_outranges_a_point_source() {
        let env = AirEnvironment::default();
        let s = ultrasound_tone(40_000.0, 110.0, 192_000.0);
        let d = 6.0;
        let point = propagate(&s, d, &env).unwrap();
        let beam = propagate_from_aperture(&s, d, 0.5, &env).unwrap();
        let spl_point = waveform_spl_db(&point.samples()[point.len() / 2..]);
        let spl_beam = waveform_spl_db(&beam.samples()[beam.len() / 2..]);
        // 0.5 m aperture at 40 kHz collimates for ~7 m: essentially all the
        // 1/r spreading loss (~15.6 dB at 6 m) is recovered; absorption is
        // identical for both.
        assert!(spl_beam - spl_point > 10.0, "{spl_beam} vs {spl_point}");
        // The beam never exceeds the source level budget: spreading gain is
        // clamped at unity.
        let near = propagate_from_aperture(&s, 1.0, 0.5, &env).unwrap();
        let spl_near = waveform_spl_db(&near.samples()[near.len() / 2..]);
        assert!(spl_near <= 110.5, "near SPL {spl_near}");
    }

    #[test]
    fn aperture_does_not_help_audible_leakage() {
        let env = AirEnvironment::default();
        let s = ultrasound_tone(1_000.0, 80.0, 48_000.0);
        let d = 4.0;
        let point = propagate(&s, d, &env).unwrap();
        let beam = propagate_from_aperture(&s, d, 0.5, &env).unwrap();
        let spl_point = waveform_spl_db(&point.samples()[point.len() / 2..]);
        let spl_beam = waveform_spl_db(&beam.samples()[beam.len() / 2..]);
        // At 1 kHz a 0.5 m aperture is smaller than a wavelength's Rayleigh
        // scale: spreading stays spherical.
        assert!(
            (spl_beam - spl_point).abs() < 0.2,
            "{spl_beam} vs {spl_point}"
        );
    }

    #[test]
    fn empty_gain_curve_is_bit_identical_to_free_field() {
        let env = AirEnvironment::default();
        let s = ultrasound_tone(40_000.0, 110.0, 192_000.0);
        let free = propagate_from_aperture(&s, 4.0, 0.5, &env).unwrap();
        let curved = propagate_with_gain_curve(&s, 4.0, 0.5, &[], &env).unwrap();
        assert_eq!(free.samples(), curved.samples());
    }

    #[test]
    fn gain_curve_interpolation_follows_the_anchors() {
        assert_eq!(interpolate_gain_curve(&[], 1_000.0), 1.0);
        let curve3 = [(100.0, 1.0), (1_000.0, 0.5), (10_000.0, 0.1)];
        assert!(interpolate_gain_curve(&curve3, f64::NAN).is_nan());
        assert_eq!(interpolate_gain_curve(&[(500.0, 0.25)], 40_000.0), 0.25);
        let curve = [(100.0, 1.0), (1_000.0, 0.5), (10_000.0, 0.1)];
        // Clamped outside the anchors.
        assert_eq!(interpolate_gain_curve(&curve, 10.0), 1.0);
        assert_eq!(interpolate_gain_curve(&curve, 1e6), 0.1);
        // Exact at anchors, monotone between them.
        assert_eq!(interpolate_gain_curve(&curve, 1_000.0), 0.5);
        let mid = interpolate_gain_curve(&curve, 316.2);
        assert!(mid < 1.0 && mid > 0.5, "mid {mid}");
        // Log-frequency interpolation: the geometric midpoint of the
        // anchor frequencies lands on the arithmetic midpoint of the gains.
        let geo = interpolate_gain_curve(&curve, (100.0f64 * 1_000.0).sqrt());
        assert!((geo - 0.75).abs() < 1e-9, "geo {geo}");
    }

    #[test]
    fn gain_curve_attenuates_the_targeted_band() {
        let env = AirEnvironment::default();
        let fs = 192_000.0;
        let mut s = ultrasound_tone(40_000.0, 100.0, fs);
        s.mix(&ultrasound_tone(1_000.0, 100.0, fs)).unwrap();
        // A curve that passes audible sound but kills ultrasound.
        let curve = [(2_000.0, 1.0), (20_000.0, 0.01), (80_000.0, 0.001)];
        let through = propagate_with_gain_curve(&s, 2.0, 0.0, &curve, &env).unwrap();
        let free = propagate(&s, 2.0, &env).unwrap();
        let band = |sig: &Signal, lo: f64, hi: f64| {
            ivc_dsp::spectrum::band_power(sig.samples(), fs, lo, hi).unwrap()
        };
        let audible_ratio = band(&through, 500.0, 1_500.0) / band(&free, 500.0, 1_500.0);
        let ultra_ratio = band(&through, 39_000.0, 41_000.0) / band(&free, 39_000.0, 41_000.0);
        assert!(audible_ratio > 0.8, "audible ratio {audible_ratio}");
        assert!(ultra_ratio < 1e-3, "ultrasound ratio {ultra_ratio}");
    }

    #[test]
    fn near_field_is_clamped_to_reference() {
        let env = AirEnvironment::default();
        let s = ultrasound_tone(1_000.0, 80.0, 48_000.0);
        let near = propagate(&s, 0.25, &env).unwrap();
        let spl = waveform_spl_db(&near.samples()[near.len() / 2..]);
        assert!(
            spl <= 80.5,
            "near-field SPL should not exceed the 1 m value: {spl}"
        );
    }
}
