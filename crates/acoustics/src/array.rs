//! An array of ultrasonic speakers, each playing its own drive signal.
//!
//! The array is the attack's delivery vehicle: the attacker splits the
//! modulated command across the elements so that no single element carries
//! both the carrier and a wide sideband slice.  Because air is (to an
//! excellent approximation at these levels) linear, the slices only
//! recombine inside the victim microphone's non-linearity.
//!
//! Two observation points matter and are both modelled:
//!
//! * the **target** microphone, far away on the array's axis, and
//! * a **bystander** standing near the array, whose ears would pick up any
//!   audible leakage created by the elements' own non-linearities.

use crate::environment::AirEnvironment;
use crate::error::{AcousticsError, Result};
use crate::propagation::{propagate, propagate_from_aperture};
use crate::speaker::UltrasonicSpeaker;
use ivc_dsp::signal::Signal;

/// An array of identical ultrasonic speakers.
#[derive(Debug, Clone, PartialEq)]
pub struct SpeakerArray {
    element: UltrasonicSpeaker,
    num_elements: usize,
    /// Spacing between adjacent elements in metres (used only to sanity-check
    /// the far-field assumption; the array is small compared to the target
    /// distance in every experiment).
    element_spacing_m: f64,
}

/// What each element of the array should play and at what power.
#[derive(Debug, Clone, PartialEq)]
pub struct ElementDrive {
    /// Drive waveform, normalised to peak ≤ 1.
    pub drive: Signal,
    /// Electrical power for this element, in watt.
    pub power_w: f64,
}

impl SpeakerArray {
    /// Creates an array of `num_elements` copies of `element`.
    pub fn new(
        element: UltrasonicSpeaker,
        num_elements: usize,
        element_spacing_m: f64,
    ) -> Result<Self> {
        if num_elements == 0 {
            return Err(AcousticsError::invalid(
                "num_elements",
                "must be at least 1",
            ));
        }
        if !(element_spacing_m > 0.0) || element_spacing_m > 1.0 {
            return Err(AcousticsError::invalid(
                "element_spacing_m",
                "must be in (0, 1] metres",
            ));
        }
        // Propagation models apertures up to 10 m; enforce the bound here so
        // that any array that can be constructed can also be propagated
        // (`field_at_target` would otherwise fail late on a parameter the
        // caller never passed).
        let aperture_m = element_spacing_m * (num_elements.saturating_sub(1)) as f64;
        if aperture_m > 10.0 {
            return Err(AcousticsError::invalid(
                "(num_elements - 1) * element_spacing_m",
                format!("aperture {aperture_m:.2} m exceeds the supported 10 m"),
            ));
        }
        Ok(SpeakerArray {
            element,
            num_elements,
            element_spacing_m,
        })
    }

    /// Number of elements in the array.
    pub fn num_elements(&self) -> usize {
        self.num_elements
    }

    /// The speaker model used for every element.
    pub fn element(&self) -> &UltrasonicSpeaker {
        &self.element
    }

    /// Physical aperture (length) of the array in metres.
    pub fn aperture_m(&self) -> f64 {
        self.element_spacing_m * (self.num_elements.saturating_sub(1)) as f64
    }

    /// Combined pressure waveform at 1 m on-axis: the per-element emissions
    /// (each including that element's own non-linearity) summed coherently.
    ///
    /// The number of drives must not exceed the number of elements; unused
    /// elements stay silent.
    pub fn emitted_field_at_1m(&self, drives: &[ElementDrive]) -> Result<Signal> {
        if drives.is_empty() {
            return Err(AcousticsError::invalid(
                "drives",
                "no element drives provided",
            ));
        }
        if drives.len() > self.num_elements {
            return Err(AcousticsError::invalid(
                "drives",
                format!(
                    "{} drives for an array of {} elements",
                    drives.len(),
                    self.num_elements
                ),
            ));
        }
        // Each element applies its own non-linearity to its own drive; the
        // frequency response and pascal scaling are shared and linear, so
        // they are applied once to the summed excursion (identical result,
        // one FFT instead of one per element).
        let mut total: Option<Signal> = None;
        for d in drives {
            let distorted = self.element.distorted_excursion(&d.drive, d.power_w)?;
            match &mut total {
                None => total = Some(distorted),
                Some(t) => t.mix(&distorted)?,
            }
        }
        self.element
            .excursion_to_pressure_at_1m(&total.expect("at least one drive"))
    }

    /// Pressure waveform arriving at a target `distance_m` away on-axis.
    ///
    /// The array's aperture matters here: at ultrasonic wavelengths a
    /// multi-element array is many wavelengths across, so its on-axis beam
    /// stays collimated out to the aperture's Rayleigh distance before the
    /// spherical `1/r` decay starts (see
    /// [`crate::propagation::rayleigh_distance_m`]).  This collimation — not
    /// raw power — is what turns the array into a *long-range* attack.
    pub fn field_at_target(
        &self,
        drives: &[ElementDrive],
        distance_m: f64,
        env: &AirEnvironment,
    ) -> Result<Signal> {
        let near = self.emitted_field_at_1m(drives)?;
        propagate_from_aperture(&near, distance_m, self.aperture_m(), env)
    }

    /// Pressure waveform at a bystander standing `distance_m` from the array
    /// (for audibility analysis of the leakage).
    ///
    /// The bystander stands *off-axis* (next to the rig, not down the beam),
    /// so the collimation gain of [`SpeakerArray::field_at_target`] does not
    /// apply and the field decays as from a point source.
    pub fn field_at_bystander(
        &self,
        drives: &[ElementDrive],
        distance_m: f64,
        env: &AirEnvironment,
    ) -> Result<Signal> {
        let near = self.emitted_field_at_1m(drives)?;
        propagate(&near, distance_m, env)
    }

    /// Total electrical power across all drives, in watt.
    pub fn total_power_w(drives: &[ElementDrive]) -> f64 {
        drives.iter().map(|d| d.power_w).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spl::waveform_spl_db;
    use ivc_dsp::spectrum::band_power;

    fn drive_tone(freq: f64, fs: f64) -> Signal {
        Signal::tone(freq, 1.0, 0.3, fs).unwrap()
    }

    #[test]
    fn validation() {
        let spk = UltrasonicSpeaker::default();
        assert!(SpeakerArray::new(spk.clone(), 0, 0.03).is_err());
        assert!(SpeakerArray::new(spk.clone(), 4, 0.0).is_err());
        assert!(SpeakerArray::new(spk.clone(), 4, 2.0).is_err());
        // Aperture (spacing x (n-1)) beyond the propagation model's 10 m
        // bound is rejected at construction, not at field_at_target time.
        assert!(SpeakerArray::new(spk.clone(), 12, 1.0).is_err());
        assert!(SpeakerArray::new(spk.clone(), 11, 1.0).is_ok());
        let array = SpeakerArray::new(spk, 2, 0.03).unwrap();
        assert!(array.emitted_field_at_1m(&[]).is_err());
        let too_many: Vec<ElementDrive> = (0..3)
            .map(|_| ElementDrive {
                drive: drive_tone(30_000.0, 192_000.0),
                power_w: 1.0,
            })
            .collect();
        assert!(array.emitted_field_at_1m(&too_many).is_err());
    }

    #[test]
    fn geometry_helpers() {
        let array = SpeakerArray::new(UltrasonicSpeaker::default(), 61, 0.03).unwrap();
        assert_eq!(array.num_elements(), 61);
        assert!((array.aperture_m() - 1.8).abs() < 1e-9);
        assert_eq!(array.element().max_power_w, 30.0);
    }

    #[test]
    fn two_identical_elements_add_six_db() {
        let fs = 192_000.0;
        let array = SpeakerArray::new(UltrasonicSpeaker::default(), 2, 0.03).unwrap();
        let one = vec![ElementDrive {
            drive: drive_tone(30_000.0, fs),
            power_w: 4.0,
        }];
        let two = vec![
            ElementDrive {
                drive: drive_tone(30_000.0, fs),
                power_w: 4.0,
            },
            ElementDrive {
                drive: drive_tone(30_000.0, fs),
                power_w: 4.0,
            },
        ];
        let f1 = array.emitted_field_at_1m(&one).unwrap();
        let f2 = array.emitted_field_at_1m(&two).unwrap();
        let gain = waveform_spl_db(f2.samples()) - waveform_spl_db(f1.samples());
        assert!((gain - 6.02).abs() < 0.3, "gain {gain}");
        assert!((SpeakerArray::total_power_w(&two) - 8.0).abs() < 1e-12);
    }

    #[test]
    fn elements_playing_disjoint_tones_do_not_intermodulate_in_air() {
        // Element A plays 30 kHz, element B plays 35 kHz.  Because each
        // element's non-linearity only sees its own tone, the 5 kHz
        // difference product must NOT appear in the summed field — unlike
        // the single-speaker case tested in `speaker.rs`.
        let fs = 192_000.0;
        let array = SpeakerArray::new(UltrasonicSpeaker::default(), 2, 0.03).unwrap();
        let drives = vec![
            ElementDrive {
                drive: drive_tone(30_000.0, fs),
                power_w: 29.0,
            },
            ElementDrive {
                drive: drive_tone(35_000.0, fs),
                power_w: 29.0,
            },
        ];
        let field = array.emitted_field_at_1m(&drives).unwrap();
        let imd = band_power(field.samples(), fs, 4_500.0, 5_500.0).unwrap();
        let carriers = band_power(field.samples(), fs, 29_000.0, 36_000.0).unwrap();
        assert!(
            imd / carriers < 1e-6,
            "in-air IMD fraction {}",
            imd / carriers
        );

        // Control: the same two tones through ONE element do intermodulate.
        let mut combined = drive_tone(30_000.0, fs).scaled(0.5);
        combined.mix(&drive_tone(35_000.0, fs).scaled(0.5)).unwrap();
        let single = vec![ElementDrive {
            drive: combined,
            power_w: 29.0,
        }];
        let field_single = array.emitted_field_at_1m(&single).unwrap();
        let imd_single = band_power(field_single.samples(), fs, 4_500.0, 5_500.0).unwrap();
        let carriers_single = band_power(field_single.samples(), fs, 29_000.0, 36_000.0).unwrap();
        assert!(
            imd_single / carriers_single > (imd / carriers) * 100.0,
            "single-speaker IMD should dominate: {} vs {}",
            imd_single / carriers_single,
            imd / carriers
        );
    }

    #[test]
    fn field_at_target_attenuates_with_distance() {
        let fs = 192_000.0;
        let env = AirEnvironment::default();
        let array = SpeakerArray::new(UltrasonicSpeaker::default(), 4, 0.03).unwrap();
        let drives: Vec<ElementDrive> = (0..4)
            .map(|_| ElementDrive {
                drive: drive_tone(40_000.0, fs),
                power_w: 8.0,
            })
            .collect();
        let near = array.field_at_target(&drives, 2.0, &env).unwrap();
        let far = array.field_at_target(&drives, 8.0, &env).unwrap();
        let spl_near = waveform_spl_db(&near.samples()[near.len() / 2..]);
        let spl_far = waveform_spl_db(&far.samples()[far.len() / 2..]);
        // 4x distance: 12 dB spreading + ~7-8 dB extra absorption at 40 kHz.
        assert!(spl_near - spl_far > 15.0, "{spl_near} vs {spl_far}");
    }
}
