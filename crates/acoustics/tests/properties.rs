//! Property-based tests for the acoustic substrate.
//!
//! Invariants that must hold for arbitrary physical parameters: absorption
//! monotonicity, path-loss monotonicity in distance, SPL conversion
//! round-trips, audibility thresholds, non-linearity scaling and
//! propagation energy conservation (never creates energy).

use ivc_acoustics::absorption::absorption_db_per_m;
use ivc_acoustics::environment::AirEnvironment;
use ivc_acoustics::nonlinearity::Polynomial;
use ivc_acoustics::propagation::{path_loss_db, propagate};
use ivc_acoustics::psychoacoustics::hearing_threshold_db_spl;
use ivc_acoustics::spl::{pressure_to_spl_db, spl_db_to_pressure};
use ivc_dsp::signal::Signal;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn spl_roundtrip_is_identity(spl in -20.0f64..140.0) {
        let p = spl_db_to_pressure(spl);
        prop_assert!((pressure_to_spl_db(p) - spl).abs() < 1e-9);
    }

    #[test]
    fn absorption_is_nonnegative_and_monotonic_in_frequency(
        f in 20.0f64..80_000.0,
        temp in 0.0f64..35.0,
        rh in 10.0f64..90.0,
    ) {
        let env = AirEnvironment::new(temp, rh, 101.325).unwrap();
        let a = absorption_db_per_m(f, &env).unwrap();
        let a2 = absorption_db_per_m(f * 1.5, &env).unwrap();
        prop_assert!(a >= 0.0);
        prop_assert!(a2 >= a * 0.999, "absorption decreased: {} -> {}", a, a2);
    }

    #[test]
    fn path_loss_grows_with_distance(
        f in 100.0f64..60_000.0,
        d in 1.0f64..20.0,
    ) {
        let env = AirEnvironment::default();
        let near = path_loss_db(f, d, &env).unwrap();
        let far = path_loss_db(f, d * 2.0, &env).unwrap();
        prop_assert!(far > near);
        // Doubling distance costs at least the 6 dB of spreading.
        prop_assert!(far - near >= 6.0 - 1e-6);
    }

    #[test]
    fn propagation_never_amplifies(
        freq in 500.0f64..20_000.0,
        d in 1.0f64..15.0,
        amp in 0.01f64..5.0,
    ) {
        let env = AirEnvironment::default();
        let s = Signal::tone(freq, amp, 0.05, 48_000.0).unwrap();
        let out = propagate(&s, d, &env).unwrap();
        prop_assert!(out.peak() <= s.peak() * 1.01);
        prop_assert!(out.rms().is_finite());
    }

    #[test]
    fn hearing_threshold_is_high_outside_speech_range(f in 15_000.0f64..22_000.0) {
        // The threshold rises monotonically and steeply towards ultrasound.
        prop_assert!(hearing_threshold_db_spl(f) > hearing_threshold_db_spl(4_000.0));
        prop_assert!(hearing_threshold_db_spl(f) > 20.0);
    }

    #[test]
    fn quadratic_product_scales_with_square_of_amplitude(
        g2 in 0.05f64..1.0,
        a in 0.05f64..0.45,
    ) {
        let p = Polynomial::new(1.0, g2, 0.0).unwrap();
        let low = ivc_acoustics::nonlinearity::measure_two_tone_products(&p, 25_000.0, 30_000.0, a, 192_000.0).unwrap();
        let high = ivc_acoustics::nonlinearity::measure_two_tone_products(&p, 25_000.0, 30_000.0, 2.0 * a, 192_000.0).unwrap();
        let ratio = high.difference / low.difference.max(1e-15);
        prop_assert!((ratio - 4.0).abs() < 0.5, "ratio {}", ratio);
    }

    #[test]
    fn polynomial_application_is_odd_in_linear_part(x in -1.0f64..1.0, g1 in 0.5f64..2.0) {
        let p = Polynomial::new(g1, 0.0, 0.0).unwrap();
        prop_assert!((p.apply_sample(x) + p.apply_sample(-x)).abs() < 1e-12);
    }
}
