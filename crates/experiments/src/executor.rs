//! The parallel campaign executor: a bounded `std::thread` worker pool
//! that fans the expanded grid's trials out and collects records in job
//! order.
//!
//! Since the staged-pipeline refactor the pool runs the **Prepare →
//! Perturb → Evaluate** stages explicitly: the first worker to reach a
//! cell runs the Prepare stage once ([`ivc_core::PreparedCell`]) and every
//! trial of that cell shares the immutable result by reference; when a
//! cell's last trial finishes, its prepared state is dropped, so peak
//! memory is bounded by the number of in-flight cells, not the grid size.
//! Detector-axis entries are likewise trained once and shared.
//!
//! Determinism contract: the same spec produces the **byte-identical**
//! archived report at any worker count.  Four design choices make that
//! hold:
//!
//! 1. every trial's seed is a pure function of the spec
//!    ([`crate::grid::CampaignSpec::trial_seed`]) — never of scheduling;
//! 2. workers pull job indices from a shared counter (handed out in a
//!    banded order that spreads concurrent workers across distinct
//!    cells) but write results into the trial's own cell-major
//!    `(cell, trial)` slot, so collection order is fixed by the spec,
//!    never by scheduling or the hand-out order;
//! 3. a `PreparedCell` is immutable and `perturb`/`evaluate` are pure
//!    functions of `(cell, seed)`, so sharing prepared state cannot leak
//!    scheduling into results; and
//! 4. detector training is a pure function of the detector spec.

use crate::aggregate::{aggregate_cells, psychometric_curves};
use crate::error::{ExperimentError, Result};
use crate::grid::{BandSummarySpec, CampaignSpec, DetectorSpec};
use crate::report::CampaignReport;
use ivc_core::{telemetry, PrepareContext, PreparedCell, TrialScratch};
use ivc_defense::classifier::{LogisticRegression, TrainingConfig};
use ivc_defense::dataset::Dataset;
use ivc_dsp::signal::Signal;
use ivc_dsp::stft::{spectrogram, StftConfig};
use ivc_speech::commands::corpus;
use ivc_speech::recognizer::Recognizer;
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// What one trial contributed to its cell — the archived unit of raw data.
#[derive(Debug, Clone, PartialEq)]
pub struct TrialRecord {
    /// The cell this trial belongs to.
    pub cell_index: usize,
    /// Trial index within the cell.
    pub trial_index: usize,
    /// The seed the trial ran with.
    pub seed: u64,
    /// Did the device accept the command end to end?
    pub accepted: bool,
    /// Word accuracy against the intended command.
    pub word_accuracy: f64,
    /// The intended command's words that were recognised.
    pub recognized_words: Vec<String>,
    /// Audible-band SPL at the bystander, in dB (attack deliveries only).
    pub bystander_spl_db: Option<f64>,
    /// A-weighted SPL at the bystander, in dB(A).
    pub bystander_spl_dba: Option<f64>,
    /// Voice-band (intelligible) SPL at the bystander, in dB.
    pub bystander_voice_spl_db: Option<f64>,
    /// Would a bystander notice the leakage?
    pub leak_audible: Option<bool>,
    /// Electrical budget the delivery could not place (see
    /// [`ivc_core::TrialOutcome::power_shortfall_w`]).
    pub power_shortfall_w: f64,
    /// The defense feature vector of the recording (one value per
    /// [`ivc_defense::features::DefenseFeatures`] dimension).
    pub defense_features: Vec<f64>,
    /// The cell's trained detector's attack probability for this
    /// recording (`None` when the cell's detector-axis entry is `None`).
    pub detection_probability: Option<f64>,
    /// Band-energy summary of the recording in dB, when the spec's
    /// [`CampaignSpec::recording_band_summary`] asks for one.
    pub recording_band_summary_db: Option<Vec<f64>>,
}

/// A sensible default worker count: the machine's parallelism.
pub fn default_workers() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// A prepared cell shared by its trials, or the error its Prepare stage
/// produced (reported identically by every trial of the cell).
type SharedPrepared = std::result::Result<Arc<PreparedCell>, String>;

/// Per-cell Prepare-stage state: the shared context plus the number of
/// trials still to run.  When `remaining` hits zero the prepared state is
/// dropped, bounding peak memory to the in-flight cells.
struct CellSlot {
    prepared: Option<SharedPrepared>,
    remaining: usize,
}

/// A trained detector shared by its axis entry's cells (`Ok(None)` when
/// the entry is `None`).
type SharedDetector = std::result::Result<Option<Arc<LogisticRegression>>, String>;

/// Trains the logistic-regression detector a detector-axis entry stands
/// for.  Pure: the same spec always yields the same weights.
pub fn train_detector_model(spec: &DetectorSpec) -> Result<LogisticRegression> {
    let dataset = Dataset::generate(&spec.dataset_config())
        .map_err(|e| ExperimentError::Setup(format!("detector corpus: {e}")))?;
    let samples = dataset
        .to_feature_samples()
        .map_err(|e| ExperimentError::Setup(format!("detector features: {e}")))?;
    LogisticRegression::train(&samples, &TrainingConfig::default())
        .map_err(|e| ExperimentError::Setup(format!("detector training: {e}")))
}

/// Process-wide memo of trained detectors, keyed by the full spec.
///
/// Training is a pure function of the [`DetectorSpec`], so a model can be
/// shared across campaigns: `repro all` runs d1/d3/d4/every d5 level/d6
/// against the byte-identical "standard detector" and trains it exactly
/// once per process instead of once per campaign.
static DETECTOR_MEMO: std::sync::OnceLock<Mutex<HashMap<String, Arc<LogisticRegression>>>> =
    std::sync::OnceLock::new();

/// Process-wide memo of the default-corpus recognizer.
///
/// Corpus enrollment is deterministic and read-only after construction, so
/// every campaign in a process (a `repro all`, a bench loop, a shard
/// worker) shares one instance instead of re-enrolling per campaign —
/// `campaign.setup` amortises to a map lookup after the first run.
static RECOGNIZER_MEMO: std::sync::OnceLock<std::result::Result<Arc<Recognizer>, String>> =
    std::sync::OnceLock::new();

fn cached_default_recognizer() -> Result<Arc<Recognizer>> {
    RECOGNIZER_MEMO
        .get_or_init(|| {
            Recognizer::with_default_corpus()
                .map(Arc::new)
                .map_err(|e| format!("recogniser: {e}"))
        })
        .clone()
        .map_err(ExperimentError::Setup)
}

fn cached_detector_model(spec: &DetectorSpec) -> Result<Arc<LogisticRegression>> {
    // `Debug` covers every field deterministically, so it is a sound
    // memo key for a pure training function.
    let key = format!("{spec:?}");
    let memo = DETECTOR_MEMO.get_or_init(|| Mutex::new(HashMap::new()));
    if let Some(hit) = memo.lock().expect("detector memo poisoned").get(&key) {
        return Ok(Arc::clone(hit));
    }
    // Train outside the lock: concurrent misses on different specs should
    // not serialise; a duplicate train on the same spec keeps the first
    // insertion (training is pure, so both are identical).
    let model = Arc::new(train_detector_model(spec)?);
    let mut entries = memo.lock().expect("detector memo poisoned");
    Ok(Arc::clone(entries.entry(key).or_insert(model)))
}

/// Runs every trial of `spec` on a pool of `workers` threads and returns
/// the aggregated, archivable report.
///
/// `workers` is clamped to `[1, number of trials]`.  The report is
/// byte-identical across worker counts (see the module docs).
pub fn run_campaign(spec: &CampaignSpec, workers: usize) -> Result<CampaignReport> {
    spec.validate()?;
    let records = execute_jobs(spec, 0, spec.num_trials(), workers)?;
    let _span = telemetry::span("campaign.aggregate");
    let cells = spec.cells();
    let cell_reports = aggregate_cells(spec, &cells, records);
    let curves = psychometric_curves(spec, &cell_reports);
    Ok(CampaignReport {
        spec: spec.clone(),
        cells: cell_reports,
        curves,
    })
}

/// The trials one cell contributes to a job range: boundary cells of a
/// shard may cover only a sub-range of their trials.
struct CellJobs {
    cell_index: usize,
    trial_start: usize,
    trial_end: usize,
}

/// Runs the contiguous cell-major job range `[start_job, end_job)` of
/// `spec` on a pool of `workers` threads and returns the trial records in
/// slot order.
///
/// This is the shared core of [`run_campaign`] (the full range) and
/// [`crate::shard::run_shard`] (one shard's slice): every property that
/// makes the full run deterministic — spec-derived seeds, slot-addressed
/// collection, immutable shared [`PreparedCell`]s, pure detector training
/// — holds per range, so splitting a campaign into ranges and
/// concatenating the records reproduces the single-run records exactly.
/// The caller is responsible for having validated `spec`.
pub(crate) fn execute_jobs(
    spec: &CampaignSpec,
    start_job: usize,
    end_job: usize,
    workers: usize,
) -> Result<Vec<TrialRecord>> {
    let trials_per_cell = spec.trials_per_cell;
    debug_assert!(start_job <= end_job && end_job <= spec.num_trials());
    let num_jobs = end_job - start_job;
    if num_jobs == 0 {
        return Ok(Vec::new());
    }
    let setup_span = telemetry::span("campaign.setup");
    let recognizer = cached_default_recognizer()?;
    let recognizer = recognizer.as_ref();
    let commands = corpus();
    let cells = spec.cells();
    let workers = workers.clamp(1, num_jobs);
    let ctx = PrepareContext::new()
        .map_err(|e| ExperimentError::Setup(format!("prepare context: {e}")))?;
    drop(setup_span);

    // A contiguous job range covers a contiguous run of cells; the first
    // and last cell may contribute only a sub-range of their trials.
    let first_cell = start_job / trials_per_cell;
    let last_cell = (end_job - 1) / trials_per_cell;
    let cell_jobs: Vec<CellJobs> = (first_cell..=last_cell)
        .map(|cell_index| {
            let cell_start = cell_index * trials_per_cell;
            CellJobs {
                cell_index,
                trial_start: start_job.saturating_sub(cell_start),
                trial_end: (end_job - cell_start).min(trials_per_cell),
            }
        })
        .collect();

    // Jobs are handed out in *banded* order: cells are grouped into bands
    // of `workers`, and within a band the trial index varies slowest —
    // so the first `workers` jobs hit `workers` *distinct* cells and
    // every worker runs a Prepare stage concurrently instead of blocking
    // on the same cell's slot.  Bands keep the memory bound: at most
    // ~two bands of cells hold prepared state at once.  Results land in
    // cell-major slots, so the job hand-out order never reaches the
    // archive.
    let mut job_order: Vec<(usize, usize)> = Vec::with_capacity(num_jobs);
    for band_start in (0..cell_jobs.len()).step_by(workers.max(1)) {
        let band_end = (band_start + workers).min(cell_jobs.len());
        for trial_offset in 0..trials_per_cell {
            for (position, jobs) in cell_jobs.iter().enumerate().take(band_end).skip(band_start) {
                let trial = jobs.trial_start + trial_offset;
                if trial < jobs.trial_end {
                    job_order.push((position, trial));
                }
            }
        }
    }
    debug_assert_eq!(job_order.len(), num_jobs);

    let next_job = AtomicUsize::new(0);
    let slots: Mutex<Vec<Option<std::result::Result<TrialRecord, String>>>> =
        Mutex::new((0..num_jobs).map(|_| None).collect());
    let cell_slots: Vec<Mutex<CellSlot>> = cell_jobs
        .iter()
        .map(|jobs| {
            Mutex::new(CellSlot {
                prepared: None,
                remaining: jobs.trial_end - jobs.trial_start,
            })
        })
        .collect();
    // Train the detector entries this range touches up front (in
    // parallel, each memoised process-wide), so workers never block each
    // other on a training run.  Entries no cell of the range uses are not
    // trained: a shard only pays for the models it scores with.
    let mut touched_detectors: Vec<usize> = cell_jobs
        .iter()
        .map(|jobs| cells[jobs.cell_index].coords.detector_index)
        .collect();
    touched_detectors.sort_unstable();
    touched_detectors.dedup();
    let detector_span = telemetry::span("campaign.detector_train");
    let detectors: HashMap<usize, SharedDetector> = std::thread::scope(|scope| {
        let handles: Vec<_> = touched_detectors
            .iter()
            .map(|&detector_index| {
                let entry = &spec.detectors[detector_index];
                let handle = scope.spawn(move || match entry {
                    None => Ok(None),
                    Some(detector_spec) => cached_detector_model(detector_spec)
                        .map(Some)
                        .map_err(|e| e.to_string()),
                });
                (detector_index, handle)
            })
            .collect();
        handles
            .into_iter()
            .map(|(detector_index, handle)| {
                (
                    detector_index,
                    handle.join().expect("detector trainer panicked"),
                )
            })
            .collect()
    });
    drop(detector_span);

    std::thread::scope(|scope| {
        for _ in 0..workers {
            // One scratch arena per worker: Perturb reuses its buffers
            // across every trial the worker runs (results are
            // scratch-independent, so worker count still never reaches
            // the archive).
            scope.spawn(|| {
                let mut scratch = TrialScratch::new();
                loop {
                    let job = next_job.fetch_add(1, Ordering::Relaxed);
                    if job >= num_jobs {
                        break;
                    }
                    let _trial_span = telemetry::span("executor.trial");
                    let (position, trial_index) = job_order[job];
                    let jobs = &cell_jobs[position];
                    let cell = &cells[jobs.cell_index];

                    let detector = detectors[&cell.coords.detector_index].clone();

                    // Prepare: the first trial of a cell runs the stage, the
                    // rest share the immutable result.  Only the variants of
                    // the range's own trials are rendered: each trial is a
                    // pure function of `(cell, seed)`, so preparing fewer
                    // variants cannot change any record.
                    let prepared = {
                        let wait_span = telemetry::span("executor.cell_wait");
                        let mut slot = cell_slots[position].lock().expect("cell slot poisoned");
                        drop(wait_span);
                        let freshly_prepared = slot.prepared.is_none();
                        let shared = slot
                            .prepared
                            .get_or_insert_with(|| {
                                let scenario = spec.scenario(cell, 0);
                                let command = &commands[spec.command_index(cell)];
                                let trial_seeds: Vec<u64> = (jobs.trial_start..jobs.trial_end)
                                    .map(|t| spec.trial_seed(t))
                                    .collect();
                                PreparedCell::prepare(&ctx, command, &scenario, &trial_seeds)
                                    .map(Arc::new)
                                    .map_err(|e| e.to_string())
                            })
                            .clone();
                        if freshly_prepared {
                            telemetry::add_count("executor.cells_prepared", 1);
                        } else {
                            telemetry::add_count("executor.trials_shared_prepare", 1);
                        }
                        shared
                    };

                    let result = run_one_trial(
                        spec,
                        jobs.cell_index,
                        trial_index,
                        prepared,
                        detector,
                        recognizer,
                        &mut scratch,
                    );
                    slots.lock().expect("result mutex poisoned")
                        [jobs.cell_index * trials_per_cell + trial_index - start_job] =
                        Some(result);
                    // Summed across worker sidecars, this counter is the
                    // fleet document's trial total — the cross-check that no
                    // worker's telemetry went missing in the merge.
                    telemetry::add_count("executor.trials_completed", 1);

                    // Perturb/Evaluate done: drop the prepared state with the
                    // cell's last trial.
                    let mut slot = cell_slots[position].lock().expect("cell slot poisoned");
                    slot.remaining -= 1;
                    if slot.remaining == 0 {
                        slot.prepared = None;
                        telemetry::add_count("executor.cells_dropped", 1);
                    }
                }
            });
        }
    });

    // Collect in cell-major slot order so both the record order and the
    // first failure reported are deterministic.
    let mut records = Vec::with_capacity(num_jobs);
    for (offset, slot) in slots
        .into_inner()
        .expect("result mutex poisoned")
        .into_iter()
        .enumerate()
    {
        let job = start_job + offset;
        match slot.expect("worker pool left a job unfinished") {
            Ok(record) => records.push(record),
            Err(message) => {
                return Err(ExperimentError::Trial {
                    cell_index: job / trials_per_cell,
                    trial_index: job % trials_per_cell,
                    message,
                })
            }
        }
    }
    Ok(records)
}

/// Band-energy summary of a recording (the archived E-B2 column).
fn band_summary(
    recording: &Signal,
    spec: &BandSummarySpec,
) -> std::result::Result<Vec<f64>, String> {
    let _span = telemetry::span("executor.band_summary");
    let sg = spectrogram(
        recording.samples(),
        recording.sample_rate_hz(),
        &StftConfig::default(),
    )
    .map_err(|e| e.to_string())?;
    Ok(sg.band_summary_db(spec.max_hz, spec.bands))
}

#[allow(clippy::too_many_arguments)]
fn run_one_trial(
    spec: &CampaignSpec,
    cell_index: usize,
    trial_index: usize,
    prepared: SharedPrepared,
    detector: SharedDetector,
    recognizer: &Recognizer,
    scratch: &mut TrialScratch,
) -> std::result::Result<TrialRecord, String> {
    let prepared = prepared?;
    let detector = detector?;
    let seed = spec.trial_seed(trial_index);
    let outcome = prepared
        .run_with_scratch(seed, recognizer, detector.as_deref(), scratch)
        .map_err(|e| e.to_string())?;
    let recording_band_summary_db = match &spec.recording_band_summary {
        None => None,
        Some(band_spec) => Some(band_summary(&outcome.recording, band_spec)?),
    };
    Ok(TrialRecord {
        cell_index,
        trial_index,
        seed: outcome.seed,
        accepted: outcome.accepted,
        word_accuracy: outcome.word_accuracy,
        recognized_words: outcome.recognized_words,
        bystander_spl_db: outcome.bystander_spl_db,
        bystander_spl_dba: outcome.leakage.as_ref().map(|l| l.audible_spl_dba),
        bystander_voice_spl_db: outcome.leakage.as_ref().map(|l| l.voice_band_spl_db),
        leak_audible: outcome.leakage.as_ref().map(|l| l.is_audible()),
        power_shortfall_w: outcome.power_shortfall_w,
        defense_features: outcome.defense_features.to_vector(),
        detection_probability: outcome.detection_probability,
        recording_band_summary_db,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::DeliverySpec;
    use ivc_defense::features::DefenseFeatures;

    /// A deliberately tiny campaign: 2 deliveries × 2 distances, truncated
    /// commands, so the whole thing runs in seconds even in debug builds.
    fn tiny_spec() -> CampaignSpec {
        CampaignSpec {
            deliveries: vec![
                DeliverySpec::legitimate("talker 68 dB", 68.0),
                DeliverySpec::array("6-element array, 60 W", 6, 60.0, 40_000.0),
            ],
            distances_m: vec![1.0, 2.0],
            max_voice_duration_s: 0.8,
            ..CampaignSpec::new("tiny")
        }
    }

    #[test]
    fn campaign_runs_and_aggregates() {
        let spec = tiny_spec();
        let report = run_campaign(&spec, 2).unwrap();
        assert_eq!(report.cells.len(), 4);
        assert_eq!(report.curves.len(), 2);
        for cell_report in &report.cells {
            assert_eq!(cell_report.stats.trials, 1);
            assert_eq!(cell_report.trials.len(), 1);
            let record = &cell_report.trials[0];
            assert_eq!(record.seed, spec.base_seed);
            // Attack cells carry leakage numbers, legitimate ones do not.
            let is_attack = spec.deliveries[cell_report.cell.coords.delivery_index]
                .delivery
                .is_attack();
            assert_eq!(record.bystander_spl_db.is_some(), is_attack);
            assert_eq!(record.leak_audible.is_some(), is_attack);
            // No detector axis entry, no probabilities; features always.
            assert_eq!(record.detection_probability, None);
            assert_eq!(record.defense_features.len(), DefenseFeatures::DIMENSION);
            assert_eq!(record.recording_band_summary_db, None);
        }
        // The close-range array injection should recognise at least some
        // words; the legitimate talker should dominate it at no distance.
        let legit_curve = &report.curves[0];
        assert_eq!(legit_curve.distances_m, vec![1.0, 2.0]);
        assert!(legit_curve.mean_word_accuracy[0] > 0.5);
    }

    #[test]
    fn worker_count_does_not_change_the_report() {
        let spec = tiny_spec();
        let serial = run_campaign(&spec, 1).unwrap();
        let parallel = run_campaign(&spec, 8).unwrap();
        assert_eq!(serial, parallel);
        assert_eq!(
            serial.to_json_string(),
            parallel.to_json_string(),
            "archived bytes must not depend on the worker count"
        );
    }

    #[test]
    fn shared_prepared_cells_match_per_trial_pipeline_runs() {
        // Trials of one cell share a PreparedCell; each must still equal
        // the standalone run_trial wrapper for its seed, bit for bit.
        let spec = CampaignSpec {
            deliveries: vec![DeliverySpec::legitimate("talker 68 dB", 68.0)],
            distances_m: vec![1.5],
            trials_per_cell: 3,
            base_seed: 5,
            max_voice_duration_s: 0.8,
            ..CampaignSpec::new("shared")
        };
        let report = run_campaign(&spec, 2).unwrap();
        let recognizer = Recognizer::with_default_corpus().unwrap();
        let commands = corpus();
        let cell = &spec.cells()[0];
        for (t, record) in report.cells[0].trials.iter().enumerate() {
            let scenario = spec.scenario(cell, t);
            let outcome = ivc_core::run_trial(
                &commands[spec.command_index(cell)],
                &scenario,
                &recognizer,
                None,
            )
            .unwrap();
            assert_eq!(record.seed, scenario.seed);
            assert_eq!(record.accepted, outcome.accepted);
            assert_eq!(record.word_accuracy, outcome.word_accuracy);
            assert_eq!(
                record.defense_features,
                outcome.defense_features.to_vector()
            );
        }
    }

    #[test]
    fn detector_axis_scores_every_trial_and_band_summary_is_recorded() {
        let spec = CampaignSpec {
            detectors: vec![Some(DetectorSpec {
                // The smallest corpus that still trains (the classifier
                // wants >= 4 samples): 3 legitimate variants + 1 attack.
                distances_m: vec![1.5],
                num_speaker_variants: 3,
                command_indices: vec![0],
                max_voice_duration_s: 0.8,
                ..DetectorSpec::standard(true)
            })],
            deliveries: vec![
                DeliverySpec::legitimate("talker 68 dB", 68.0),
                DeliverySpec::array("6-element array, 60 W", 6, 60.0, 40_000.0),
            ],
            distances_m: vec![1.5],
            max_voice_duration_s: 0.8,
            recording_band_summary: Some(BandSummarySpec {
                bands: 8,
                max_hz: 8_000.0,
            }),
            ..CampaignSpec::new("detector")
        };
        let report = run_campaign(&spec, 2).unwrap();
        for cell_report in &report.cells {
            for record in &cell_report.trials {
                let p = record
                    .detection_probability
                    .expect("trained detector scores every trial");
                assert!((0.0..=1.0).contains(&p));
                let bands = record
                    .recording_band_summary_db
                    .as_ref()
                    .expect("band summary requested");
                assert_eq!(bands.len(), 8);
            }
            assert!(cell_report.stats.mean_detection_probability.is_some());
        }
        // The attack recording should look more attack-like than the
        // legitimate one to the trained detector.
        let legit_p = report.cells[0].trials[0].detection_probability.unwrap();
        let attack_p = report.cells[1].trials[0].detection_probability.unwrap();
        assert!(
            attack_p > legit_p,
            "attack {attack_p} should outscore legit {legit_p}"
        );
    }

    #[test]
    fn invalid_specs_are_rejected_before_any_work() {
        let spec = CampaignSpec {
            trials_per_cell: 0,
            ..tiny_spec()
        };
        assert!(matches!(
            run_campaign(&spec, 4),
            Err(ExperimentError::InvalidSpec { .. })
        ));
    }
}
