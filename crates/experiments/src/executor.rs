//! The parallel campaign executor: a bounded `std::thread` worker pool
//! that fans the expanded grid's trials out and collects records in job
//! order.
//!
//! Determinism contract: the same spec produces the **byte-identical**
//! archived report at any worker count.  Three design choices make that
//! hold:
//!
//! 1. every trial's seed is a pure function of the spec
//!    ([`crate::grid::CampaignSpec::trial_seed`]) — never of scheduling;
//! 2. workers pull job indices from a shared counter but write results
//!    into the job's own slot, so collection order is job order, not
//!    completion order; and
//! 3. the pipeline itself is single-threaded and deterministic per trial.

use crate::aggregate::{aggregate_cells, psychometric_curves};
use crate::error::{ExperimentError, Result};
use crate::grid::CampaignSpec;
use crate::report::CampaignReport;
use ivc_core::run_trial;
use ivc_speech::commands::{corpus, VoiceCommand};
use ivc_speech::recognizer::Recognizer;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// What one trial contributed to its cell — the archived unit of raw data.
#[derive(Debug, Clone, PartialEq)]
pub struct TrialRecord {
    /// The cell this trial belongs to.
    pub cell_index: usize,
    /// Trial index within the cell.
    pub trial_index: usize,
    /// The seed the trial ran with.
    pub seed: u64,
    /// Did the device accept the command end to end?
    pub accepted: bool,
    /// Word accuracy against the intended command.
    pub word_accuracy: f64,
    /// The intended command's words that were recognised.
    pub recognized_words: Vec<String>,
    /// Audible-band SPL at the bystander, in dB (attack deliveries only).
    pub bystander_spl_db: Option<f64>,
    /// A-weighted SPL at the bystander, in dB(A).
    pub bystander_spl_dba: Option<f64>,
    /// Voice-band (intelligible) SPL at the bystander, in dB.
    pub bystander_voice_spl_db: Option<f64>,
    /// Would a bystander notice the leakage?
    pub leak_audible: Option<bool>,
    /// Electrical budget the delivery could not place (see
    /// [`ivc_core::TrialOutcome::power_shortfall_w`]).
    pub power_shortfall_w: f64,
}

/// A sensible default worker count: the machine's parallelism.
pub fn default_workers() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Runs every trial of `spec` on a pool of `workers` threads and returns
/// the aggregated, archivable report.
///
/// `workers` is clamped to `[1, number of trials]`.  The report is
/// byte-identical across worker counts (see the module docs).
pub fn run_campaign(spec: &CampaignSpec, workers: usize) -> Result<CampaignReport> {
    spec.validate()?;
    let recognizer = Recognizer::with_default_corpus()
        .map_err(|e| ExperimentError::Setup(format!("recogniser: {e}")))?;
    let commands = corpus();
    let cells = spec.cells();
    let trials_per_cell = spec.trials_per_cell;
    let num_jobs = spec.num_trials();
    let workers = workers.clamp(1, num_jobs);

    let next_job = AtomicUsize::new(0);
    let slots: Mutex<Vec<Option<std::result::Result<TrialRecord, String>>>> =
        Mutex::new((0..num_jobs).map(|_| None).collect());

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let job = next_job.fetch_add(1, Ordering::Relaxed);
                if job >= num_jobs {
                    break;
                }
                let cell = &cells[job / trials_per_cell];
                let trial_index = job % trials_per_cell;
                let result = run_one_trial(spec, cell, trial_index, &commands, &recognizer);
                slots.lock().expect("result mutex poisoned")[job] = Some(result);
            });
        }
    });

    // Collect in job order so the first failure reported is deterministic.
    let mut records = Vec::with_capacity(num_jobs);
    for (job, slot) in slots
        .into_inner()
        .expect("result mutex poisoned")
        .into_iter()
        .enumerate()
    {
        match slot.expect("worker pool left a job unfinished") {
            Ok(record) => records.push(record),
            Err(message) => {
                return Err(ExperimentError::Trial {
                    cell_index: job / trials_per_cell,
                    trial_index: job % trials_per_cell,
                    message,
                })
            }
        }
    }

    let cell_reports = aggregate_cells(spec, &cells, &records);
    let curves = psychometric_curves(spec, &cell_reports);
    Ok(CampaignReport {
        spec: spec.clone(),
        cells: cell_reports,
        curves,
    })
}

fn run_one_trial(
    spec: &CampaignSpec,
    cell: &crate::grid::CellSpec,
    trial_index: usize,
    commands: &[VoiceCommand],
    recognizer: &Recognizer,
) -> std::result::Result<TrialRecord, String> {
    let scenario = spec.scenario(cell, trial_index);
    let command = &commands[spec.command_index(cell)];
    let outcome = run_trial(command, &scenario, recognizer, None).map_err(|e| e.to_string())?;
    Ok(TrialRecord {
        cell_index: cell.cell_index,
        trial_index,
        seed: outcome.seed,
        accepted: outcome.accepted,
        word_accuracy: outcome.word_accuracy,
        recognized_words: outcome.recognized_words,
        bystander_spl_db: outcome.bystander_spl_db,
        bystander_spl_dba: outcome.leakage.as_ref().map(|l| l.audible_spl_dba),
        bystander_voice_spl_db: outcome.leakage.as_ref().map(|l| l.voice_band_spl_db),
        leak_audible: outcome.leakage.as_ref().map(|l| l.is_audible()),
        power_shortfall_w: outcome.power_shortfall_w,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::DeliverySpec;

    /// A deliberately tiny campaign: 2 deliveries × 2 distances, truncated
    /// commands, so the whole thing runs in seconds even in debug builds.
    fn tiny_spec() -> CampaignSpec {
        CampaignSpec {
            deliveries: vec![
                DeliverySpec::legitimate("talker 68 dB", 68.0),
                DeliverySpec::array("6-element array, 60 W", 6, 60.0, 40_000.0),
            ],
            distances_m: vec![1.0, 2.0],
            max_voice_duration_s: 0.8,
            ..CampaignSpec::new("tiny")
        }
    }

    #[test]
    fn campaign_runs_and_aggregates() {
        let spec = tiny_spec();
        let report = run_campaign(&spec, 2).unwrap();
        assert_eq!(report.cells.len(), 4);
        assert_eq!(report.curves.len(), 2);
        for cell_report in &report.cells {
            assert_eq!(cell_report.stats.trials, 1);
            assert_eq!(cell_report.trials.len(), 1);
            let record = &cell_report.trials[0];
            assert_eq!(record.seed, spec.base_seed);
            // Attack cells carry leakage numbers, legitimate ones do not.
            let is_attack = spec.deliveries[cell_report.cell.delivery_index]
                .delivery
                .is_attack();
            assert_eq!(record.bystander_spl_db.is_some(), is_attack);
            assert_eq!(record.leak_audible.is_some(), is_attack);
        }
        // The close-range array injection should recognise at least some
        // words; the legitimate talker should dominate it at no distance.
        let legit_curve = &report.curves[0];
        assert_eq!(legit_curve.distances_m, vec![1.0, 2.0]);
        assert!(legit_curve.mean_word_accuracy[0] > 0.5);
    }

    #[test]
    fn worker_count_does_not_change_the_report() {
        let spec = tiny_spec();
        let serial = run_campaign(&spec, 1).unwrap();
        let parallel = run_campaign(&spec, 8).unwrap();
        assert_eq!(serial, parallel);
        assert_eq!(
            serial.to_json_string(),
            parallel.to_json_string(),
            "archived bytes must not depend on the worker count"
        );
    }

    #[test]
    fn invalid_specs_are_rejected_before_any_work() {
        let spec = CampaignSpec {
            trials_per_cell: 0,
            ..tiny_spec()
        };
        assert!(matches!(
            run_campaign(&spec, 4),
            Err(ExperimentError::InvalidSpec { .. })
        ));
    }
}
