//! # ivc-experiments — the parallel campaign engine
//!
//! The paper's headline results are all *sweeps*: attack success versus
//! distance, element count, power and environment.  This crate turns
//! one-off `run_trial` calls into reproducible campaigns:
//!
//! * [`grid`] — the parameter-grid DSL: a [`CampaignSpec`] declares axes
//!   (detector training, device, delivery, carrier frequency, power,
//!   room, environment, command, distance) and expands into the concrete
//!   [`ivc_core::Scenario`] cross product.
//! * [`executor`] — a bounded `std::thread` worker pool running the
//!   staged pipeline (one shared [`ivc_core::PreparedCell`] per cell, one
//!   trained detector per axis entry) with deterministic per-trial
//!   seeding: the same spec produces the **byte-identical** archived
//!   report at any worker count.
//! * [`aggregate`] — per-cell success rates with Wilson confidence
//!   intervals, mean word accuracy, bystander SPL and detector
//!   probability, and success-vs-distance psychometric curves.
//! * [`report`] — the archivable [`CampaignReport`] with its JSON
//!   encoding (via the dependency-free [`ivc_core::json`] layer).
//! * [`shard`] — multi-process/multi-machine scaling: a [`ShardPlan`]
//!   partitions the job space into contiguous `(cell, trial)` ranges,
//!   [`run_shard`] executes one range anywhere from the pure spec, and
//!   [`merge_shards`] / [`merge_shard_files`] reassemble a report
//!   **byte-identical** to the single-process run by streaming each
//!   partial through per-cell accumulators — merge memory is O(cells),
//!   not O(trials held twice).
//! * [`columns`] — the compact binary wire format for shard partials
//!   (`ivc-trial-columns-v1`): one length-prefixed column per
//!   [`TrialRecord`] field, deterministic bytes, loud versioned
//!   rejection of foreign or truncated archives.
//! * [`orchestrate`] — the self-driving control plane over [`shard`]:
//!   [`orchestrate::orchestrate`] supervises a fleet of shard workers
//!   with bounded retries, straggler re-issue (first completed result
//!   wins), per-shard checkpoints and crash resume — the final report is
//!   still byte-identical to the in-process run.
//! * [`presets`] — built-in campaigns: every paper sweep (`a1`–`a6`,
//!   `b1`–`b3`, `d1`–`d6`), a defense acceptance sweep, the room sweep,
//!   and the CI smoke grid.
//!
//! ```no_run
//! use ivc_experiments::prelude::*;
//!
//! let spec = CampaignSpec {
//!     deliveries: (1..=4)
//!         .map(|i| DeliverySpec::array(format!("{} elements", 8 * i), 8 * i, 60.0, 40_000.0))
//!         .collect(),
//!     distances_m: vec![1.0, 2.0, 4.0],
//!     trials_per_cell: 3,
//!     ..CampaignSpec::new("my-sweep")
//! };
//! let report = run_campaign(&spec, default_workers()).unwrap();
//! println!("{}", report.summary_table().render());
//! report.save(std::path::Path::new("my-sweep.json")).unwrap();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aggregate;
pub mod columns;
pub mod error;
pub mod executor;
pub mod grid;
pub mod orchestrate;
pub mod presets;
pub mod report;
pub mod shard;

pub use aggregate::{CellAccumulator, CellReport, CellStats, PsychometricCurve};
pub use columns::COLUMNS_FORMAT;
pub use error::{ExperimentError, Result};
pub use executor::{default_workers, run_campaign, train_detector_model, TrialRecord};
pub use grid::{
    detector_token, room_from_token, room_token, BandSummarySpec, CampaignSpec, CellCoords,
    CellSpec, DeliverySpec, DetectorSpec, EnvironmentPreset,
};
pub use orchestrate::{
    manifest_file_name, orchestrate, OrchestratorConfig, OrchestratorRun, OrchestratorStats,
    ProcessLauncher, RunEvent, ShardLauncher, ThreadLauncher, MANIFEST_FORMAT,
};
pub use report::CampaignReport;
pub use shard::{
    merge_shard_files, merge_shards, metrics_sidecar_path, run_shard, shard_archive_file_name_with,
    PartialFormat, ShardArchive, ShardJob, ShardMerger, ShardPlan, ShardRange,
};

/// The commonly used items, in one import.
pub mod prelude {
    pub use crate::aggregate::{CellAccumulator, CellReport, CellStats, PsychometricCurve};
    pub use crate::columns::COLUMNS_FORMAT;
    pub use crate::error::{ExperimentError, Result};
    pub use crate::executor::{default_workers, run_campaign, train_detector_model, TrialRecord};
    pub use crate::grid::{
        detector_token, room_from_token, room_token, BandSummarySpec, CampaignSpec, CellCoords,
        CellSpec, DeliverySpec, DetectorSpec, EnvironmentPreset,
    };
    pub use crate::orchestrate::{
        manifest_file_name, orchestrate, OrchestratorConfig, OrchestratorRun, OrchestratorStats,
        ProcessLauncher, RunEvent, ShardLauncher, ThreadLauncher, MANIFEST_FORMAT,
    };
    pub use crate::report::CampaignReport;
    pub use crate::shard::{
        merge_shard_files, merge_shards, metrics_sidecar_path, run_shard,
        shard_archive_file_name_with, PartialFormat, ShardArchive, ShardJob, ShardMerger,
        ShardPlan, ShardRange,
    };
}
