//! Aggregate statistics over campaign trials: per-cell success rates with
//! Wilson confidence intervals, mean word accuracy, mean bystander SPL,
//! and success-vs-distance psychometric curves.

use crate::executor::TrialRecord;
use crate::grid::{CampaignSpec, CellCoords, CellSpec};

/// Aggregates of one grid cell's trials.
#[derive(Debug, Clone, PartialEq)]
pub struct CellStats {
    /// Number of trials aggregated.
    pub trials: usize,
    /// Trials in which the device accepted the command end to end.
    pub successes: usize,
    /// `successes / trials`.
    pub success_rate: f64,
    /// Lower bound of the 95 % Wilson interval on the success rate.
    pub success_ci_low: f64,
    /// Upper bound of the 95 % Wilson interval on the success rate.
    pub success_ci_high: f64,
    /// Mean word accuracy across trials.
    pub mean_word_accuracy: f64,
    /// Mean audible-band bystander SPL in dB (`None` when no trial had a
    /// leakage estimate, i.e. legitimate deliveries).
    pub mean_bystander_spl_db: Option<f64>,
    /// Mean A-weighted bystander SPL in dB(A).
    pub mean_bystander_spl_dba: Option<f64>,
    /// Mean voice-band bystander SPL in dB.
    pub mean_bystander_voice_spl_db: Option<f64>,
    /// Fraction of trials whose leakage a bystander would notice.
    pub leak_audible_fraction: Option<f64>,
    /// Mean electrical budget the delivery could not place, in watt.
    pub mean_power_shortfall_w: f64,
    /// Mean attack probability of the cell's trained detector (`None`
    /// when the cell's detector-axis entry is `None`).
    pub mean_detection_probability: Option<f64>,
}

/// One cell of a finished campaign: its grid coordinates, aggregate
/// statistics and the raw per-trial records they were computed from.
#[derive(Debug, Clone, PartialEq)]
pub struct CellReport {
    /// Grid coordinates.
    pub cell: CellSpec,
    /// Human-readable description of the cell.
    pub label: String,
    /// Aggregates over `trials`.
    pub stats: CellStats,
    /// The raw trial records, in trial order.
    pub trials: Vec<TrialRecord>,
}

/// A success-vs-distance curve for one combination of the non-distance
/// axes, with per-point confidence intervals — the engine's version of the
/// paper's psychometric attack-range figures.
#[derive(Debug, Clone, PartialEq)]
pub struct PsychometricCurve {
    /// Curve label (the delivery label, or the full axis combination).
    pub label: String,
    /// Axis coordinates shared by every point of the curve (its
    /// `distance_index` is 0: the curve spans the whole distance axis).
    pub coords: CellCoords,
    /// Distances of the points, in metres (the spec's distance axis).
    pub distances_m: Vec<f64>,
    /// Success rate at each distance.
    pub success_rates: Vec<f64>,
    /// Lower 95 % Wilson bound at each distance.
    pub ci_low: Vec<f64>,
    /// Upper 95 % Wilson bound at each distance.
    pub ci_high: Vec<f64>,
    /// Mean word accuracy at each distance.
    pub mean_word_accuracy: Vec<f64>,
}

impl PsychometricCurve {
    /// The farthest distance whose success rate meets `threshold` — the
    /// curve's "attack range"; `None` if no point qualifies.
    pub fn range_at_success_rate(&self, threshold: f64) -> Option<f64> {
        self.distances_m
            .iter()
            .zip(self.success_rates.iter())
            .filter(|(_, rate)| **rate >= threshold)
            .map(|(d, _)| *d)
            .fold(None, |acc: Option<f64>, d| {
                Some(acc.map_or(d, |a| a.max(d)))
            })
    }
}

/// The 95 % Wilson score interval for `successes` out of `trials`.
///
/// Preferred over the normal approximation because campaign cells are
/// routinely small (a handful of trials) and rates sit at the 0/1
/// boundary, where Wald intervals collapse to a point.
pub fn wilson_interval(successes: usize, trials: usize) -> (f64, f64) {
    if trials == 0 {
        return (0.0, 1.0);
    }
    let z = 1.959_963_984_540_054_f64; // 97.5th normal percentile
    let n = trials as f64;
    let p = successes as f64 / n;
    let z2 = z * z;
    let denominator = 1.0 + z2 / n;
    let centre = p + z2 / (2.0 * n);
    let margin = z * (p * (1.0 - p) / n + z2 / (4.0 * n * n)).sqrt();
    // At the boundaries the exact bounds are 0 and 1; snap them so float
    // rounding does not report "0.9999999999999999" as an upper bound.
    let low = if successes == 0 {
        0.0
    } else {
        ((centre - margin) / denominator).max(0.0)
    };
    let high = if successes == trials {
        1.0
    } else {
        ((centre + margin) / denominator).min(1.0)
    };
    (low, high)
}

/// Running sum and count of an optional per-trial value: the streaming
/// form of "mean over the trials where the value was present".
#[derive(Debug, Clone, Copy, Default, PartialEq)]
struct MeanAccumulator {
    sum: f64,
    count: usize,
}

impl MeanAccumulator {
    fn fold(&mut self, value: Option<f64>) {
        if let Some(value) = value {
            self.sum += value;
            self.count += 1;
        }
    }

    fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum / self.count as f64)
    }
}

/// Streaming aggregation state for one cell: running counts and sums that
/// fold trial records one at a time, so per-cell statistics — success
/// counts, Wilson CIs, accuracy/SPL/shortfall/detection means — come from
/// O(1) state per cell instead of a materialized record vector.
///
/// Records must be folded in slot (trial) order: floating-point addition
/// is order-sensitive, and the byte-identity contract between the merged
/// and the in-process report depends on the sums folding left to right
/// exactly as [`aggregate_cells`] walks them.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CellAccumulator {
    trials: usize,
    successes: usize,
    word_accuracy_sum: f64,
    power_shortfall_sum: f64,
    bystander_spl_db: MeanAccumulator,
    bystander_spl_dba: MeanAccumulator,
    bystander_voice_spl_db: MeanAccumulator,
    leak_audible: MeanAccumulator,
    detection_probability: MeanAccumulator,
    band_summary_sums: Vec<f64>,
    band_summary_count: usize,
}

impl CellAccumulator {
    /// A fresh accumulator with no trials folded.
    pub fn new() -> CellAccumulator {
        CellAccumulator::default()
    }

    /// Folds one trial record into the running sums.
    pub fn fold(&mut self, record: &TrialRecord) {
        self.trials += 1;
        self.successes += usize::from(record.accepted);
        self.word_accuracy_sum += record.word_accuracy;
        self.power_shortfall_sum += record.power_shortfall_w;
        self.bystander_spl_db.fold(record.bystander_spl_db);
        self.bystander_spl_dba.fold(record.bystander_spl_dba);
        self.bystander_voice_spl_db
            .fold(record.bystander_voice_spl_db);
        self.leak_audible
            .fold(record.leak_audible.map(|a| if a { 1.0 } else { 0.0 }));
        self.detection_probability
            .fold(record.detection_probability);
        if let Some(bands) = &record.recording_band_summary_db {
            if self.band_summary_sums.len() < bands.len() {
                self.band_summary_sums.resize(bands.len(), 0.0);
            }
            for (sum, value) in self.band_summary_sums.iter_mut().zip(bands) {
                *sum += value;
            }
            self.band_summary_count += 1;
        }
    }

    /// Number of trials folded so far.
    pub fn trials(&self) -> usize {
        self.trials
    }

    /// Trials folded so far that were accepted end to end.
    pub fn successes(&self) -> usize {
        self.successes
    }

    /// Mean recording band-energy summary in dB over the trials that
    /// carried one (`None` when no trial did).  Not part of [`CellStats`]
    /// — the archived bytes are frozen — but available to streaming
    /// consumers that would otherwise have to hold every record.
    pub fn mean_band_summary_db(&self) -> Option<Vec<f64>> {
        (self.band_summary_count > 0).then(|| {
            self.band_summary_sums
                .iter()
                .map(|sum| sum / self.band_summary_count as f64)
                .collect()
        })
    }

    /// The cell's statistics from the running sums.  Bit-identical to the
    /// batch computation over the same records in the same order.
    pub fn stats(&self) -> CellStats {
        let (ci_low, ci_high) = wilson_interval(self.successes, self.trials);
        let n = self.trials as f64;
        let mean_over_all = |sum: f64| if self.trials == 0 { 0.0 } else { sum / n };
        CellStats {
            trials: self.trials,
            successes: self.successes,
            success_rate: if self.trials == 0 {
                0.0
            } else {
                self.successes as f64 / n
            },
            success_ci_low: ci_low,
            success_ci_high: ci_high,
            mean_word_accuracy: mean_over_all(self.word_accuracy_sum),
            mean_bystander_spl_db: self.bystander_spl_db.mean(),
            mean_bystander_spl_dba: self.bystander_spl_dba.mean(),
            mean_bystander_voice_spl_db: self.bystander_voice_spl_db.mean(),
            leak_audible_fraction: self.leak_audible.mean(),
            mean_power_shortfall_w: mean_over_all(self.power_shortfall_sum),
            mean_detection_probability: self.detection_probability.mean(),
        }
    }
}

/// Computes each cell's statistics from the flat, job-ordered record
/// list, consuming it: records are moved — never cloned — into their
/// cell's report, and the statistics come from a [`CellAccumulator`] per
/// cell.
pub fn aggregate_cells(
    spec: &CampaignSpec,
    cells: &[CellSpec],
    records: Vec<TrialRecord>,
) -> Vec<CellReport> {
    let mut records = records.into_iter();
    cells
        .iter()
        .map(|cell| {
            let mut accumulator = CellAccumulator::new();
            let trials: Vec<TrialRecord> = records
                .by_ref()
                .take(spec.trials_per_cell)
                .inspect(|t| accumulator.fold(t))
                .collect();
            debug_assert!(trials.iter().all(|t| t.cell_index == cell.cell_index));
            debug_assert_eq!(trials.len(), spec.trials_per_cell);
            CellReport {
                cell: *cell,
                label: spec.cell_label(cell),
                stats: accumulator.stats(),
                trials,
            }
        })
        .collect()
}

/// Builds one success-vs-distance curve per combination of the
/// non-distance axes.  Relies on distance being the innermost expansion
/// axis: each curve is a contiguous run of cells.
pub fn psychometric_curves(spec: &CampaignSpec, cells: &[CellReport]) -> Vec<PsychometricCurve> {
    let per_curve = spec.distances_m.len();
    cells
        .chunks(per_curve)
        .map(|chunk| {
            let first = &chunk[0].cell;
            PsychometricCurve {
                label: spec.curve_label(first),
                coords: CellCoords {
                    distance_index: 0,
                    ..first.coords
                },
                distances_m: spec.distances_m.clone(),
                success_rates: chunk.iter().map(|c| c.stats.success_rate).collect(),
                ci_low: chunk.iter().map(|c| c.stats.success_ci_low).collect(),
                ci_high: chunk.iter().map(|c| c.stats.success_ci_high).collect(),
                mean_word_accuracy: chunk.iter().map(|c| c.stats.mean_word_accuracy).collect(),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::DeliverySpec;

    fn record(cell_index: usize, trial_index: usize, accepted: bool, accuracy: f64) -> TrialRecord {
        TrialRecord {
            cell_index,
            trial_index,
            seed: 1 + trial_index as u64,
            accepted,
            word_accuracy: accuracy,
            recognized_words: vec!["ok".into()],
            bystander_spl_db: Some(40.0 + cell_index as f64),
            bystander_spl_dba: Some(35.0 + cell_index as f64),
            bystander_voice_spl_db: Some(20.0),
            leak_audible: Some(cell_index % 2 == 0),
            power_shortfall_w: 0.0,
            defense_features: vec![0.5; 4],
            detection_probability: Some(0.1 * (1 + cell_index) as f64),
            recording_band_summary_db: None,
        }
    }

    fn two_by_two_spec() -> CampaignSpec {
        CampaignSpec {
            deliveries: vec![
                DeliverySpec::array("a", 8, 40.0, 40_000.0),
                DeliverySpec::array("b", 16, 120.0, 40_000.0),
            ],
            distances_m: vec![1.0, 4.0],
            trials_per_cell: 2,
            ..CampaignSpec::new("agg")
        }
    }

    #[test]
    fn wilson_interval_behaves_at_the_boundaries() {
        let (low, high) = wilson_interval(0, 0);
        assert_eq!((low, high), (0.0, 1.0));
        let (low, high) = wilson_interval(0, 10);
        assert_eq!(low, 0.0);
        assert!(high > 0.0 && high < 0.4, "high {high}");
        let (low, high) = wilson_interval(10, 10);
        assert_eq!(high, 1.0);
        assert!(low > 0.6 && low < 1.0, "low {low}");
        let (low, high) = wilson_interval(5, 10);
        assert!(low < 0.5 && high > 0.5);
        // More trials tighten the interval.
        let (wide_low, wide_high) = wilson_interval(5, 10);
        let (narrow_low, narrow_high) = wilson_interval(50, 100);
        assert!(narrow_high - narrow_low < wide_high - wide_low);
    }

    #[test]
    fn cell_aggregation_and_curves() {
        let spec = two_by_two_spec();
        let cells = spec.cells();
        let mut records = Vec::new();
        for cell in &cells {
            for trial in 0..2 {
                // Cell 0 succeeds twice, cell 1 once, cells 2 and 3 never;
                // accuracy falls with distance.
                let accepted = cell.cell_index + trial < 2;
                records.push(record(
                    cell.cell_index,
                    trial,
                    accepted,
                    1.0 - 0.2 * cell.coords.distance_index as f64,
                ));
            }
        }
        let reports = aggregate_cells(&spec, &cells, records);
        assert_eq!(reports.len(), 4);
        assert_eq!(reports[0].stats.successes, 2);
        assert_eq!(reports[0].stats.success_rate, 1.0);
        assert_eq!(reports[1].stats.successes, 1);
        assert_eq!(reports[3].stats.successes, 0);
        assert!(reports[0].stats.success_ci_low > 0.0);
        assert!(reports[3].stats.success_ci_high < 1.0);
        assert_eq!(reports[2].stats.mean_word_accuracy, 1.0);
        assert_eq!(reports[0].stats.leak_audible_fraction, Some(1.0));
        assert_eq!(reports[1].stats.leak_audible_fraction, Some(0.0));
        // Detection probabilities aggregate like the other optional means.
        assert_eq!(reports[0].stats.mean_detection_probability, Some(0.1));

        let curves = psychometric_curves(&spec, &reports);
        assert_eq!(curves.len(), 2);
        assert_eq!(curves[0].label, "a");
        assert_eq!(curves[0].distances_m, vec![1.0, 4.0]);
        assert_eq!(curves[0].success_rates, vec![1.0, 0.5]);
        assert_eq!(curves[1].success_rates, vec![0.0, 0.0]);
        assert_eq!(curves[0].range_at_success_rate(0.6), Some(1.0));
        assert_eq!(curves[0].range_at_success_rate(0.5), Some(4.0));
        assert_eq!(curves[1].range_at_success_rate(0.6), None);
    }

    #[test]
    fn absent_leakage_aggregates_to_none() {
        let spec = CampaignSpec {
            deliveries: vec![DeliverySpec::legitimate("talker", 65.0)],
            trials_per_cell: 2,
            ..CampaignSpec::new("legit")
        };
        let cells = spec.cells();
        let records: Vec<TrialRecord> = (0..2)
            .map(|t| TrialRecord {
                bystander_spl_db: None,
                bystander_spl_dba: None,
                bystander_voice_spl_db: None,
                leak_audible: None,
                ..record(0, t, true, 1.0)
            })
            .collect();
        let reports = aggregate_cells(&spec, &cells, records);
        assert_eq!(reports[0].stats.mean_bystander_spl_db, None);
        assert_eq!(reports[0].stats.leak_audible_fraction, None);
    }
}
