//! Shard-parallel campaign execution over the `PreparedCell` boundary.
//!
//! A campaign's job space — cell-major `(cell, trial)` slots, exactly the
//! order the archive stores records in — is partitioned by a [`ShardPlan`]
//! into contiguous ranges.  Each [`ShardJob`] is self-contained: it
//! carries the full [`CampaignSpec`] plus its slot range, so a worker
//! anywhere (another process, another machine) can run
//! [`run_shard`] with nothing but the job file.  The worker re-runs the
//! Prepare stage locally from the pure spec — only specs and
//! [`TrialRecord`]s ever cross the boundary, never waveforms — and emits a
//! partial archive ([`ShardArchive`], format [`SHARD_FORMAT`]).
//!
//! [`merge_shards`] reassembles the partials in slot order and streams
//! them through a [`ShardMerger`] — per-cell
//! [`CellAccumulator`](crate::aggregate::CellAccumulator)s fold each
//! record once as its shard is absorbed, records move (never clone) into
//! their cell's report, and the aggregation state stays O(cells) — then
//! returns a [`CampaignReport`] that is **byte-identical** to the
//! single-process [`crate::run_campaign`] run of the same spec, at any
//! shard count and any per-shard worker count.  The contract holds
//! because every trial is a pure function of `(spec, cell, seed)` and
//! both the record order and the aggregation are functions of the spec
//! alone — scheduling, sharding and process boundaries never reach the
//! bytes.
//!
//! Partials travel in the compact columnar format by default
//! ([`crate::columns`], tag `ivc-trial-columns-v1`); the JSON form
//! ([`SHARD_FORMAT`]) is still written on request (`.json` output paths,
//! `--partial-format json`) and always accepted on load.

use crate::aggregate::{psychometric_curves, CellAccumulator, CellReport};
use crate::columns;
use crate::error::{ExperimentError, Result};
use crate::executor::{execute_jobs, TrialRecord};
use crate::grid::{CampaignSpec, CellSpec};
use crate::report::{
    obj, req, req_str, req_usize, spec_from_json, spec_to_json, trial_from_json, trial_to_json,
    CampaignReport,
};
use ivc_core::json::JsonValue;
use std::path::Path;

/// Format tag of a shard partial archive ([`ShardArchive`]).
pub const SHARD_FORMAT: &str = "ivc-campaign-shard-v1";

/// Format tag of a shard job file ([`ShardJob`]).
pub const SHARD_JOB_FORMAT: &str = "ivc-campaign-shard-job-v1";

/// One shard's slice of a campaign's job space: the contiguous cell-major
/// slot range `[start_job, end_job)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardRange {
    /// Position of this shard in the plan.
    pub shard_index: usize,
    /// Total number of shards in the plan.
    pub num_shards: usize,
    /// First cell-major job slot of the shard (inclusive).
    pub start_job: usize,
    /// One past the last job slot of the shard (exclusive).
    pub end_job: usize,
}

impl ShardRange {
    /// Number of trials this shard runs.
    pub fn num_jobs(&self) -> usize {
        self.end_job - self.start_job
    }

    /// Whether the shard runs no trials (plans with more shards than jobs
    /// produce empty tail shards; they merge as no-ops).
    pub fn is_empty(&self) -> bool {
        self.start_job == self.end_job
    }

    /// The `(cell_index, trial_index)` jobs of this shard, in slot order.
    pub fn jobs(&self, trials_per_cell: usize) -> impl Iterator<Item = (usize, usize)> + '_ {
        (self.start_job..self.end_job)
            .map(move |slot| (slot / trials_per_cell, slot % trials_per_cell))
    }
}

/// A partition of one campaign's job space into contiguous shards.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardPlan {
    /// The campaign being partitioned.
    pub spec: CampaignSpec,
    /// The shards, in slot order; they tile `[0, spec.num_trials())`.
    pub shards: Vec<ShardRange>,
}

impl ShardPlan {
    /// Partitions `spec`'s job space into `num_shards` contiguous,
    /// near-equal ranges (sizes differ by at most one job; the remainder
    /// goes to the leading shards).  With more shards than jobs the tail
    /// shards are empty — every job is still covered exactly once.
    pub fn partition(spec: &CampaignSpec, num_shards: usize) -> Result<ShardPlan> {
        spec.validate()?;
        if num_shards == 0 {
            return Err(ExperimentError::invalid("shards", "must be at least 1"));
        }
        let num_jobs = spec.num_trials();
        let base = num_jobs / num_shards;
        let extra = num_jobs % num_shards;
        let mut shards = Vec::with_capacity(num_shards);
        let mut start = 0;
        for shard_index in 0..num_shards {
            let len = base + usize::from(shard_index < extra);
            shards.push(ShardRange {
                shard_index,
                num_shards,
                start_job: start,
                end_job: start + len,
            });
            start += len;
        }
        debug_assert_eq!(start, num_jobs);
        Ok(ShardPlan {
            spec: spec.clone(),
            shards,
        })
    }

    /// The self-contained jobs of this plan, one per shard.
    pub fn jobs(&self) -> Vec<ShardJob> {
        self.shards
            .iter()
            .map(|&shard| ShardJob {
                spec: self.spec.clone(),
                shard,
            })
            .collect()
    }
}

/// Stable file name of a shard's job file (shared by `repro shard-plan`
/// and the in-driver `--shards` path, so the two spellings of the same
/// contract cannot drift).
pub fn shard_job_file_name(spec_name: &str, shard: &ShardRange) -> String {
    format!(
        "{spec_name}.shard-{}-of-{}.job.json",
        shard.shard_index, shard.num_shards
    )
}

/// On-disk encoding of a shard's partial archive.  [`ShardArchive::save`]
/// picks the encoding from the output path's extension and
/// [`ShardArchive::load`] detects it from the content, so the format is
/// carried by the file name — this enum names the two spellings where a
/// caller chooses one (`--partial-format`, checkpoint layouts).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PartialFormat {
    /// Compact binary columnar (`.part.bin`, tag `ivc-trial-columns-v1`)
    /// — the default wire format.
    #[default]
    Columns,
    /// Pretty-printed JSON (`.part.json`, tag [`SHARD_FORMAT`]) — the
    /// legacy wire format, still accepted everywhere and kept as the
    /// human-facing export.
    Json,
}

impl PartialFormat {
    /// The file extension that selects this encoding.
    pub fn extension(&self) -> &'static str {
        match self {
            PartialFormat::Columns => "bin",
            PartialFormat::Json => "json",
        }
    }

    /// Parses a `--partial-format` value.
    pub fn parse(value: &str) -> Result<PartialFormat> {
        match value {
            "columns" => Ok(PartialFormat::Columns),
            "json" => Ok(PartialFormat::Json),
            other => Err(ExperimentError::invalid(
                "partial-format",
                format!("'{other}' (expected 'columns' or 'json')"),
            )),
        }
    }
}

/// Stable file name of a shard's partial archive in the chosen encoding.
pub fn shard_archive_file_name_with(
    spec_name: &str,
    shard: &ShardRange,
    format: PartialFormat,
) -> String {
    format!(
        "{spec_name}.shard-{}-of-{}.part.{}",
        shard.shard_index,
        shard.num_shards,
        format.extension()
    )
}

/// Stable file name of a shard's partial archive (the default columnar
/// encoding, `.part.bin`).
pub fn shard_archive_file_name(spec_name: &str, shard: &ShardRange) -> String {
    shard_archive_file_name_with(spec_name, shard, PartialFormat::Columns)
}

/// Path of the telemetry sidecar a worker writes next to a partial
/// archive: the partial's path with its `.bin`/`.json` extension replaced
/// by `.metrics.json` — identical for both partial encodings, so format
/// choice never moves the sidecar.  Derived from the *output* path, so an
/// attempt-unique partial gets an attempt-unique sidecar, and the
/// orchestrator can rename the two together when a checkpoint is
/// accepted.
pub fn metrics_sidecar_path(partial_path: &Path) -> std::path::PathBuf {
    let name = partial_path
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_default();
    let stem = name
        .strip_suffix(".json")
        .or_else(|| name.strip_suffix(".bin"))
        .unwrap_or(&name);
    partial_path.with_file_name(format!("{stem}.metrics.json"))
}

/// Everything a worker needs to run one shard: the full spec plus the
/// shard's slot range.  Serialisable, so the job can be shipped to another
/// process or machine as a small JSON file.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardJob {
    /// The campaign the shard belongs to.
    pub spec: CampaignSpec,
    /// The shard's slice of the job space.
    pub shard: ShardRange,
}

impl ShardJob {
    /// Validates the spec and checks the range against it.
    pub fn validate(&self) -> Result<()> {
        self.spec.validate()?;
        validate_range(&self.shard, self.spec.num_trials())
    }

    /// Serialises the job to its JSON file form (pretty, deterministic).
    pub fn to_json_string(&self) -> String {
        let mut members = vec![
            ("format", JsonValue::string(SHARD_JOB_FORMAT)),
            ("spec", spec_to_json(&self.spec)),
        ];
        members.extend(range_members(&self.shard));
        obj(members).to_json_string_pretty()
    }

    /// Parses a job file.
    pub fn from_json_str(text: &str) -> Result<ShardJob> {
        let root = JsonValue::parse(text).map_err(|e| ExperimentError::decode(e.to_string()))?;
        check_format(&root, SHARD_JOB_FORMAT, "shard job")?;
        Ok(ShardJob {
            spec: spec_from_json(req(&root, "spec")?)?,
            shard: range_from_json(&root)?,
        })
    }

    /// Writes the job file to `path`.
    pub fn save(&self, path: &Path) -> Result<()> {
        std::fs::write(path, self.to_json_string())
            .map_err(|e| ExperimentError::Io(format!("writing {}: {e}", path.display())))
    }

    /// Reads a job file back from `path`.
    pub fn load(path: &Path) -> Result<ShardJob> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| ExperimentError::Io(format!("reading {}: {e}", path.display())))?;
        ShardJob::from_json_str(&text)
    }
}

/// A finished shard: the spec, the range it ran, and the trial records in
/// slot order — the unit that crosses process/machine boundaries back to
/// the merger.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardArchive {
    /// The campaign the shard belongs to.
    pub spec: CampaignSpec,
    /// The shard's slice of the job space.
    pub shard: ShardRange,
    /// The shard's trial records, in cell-major slot order.
    pub records: Vec<TrialRecord>,
}

impl ShardArchive {
    /// Serialises the partial archive (pretty, deterministic).
    pub fn to_json_string(&self) -> String {
        let mut members = vec![
            ("format", JsonValue::string(SHARD_FORMAT)),
            ("spec", spec_to_json(&self.spec)),
        ];
        members.extend(range_members(&self.shard));
        members.push((
            "records",
            JsonValue::Array(self.records.iter().map(trial_to_json).collect()),
        ));
        obj(members).to_json_string_pretty()
    }

    /// Parses a partial archive.
    pub fn from_json_str(text: &str) -> Result<ShardArchive> {
        let root = JsonValue::parse(text).map_err(|e| ExperimentError::decode(e.to_string()))?;
        check_format(&root, SHARD_FORMAT, "shard archive")?;
        let records = req(&root, "records")?
            .as_array()
            .ok_or_else(|| ExperimentError::decode("'records' is not an array".to_string()))?
            .iter()
            .map(trial_from_json)
            .collect::<Result<Vec<_>>>()?;
        Ok(ShardArchive {
            spec: spec_from_json(req(&root, "spec")?)?,
            shard: range_from_json(&root)?,
            records,
        })
    }

    /// Serialises the partial archive to the compact columnar encoding
    /// ([`crate::columns`], tag `ivc-trial-columns-v1`).
    pub fn to_column_bytes(&self) -> Vec<u8> {
        columns::to_column_bytes(self)
    }

    /// Parses the columnar encoding back into a partial archive.
    pub fn from_column_bytes(bytes: &[u8]) -> Result<ShardArchive> {
        columns::from_column_bytes(bytes)
    }

    /// Writes the partial archive to `path` — as JSON when the path ends
    /// in `.json`, in the columnar encoding otherwise.  The output path
    /// *is* the format switch, so launchers and workers agree on the
    /// encoding by agreeing on the file name alone.
    pub fn save(&self, path: &Path) -> Result<()> {
        let bytes = if path.extension().is_some_and(|e| e == "json") {
            self.to_json_string().into_bytes()
        } else {
            self.to_column_bytes()
        };
        std::fs::write(path, bytes)
            .map_err(|e| ExperimentError::Io(format!("writing {}: {e}", path.display())))
    }

    /// Reads a partial archive back from `path`, detecting the encoding
    /// from the content (JSON documents start with `{`), so columnar and
    /// legacy JSON partials load through the same call.
    pub fn load(path: &Path) -> Result<ShardArchive> {
        let bytes = std::fs::read(path)
            .map_err(|e| ExperimentError::Io(format!("reading {}: {e}", path.display())))?;
        if columns::looks_columnar(&bytes) {
            return ShardArchive::from_column_bytes(&bytes);
        }
        let text = std::str::from_utf8(&bytes)
            .map_err(|e| ExperimentError::decode(format!("{}: {e}", path.display())))?;
        ShardArchive::from_json_str(text)
    }

    /// Reads just the shard's slot range from `path`: O(header) for a
    /// columnar partial, a full parse for a legacy JSON one.  Lets a
    /// streaming merge order its input files without holding more than
    /// one decoded partial at a time.
    pub fn peek_range(path: &Path) -> Result<ShardRange> {
        let bytes = std::fs::read(path)
            .map_err(|e| ExperimentError::Io(format!("reading {}: {e}", path.display())))?;
        if columns::looks_columnar(&bytes) {
            return columns::peek_column_range(&bytes);
        }
        let text = std::str::from_utf8(&bytes)
            .map_err(|e| ExperimentError::decode(format!("{}: {e}", path.display())))?;
        Ok(ShardArchive::from_json_str(text)?.shard)
    }

    /// Checks that this partial is exactly the finished form of `job`:
    /// same spec, the very slot range the plan assigned, and a full,
    /// slot-consistent record set.  This is the orchestrator's
    /// checkpoint-acceptance test — a partial that validates here is by
    /// construction a partial [`merge_shards`] will accept, so resuming
    /// from surviving checkpoints can never assemble an archive the merge
    /// would have rejected.
    pub fn validate_for(&self, job: &ShardJob) -> Result<()> {
        validate_partial(self, &job.spec)?;
        if self.shard != job.shard {
            return Err(ExperimentError::Merge(format!(
                "partial covers jobs [{}, {}) of a {}-shard plan, expected [{}, {}) of {}",
                self.shard.start_job,
                self.shard.end_job,
                self.shard.num_shards,
                job.shard.start_job,
                job.shard.end_job,
                job.shard.num_shards
            )));
        }
        Ok(())
    }
}

/// Validates one partial against the campaign it claims to belong to:
/// spec equality, a well-formed range, exactly one record per slot, and
/// every record agreeing with its slot's `(cell, trial)` coordinates.
/// Shared by [`merge_shards`] and [`ShardArchive::validate_for`] so the
/// merge contract and the resume contract cannot drift apart.
pub fn validate_partial(shard: &ShardArchive, spec: &CampaignSpec) -> Result<()> {
    if shard.spec != *spec {
        return Err(ExperimentError::Merge(format!(
            "shard {} was produced by a different spec ('{}' vs '{}')",
            shard.shard.shard_index, shard.spec.name, spec.name
        )));
    }
    let num_jobs = spec.num_trials();
    let trials_per_cell = spec.trials_per_cell;
    validate_range(&shard.shard, num_jobs)?;
    let range = &shard.shard;
    if shard.records.len() != range.num_jobs() {
        return Err(ExperimentError::Merge(format!(
            "shard {} carries {} records for {} jobs",
            range.shard_index,
            shard.records.len(),
            range.num_jobs()
        )));
    }
    for (offset, record) in shard.records.iter().enumerate() {
        let slot = range.start_job + offset;
        let (cell_index, trial_index) = (slot / trials_per_cell, slot % trials_per_cell);
        if record.cell_index != cell_index || record.trial_index != trial_index {
            return Err(ExperimentError::Merge(format!(
                "shard {}: record at slot {slot} claims (cell {}, trial {}), expected \
                 (cell {cell_index}, trial {trial_index})",
                range.shard_index, record.cell_index, record.trial_index
            )));
        }
    }
    Ok(())
}

/// Runs one shard in-process on `workers` threads: the banded executor
/// with its shared-`PreparedCell` contract, restricted to the shard's slot
/// range.  Prepare runs locally from the spec (a pure function), so a
/// worker needs nothing but the job.
pub fn run_shard(job: &ShardJob, workers: usize) -> Result<ShardArchive> {
    job.validate()?;
    let records = execute_jobs(&job.spec, job.shard.start_job, job.shard.end_job, workers)?;
    Ok(ShardArchive {
        spec: job.spec.clone(),
        shard: job.shard,
        records,
    })
}

/// Streaming shard merge: absorbs partials one at a time — in slot order
/// — folding every record into its cell's
/// [`CellAccumulator`](crate::aggregate::CellAccumulator) and moving it
/// (never cloning) into the cell's trial list, then finishes into the
/// full [`CampaignReport`].
///
/// Aggregation state is O(cells): one accumulator of running sums per
/// cell.  The record vectors themselves end up in the report (the JSON
/// archive embeds every trial), but only ever in one copy, and a caller
/// that loads partials from files one by one ([`merge_shard_files`])
/// never holds more than one shard's records beyond that single copy.
pub struct ShardMerger {
    spec: CampaignSpec,
    cells: Vec<CellSpec>,
    accumulators: Vec<CellAccumulator>,
    trials: Vec<Vec<TrialRecord>>,
    expected_start: usize,
}

impl ShardMerger {
    /// A merger for `spec`'s job space, with every cell empty.
    pub fn new(spec: CampaignSpec) -> Result<ShardMerger> {
        spec.validate()?;
        let cells = spec.cells();
        Ok(ShardMerger {
            accumulators: vec![CellAccumulator::new(); cells.len()],
            trials: vec![Vec::new(); cells.len()],
            cells,
            spec,
            expected_start: 0,
        })
    }

    /// Absorbs the next partial, which must continue the tiling exactly
    /// where the previous one ended (callers with unordered input sort by
    /// `start_job` first, as [`merge_shards`] does): the slot-order
    /// discipline is what keeps the floating-point sums — and therefore
    /// the merged bytes — identical to the in-process run.
    pub fn absorb(&mut self, shard: ShardArchive) -> Result<()> {
        validate_partial(&shard, &self.spec)?;
        let range = shard.shard;
        if range.start_job < self.expected_start {
            return Err(ExperimentError::Merge(format!(
                "shard {} overlaps: jobs [{}, {}) but jobs below {} are already covered",
                range.shard_index, range.start_job, range.end_job, self.expected_start
            )));
        }
        if range.start_job > self.expected_start {
            return Err(ExperimentError::Merge(format!(
                "gap in shard coverage: jobs [{}, {}) are missing",
                self.expected_start, range.start_job
            )));
        }
        let trials_per_cell = self.spec.trials_per_cell;
        for (offset, record) in shard.records.into_iter().enumerate() {
            let cell_index = (range.start_job + offset) / trials_per_cell;
            self.accumulators[cell_index].fold(&record);
            self.trials[cell_index].push(record);
        }
        self.expected_start = range.end_job;
        Ok(())
    }

    /// Checks the tiling reached the end of the job space and builds the
    /// report from the per-cell accumulators and the moved records.
    pub fn finish(self) -> Result<CampaignReport> {
        let num_jobs = self.spec.num_trials();
        if self.expected_start != num_jobs {
            return Err(ExperimentError::Merge(format!(
                "gap in shard coverage: jobs [{}, {num_jobs}) are missing",
                self.expected_start
            )));
        }
        let cell_reports: Vec<CellReport> = self
            .cells
            .iter()
            .zip(self.accumulators)
            .zip(self.trials)
            .map(|((cell, accumulator), trials)| CellReport {
                cell: *cell,
                label: self.spec.cell_label(cell),
                stats: accumulator.stats(),
                trials,
            })
            .collect();
        let curves = psychometric_curves(&self.spec, &cell_reports);
        Ok(CampaignReport {
            spec: self.spec,
            cells: cell_reports,
            curves,
        })
    }
}

/// Merges shard partials back into the full campaign report, consuming
/// them: records move into the report, they are never cloned.
///
/// The partials may arrive in any order; they are sorted into slot order,
/// checked against each other (same spec, no gaps, no overlaps, records
/// agreeing with their slots) and streamed through a [`ShardMerger`].
/// The result is byte-identical to [`crate::run_campaign`] on the same
/// spec.
pub fn merge_shards(mut shards: Vec<ShardArchive>) -> Result<CampaignReport> {
    let first = shards
        .first()
        .ok_or_else(|| ExperimentError::Merge("no shard archives to merge".to_string()))?;
    let mut merger = ShardMerger::new(first.spec.clone())?;
    shards.sort_by_key(|shard| (shard.shard.start_job, shard.shard.end_job));
    for shard in shards {
        merger.absorb(shard)?;
    }
    merger.finish()
}

/// Merges shard partials straight from their files, loading (and
/// dropping) one partial at a time: peak memory is one decoded shard
/// plus the growing report, never the whole flat record list, regardless
/// of how many trials the campaign ran.
///
/// Files are ordered by their shard range first — O(header) per columnar
/// file via [`ShardArchive::peek_range`] — so the partials stream through
/// the [`ShardMerger`] in slot order whatever order the paths arrive in.
/// Columnar and legacy JSON partials can be mixed freely.
pub fn merge_shard_files(paths: &[std::path::PathBuf]) -> Result<CampaignReport> {
    if paths.is_empty() {
        return Err(ExperimentError::Merge(
            "no shard archives to merge".to_string(),
        ));
    }
    let mut ordered: Vec<(usize, usize, &std::path::PathBuf)> = Vec::with_capacity(paths.len());
    for path in paths {
        let range = ShardArchive::peek_range(path)?;
        ordered.push((range.start_job, range.end_job, path));
    }
    ordered.sort_by_key(|&(start, end, _)| (start, end));
    let mut merger: Option<ShardMerger> = None;
    for (_, _, path) in ordered {
        let shard = ShardArchive::load(path)?;
        if merger.is_none() {
            merger = Some(ShardMerger::new(shard.spec.clone())?);
        }
        merger.as_mut().expect("just created").absorb(shard)?;
    }
    merger.expect("at least one path absorbed").finish()
}

fn check_format(root: &JsonValue, expected: &str, what: &str) -> Result<()> {
    let format = req_str(root, "format")?;
    if format != expected {
        return Err(ExperimentError::decode(format!(
            "unsupported {what} format '{format}' (expected '{expected}')"
        )));
    }
    Ok(())
}

/// The shard-range JSON members, kept next to [`range_from_json`] so the
/// two directions of the encoding cannot drift.
fn range_members(range: &ShardRange) -> Vec<(&'static str, JsonValue)> {
    vec![
        ("shard_index", JsonValue::number(range.shard_index as f64)),
        ("num_shards", JsonValue::number(range.num_shards as f64)),
        ("start_job", JsonValue::number(range.start_job as f64)),
        ("end_job", JsonValue::number(range.end_job as f64)),
    ]
}

fn range_from_json(root: &JsonValue) -> Result<ShardRange> {
    Ok(ShardRange {
        shard_index: req_usize(root, "shard_index")?,
        num_shards: req_usize(root, "num_shards")?,
        start_job: req_usize(root, "start_job")?,
        end_job: req_usize(root, "end_job")?,
    })
}

fn validate_range(range: &ShardRange, num_jobs: usize) -> Result<()> {
    if range.num_shards == 0 || range.shard_index >= range.num_shards {
        return Err(ExperimentError::invalid(
            "shards",
            format!(
                "shard index {} outside the {}-shard plan",
                range.shard_index, range.num_shards
            ),
        ));
    }
    if range.start_job > range.end_job || range.end_job > num_jobs {
        return Err(ExperimentError::invalid(
            "shards",
            format!(
                "job range [{}, {}) outside the campaign's {} jobs",
                range.start_job, range.end_job, num_jobs
            ),
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::run_campaign;
    use crate::grid::DeliverySpec;

    fn spec_with(cells: usize, trials_per_cell: usize) -> CampaignSpec {
        CampaignSpec {
            deliveries: (0..cells)
                .map(|i| DeliverySpec::array(format!("array {i}"), 4 + i, 40.0, 40_000.0))
                .collect(),
            trials_per_cell,
            ..CampaignSpec::new("plan")
        }
    }

    #[test]
    fn partition_tiles_the_job_space_evenly() {
        let spec = spec_with(5, 3); // 15 jobs
        let plan = ShardPlan::partition(&spec, 4).unwrap();
        assert_eq!(plan.shards.len(), 4);
        let sizes: Vec<usize> = plan.shards.iter().map(|s| s.num_jobs()).collect();
        assert_eq!(sizes, vec![4, 4, 4, 3]);
        let mut expected = 0;
        for (i, shard) in plan.shards.iter().enumerate() {
            assert_eq!(shard.shard_index, i);
            assert_eq!(shard.num_shards, 4);
            assert_eq!(shard.start_job, expected);
            expected = shard.end_job;
        }
        assert_eq!(expected, spec.num_trials());
    }

    #[test]
    fn degenerate_plans_still_cover_exactly_once() {
        // One job, many shards: the first shard gets it, the rest are
        // empty but well-formed.
        let spec = spec_with(1, 1);
        let plan = ShardPlan::partition(&spec, 7).unwrap();
        assert_eq!(plan.shards[0].num_jobs(), 1);
        assert!(plan.shards[1..].iter().all(|s| s.is_empty()));
        let jobs: Vec<(usize, usize)> = plan
            .shards
            .iter()
            .flat_map(|s| s.jobs(spec.trials_per_cell))
            .collect();
        assert_eq!(jobs, vec![(0, 0)]);
        // One shard is the whole campaign.
        let whole = ShardPlan::partition(&spec_with(3, 2), 1).unwrap();
        assert_eq!(whole.shards[0].num_jobs(), 6);
        // Zero shards is a spec error, not a panic.
        assert!(matches!(
            ShardPlan::partition(&spec, 0),
            Err(ExperimentError::InvalidSpec { .. })
        ));
    }

    #[test]
    fn shard_ranges_split_cells_mid_trial() {
        // 2 cells x 3 trials, 2 shards: the boundary falls inside cell 0.
        let spec = spec_with(2, 3);
        let plan = ShardPlan::partition(&spec, 2).unwrap();
        let first: Vec<_> = plan.shards[0].jobs(3).collect();
        let second: Vec<_> = plan.shards[1].jobs(3).collect();
        assert_eq!(first, vec![(0, 0), (0, 1), (0, 2)]);
        assert_eq!(second, vec![(1, 0), (1, 1), (1, 2)]);
        let plan3 = ShardPlan::partition(&spec, 4).unwrap();
        let all: Vec<_> = plan3.shards.iter().flat_map(|s| s.jobs(3)).collect();
        assert_eq!(
            all,
            vec![(0, 0), (0, 1), (0, 2), (1, 0), (1, 1), (1, 2)],
            "mid-cell boundaries must not drop or duplicate jobs"
        );
    }

    #[test]
    fn job_files_and_partials_round_trip() {
        let spec = spec_with(2, 2);
        let plan = ShardPlan::partition(&spec, 2).unwrap();
        let job = &plan.jobs()[1];
        let text = job.to_json_string();
        assert!(text.contains(SHARD_JOB_FORMAT));
        let parsed = ShardJob::from_json_str(&text).unwrap();
        assert_eq!(&parsed, job);
        assert_eq!(parsed.to_json_string(), text);
        // Wrong/old format tags fail with a versioned message.
        let old = text.replace(SHARD_JOB_FORMAT, "ivc-campaign-shard-job-v0");
        let err = ShardJob::from_json_str(&old).unwrap_err();
        assert!(
            err.to_string().contains("ivc-campaign-shard-job-v0")
                && err.to_string().contains(SHARD_JOB_FORMAT),
            "{err}"
        );
    }

    #[test]
    fn merge_rejects_gaps_overlaps_and_foreign_shards() {
        let spec = spec_with(2, 2); // 4 jobs
        let archive = |start: usize, end: usize| ShardArchive {
            spec: spec.clone(),
            shard: ShardRange {
                shard_index: 0,
                num_shards: 2,
                start_job: start,
                end_job: end,
            },
            records: (start..end)
                .map(|slot| TrialRecord {
                    cell_index: slot / 2,
                    trial_index: slot % 2,
                    seed: spec.trial_seed(slot % 2),
                    accepted: true,
                    word_accuracy: 1.0,
                    recognized_words: vec![],
                    bystander_spl_db: None,
                    bystander_spl_dba: None,
                    bystander_voice_spl_db: None,
                    leak_audible: None,
                    power_shortfall_w: 0.0,
                    defense_features: vec![0.0; 4],
                    detection_probability: None,
                    recording_band_summary_db: None,
                })
                .collect(),
        };
        // A clean tiling merges (input order does not matter).
        let merged = merge_shards(vec![archive(2, 4), archive(0, 2)]).unwrap();
        assert_eq!(merged.cells.len(), 2);
        // Gap.
        let err = merge_shards(vec![archive(0, 1), archive(2, 4)]).unwrap_err();
        assert!(err.to_string().contains("gap"), "{err}");
        // Overlap.
        let err = merge_shards(vec![archive(0, 3), archive(2, 4)]).unwrap_err();
        assert!(err.to_string().contains("overlap"), "{err}");
        // Missing tail.
        let err = merge_shards(vec![archive(0, 3)]).unwrap_err();
        assert!(err.to_string().contains("missing"), "{err}");
        // Foreign spec.
        let mut foreign = archive(2, 4);
        foreign.spec = spec_with(2, 2);
        foreign.spec.name = "other".to_string();
        let err = merge_shards(vec![archive(0, 2), foreign]).unwrap_err();
        assert!(err.to_string().contains("different spec"), "{err}");
        // Record disagreeing with its slot.
        let mut skewed = archive(2, 4);
        skewed.records[0].trial_index = 1;
        let err = merge_shards(vec![archive(0, 2), skewed]).unwrap_err();
        assert!(err.to_string().contains("slot"), "{err}");
        // Nothing to merge.
        assert!(merge_shards(vec![]).is_err());
    }

    #[test]
    fn sharded_execution_reproduces_the_single_process_bytes() {
        // The tentpole contract at unit scale: a tiny real campaign run
        // as 1 process vs 3 shards (one boundary mid-cell), partials
        // round-tripped through their wire format, merged byte-exactly.
        let spec = CampaignSpec {
            deliveries: vec![
                DeliverySpec::legitimate("talker 68 dB", 68.0),
                DeliverySpec::array("6-element array, 60 W", 6, 60.0, 40_000.0),
            ],
            trials_per_cell: 2,
            max_voice_duration_s: 0.7,
            ..CampaignSpec::new("shard-tiny")
        };
        let baseline = run_campaign(&spec, 2).unwrap();
        let plan = ShardPlan::partition(&spec, 3).unwrap();
        let partials: Vec<ShardArchive> = plan
            .jobs()
            .iter()
            .map(|job| {
                let archive = run_shard(job, 2).unwrap();
                // Through the columnar wire format, as a real worker
                // would ship it by default.
                ShardArchive::from_column_bytes(&archive.to_column_bytes()).unwrap()
            })
            .collect();
        // And through the legacy JSON wire format, which must keep
        // merging identically for one version.
        let json_partials: Vec<ShardArchive> = partials
            .iter()
            .map(|p| ShardArchive::from_json_str(&p.to_json_string()).unwrap())
            .collect();
        let merged = merge_shards(partials).unwrap();
        assert_eq!(merged, baseline);
        assert_eq!(merged.to_json_string(), baseline.to_json_string());
        let merged_json = merge_shards(json_partials).unwrap();
        assert_eq!(merged_json.to_json_string(), baseline.to_json_string());
    }
}
