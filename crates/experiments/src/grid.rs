//! The parameter-grid DSL: a [`CampaignSpec`] declares axes (detector,
//! device, delivery configuration, carrier frequency, power, room,
//! environment, command, distance) plus shared scalars, and expands into
//! the full cross product of concrete [`Scenario`]s.
//!
//! Expansion order is part of the engine's contract: cells are enumerated
//! detectors → devices → deliveries → carriers → powers → rooms →
//! environments → commands → distances (distance innermost), so
//! success-vs-distance curves read off contiguous cell ranges, and the
//! same spec always produces the same cell indices.  The detector, carrier
//! and power axes were added in report format v3 (the room axis in v2);
//! specs that leave the new axes at their single-entry defaults reproduce
//! the v2 expansion order.

use crate::error::{ExperimentError, Result};
use ivc_acoustics::environment::AirEnvironment;
use ivc_acoustics::microphone::DevicePreset;
use ivc_core::scenario::{Delivery, Scenario};
use ivc_defense::dataset::DatasetConfig;
use ivc_room::RoomPreset;
use ivc_speech::commands::corpus;

/// Stable archive token of a room-axis entry (`None` = free field).
pub fn room_token(room: Option<RoomPreset>) -> &'static str {
    match room {
        None => "free_field",
        Some(preset) => preset.token(),
    }
}

/// Parses a room-axis archive token (inverse of [`room_token`]).
pub fn room_from_token(token: &str) -> Option<Option<RoomPreset>> {
    if token == "free_field" {
        return Some(None);
    }
    RoomPreset::from_token(token).map(Some)
}

/// Named air-condition presets for the environment axis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EnvironmentPreset {
    /// A typical indoor meeting room (20 °C, 50 % RH) — the default used by
    /// every paper experiment.
    MeetingRoom,
    /// A heated building in winter: cooler and dry (16 °C, 25 % RH); dry
    /// air absorbs ultrasound hardest.
    WinterIndoor,
    /// A hot, humid summer room (30 °C, 80 % RH).
    SummerHumid,
    /// Outdoors on a cool day (10 °C, 70 % RH, slightly low pressure).
    Outdoor,
}

impl EnvironmentPreset {
    /// All presets in a stable order.
    pub const ALL: [EnvironmentPreset; 4] = [
        EnvironmentPreset::MeetingRoom,
        EnvironmentPreset::WinterIndoor,
        EnvironmentPreset::SummerHumid,
        EnvironmentPreset::Outdoor,
    ];

    /// Stable token used in JSON archives.
    pub fn token(&self) -> &'static str {
        match self {
            EnvironmentPreset::MeetingRoom => "meeting_room",
            EnvironmentPreset::WinterIndoor => "winter_indoor",
            EnvironmentPreset::SummerHumid => "summer_humid",
            EnvironmentPreset::Outdoor => "outdoor",
        }
    }

    /// Parses an archive token back into a preset.
    pub fn from_token(token: &str) -> Option<EnvironmentPreset> {
        EnvironmentPreset::ALL
            .into_iter()
            .find(|p| p.token() == token)
    }

    /// The air conditions this preset stands for.
    pub fn air(&self) -> AirEnvironment {
        match self {
            EnvironmentPreset::MeetingRoom => AirEnvironment::default(),
            EnvironmentPreset::WinterIndoor => AirEnvironment {
                temperature_c: 16.0,
                relative_humidity_percent: 25.0,
                pressure_kpa: 101.325,
            },
            EnvironmentPreset::SummerHumid => AirEnvironment {
                temperature_c: 30.0,
                relative_humidity_percent: 80.0,
                pressure_kpa: 101.325,
            },
            EnvironmentPreset::Outdoor => AirEnvironment {
                temperature_c: 10.0,
                relative_humidity_percent: 70.0,
                pressure_kpa: 100.0,
            },
        }
    }
}

/// One labelled point on the delivery axis.
#[derive(Debug, Clone, PartialEq)]
pub struct DeliverySpec {
    /// Label used in tables, curves and archives.
    pub label: String,
    /// The delivery configuration.
    pub delivery: Delivery,
    /// Adaptive-attacker shadow suppression in `[0, 1]` applied to attack
    /// deliveries (`0.0`, the default, is the oblivious attacker).
    pub shadow_suppression: f64,
}

impl DeliverySpec {
    /// A legitimate talker at `talker_spl_db` dB SPL (1 m).
    pub fn legitimate(label: impl Into<String>, talker_spl_db: f64) -> Self {
        DeliverySpec {
            label: label.into(),
            delivery: Delivery::Legitimate { talker_spl_db },
            shadow_suppression: 0.0,
        }
    }

    /// A single ultrasonic speaker at `power_w` watt.
    pub fn single_speaker(label: impl Into<String>, power_w: f64, carrier_hz: f64) -> Self {
        DeliverySpec {
            label: label.into(),
            delivery: Delivery::SingleSpeakerUltrasound {
                power_w,
                carrier_hz,
            },
            shadow_suppression: 0.0,
        }
    }

    /// An ultrasonic array of `num_elements` at `total_power_w` watt.
    pub fn array(
        label: impl Into<String>,
        num_elements: usize,
        total_power_w: f64,
        carrier_hz: f64,
    ) -> Self {
        DeliverySpec {
            label: label.into(),
            delivery: Delivery::ArrayUltrasound {
                num_elements,
                total_power_w,
                carrier_hz,
            },
            shadow_suppression: 0.0,
        }
    }

    /// The same delivery with the adaptive attacker's shadow suppression
    /// set (the E-D6 sweep builds its delivery axis with this).
    pub fn with_shadow_suppression(mut self, suppression: f64) -> Self {
        self.shadow_suppression = suppression;
        self
    }
}

/// One point on the detector-training axis: the labelled corpus the
/// campaign trains a logistic-regression detector on before running
/// trials.  Mirrors [`DatasetConfig`] so training is fully reproducible
/// from the archived spec.
#[derive(Debug, Clone, PartialEq)]
pub struct DetectorSpec {
    /// Label used in tables and archives.
    pub label: String,
    /// Device the training recordings are captured on.
    pub device: DevicePreset,
    /// Source–device distances the corpus covers, in metres.
    pub distances_m: Vec<f64>,
    /// Legitimate speaker variants per (command, distance).
    pub num_speaker_variants: usize,
    /// Corpus command indices the training set speaks.
    pub command_indices: Vec<usize>,
    /// Array elements of the training attacks.
    pub attack_elements: usize,
    /// Total electrical power of the training attacks, in watt.
    pub attack_total_power_w: f64,
    /// Carrier frequency of the training attacks, in Hz.
    pub carrier_hz: f64,
    /// Legitimate talker level (SPL at 1 m), in dB.
    pub talker_spl_db: f64,
    /// Ambient noise of the training recordings, in dB SPL.
    pub ambient_noise_spl_db: f64,
    /// Voice-duration cap of the training corpus, in seconds.
    pub max_voice_duration_s: f64,
    /// Master seed of the training corpus.
    pub seed: u64,
}

impl DetectorSpec {
    /// The standard detector of the paper's defense evaluation at the
    /// given fidelity (`quick` trims distances/commands/variants the same
    /// way the repro harness's quick mode always has).
    pub fn standard(quick: bool) -> Self {
        DetectorSpec {
            label: "standard detector".to_string(),
            device: DevicePreset::AndroidPhone,
            distances_m: if quick {
                vec![1.5, 3.0]
            } else {
                vec![1.0, 2.0, 3.0, 5.0]
            },
            num_speaker_variants: if quick { 2 } else { 4 },
            command_indices: if quick { vec![0] } else { vec![0, 1, 2, 3] },
            attack_elements: 8,
            attack_total_power_w: 40.0,
            carrier_hz: 40_000.0,
            talker_spl_db: 65.0,
            ambient_noise_spl_db: 40.0,
            max_voice_duration_s: if quick { 1.1 } else { f64::INFINITY },
            seed: 7,
        }
    }

    /// The [`DatasetConfig`] this spec stands for.
    pub fn dataset_config(&self) -> DatasetConfig {
        DatasetConfig {
            device: self.device,
            distances_m: self.distances_m.clone(),
            num_speaker_variants: self.num_speaker_variants,
            command_indices: self.command_indices.clone(),
            attack_elements: self.attack_elements,
            attack_total_power_w: self.attack_total_power_w,
            carrier_hz: self.carrier_hz,
            talker_spl_db: self.talker_spl_db,
            ambient_noise_spl_db: self.ambient_noise_spl_db,
            max_voice_duration_s: self.max_voice_duration_s,
            seed: self.seed,
        }
    }

    fn validate(&self) -> Result<()> {
        if self.label.is_empty() {
            return Err(ExperimentError::invalid(
                "detectors",
                "detector label must not be empty",
            ));
        }
        if self.distances_m.is_empty() || self.command_indices.is_empty() {
            return Err(ExperimentError::invalid(
                "detectors",
                "training needs at least one distance and one command",
            ));
        }
        let corpus_len = corpus().len();
        for &index in &self.command_indices {
            if index >= corpus_len {
                return Err(ExperimentError::invalid(
                    "detectors",
                    format!("training command index {index} outside the corpus"),
                ));
            }
        }
        if self.num_speaker_variants == 0 || self.attack_elements == 0 {
            return Err(ExperimentError::invalid(
                "detectors",
                "need at least one speaker variant and one attack element",
            ));
        }
        if !(self.attack_total_power_w > 0.0) || !(self.carrier_hz > 0.0) {
            return Err(ExperimentError::invalid(
                "detectors",
                "attack power and carrier must be positive",
            ));
        }
        if !(self.max_voice_duration_s > 0.0) {
            return Err(ExperimentError::invalid(
                "detectors",
                "max_voice_duration_s must be positive",
            ));
        }
        Ok(())
    }
}

/// Stable archive token of a detector-axis entry.
pub fn detector_token(detector: Option<&DetectorSpec>) -> String {
    match detector {
        None => "no detector".to_string(),
        Some(spec) => spec.label.clone(),
    }
}

/// Per-trial band-energy capture: when set on a spec, every trial record
/// carries a band-energy summary of its recording (the E-B2 spectrogram
/// column, archived instead of the waveform itself).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BandSummarySpec {
    /// Number of equal-width bands.
    pub bands: usize,
    /// Upper edge of the summarised range, in Hz.
    pub max_hz: f64,
}

/// A full campaign: the grid axes plus everything shared by all cells.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignSpec {
    /// Campaign name (archived; also the default archive file stem).
    pub name: String,
    /// Detector-training axis: `None` runs trials without a detector,
    /// `Some(spec)` trains a logistic-regression detector on the described
    /// corpus once and scores every trial of the entry's cells with it.
    pub detectors: Vec<Option<DetectorSpec>>,
    /// Device axis.
    pub devices: Vec<DevicePreset>,
    /// Delivery-configuration axis (element counts, powers, carriers —
    /// anything [`Delivery`] expresses, plus shadow suppression).
    pub deliveries: Vec<DeliverySpec>,
    /// Carrier-frequency axis: `None` keeps each delivery's own carrier,
    /// `Some(hz)` overrides it for attack deliveries (legitimate
    /// deliveries have no carrier and are unaffected).
    pub carriers_hz: Vec<Option<f64>>,
    /// Power axis: `None` keeps each delivery's own electrical power,
    /// `Some(w)` overrides it (single-speaker `power_w`, array
    /// `total_power_w`; legitimate deliveries are unaffected).
    pub powers_w: Vec<Option<f64>>,
    /// Room axis: `None` is the free-field channel, `Some(preset)` runs
    /// the trial inside that room's image-source model.
    pub rooms: Vec<Option<RoomPreset>>,
    /// Environment axis.
    pub environments: Vec<EnvironmentPreset>,
    /// Command axis: indices into [`ivc_speech::commands::corpus`].
    pub command_indices: Vec<usize>,
    /// Distance axis, in metres.
    pub distances_m: Vec<f64>,
    /// Ambient room noise for every cell, in dB SPL.
    pub ambient_noise_spl_db: f64,
    /// Bystander distance for leakage estimation, in metres.
    pub bystander_distance_m: f64,
    /// Trials per cell; trial `t` everywhere uses seed `base_seed + t`
    /// (common random numbers across cells, so cross-cell comparisons are
    /// paired).
    pub trials_per_cell: usize,
    /// Master seed; the only randomness a campaign sees.
    pub base_seed: u64,
    /// Voice-duration cap per trial, `f64::INFINITY` for whole commands.
    pub max_voice_duration_s: f64,
    /// When set, each trial record carries a band-energy summary of its
    /// recording (see [`BandSummarySpec`]).
    pub recording_band_summary: Option<BandSummarySpec>,
}

impl CampaignSpec {
    /// A single-cell starting point mirroring [`Scenario::default_attack`]:
    /// Android phone, 8-element 40 W array, meeting room, command 0, 2 m,
    /// one trial at seed 1.  Overwrite the axes you want to sweep.
    pub fn new(name: impl Into<String>) -> Self {
        CampaignSpec {
            name: name.into(),
            detectors: vec![None],
            devices: vec![DevicePreset::AndroidPhone],
            deliveries: vec![DeliverySpec::array(
                "8-element array, 40 W",
                8,
                40.0,
                40_000.0,
            )],
            carriers_hz: vec![None],
            powers_w: vec![None],
            rooms: vec![None],
            environments: vec![EnvironmentPreset::MeetingRoom],
            command_indices: vec![0],
            distances_m: vec![2.0],
            ambient_noise_spl_db: 40.0,
            bystander_distance_m: 1.0,
            trials_per_cell: 1,
            base_seed: 1,
            max_voice_duration_s: f64::INFINITY,
            recording_band_summary: None,
        }
    }

    /// Validates every axis and scalar.
    pub fn validate(&self) -> Result<()> {
        if self.name.is_empty() {
            return Err(ExperimentError::invalid("name", "must not be empty"));
        }
        if self.detectors.is_empty() {
            return Err(ExperimentError::invalid("detectors", "axis is empty"));
        }
        for detector in self.detectors.iter().flatten() {
            detector.validate()?;
        }
        if self.devices.is_empty() {
            return Err(ExperimentError::invalid("devices", "axis is empty"));
        }
        if self.deliveries.is_empty() {
            return Err(ExperimentError::invalid("deliveries", "axis is empty"));
        }
        for delivery in &self.deliveries {
            if !(0.0..=1.0).contains(&delivery.shadow_suppression) {
                return Err(ExperimentError::invalid(
                    "deliveries",
                    format!(
                        "'{}': shadow_suppression must be within [0, 1]",
                        delivery.label
                    ),
                ));
            }
        }
        let any_attack = self.deliveries.iter().any(|d| d.delivery.is_attack());
        if self.carriers_hz.is_empty() {
            return Err(ExperimentError::invalid("carriers_hz", "axis is empty"));
        }
        for &carrier in self.carriers_hz.iter() {
            if let Some(hz) = carrier {
                if !(hz > 0.0) || !hz.is_finite() {
                    return Err(ExperimentError::invalid(
                        "carriers_hz",
                        format!("{hz} must be positive and finite"),
                    ));
                }
                if !any_attack {
                    return Err(ExperimentError::invalid(
                        "carriers_hz",
                        "carrier overrides need at least one attack delivery",
                    ));
                }
            }
        }
        if self.powers_w.is_empty() {
            return Err(ExperimentError::invalid("powers_w", "axis is empty"));
        }
        for &power in self.powers_w.iter() {
            if let Some(w) = power {
                if !(w > 0.0) || !w.is_finite() {
                    return Err(ExperimentError::invalid(
                        "powers_w",
                        format!("{w} must be positive and finite"),
                    ));
                }
                if !any_attack {
                    return Err(ExperimentError::invalid(
                        "powers_w",
                        "power overrides need at least one attack delivery",
                    ));
                }
            }
        }
        if self.rooms.is_empty() {
            return Err(ExperimentError::invalid("rooms", "axis is empty"));
        }
        if self.environments.is_empty() {
            return Err(ExperimentError::invalid("environments", "axis is empty"));
        }
        if self.command_indices.is_empty() {
            return Err(ExperimentError::invalid("command_indices", "axis is empty"));
        }
        let corpus_len = corpus().len();
        for &index in &self.command_indices {
            if index >= corpus_len {
                return Err(ExperimentError::invalid(
                    "command_indices",
                    format!("index {index} outside the {corpus_len}-command corpus"),
                ));
            }
        }
        if self.distances_m.is_empty() {
            return Err(ExperimentError::invalid("distances_m", "axis is empty"));
        }
        for &d in &self.distances_m {
            if !(d > 0.0) || !d.is_finite() {
                return Err(ExperimentError::invalid(
                    "distances_m",
                    format!("{d} must be positive and finite"),
                ));
            }
        }
        if !(self.bystander_distance_m > 0.0) || !self.bystander_distance_m.is_finite() {
            return Err(ExperimentError::invalid(
                "bystander_distance_m",
                "must be positive and finite",
            ));
        }
        // Every room must host every distance (and the bystander), so a
        // mis-sized sweep fails at validation instead of mid-campaign.
        for &room in &self.rooms {
            if let Some(preset) = room {
                for &d in &self.distances_m {
                    if let Err(e) = preset.instantiate(d, self.bystander_distance_m) {
                        return Err(ExperimentError::invalid(
                            "rooms",
                            format!("{} at {d} m: {e}", preset.token()),
                        ));
                    }
                }
            }
        }
        if !self.ambient_noise_spl_db.is_finite() {
            return Err(ExperimentError::invalid(
                "ambient_noise_spl_db",
                "must be finite",
            ));
        }
        if self.trials_per_cell == 0 {
            return Err(ExperimentError::invalid(
                "trials_per_cell",
                "must be at least 1",
            ));
        }
        if !(self.max_voice_duration_s > 0.0) {
            return Err(ExperimentError::invalid(
                "max_voice_duration_s",
                "must be positive (use f64::INFINITY for whole commands)",
            ));
        }
        if let Some(summary) = self.recording_band_summary {
            if summary.bands == 0 {
                return Err(ExperimentError::invalid(
                    "recording_band_summary",
                    "needs at least one band",
                ));
            }
            if !(summary.max_hz > 0.0) || !summary.max_hz.is_finite() {
                return Err(ExperimentError::invalid(
                    "recording_band_summary",
                    "max_hz must be positive and finite",
                ));
            }
        }
        Ok(())
    }

    /// Number of grid cells (the axis cross product).
    pub fn num_cells(&self) -> usize {
        self.detectors.len()
            * self.devices.len()
            * self.deliveries.len()
            * self.carriers_hz.len()
            * self.powers_w.len()
            * self.rooms.len()
            * self.environments.len()
            * self.command_indices.len()
            * self.distances_m.len()
    }

    /// Number of trials across the whole campaign.
    pub fn num_trials(&self) -> usize {
        self.num_cells() * self.trials_per_cell
    }

    /// Expands the grid into cells, in the documented order (detectors →
    /// devices → deliveries → carriers → powers → rooms → environments →
    /// commands → distances).
    pub fn cells(&self) -> Vec<CellSpec> {
        let mut cells = Vec::with_capacity(self.num_cells());
        let mut cell_index = 0;
        for detector_index in 0..self.detectors.len() {
            for device_index in 0..self.devices.len() {
                for delivery_index in 0..self.deliveries.len() {
                    for carrier_index in 0..self.carriers_hz.len() {
                        for power_index in 0..self.powers_w.len() {
                            for room_index in 0..self.rooms.len() {
                                for environment_index in 0..self.environments.len() {
                                    for command_position in 0..self.command_indices.len() {
                                        for distance_index in 0..self.distances_m.len() {
                                            cells.push(CellSpec {
                                                cell_index,
                                                coords: CellCoords {
                                                    detector_index,
                                                    device_index,
                                                    delivery_index,
                                                    carrier_index,
                                                    power_index,
                                                    room_index,
                                                    environment_index,
                                                    command_position,
                                                    distance_index,
                                                },
                                            });
                                            cell_index += 1;
                                        }
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
        cells
    }

    /// The cell index at the given axis coordinates — the closed form of
    /// the [`CampaignSpec::cells`] expansion order, kept next to it so the
    /// ordering contract has exactly one owner.  `None` when any
    /// coordinate is outside its axis.
    pub fn cell_index_of(&self, coords: &CellCoords) -> Option<usize> {
        if coords.detector_index >= self.detectors.len()
            || coords.device_index >= self.devices.len()
            || coords.delivery_index >= self.deliveries.len()
            || coords.carrier_index >= self.carriers_hz.len()
            || coords.power_index >= self.powers_w.len()
            || coords.room_index >= self.rooms.len()
            || coords.environment_index >= self.environments.len()
            || coords.command_position >= self.command_indices.len()
            || coords.distance_index >= self.distances_m.len()
        {
            return None;
        }
        let mut index = coords.detector_index;
        index = index * self.devices.len() + coords.device_index;
        index = index * self.deliveries.len() + coords.delivery_index;
        index = index * self.carriers_hz.len() + coords.carrier_index;
        index = index * self.powers_w.len() + coords.power_index;
        index = index * self.rooms.len() + coords.room_index;
        index = index * self.environments.len() + coords.environment_index;
        index = index * self.command_indices.len() + coords.command_position;
        index = index * self.distances_m.len() + coords.distance_index;
        Some(index)
    }

    /// The seed trial `trial_index` uses in **every** cell (common random
    /// numbers: the same trial index sees the same noise draw across cells,
    /// so cross-cell differences are parameter effects, not seed luck).
    pub fn trial_seed(&self, trial_index: usize) -> u64 {
        self.base_seed.wrapping_add(trial_index as u64)
    }

    /// The delivery a cell runs, with the carrier- and power-axis
    /// overrides applied (legitimate deliveries pass through untouched).
    pub fn resolved_delivery(&self, cell: &CellSpec) -> Delivery {
        let mut delivery = self.deliveries[cell.coords.delivery_index].delivery;
        if let Some(hz) = self.carriers_hz[cell.coords.carrier_index] {
            match &mut delivery {
                Delivery::SingleSpeakerUltrasound { carrier_hz, .. }
                | Delivery::ArrayUltrasound { carrier_hz, .. } => *carrier_hz = hz,
                Delivery::Legitimate { .. } => {}
            }
        }
        if let Some(w) = self.powers_w[cell.coords.power_index] {
            match &mut delivery {
                Delivery::SingleSpeakerUltrasound { power_w, .. } => *power_w = w,
                Delivery::ArrayUltrasound { total_power_w, .. } => *total_power_w = w,
                Delivery::Legitimate { .. } => {}
            }
        }
        delivery
    }

    /// The concrete scenario of one trial of one cell.
    pub fn scenario(&self, cell: &CellSpec, trial_index: usize) -> Scenario {
        Scenario {
            device: self.devices[cell.coords.device_index],
            distance_m: self.distances_m[cell.coords.distance_index],
            delivery: self.resolved_delivery(cell),
            ambient_noise_spl_db: self.ambient_noise_spl_db,
            bystander_distance_m: self.bystander_distance_m,
            env: self.environments[cell.coords.environment_index].air(),
            room: self.rooms[cell.coords.room_index],
            seed: self.trial_seed(trial_index),
            max_voice_duration_s: self.max_voice_duration_s,
            shadow_suppression: self.deliveries[cell.coords.delivery_index].shadow_suppression,
        }
    }

    /// Corpus index of the command a cell injects.
    pub fn command_index(&self, cell: &CellSpec) -> usize {
        self.command_indices[cell.coords.command_position]
    }

    /// The delivery label of a cell with any swept carrier/power override
    /// appended — the "delivery point" the cell stands for.
    pub fn delivery_point_label(&self, cell: &CellSpec) -> String {
        let mut label = self.deliveries[cell.coords.delivery_index].label.clone();
        if self.carriers_hz.len() > 1 {
            if let Some(hz) = self.carriers_hz[cell.coords.carrier_index] {
                label.push_str(&format!(" @ {} kHz", hz / 1_000.0));
            }
        }
        if self.powers_w.len() > 1 {
            if let Some(w) = self.powers_w[cell.coords.power_index] {
                label.push_str(&format!(" @ {w} W"));
            }
        }
        label
    }

    /// Human-readable cell label used in summaries and archives.
    pub fn cell_label(&self, cell: &CellSpec) -> String {
        let mut label = format!(
            "{} | {} | {} | {} | cmd {} | {} m",
            self.devices[cell.coords.device_index].name(),
            self.delivery_point_label(cell),
            room_token(self.rooms[cell.coords.room_index]),
            self.environments[cell.coords.environment_index].token(),
            self.command_index(cell),
            self.distances_m[cell.coords.distance_index],
        );
        if self.detectors.len() > 1 {
            label.push_str(&format!(
                " | {}",
                detector_token(self.detectors[cell.coords.detector_index].as_ref())
            ));
        }
        label
    }

    /// Label of the curve a cell belongs to: the delivery-point label alone
    /// when the other non-distance axes are singletons, joined with the
    /// room when only the room axis is swept, the full combination
    /// otherwise.
    pub fn curve_label(&self, cell: &CellSpec) -> String {
        let delivery = self.delivery_point_label(cell);
        let room = room_token(self.rooms[cell.coords.room_index]);
        if self.detectors.len() == 1
            && self.devices.len() == 1
            && self.environments.len() == 1
            && self.command_indices.len() == 1
        {
            if self.rooms.len() == 1 {
                delivery
            } else if self.deliveries.len() == 1
                && self.carriers_hz.len() == 1
                && self.powers_w.len() == 1
            {
                room.to_string()
            } else {
                format!("{delivery} | {room}")
            }
        } else {
            let mut label = format!(
                "{} | {} | {} | {} | cmd {}",
                self.devices[cell.coords.device_index].name(),
                delivery,
                room,
                self.environments[cell.coords.environment_index].token(),
                self.command_index(cell),
            );
            if self.detectors.len() > 1 {
                label.push_str(&format!(
                    " | {}",
                    detector_token(self.detectors[cell.coords.detector_index].as_ref())
                ));
            }
            label
        }
    }
}

/// Axis coordinates of one grid cell, in expansion order.  `Default` is
/// the origin — spell out only the axes you mean to address:
///
/// ```
/// # use ivc_experiments::CellCoords;
/// let coords = CellCoords {
///     delivery_index: 2,
///     distance_index: 1,
///     ..CellCoords::default()
/// };
/// ```
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct CellCoords {
    /// Index into [`CampaignSpec::detectors`].
    pub detector_index: usize,
    /// Index into [`CampaignSpec::devices`].
    pub device_index: usize,
    /// Index into [`CampaignSpec::deliveries`].
    pub delivery_index: usize,
    /// Index into [`CampaignSpec::carriers_hz`].
    pub carrier_index: usize,
    /// Index into [`CampaignSpec::powers_w`].
    pub power_index: usize,
    /// Index into [`CampaignSpec::rooms`].
    pub room_index: usize,
    /// Index into [`CampaignSpec::environments`].
    pub environment_index: usize,
    /// Position in [`CampaignSpec::command_indices`] (not the corpus index).
    pub command_position: usize,
    /// Index into [`CampaignSpec::distances_m`].
    pub distance_index: usize,
}

/// One cell of the expanded grid: its position in the expansion order and
/// its axis coordinates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CellSpec {
    /// Position in the expansion order (also the index into
    /// `CampaignReport::cells`).
    pub cell_index: usize,
    /// The cell's axis coordinates.
    pub coords: CellCoords,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sweep_spec() -> CampaignSpec {
        CampaignSpec {
            devices: vec![DevicePreset::AndroidPhone, DevicePreset::AmazonEcho],
            deliveries: vec![
                DeliverySpec::single_speaker("single 3 W", 3.0, 40_000.0),
                DeliverySpec::array("array 16", 16, 120.0, 40_000.0),
                DeliverySpec::legitimate("talker", 65.0),
            ],
            rooms: vec![None, Some(RoomPreset::Office)],
            environments: vec![EnvironmentPreset::MeetingRoom, EnvironmentPreset::Outdoor],
            command_indices: vec![0, 2],
            distances_m: vec![1.0, 3.0, 6.0],
            trials_per_cell: 4,
            base_seed: 100,
            ..CampaignSpec::new("sweep")
        }
    }

    #[test]
    fn cardinality_is_the_axis_product() {
        let spec = sweep_spec();
        assert_eq!(spec.num_cells(), 2 * 3 * 2 * 2 * 2 * 3);
        assert_eq!(spec.num_trials(), spec.num_cells() * 4);
        let cells = spec.cells();
        assert_eq!(cells.len(), spec.num_cells());
        // Cell indices are their positions.
        for (i, cell) in cells.iter().enumerate() {
            assert_eq!(cell.cell_index, i);
        }
        // Distance is the innermost axis; devices the outermost non-default
        // axis of this spec.
        assert_eq!(cells[0].coords.distance_index, 0);
        assert_eq!(cells[1].coords.distance_index, 1);
        assert_eq!(cells[2].coords.distance_index, 2);
        assert_eq!(cells[3].coords.distance_index, 0);
        assert_eq!(cells[3].coords.command_position, 1);
        assert_eq!(cells.last().unwrap().coords.device_index, 1);
        // The room axis sits between powers and environments.
        let cells_per_room = 2 * 2 * 3;
        assert_eq!(cells[cells_per_room - 1].coords.room_index, 0);
        assert_eq!(cells[cells_per_room].coords.room_index, 1);
        assert_eq!(cells[cells_per_room].coords.delivery_index, 0);
        assert_eq!(cells[2 * cells_per_room].coords.delivery_index, 1);
        // The closed-form index agrees with the expansion order for every
        // cell (the two encodings of the ordering contract cannot drift).
        for cell in &cells {
            assert_eq!(spec.cell_index_of(&cell.coords), Some(cell.cell_index));
        }
        for bad in [
            CellCoords {
                device_index: 2,
                ..CellCoords::default()
            },
            CellCoords {
                room_index: 2,
                ..CellCoords::default()
            },
            CellCoords {
                distance_index: 3,
                ..CellCoords::default()
            },
            CellCoords {
                detector_index: 1,
                ..CellCoords::default()
            },
            CellCoords {
                carrier_index: 1,
                ..CellCoords::default()
            },
            CellCoords {
                power_index: 1,
                ..CellCoords::default()
            },
        ] {
            assert_eq!(spec.cell_index_of(&bad), None);
        }
        // A single-cell spec expands to one cell.
        assert_eq!(CampaignSpec::new("one").cells().len(), 1);
    }

    #[test]
    fn new_axes_expand_between_deliveries_and_rooms() {
        let spec = CampaignSpec {
            detectors: vec![None, Some(DetectorSpec::standard(true))],
            deliveries: vec![
                DeliverySpec::single_speaker("single 10 W", 10.0, 40_000.0),
                DeliverySpec::legitimate("talker", 65.0),
            ],
            carriers_hz: vec![Some(30_000.0), Some(40_000.0), Some(60_000.0)],
            powers_w: vec![None, Some(20.0)],
            distances_m: vec![1.0, 2.0],
            ..CampaignSpec::new("axes")
        };
        assert_eq!(spec.num_cells(), 2 * 2 * 3 * 2 * 2);
        let cells = spec.cells();
        // Powers vary faster than carriers, carriers faster than
        // deliveries, detectors outermost.
        assert_eq!(cells[0].coords.power_index, 0);
        assert_eq!(cells[2].coords.power_index, 1);
        assert_eq!(cells[4].coords.carrier_index, 1);
        assert_eq!(cells[12].coords.delivery_index, 1);
        assert_eq!(cells[24].coords.detector_index, 1);
        for cell in &cells {
            assert_eq!(spec.cell_index_of(&cell.coords), Some(cell.cell_index));
        }
        // Overrides resolve into the scenario's delivery for attacks and
        // leave the legitimate delivery untouched.
        let attack_cell = &cells[2]; // delivery 0, carrier 0, power 1
        assert_eq!(
            spec.resolved_delivery(attack_cell),
            Delivery::SingleSpeakerUltrasound {
                power_w: 20.0,
                carrier_hz: 30_000.0,
            }
        );
        let legit_cell = cells.iter().find(|c| c.coords.delivery_index == 1).unwrap();
        assert_eq!(
            spec.resolved_delivery(legit_cell),
            Delivery::Legitimate {
                talker_spl_db: 65.0
            }
        );
        // Swept overrides surface in the labels.
        let label = spec.cell_label(attack_cell);
        assert!(
            label.contains("30 kHz") && label.contains("20 W"),
            "{label}"
        );
        assert!(label.contains("no detector"), "{label}");
        let trained = spec.cell_label(&cells[24]);
        assert!(trained.contains("standard detector"), "{trained}");
    }

    #[test]
    fn scenario_resolution() {
        let spec = sweep_spec();
        let cells = spec.cells();
        let cell = &cells[spec.num_cells() - 1];
        let scenario = spec.scenario(cell, 3);
        assert_eq!(scenario.device, DevicePreset::AmazonEcho);
        assert_eq!(scenario.distance_m, 6.0);
        assert_eq!(scenario.seed, 103);
        assert_eq!(scenario.env, EnvironmentPreset::Outdoor.air());
        assert_eq!(scenario.room, Some(RoomPreset::Office));
        assert_eq!(scenario.shadow_suppression, 0.0);
        assert_eq!(spec.scenario(&cells[0], 0).room, None);
        assert_eq!(spec.command_index(cell), 2);
        assert!(matches!(scenario.delivery, Delivery::Legitimate { .. }));
        // Trial seeds are shared across cells (common random numbers).
        assert_eq!(
            spec.scenario(&cells[0], 2).seed,
            spec.scenario(cell, 2).seed
        );
        let label = spec.cell_label(cell);
        assert!(label.contains("talker") && label.contains("6 m"), "{label}");
        // Suppression set on a delivery spec reaches the scenario.
        let d6_spec = CampaignSpec {
            deliveries: vec![
                DeliverySpec::array("array", 8, 60.0, 40_000.0).with_shadow_suppression(0.5)
            ],
            ..CampaignSpec::new("d6")
        };
        let d6_cells = d6_spec.cells();
        assert_eq!(d6_spec.scenario(&d6_cells[0], 0).shadow_suppression, 0.5);
    }

    #[test]
    fn validation_catches_bad_axes() {
        assert!(sweep_spec().validate().is_ok());
        let empty_axis = CampaignSpec {
            distances_m: vec![],
            ..sweep_spec()
        };
        assert!(empty_axis.validate().is_err());
        let bad_distance = CampaignSpec {
            distances_m: vec![2.0, -1.0],
            ..sweep_spec()
        };
        assert!(bad_distance.validate().is_err());
        let bad_command = CampaignSpec {
            command_indices: vec![999],
            ..sweep_spec()
        };
        assert!(bad_command.validate().is_err());
        let no_trials = CampaignSpec {
            trials_per_cell: 0,
            ..sweep_spec()
        };
        assert!(no_trials.validate().is_err());
        let nan_noise = CampaignSpec {
            ambient_noise_spl_db: f64::NAN,
            ..sweep_spec()
        };
        assert!(nan_noise.validate().is_err());
        let no_rooms = CampaignSpec {
            rooms: vec![],
            ..sweep_spec()
        };
        assert!(no_rooms.validate().is_err());
        // An 8 m office cannot host a 7 m throw: caught at validation.
        let oversize = CampaignSpec {
            rooms: vec![Some(RoomPreset::Office)],
            distances_m: vec![2.0, 7.0],
            ..sweep_spec()
        };
        let err = oversize.validate().unwrap_err();
        assert!(err.to_string().contains("office"), "{err}");
        // New-axis validation: bad carrier/power values, overrides without
        // any attack delivery, out-of-range suppression, bad detector and
        // band-summary configs.
        let bad_carrier = CampaignSpec {
            carriers_hz: vec![Some(-1.0)],
            ..sweep_spec()
        };
        assert!(bad_carrier.validate().is_err());
        let bad_power = CampaignSpec {
            powers_w: vec![Some(f64::NAN)],
            ..sweep_spec()
        };
        assert!(bad_power.validate().is_err());
        let legit_only_override = CampaignSpec {
            deliveries: vec![DeliverySpec::legitimate("talker", 65.0)],
            carriers_hz: vec![Some(40_000.0)],
            ..sweep_spec()
        };
        assert!(legit_only_override.validate().is_err());
        let bad_suppression = CampaignSpec {
            deliveries: vec![
                DeliverySpec::array("array", 8, 60.0, 40_000.0).with_shadow_suppression(1.5)
            ],
            ..sweep_spec()
        };
        assert!(bad_suppression.validate().is_err());
        let bad_detector = CampaignSpec {
            detectors: vec![Some(DetectorSpec {
                distances_m: vec![],
                ..DetectorSpec::standard(true)
            })],
            ..sweep_spec()
        };
        assert!(bad_detector.validate().is_err());
        let bad_summary = CampaignSpec {
            recording_band_summary: Some(BandSummarySpec {
                bands: 0,
                max_hz: 8_000.0,
            }),
            ..sweep_spec()
        };
        assert!(bad_summary.validate().is_err());
    }

    #[test]
    fn room_tokens_round_trip() {
        assert_eq!(room_token(None), "free_field");
        assert_eq!(room_from_token("free_field"), Some(None));
        for preset in RoomPreset::ALL {
            assert_eq!(
                room_from_token(room_token(Some(preset))),
                Some(Some(preset))
            );
        }
        assert_eq!(room_from_token("submarine"), None);
    }

    #[test]
    fn environment_tokens_round_trip() {
        for preset in EnvironmentPreset::ALL {
            assert_eq!(EnvironmentPreset::from_token(preset.token()), Some(preset));
            // Every preset resolves to physical air conditions.
            let air = preset.air();
            assert!((-50.0..=60.0).contains(&air.temperature_c));
        }
        assert_eq!(EnvironmentPreset::from_token("underwater"), None);
    }

    #[test]
    fn detector_spec_mirrors_its_dataset_config() {
        let spec = DetectorSpec::standard(true);
        let config = spec.dataset_config();
        assert_eq!(config.distances_m, spec.distances_m);
        assert_eq!(config.num_speaker_variants, spec.num_speaker_variants);
        assert_eq!(config.command_indices, spec.command_indices);
        assert_eq!(config.seed, spec.seed);
        assert_eq!(detector_token(Some(&spec)), "standard detector");
        assert_eq!(detector_token(None), "no detector");
        // Full fidelity covers more of the corpus than quick.
        let full = DetectorSpec::standard(false);
        assert!(full.distances_m.len() > spec.distances_m.len());
        assert!(full.command_indices.len() > spec.command_indices.len());
    }
}
