//! The parameter-grid DSL: a [`CampaignSpec`] declares axes (device,
//! delivery configuration, room, environment, command, distance) plus
//! shared scalars, and expands into the full cross product of concrete
//! [`Scenario`]s.
//!
//! Expansion order is part of the engine's contract: cells are enumerated
//! devices → deliveries → rooms → environments → commands → distances
//! (distance innermost), so success-vs-distance curves read off
//! contiguous cell ranges, and the same spec always produces the same
//! cell indices.  The room axis was inserted between deliveries and
//! environments in report format v2; specs without a room axis default to
//! the single free-field entry, which reproduces the v1 expansion order.

use crate::error::{ExperimentError, Result};
use ivc_acoustics::environment::AirEnvironment;
use ivc_acoustics::microphone::DevicePreset;
use ivc_core::scenario::{Delivery, Scenario};
use ivc_room::RoomPreset;
use ivc_speech::commands::corpus;

/// Stable archive token of a room-axis entry (`None` = free field).
pub fn room_token(room: Option<RoomPreset>) -> &'static str {
    match room {
        None => "free_field",
        Some(preset) => preset.token(),
    }
}

/// Parses a room-axis archive token (inverse of [`room_token`]).
pub fn room_from_token(token: &str) -> Option<Option<RoomPreset>> {
    if token == "free_field" {
        return Some(None);
    }
    RoomPreset::from_token(token).map(Some)
}

/// Named air-condition presets for the environment axis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EnvironmentPreset {
    /// A typical indoor meeting room (20 °C, 50 % RH) — the default used by
    /// every paper experiment.
    MeetingRoom,
    /// A heated building in winter: cooler and dry (16 °C, 25 % RH); dry
    /// air absorbs ultrasound hardest.
    WinterIndoor,
    /// A hot, humid summer room (30 °C, 80 % RH).
    SummerHumid,
    /// Outdoors on a cool day (10 °C, 70 % RH, slightly low pressure).
    Outdoor,
}

impl EnvironmentPreset {
    /// All presets in a stable order.
    pub const ALL: [EnvironmentPreset; 4] = [
        EnvironmentPreset::MeetingRoom,
        EnvironmentPreset::WinterIndoor,
        EnvironmentPreset::SummerHumid,
        EnvironmentPreset::Outdoor,
    ];

    /// Stable token used in JSON archives.
    pub fn token(&self) -> &'static str {
        match self {
            EnvironmentPreset::MeetingRoom => "meeting_room",
            EnvironmentPreset::WinterIndoor => "winter_indoor",
            EnvironmentPreset::SummerHumid => "summer_humid",
            EnvironmentPreset::Outdoor => "outdoor",
        }
    }

    /// Parses an archive token back into a preset.
    pub fn from_token(token: &str) -> Option<EnvironmentPreset> {
        EnvironmentPreset::ALL
            .into_iter()
            .find(|p| p.token() == token)
    }

    /// The air conditions this preset stands for.
    pub fn air(&self) -> AirEnvironment {
        match self {
            EnvironmentPreset::MeetingRoom => AirEnvironment::default(),
            EnvironmentPreset::WinterIndoor => AirEnvironment {
                temperature_c: 16.0,
                relative_humidity_percent: 25.0,
                pressure_kpa: 101.325,
            },
            EnvironmentPreset::SummerHumid => AirEnvironment {
                temperature_c: 30.0,
                relative_humidity_percent: 80.0,
                pressure_kpa: 101.325,
            },
            EnvironmentPreset::Outdoor => AirEnvironment {
                temperature_c: 10.0,
                relative_humidity_percent: 70.0,
                pressure_kpa: 100.0,
            },
        }
    }
}

/// One labelled point on the delivery axis.
#[derive(Debug, Clone, PartialEq)]
pub struct DeliverySpec {
    /// Label used in tables, curves and archives.
    pub label: String,
    /// The delivery configuration.
    pub delivery: Delivery,
}

impl DeliverySpec {
    /// A legitimate talker at `talker_spl_db` dB SPL (1 m).
    pub fn legitimate(label: impl Into<String>, talker_spl_db: f64) -> Self {
        DeliverySpec {
            label: label.into(),
            delivery: Delivery::Legitimate { talker_spl_db },
        }
    }

    /// A single ultrasonic speaker at `power_w` watt.
    pub fn single_speaker(label: impl Into<String>, power_w: f64, carrier_hz: f64) -> Self {
        DeliverySpec {
            label: label.into(),
            delivery: Delivery::SingleSpeakerUltrasound {
                power_w,
                carrier_hz,
            },
        }
    }

    /// An ultrasonic array of `num_elements` at `total_power_w` watt.
    pub fn array(
        label: impl Into<String>,
        num_elements: usize,
        total_power_w: f64,
        carrier_hz: f64,
    ) -> Self {
        DeliverySpec {
            label: label.into(),
            delivery: Delivery::ArrayUltrasound {
                num_elements,
                total_power_w,
                carrier_hz,
            },
        }
    }
}

/// A full campaign: the grid axes plus everything shared by all cells.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignSpec {
    /// Campaign name (archived; also the default archive file stem).
    pub name: String,
    /// Device axis.
    pub devices: Vec<DevicePreset>,
    /// Delivery-configuration axis (element counts, powers, carriers —
    /// anything [`Delivery`] expresses).
    pub deliveries: Vec<DeliverySpec>,
    /// Room axis: `None` is the free-field channel, `Some(preset)` runs
    /// the trial inside that room's image-source model.
    pub rooms: Vec<Option<RoomPreset>>,
    /// Environment axis.
    pub environments: Vec<EnvironmentPreset>,
    /// Command axis: indices into [`ivc_speech::commands::corpus`].
    pub command_indices: Vec<usize>,
    /// Distance axis, in metres.
    pub distances_m: Vec<f64>,
    /// Ambient room noise for every cell, in dB SPL.
    pub ambient_noise_spl_db: f64,
    /// Bystander distance for leakage estimation, in metres.
    pub bystander_distance_m: f64,
    /// Trials per cell; trial `t` everywhere uses seed `base_seed + t`
    /// (common random numbers across cells, so cross-cell comparisons are
    /// paired).
    pub trials_per_cell: usize,
    /// Master seed; the only randomness a campaign sees.
    pub base_seed: u64,
    /// Voice-duration cap per trial, `f64::INFINITY` for whole commands.
    pub max_voice_duration_s: f64,
}

impl CampaignSpec {
    /// A single-cell starting point mirroring [`Scenario::default_attack`]:
    /// Android phone, 8-element 40 W array, meeting room, command 0, 2 m,
    /// one trial at seed 1.  Overwrite the axes you want to sweep.
    pub fn new(name: impl Into<String>) -> Self {
        CampaignSpec {
            name: name.into(),
            devices: vec![DevicePreset::AndroidPhone],
            deliveries: vec![DeliverySpec::array(
                "8-element array, 40 W",
                8,
                40.0,
                40_000.0,
            )],
            rooms: vec![None],
            environments: vec![EnvironmentPreset::MeetingRoom],
            command_indices: vec![0],
            distances_m: vec![2.0],
            ambient_noise_spl_db: 40.0,
            bystander_distance_m: 1.0,
            trials_per_cell: 1,
            base_seed: 1,
            max_voice_duration_s: f64::INFINITY,
        }
    }

    /// Validates every axis and scalar.
    pub fn validate(&self) -> Result<()> {
        if self.name.is_empty() {
            return Err(ExperimentError::invalid("name", "must not be empty"));
        }
        if self.devices.is_empty() {
            return Err(ExperimentError::invalid("devices", "axis is empty"));
        }
        if self.deliveries.is_empty() {
            return Err(ExperimentError::invalid("deliveries", "axis is empty"));
        }
        if self.rooms.is_empty() {
            return Err(ExperimentError::invalid("rooms", "axis is empty"));
        }
        if self.environments.is_empty() {
            return Err(ExperimentError::invalid("environments", "axis is empty"));
        }
        if self.command_indices.is_empty() {
            return Err(ExperimentError::invalid("command_indices", "axis is empty"));
        }
        let corpus_len = corpus().len();
        for &index in &self.command_indices {
            if index >= corpus_len {
                return Err(ExperimentError::invalid(
                    "command_indices",
                    format!("index {index} outside the {corpus_len}-command corpus"),
                ));
            }
        }
        if self.distances_m.is_empty() {
            return Err(ExperimentError::invalid("distances_m", "axis is empty"));
        }
        for &d in &self.distances_m {
            if !(d > 0.0) || !d.is_finite() {
                return Err(ExperimentError::invalid(
                    "distances_m",
                    format!("{d} must be positive and finite"),
                ));
            }
        }
        if !(self.bystander_distance_m > 0.0) || !self.bystander_distance_m.is_finite() {
            return Err(ExperimentError::invalid(
                "bystander_distance_m",
                "must be positive and finite",
            ));
        }
        // Every room must host every distance (and the bystander), so a
        // mis-sized sweep fails at validation instead of mid-campaign.
        for &room in &self.rooms {
            if let Some(preset) = room {
                for &d in &self.distances_m {
                    if let Err(e) = preset.instantiate(d, self.bystander_distance_m) {
                        return Err(ExperimentError::invalid(
                            "rooms",
                            format!("{} at {d} m: {e}", preset.token()),
                        ));
                    }
                }
            }
        }
        if !self.ambient_noise_spl_db.is_finite() {
            return Err(ExperimentError::invalid(
                "ambient_noise_spl_db",
                "must be finite",
            ));
        }
        if self.trials_per_cell == 0 {
            return Err(ExperimentError::invalid(
                "trials_per_cell",
                "must be at least 1",
            ));
        }
        if !(self.max_voice_duration_s > 0.0) {
            return Err(ExperimentError::invalid(
                "max_voice_duration_s",
                "must be positive (use f64::INFINITY for whole commands)",
            ));
        }
        Ok(())
    }

    /// Number of grid cells (the axis cross product).
    pub fn num_cells(&self) -> usize {
        self.devices.len()
            * self.deliveries.len()
            * self.rooms.len()
            * self.environments.len()
            * self.command_indices.len()
            * self.distances_m.len()
    }

    /// Number of trials across the whole campaign.
    pub fn num_trials(&self) -> usize {
        self.num_cells() * self.trials_per_cell
    }

    /// Expands the grid into cells, in the documented order (devices →
    /// deliveries → rooms → environments → commands → distances).
    pub fn cells(&self) -> Vec<CellSpec> {
        let mut cells = Vec::with_capacity(self.num_cells());
        let mut cell_index = 0;
        for device_index in 0..self.devices.len() {
            for delivery_index in 0..self.deliveries.len() {
                for room_index in 0..self.rooms.len() {
                    for environment_index in 0..self.environments.len() {
                        for command_position in 0..self.command_indices.len() {
                            for distance_index in 0..self.distances_m.len() {
                                cells.push(CellSpec {
                                    cell_index,
                                    device_index,
                                    delivery_index,
                                    room_index,
                                    environment_index,
                                    command_position,
                                    distance_index,
                                });
                                cell_index += 1;
                            }
                        }
                    }
                }
            }
        }
        cells
    }

    /// The cell index at the given axis coordinates — the closed form of
    /// the [`CampaignSpec::cells`] expansion order, kept next to it so the
    /// ordering contract has exactly one owner.  `None` when any
    /// coordinate is outside its axis.
    #[allow(clippy::too_many_arguments)]
    pub fn cell_index_of(
        &self,
        device_index: usize,
        delivery_index: usize,
        room_index: usize,
        environment_index: usize,
        command_position: usize,
        distance_index: usize,
    ) -> Option<usize> {
        if device_index >= self.devices.len()
            || delivery_index >= self.deliveries.len()
            || room_index >= self.rooms.len()
            || environment_index >= self.environments.len()
            || command_position >= self.command_indices.len()
            || distance_index >= self.distances_m.len()
        {
            return None;
        }
        Some(
            ((((device_index * self.deliveries.len() + delivery_index) * self.rooms.len()
                + room_index)
                * self.environments.len()
                + environment_index)
                * self.command_indices.len()
                + command_position)
                * self.distances_m.len()
                + distance_index,
        )
    }

    /// The seed trial `trial_index` uses in **every** cell (common random
    /// numbers: the same trial index sees the same noise draw across cells,
    /// so cross-cell differences are parameter effects, not seed luck).
    pub fn trial_seed(&self, trial_index: usize) -> u64 {
        self.base_seed.wrapping_add(trial_index as u64)
    }

    /// The concrete scenario of one trial of one cell.
    pub fn scenario(&self, cell: &CellSpec, trial_index: usize) -> Scenario {
        Scenario {
            device: self.devices[cell.device_index],
            distance_m: self.distances_m[cell.distance_index],
            delivery: self.deliveries[cell.delivery_index].delivery,
            ambient_noise_spl_db: self.ambient_noise_spl_db,
            bystander_distance_m: self.bystander_distance_m,
            env: self.environments[cell.environment_index].air(),
            room: self.rooms[cell.room_index],
            seed: self.trial_seed(trial_index),
            max_voice_duration_s: self.max_voice_duration_s,
        }
    }

    /// Corpus index of the command a cell injects.
    pub fn command_index(&self, cell: &CellSpec) -> usize {
        self.command_indices[cell.command_position]
    }

    /// Human-readable cell label used in summaries and archives.
    pub fn cell_label(&self, cell: &CellSpec) -> String {
        format!(
            "{} | {} | {} | {} | cmd {} | {} m",
            self.devices[cell.device_index].name(),
            self.deliveries[cell.delivery_index].label,
            room_token(self.rooms[cell.room_index]),
            self.environments[cell.environment_index].token(),
            self.command_index(cell),
            self.distances_m[cell.distance_index],
        )
    }

    /// Label of the curve a cell belongs to: the delivery label alone when
    /// the other non-distance axes are singletons, joined with the room
    /// when only the room axis is swept, the full combination otherwise.
    pub fn curve_label(&self, cell: &CellSpec) -> String {
        let delivery = &self.deliveries[cell.delivery_index].label;
        let room = room_token(self.rooms[cell.room_index]);
        if self.devices.len() == 1
            && self.environments.len() == 1
            && self.command_indices.len() == 1
        {
            if self.rooms.len() == 1 {
                delivery.clone()
            } else if self.deliveries.len() == 1 {
                room.to_string()
            } else {
                format!("{delivery} | {room}")
            }
        } else {
            format!(
                "{} | {} | {} | {} | cmd {}",
                self.devices[cell.device_index].name(),
                delivery,
                room,
                self.environments[cell.environment_index].token(),
                self.command_index(cell),
            )
        }
    }
}

/// One cell of the expanded grid: indices into the spec's axes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CellSpec {
    /// Position in the expansion order (also the index into
    /// `CampaignReport::cells`).
    pub cell_index: usize,
    /// Index into [`CampaignSpec::devices`].
    pub device_index: usize,
    /// Index into [`CampaignSpec::deliveries`].
    pub delivery_index: usize,
    /// Index into [`CampaignSpec::rooms`].
    pub room_index: usize,
    /// Index into [`CampaignSpec::environments`].
    pub environment_index: usize,
    /// Position in [`CampaignSpec::command_indices`] (not the corpus index).
    pub command_position: usize,
    /// Index into [`CampaignSpec::distances_m`].
    pub distance_index: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sweep_spec() -> CampaignSpec {
        CampaignSpec {
            devices: vec![DevicePreset::AndroidPhone, DevicePreset::AmazonEcho],
            deliveries: vec![
                DeliverySpec::single_speaker("single 3 W", 3.0, 40_000.0),
                DeliverySpec::array("array 16", 16, 120.0, 40_000.0),
                DeliverySpec::legitimate("talker", 65.0),
            ],
            rooms: vec![None, Some(RoomPreset::Office)],
            environments: vec![EnvironmentPreset::MeetingRoom, EnvironmentPreset::Outdoor],
            command_indices: vec![0, 2],
            distances_m: vec![1.0, 3.0, 6.0],
            trials_per_cell: 4,
            base_seed: 100,
            ..CampaignSpec::new("sweep")
        }
    }

    #[test]
    fn cardinality_is_the_axis_product() {
        let spec = sweep_spec();
        assert_eq!(spec.num_cells(), 2 * 3 * 2 * 2 * 2 * 3);
        assert_eq!(spec.num_trials(), spec.num_cells() * 4);
        let cells = spec.cells();
        assert_eq!(cells.len(), spec.num_cells());
        // Cell indices are their positions.
        for (i, cell) in cells.iter().enumerate() {
            assert_eq!(cell.cell_index, i);
        }
        // Distance is the innermost axis; devices the outermost.
        assert_eq!(cells[0].distance_index, 0);
        assert_eq!(cells[1].distance_index, 1);
        assert_eq!(cells[2].distance_index, 2);
        assert_eq!(cells[3].distance_index, 0);
        assert_eq!(cells[3].command_position, 1);
        assert_eq!(cells.last().unwrap().device_index, 1);
        // The room axis sits between deliveries and environments.
        let cells_per_room = 2 * 2 * 3;
        assert_eq!(cells[cells_per_room - 1].room_index, 0);
        assert_eq!(cells[cells_per_room].room_index, 1);
        assert_eq!(cells[cells_per_room].delivery_index, 0);
        assert_eq!(cells[2 * cells_per_room].delivery_index, 1);
        // The closed-form index agrees with the expansion order for every
        // cell (the two encodings of the ordering contract cannot drift).
        for cell in &cells {
            assert_eq!(
                spec.cell_index_of(
                    cell.device_index,
                    cell.delivery_index,
                    cell.room_index,
                    cell.environment_index,
                    cell.command_position,
                    cell.distance_index,
                ),
                Some(cell.cell_index)
            );
        }
        assert_eq!(spec.cell_index_of(2, 0, 0, 0, 0, 0), None);
        assert_eq!(spec.cell_index_of(0, 0, 2, 0, 0, 0), None);
        assert_eq!(spec.cell_index_of(0, 0, 0, 0, 0, 3), None);
        // A single-cell spec expands to one cell.
        assert_eq!(CampaignSpec::new("one").cells().len(), 1);
    }

    #[test]
    fn scenario_resolution() {
        let spec = sweep_spec();
        let cells = spec.cells();
        let cell = &cells[spec.num_cells() - 1];
        let scenario = spec.scenario(cell, 3);
        assert_eq!(scenario.device, DevicePreset::AmazonEcho);
        assert_eq!(scenario.distance_m, 6.0);
        assert_eq!(scenario.seed, 103);
        assert_eq!(scenario.env, EnvironmentPreset::Outdoor.air());
        assert_eq!(scenario.room, Some(RoomPreset::Office));
        assert_eq!(spec.scenario(&cells[0], 0).room, None);
        assert_eq!(spec.command_index(cell), 2);
        assert!(matches!(scenario.delivery, Delivery::Legitimate { .. }));
        // Trial seeds are shared across cells (common random numbers).
        assert_eq!(
            spec.scenario(&cells[0], 2).seed,
            spec.scenario(cell, 2).seed
        );
        let label = spec.cell_label(cell);
        assert!(label.contains("talker") && label.contains("6 m"), "{label}");
    }

    #[test]
    fn validation_catches_bad_axes() {
        assert!(sweep_spec().validate().is_ok());
        let empty_axis = CampaignSpec {
            distances_m: vec![],
            ..sweep_spec()
        };
        assert!(empty_axis.validate().is_err());
        let bad_distance = CampaignSpec {
            distances_m: vec![2.0, -1.0],
            ..sweep_spec()
        };
        assert!(bad_distance.validate().is_err());
        let bad_command = CampaignSpec {
            command_indices: vec![999],
            ..sweep_spec()
        };
        assert!(bad_command.validate().is_err());
        let no_trials = CampaignSpec {
            trials_per_cell: 0,
            ..sweep_spec()
        };
        assert!(no_trials.validate().is_err());
        let nan_noise = CampaignSpec {
            ambient_noise_spl_db: f64::NAN,
            ..sweep_spec()
        };
        assert!(nan_noise.validate().is_err());
        let no_rooms = CampaignSpec {
            rooms: vec![],
            ..sweep_spec()
        };
        assert!(no_rooms.validate().is_err());
        // An 8 m office cannot host a 7 m throw: caught at validation.
        let oversize = CampaignSpec {
            rooms: vec![Some(RoomPreset::Office)],
            distances_m: vec![2.0, 7.0],
            ..sweep_spec()
        };
        let err = oversize.validate().unwrap_err();
        assert!(err.to_string().contains("office"), "{err}");
    }

    #[test]
    fn room_tokens_round_trip() {
        assert_eq!(room_token(None), "free_field");
        assert_eq!(room_from_token("free_field"), Some(None));
        for preset in RoomPreset::ALL {
            assert_eq!(
                room_from_token(room_token(Some(preset))),
                Some(Some(preset))
            );
        }
        assert_eq!(room_from_token("submarine"), None);
    }

    #[test]
    fn environment_tokens_round_trip() {
        for preset in EnvironmentPreset::ALL {
            assert_eq!(EnvironmentPreset::from_token(preset.token()), Some(preset));
            // Every preset resolves to physical air conditions.
            let air = preset.air();
            assert!((-50.0..=60.0).contains(&air.temperature_c));
        }
        assert_eq!(EnvironmentPreset::from_token("underwater"), None);
    }
}
