//! The archivable campaign report and its JSON encoding.
//!
//! A [`CampaignReport`] embeds the spec that produced it (provenance), the
//! per-cell aggregates with raw trial records, and the psychometric
//! curves.  `to_json_string` is deterministic — same report, same bytes —
//! which is what makes the executor's worker-count-invariance promise
//! checkable at the archive level.

use crate::aggregate::{CellReport, CellStats, PsychometricCurve};
use crate::error::{ExperimentError, Result};
use crate::executor::TrialRecord;
use crate::grid::{
    room_from_token, room_token, BandSummarySpec, CampaignSpec, CellCoords, CellSpec, DeliverySpec,
    DetectorSpec, EnvironmentPreset,
};
use ivc_acoustics::microphone::DevicePreset;
use ivc_core::json::{u64_to_json, JsonValue};
use ivc_core::results::{fmt, Table};
use ivc_core::scenario::Delivery;

/// Format tag written into every archive, so readers can reject files from
/// a different schema generation.
///
/// v3 added the detector-training, carrier-frequency and power axes (spec
/// `detectors`/`carriers_hz`/`powers_w`, the matching cell/curve indices),
/// per-delivery shadow suppression, per-trial defense features, detector
/// probabilities and optional recording band summaries, and the per-cell
/// mean detection probability.  v2 added the room axis and the A-weighted
/// bystander SPL.
pub const REPORT_FORMAT: &str = "ivc-campaign-report-v3";

/// A finished campaign: spec, per-cell results, curves.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignReport {
    /// The spec the campaign ran (embedded for provenance).
    pub spec: CampaignSpec,
    /// One report per grid cell, in cell order.
    pub cells: Vec<CellReport>,
    /// One success-vs-distance curve per non-distance axis combination.
    pub curves: Vec<PsychometricCurve>,
}

impl CampaignReport {
    /// The cell at the given axis coordinates, if present.
    pub fn find_cell(&self, coords: &CellCoords) -> Option<&CellReport> {
        // Cells are stored in expansion order; the spec owns the mapping.
        let index = self.spec.cell_index_of(coords)?;
        self.cells.get(index)
    }

    /// A plain-text summary (one row per cell) for terminal output.
    pub fn summary_table(&self) -> Table {
        let mut table = Table::new(
            format!(
                "Campaign '{}': {} cells x {} trial(s)",
                self.spec.name,
                self.cells.len(),
                self.spec.trials_per_cell
            ),
            &[
                "Cell",
                "Success",
                "95% CI",
                "Word acc.",
                "Bystander SPL (dB)",
            ],
        );
        for cell in &self.cells {
            table.push_row(vec![
                cell.label.clone(),
                fmt(cell.stats.success_rate, 2),
                format!(
                    "[{}, {}]",
                    fmt(cell.stats.success_ci_low, 2),
                    fmt(cell.stats.success_ci_high, 2)
                ),
                fmt(cell.stats.mean_word_accuracy, 2),
                cell.stats
                    .mean_bystander_spl_db
                    .map(|v| fmt(v, 1))
                    .unwrap_or_else(|| "-".into()),
            ]);
        }
        table
    }

    /// Serialises the report to its archival JSON (pretty, deterministic).
    pub fn to_json_string(&self) -> String {
        self.to_json().to_json_string_pretty()
    }

    /// The report as a JSON value tree.
    pub fn to_json(&self) -> JsonValue {
        obj(vec![
            ("format", JsonValue::string(REPORT_FORMAT)),
            ("spec", spec_to_json(&self.spec)),
            (
                "cells",
                JsonValue::Array(self.cells.iter().map(cell_report_to_json).collect()),
            ),
            (
                "curves",
                JsonValue::Array(self.curves.iter().map(curve_to_json).collect()),
            ),
        ])
    }

    /// Parses an archived report.
    pub fn from_json_str(text: &str) -> Result<CampaignReport> {
        let root = JsonValue::parse(text).map_err(|e| ExperimentError::decode(e.to_string()))?;
        let format = req_str(&root, "format")?;
        if format != REPORT_FORMAT {
            return Err(ExperimentError::decode(format!(
                "unsupported format '{format}' (expected '{REPORT_FORMAT}')"
            )));
        }
        let spec = spec_from_json(req(&root, "spec")?)?;
        let cells = req_array(&root, "cells")?
            .iter()
            .map(cell_report_from_json)
            .collect::<Result<Vec<_>>>()?;
        let curves = req_array(&root, "curves")?
            .iter()
            .map(curve_from_json)
            .collect::<Result<Vec<_>>>()?;
        Ok(CampaignReport {
            spec,
            cells,
            curves,
        })
    }

    /// Writes the archival JSON to `path`.
    pub fn save(&self, path: &std::path::Path) -> Result<()> {
        std::fs::write(path, self.to_json_string())
            .map_err(|e| ExperimentError::Io(format!("writing {}: {e}", path.display())))
    }

    /// Reads an archived report back from `path`.
    pub fn load(path: &std::path::Path) -> Result<CampaignReport> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| ExperimentError::Io(format!("reading {}: {e}", path.display())))?;
        CampaignReport::from_json_str(&text)
    }
}

// --- encoding -------------------------------------------------------------

pub(crate) fn obj(members: Vec<(&str, JsonValue)>) -> JsonValue {
    JsonValue::Object(
        members
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

fn device_token(device: DevicePreset) -> &'static str {
    match device {
        DevicePreset::AndroidPhone => "android_phone",
        DevicePreset::AmazonEcho => "amazon_echo",
        DevicePreset::LinearReference => "linear_reference",
    }
}

fn device_from_token(token: &str) -> Option<DevicePreset> {
    DevicePreset::ALL
        .into_iter()
        .find(|d| device_token(*d) == token)
}

fn delivery_to_json(delivery: &Delivery) -> JsonValue {
    match delivery {
        Delivery::Legitimate { talker_spl_db } => obj(vec![
            ("kind", JsonValue::string("legitimate")),
            ("talker_spl_db", JsonValue::number(*talker_spl_db)),
        ]),
        Delivery::SingleSpeakerUltrasound {
            power_w,
            carrier_hz,
        } => obj(vec![
            ("kind", JsonValue::string("single_speaker_ultrasound")),
            ("power_w", JsonValue::number(*power_w)),
            ("carrier_hz", JsonValue::number(*carrier_hz)),
        ]),
        Delivery::ArrayUltrasound {
            num_elements,
            total_power_w,
            carrier_hz,
        } => obj(vec![
            ("kind", JsonValue::string("array_ultrasound")),
            ("num_elements", JsonValue::number(*num_elements as f64)),
            ("total_power_w", JsonValue::number(*total_power_w)),
            ("carrier_hz", JsonValue::number(*carrier_hz)),
        ]),
    }
}

fn delivery_from_json(value: &JsonValue) -> Result<Delivery> {
    match req_str(value, "kind")? {
        "legitimate" => Ok(Delivery::Legitimate {
            talker_spl_db: req_f64(value, "talker_spl_db")?,
        }),
        "single_speaker_ultrasound" => Ok(Delivery::SingleSpeakerUltrasound {
            power_w: req_f64(value, "power_w")?,
            carrier_hz: req_f64(value, "carrier_hz")?,
        }),
        "array_ultrasound" => Ok(Delivery::ArrayUltrasound {
            num_elements: req_usize(value, "num_elements")?,
            total_power_w: req_f64(value, "total_power_w")?,
            carrier_hz: req_f64(value, "carrier_hz")?,
        }),
        other => Err(ExperimentError::decode(format!(
            "unknown delivery kind '{other}'"
        ))),
    }
}

fn detector_to_json(detector: &DetectorSpec) -> JsonValue {
    obj(vec![
        ("label", JsonValue::string(&detector.label)),
        ("device", JsonValue::string(device_token(detector.device))),
        (
            "distances_m",
            JsonValue::number_array(&detector.distances_m),
        ),
        (
            "num_speaker_variants",
            JsonValue::number(detector.num_speaker_variants as f64),
        ),
        (
            "command_indices",
            JsonValue::Array(
                detector
                    .command_indices
                    .iter()
                    .map(|&i| JsonValue::number(i as f64))
                    .collect(),
            ),
        ),
        (
            "attack_elements",
            JsonValue::number(detector.attack_elements as f64),
        ),
        (
            "attack_total_power_w",
            JsonValue::number(detector.attack_total_power_w),
        ),
        ("carrier_hz", JsonValue::number(detector.carrier_hz)),
        ("talker_spl_db", JsonValue::number(detector.talker_spl_db)),
        (
            "ambient_noise_spl_db",
            JsonValue::number(detector.ambient_noise_spl_db),
        ),
        (
            // INFINITY (no cap) has no JSON number; archived as null.
            "max_voice_duration_s",
            JsonValue::number(detector.max_voice_duration_s),
        ),
        ("seed", u64_to_json(detector.seed)),
    ])
}

fn detector_from_json(value: &JsonValue) -> Result<DetectorSpec> {
    let device_token_str = req_str(value, "device")?;
    Ok(DetectorSpec {
        label: req_str(value, "label")?.to_string(),
        device: device_from_token(device_token_str).ok_or_else(|| {
            ExperimentError::decode(format!("unknown device '{device_token_str}'"))
        })?,
        distances_m: req_f64_array(value, "distances_m")?,
        num_speaker_variants: req_usize(value, "num_speaker_variants")?,
        command_indices: req_array(value, "command_indices")?
            .iter()
            .map(|v| as_usize(v, "command_indices[]"))
            .collect::<Result<Vec<_>>>()?,
        attack_elements: req_usize(value, "attack_elements")?,
        attack_total_power_w: req_f64(value, "attack_total_power_w")?,
        carrier_hz: req_f64(value, "carrier_hz")?,
        talker_spl_db: req_f64(value, "talker_spl_db")?,
        ambient_noise_spl_db: req_f64(value, "ambient_noise_spl_db")?,
        max_voice_duration_s: opt_f64(value, "max_voice_duration_s")?.unwrap_or(f64::INFINITY),
        seed: req(value, "seed")?
            .as_u64()
            .ok_or_else(|| ExperimentError::decode("detector seed is not a u64".to_string()))?,
    })
}

pub(crate) fn spec_to_json(spec: &CampaignSpec) -> JsonValue {
    obj(vec![
        ("name", JsonValue::string(&spec.name)),
        (
            "detectors",
            JsonValue::Array(
                spec.detectors
                    .iter()
                    .map(|d| match d {
                        None => JsonValue::Null,
                        Some(detector) => detector_to_json(detector),
                    })
                    .collect(),
            ),
        ),
        (
            "devices",
            JsonValue::Array(
                spec.devices
                    .iter()
                    .map(|d| JsonValue::string(device_token(*d)))
                    .collect(),
            ),
        ),
        (
            "deliveries",
            JsonValue::Array(
                spec.deliveries
                    .iter()
                    .map(|d| {
                        obj(vec![
                            ("label", JsonValue::string(&d.label)),
                            ("delivery", delivery_to_json(&d.delivery)),
                            (
                                "shadow_suppression",
                                JsonValue::number(d.shadow_suppression),
                            ),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "carriers_hz",
            JsonValue::Array(spec.carriers_hz.iter().map(|&c| opt_number(c)).collect()),
        ),
        (
            "powers_w",
            JsonValue::Array(spec.powers_w.iter().map(|&p| opt_number(p)).collect()),
        ),
        (
            "rooms",
            JsonValue::Array(
                spec.rooms
                    .iter()
                    .map(|&r| JsonValue::string(room_token(r)))
                    .collect(),
            ),
        ),
        (
            "environments",
            JsonValue::Array(
                spec.environments
                    .iter()
                    .map(|e| JsonValue::string(e.token()))
                    .collect(),
            ),
        ),
        (
            "command_indices",
            JsonValue::Array(
                spec.command_indices
                    .iter()
                    .map(|&i| JsonValue::number(i as f64))
                    .collect(),
            ),
        ),
        ("distances_m", JsonValue::number_array(&spec.distances_m)),
        (
            "ambient_noise_spl_db",
            JsonValue::number(spec.ambient_noise_spl_db),
        ),
        (
            "bystander_distance_m",
            JsonValue::number(spec.bystander_distance_m),
        ),
        (
            "trials_per_cell",
            JsonValue::number(spec.trials_per_cell as f64),
        ),
        ("base_seed", u64_to_json(spec.base_seed)),
        (
            // INFINITY (no cap) has no JSON number; archived as null.
            "max_voice_duration_s",
            JsonValue::number(spec.max_voice_duration_s),
        ),
        (
            "recording_band_summary",
            match spec.recording_band_summary {
                None => JsonValue::Null,
                Some(summary) => obj(vec![
                    ("bands", JsonValue::number(summary.bands as f64)),
                    ("max_hz", JsonValue::number(summary.max_hz)),
                ]),
            },
        ),
    ])
}

pub(crate) fn spec_from_json(value: &JsonValue) -> Result<CampaignSpec> {
    let detectors = req_array(value, "detectors")?
        .iter()
        .map(|v| match v {
            JsonValue::Null => Ok(None),
            other => detector_from_json(other).map(Some),
        })
        .collect::<Result<Vec<_>>>()?;
    let devices = req_array(value, "devices")?
        .iter()
        .map(|v| {
            let token = as_str(v, "devices[]")?;
            device_from_token(token)
                .ok_or_else(|| ExperimentError::decode(format!("unknown device '{token}'")))
        })
        .collect::<Result<Vec<_>>>()?;
    let deliveries = req_array(value, "deliveries")?
        .iter()
        .map(|v| {
            Ok(DeliverySpec {
                label: req_str(v, "label")?.to_string(),
                delivery: delivery_from_json(req(v, "delivery")?)?,
                shadow_suppression: req_f64(v, "shadow_suppression")?,
            })
        })
        .collect::<Result<Vec<_>>>()?;
    let carriers_hz = req_array(value, "carriers_hz")?
        .iter()
        .map(|v| opt_number_value(v, "carriers_hz[]"))
        .collect::<Result<Vec<_>>>()?;
    let powers_w = req_array(value, "powers_w")?
        .iter()
        .map(|v| opt_number_value(v, "powers_w[]"))
        .collect::<Result<Vec<_>>>()?;
    let rooms = req_array(value, "rooms")?
        .iter()
        .map(|v| {
            let token = as_str(v, "rooms[]")?;
            room_from_token(token)
                .ok_or_else(|| ExperimentError::decode(format!("unknown room '{token}'")))
        })
        .collect::<Result<Vec<_>>>()?;
    let environments = req_array(value, "environments")?
        .iter()
        .map(|v| {
            let token = as_str(v, "environments[]")?;
            EnvironmentPreset::from_token(token)
                .ok_or_else(|| ExperimentError::decode(format!("unknown environment '{token}'")))
        })
        .collect::<Result<Vec<_>>>()?;
    let command_indices = req_array(value, "command_indices")?
        .iter()
        .map(|v| as_usize(v, "command_indices[]"))
        .collect::<Result<Vec<_>>>()?;
    let distances_m = req_f64_array(value, "distances_m")?;
    let recording_band_summary = match req(value, "recording_band_summary")? {
        JsonValue::Null => None,
        summary => Some(BandSummarySpec {
            bands: req_usize(summary, "bands")?,
            max_hz: req_f64(summary, "max_hz")?,
        }),
    };
    Ok(CampaignSpec {
        name: req_str(value, "name")?.to_string(),
        detectors,
        devices,
        deliveries,
        carriers_hz,
        powers_w,
        rooms,
        environments,
        command_indices,
        distances_m,
        ambient_noise_spl_db: req_f64(value, "ambient_noise_spl_db")?,
        bystander_distance_m: req_f64(value, "bystander_distance_m")?,
        trials_per_cell: req_usize(value, "trials_per_cell")?,
        base_seed: req(value, "base_seed")?
            .as_u64()
            .ok_or_else(|| ExperimentError::decode("base_seed is not a u64".to_string()))?,
        max_voice_duration_s: opt_f64(value, "max_voice_duration_s")?.unwrap_or(f64::INFINITY),
        recording_band_summary,
    })
}

fn coords_members(coords: &CellCoords) -> Vec<(&'static str, JsonValue)> {
    vec![
        (
            "detector_index",
            JsonValue::number(coords.detector_index as f64),
        ),
        (
            "device_index",
            JsonValue::number(coords.device_index as f64),
        ),
        (
            "delivery_index",
            JsonValue::number(coords.delivery_index as f64),
        ),
        (
            "carrier_index",
            JsonValue::number(coords.carrier_index as f64),
        ),
        ("power_index", JsonValue::number(coords.power_index as f64)),
        ("room_index", JsonValue::number(coords.room_index as f64)),
        (
            "environment_index",
            JsonValue::number(coords.environment_index as f64),
        ),
        (
            "command_position",
            JsonValue::number(coords.command_position as f64),
        ),
        (
            "distance_index",
            JsonValue::number(coords.distance_index as f64),
        ),
    ]
}

fn coords_from_json(value: &JsonValue) -> Result<CellCoords> {
    Ok(CellCoords {
        detector_index: req_usize(value, "detector_index")?,
        device_index: req_usize(value, "device_index")?,
        delivery_index: req_usize(value, "delivery_index")?,
        carrier_index: req_usize(value, "carrier_index")?,
        power_index: req_usize(value, "power_index")?,
        room_index: req_usize(value, "room_index")?,
        environment_index: req_usize(value, "environment_index")?,
        command_position: req_usize(value, "command_position")?,
        distance_index: req_usize(value, "distance_index")?,
    })
}

fn cell_spec_to_json(cell: &CellSpec) -> JsonValue {
    let mut members = vec![("cell_index", JsonValue::number(cell.cell_index as f64))];
    members.extend(coords_members(&cell.coords));
    obj(members)
}

fn cell_spec_from_json(value: &JsonValue) -> Result<CellSpec> {
    Ok(CellSpec {
        cell_index: req_usize(value, "cell_index")?,
        coords: coords_from_json(value)?,
    })
}

fn stats_to_json(stats: &CellStats) -> JsonValue {
    obj(vec![
        ("trials", JsonValue::number(stats.trials as f64)),
        ("successes", JsonValue::number(stats.successes as f64)),
        ("success_rate", JsonValue::number(stats.success_rate)),
        ("success_ci_low", JsonValue::number(stats.success_ci_low)),
        ("success_ci_high", JsonValue::number(stats.success_ci_high)),
        (
            "mean_word_accuracy",
            JsonValue::number(stats.mean_word_accuracy),
        ),
        (
            "mean_bystander_spl_db",
            opt_number(stats.mean_bystander_spl_db),
        ),
        (
            "mean_bystander_spl_dba",
            opt_number(stats.mean_bystander_spl_dba),
        ),
        (
            "mean_bystander_voice_spl_db",
            opt_number(stats.mean_bystander_voice_spl_db),
        ),
        (
            "leak_audible_fraction",
            opt_number(stats.leak_audible_fraction),
        ),
        (
            "mean_power_shortfall_w",
            JsonValue::number(stats.mean_power_shortfall_w),
        ),
        (
            "mean_detection_probability",
            opt_number(stats.mean_detection_probability),
        ),
    ])
}

fn stats_from_json(value: &JsonValue) -> Result<CellStats> {
    Ok(CellStats {
        trials: req_usize(value, "trials")?,
        successes: req_usize(value, "successes")?,
        success_rate: req_f64(value, "success_rate")?,
        success_ci_low: req_f64(value, "success_ci_low")?,
        success_ci_high: req_f64(value, "success_ci_high")?,
        mean_word_accuracy: req_f64(value, "mean_word_accuracy")?,
        mean_bystander_spl_db: opt_f64(value, "mean_bystander_spl_db")?,
        mean_bystander_spl_dba: opt_f64(value, "mean_bystander_spl_dba")?,
        mean_bystander_voice_spl_db: opt_f64(value, "mean_bystander_voice_spl_db")?,
        leak_audible_fraction: opt_f64(value, "leak_audible_fraction")?,
        mean_power_shortfall_w: req_f64(value, "mean_power_shortfall_w")?,
        mean_detection_probability: opt_f64(value, "mean_detection_probability")?,
    })
}

pub(crate) fn trial_to_json(trial: &TrialRecord) -> JsonValue {
    obj(vec![
        ("cell_index", JsonValue::number(trial.cell_index as f64)),
        ("trial_index", JsonValue::number(trial.trial_index as f64)),
        ("seed", u64_to_json(trial.seed)),
        ("accepted", JsonValue::Bool(trial.accepted)),
        ("word_accuracy", JsonValue::number(trial.word_accuracy)),
        (
            "recognized_words",
            JsonValue::string_array(&trial.recognized_words),
        ),
        ("bystander_spl_db", opt_number(trial.bystander_spl_db)),
        ("bystander_spl_dba", opt_number(trial.bystander_spl_dba)),
        (
            "bystander_voice_spl_db",
            opt_number(trial.bystander_voice_spl_db),
        ),
        (
            "leak_audible",
            trial
                .leak_audible
                .map(JsonValue::Bool)
                .unwrap_or(JsonValue::Null),
        ),
        (
            "power_shortfall_w",
            JsonValue::number(trial.power_shortfall_w),
        ),
        (
            "defense_features",
            JsonValue::number_array(&trial.defense_features),
        ),
        (
            "detection_probability",
            opt_number(trial.detection_probability),
        ),
        (
            "recording_band_summary_db",
            match &trial.recording_band_summary_db {
                None => JsonValue::Null,
                Some(bands) => JsonValue::number_array(bands),
            },
        ),
    ])
}

pub(crate) fn trial_from_json(value: &JsonValue) -> Result<TrialRecord> {
    let leak_audible = match req(value, "leak_audible")? {
        JsonValue::Null => None,
        JsonValue::Bool(b) => Some(*b),
        _ => {
            return Err(ExperimentError::decode(
                "leak_audible is neither bool nor null".to_string(),
            ))
        }
    };
    let recording_band_summary_db = match req(value, "recording_band_summary_db")? {
        JsonValue::Null => None,
        _ => Some(req_f64_array(value, "recording_band_summary_db")?),
    };
    Ok(TrialRecord {
        cell_index: req_usize(value, "cell_index")?,
        trial_index: req_usize(value, "trial_index")?,
        seed: req(value, "seed")?
            .as_u64()
            .ok_or_else(|| ExperimentError::decode("seed is not a u64".to_string()))?,
        accepted: req_bool(value, "accepted")?,
        word_accuracy: req_f64(value, "word_accuracy")?,
        recognized_words: req_array(value, "recognized_words")?
            .iter()
            .map(|v| Ok(as_str(v, "recognized_words[]")?.to_string()))
            .collect::<Result<Vec<_>>>()?,
        bystander_spl_db: opt_f64(value, "bystander_spl_db")?,
        bystander_spl_dba: opt_f64(value, "bystander_spl_dba")?,
        bystander_voice_spl_db: opt_f64(value, "bystander_voice_spl_db")?,
        leak_audible,
        power_shortfall_w: req_f64(value, "power_shortfall_w")?,
        defense_features: req_f64_array(value, "defense_features")?,
        detection_probability: opt_f64(value, "detection_probability")?,
        recording_band_summary_db,
    })
}

fn cell_report_to_json(cell: &CellReport) -> JsonValue {
    obj(vec![
        ("cell", cell_spec_to_json(&cell.cell)),
        ("label", JsonValue::string(&cell.label)),
        ("stats", stats_to_json(&cell.stats)),
        (
            "trials",
            JsonValue::Array(cell.trials.iter().map(trial_to_json).collect()),
        ),
    ])
}

fn cell_report_from_json(value: &JsonValue) -> Result<CellReport> {
    Ok(CellReport {
        cell: cell_spec_from_json(req(value, "cell")?)?,
        label: req_str(value, "label")?.to_string(),
        stats: stats_from_json(req(value, "stats")?)?,
        trials: req_array(value, "trials")?
            .iter()
            .map(trial_from_json)
            .collect::<Result<Vec<_>>>()?,
    })
}

fn curve_to_json(curve: &PsychometricCurve) -> JsonValue {
    let mut members = vec![("label", JsonValue::string(&curve.label))];
    members.extend(coords_members(&curve.coords));
    members.extend(vec![
        ("distances_m", JsonValue::number_array(&curve.distances_m)),
        (
            "success_rates",
            JsonValue::number_array(&curve.success_rates),
        ),
        ("ci_low", JsonValue::number_array(&curve.ci_low)),
        ("ci_high", JsonValue::number_array(&curve.ci_high)),
        (
            "mean_word_accuracy",
            JsonValue::number_array(&curve.mean_word_accuracy),
        ),
    ]);
    obj(members)
}

fn curve_from_json(value: &JsonValue) -> Result<PsychometricCurve> {
    Ok(PsychometricCurve {
        label: req_str(value, "label")?.to_string(),
        coords: coords_from_json(value)?,
        distances_m: req_f64_array(value, "distances_m")?,
        success_rates: req_f64_array(value, "success_rates")?,
        ci_low: req_f64_array(value, "ci_low")?,
        ci_high: req_f64_array(value, "ci_high")?,
        mean_word_accuracy: req_f64_array(value, "mean_word_accuracy")?,
    })
}

// --- decoding helpers -----------------------------------------------------

pub(crate) fn req<'a>(value: &'a JsonValue, key: &str) -> Result<&'a JsonValue> {
    value
        .get(key)
        .ok_or_else(|| ExperimentError::decode(format!("missing member '{key}'")))
}

pub(crate) fn req_str<'a>(value: &'a JsonValue, key: &str) -> Result<&'a str> {
    as_str(req(value, key)?, key)
}

fn as_str<'a>(value: &'a JsonValue, context: &str) -> Result<&'a str> {
    value
        .as_str()
        .ok_or_else(|| ExperimentError::decode(format!("'{context}' is not a string")))
}

fn as_usize(value: &JsonValue, context: &str) -> Result<usize> {
    value
        .as_usize()
        .ok_or_else(|| ExperimentError::decode(format!("'{context}' is not a whole number")))
}

fn req_f64(value: &JsonValue, key: &str) -> Result<f64> {
    req(value, key)?
        .as_f64()
        .ok_or_else(|| ExperimentError::decode(format!("'{key}' is not a number")))
}

fn opt_f64(value: &JsonValue, key: &str) -> Result<Option<f64>> {
    match req(value, key)? {
        JsonValue::Null => Ok(None),
        v => Ok(Some(v.as_f64().ok_or_else(|| {
            ExperimentError::decode(format!("'{key}' is neither number nor null"))
        })?)),
    }
}

fn opt_number_value(value: &JsonValue, context: &str) -> Result<Option<f64>> {
    match value {
        JsonValue::Null => Ok(None),
        v => Ok(Some(v.as_f64().ok_or_else(|| {
            ExperimentError::decode(format!("'{context}' is neither number nor null"))
        })?)),
    }
}

pub(crate) fn req_usize(value: &JsonValue, key: &str) -> Result<usize> {
    req(value, key)?
        .as_usize()
        .ok_or_else(|| ExperimentError::decode(format!("'{key}' is not a whole number")))
}

fn req_bool(value: &JsonValue, key: &str) -> Result<bool> {
    req(value, key)?
        .as_bool()
        .ok_or_else(|| ExperimentError::decode(format!("'{key}' is not a bool")))
}

fn req_array<'a>(value: &'a JsonValue, key: &str) -> Result<&'a [JsonValue]> {
    req(value, key)?
        .as_array()
        .ok_or_else(|| ExperimentError::decode(format!("'{key}' is not an array")))
}

fn req_f64_array(value: &JsonValue, key: &str) -> Result<Vec<f64>> {
    req_array(value, key)?
        .iter()
        .map(|v| {
            v.as_f64()
                .ok_or_else(|| ExperimentError::decode(format!("'{key}[]' is not a number")))
        })
        .collect()
}

fn opt_number(value: Option<f64>) -> JsonValue {
    value.map(JsonValue::number).unwrap_or(JsonValue::Null)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregate::{aggregate_cells, psychometric_curves};
    use crate::grid::DeliverySpec;

    fn synthetic_report() -> CampaignReport {
        let spec = CampaignSpec {
            detectors: vec![None, Some(DetectorSpec::standard(true))],
            devices: vec![DevicePreset::AndroidPhone, DevicePreset::AmazonEcho],
            deliveries: vec![
                DeliverySpec::legitimate("talker", 65.0),
                DeliverySpec::single_speaker("single 3 W", 3.0, 40_000.0),
                DeliverySpec::array("array 61", 61, 400.0, 40_000.0).with_shadow_suppression(0.25),
            ],
            carriers_hz: vec![None, Some(30_000.0)],
            powers_w: vec![None, Some(23.7)],
            rooms: vec![None, Some(ivc_room::RoomPreset::Corridor)],
            environments: vec![
                EnvironmentPreset::MeetingRoom,
                EnvironmentPreset::SummerHumid,
            ],
            command_indices: vec![0, 3],
            distances_m: vec![0.5, 2.0, 7.6],
            trials_per_cell: 2,
            base_seed: u64::MAX - 5,
            max_voice_duration_s: f64::INFINITY,
            recording_band_summary: Some(BandSummarySpec {
                bands: 4,
                max_hz: 8_000.0,
            }),
            ..CampaignSpec::new("synthetic")
        };
        let cells = spec.cells();
        let mut records = Vec::new();
        for cell in &cells {
            for trial in 0..spec.trials_per_cell {
                let attack = spec.deliveries[cell.coords.delivery_index]
                    .delivery
                    .is_attack();
                let detector = spec.detectors[cell.coords.detector_index].is_some();
                records.push(TrialRecord {
                    cell_index: cell.cell_index,
                    trial_index: trial,
                    seed: spec.trial_seed(trial),
                    accepted: (cell.cell_index + trial) % 3 == 0,
                    word_accuracy: 1.0 / (1.0 + cell.cell_index as f64),
                    recognized_words: vec!["ok".into(), "google".into()],
                    bystander_spl_db: attack.then_some(33.3 + trial as f64 * 0.1),
                    bystander_spl_dba: attack.then_some(28.9),
                    bystander_voice_spl_db: attack.then_some(21.7),
                    leak_audible: attack.then_some(cell.cell_index % 2 == 0),
                    power_shortfall_w: if cell.cell_index % 5 == 0 { 12.5 } else { 0.0 },
                    defense_features: vec![0.25, -1.5, 3.25, 0.0],
                    detection_probability: detector.then_some(if attack { 0.875 } else { 0.125 }),
                    recording_band_summary_db: Some(vec![-10.0, -20.5, -30.25, -41.0]),
                });
            }
        }
        let cell_reports = aggregate_cells(&spec, &cells, records);
        let curves = psychometric_curves(&spec, &cell_reports);
        CampaignReport {
            spec,
            cells: cell_reports,
            curves,
        }
    }

    #[test]
    fn report_round_trips_through_json_exactly() {
        let report = synthetic_report();
        let text = report.to_json_string();
        let parsed = CampaignReport::from_json_str(&text).unwrap();
        assert_eq!(parsed, report);
        // And the re-serialisation is byte-identical.
        assert_eq!(parsed.to_json_string(), text);
    }

    #[test]
    fn find_cell_addresses_the_grid() {
        let report = synthetic_report();
        let coords = CellCoords {
            detector_index: 1,
            device_index: 1,
            delivery_index: 2,
            carrier_index: 1,
            power_index: 0,
            room_index: 1,
            environment_index: 0,
            command_position: 1,
            distance_index: 2,
        };
        let cell = report.find_cell(&coords).unwrap();
        assert_eq!(cell.cell.coords, coords);
        assert_eq!(report.cells[cell.cell.cell_index].cell, cell.cell);
        assert!(report
            .find_cell(&CellCoords {
                device_index: 2,
                ..CellCoords::default()
            })
            .is_none());
        assert!(report
            .find_cell(&CellCoords {
                distance_index: 99,
                ..CellCoords::default()
            })
            .is_none());
    }

    #[test]
    fn summary_table_has_one_row_per_cell() {
        let report = synthetic_report();
        let table = report.summary_table();
        assert_eq!(table.rows.len(), report.cells.len());
        let rendered = table.render();
        assert!(rendered.contains("synthetic"));
        assert!(rendered.contains("array 61"));
    }

    #[test]
    fn wrong_format_and_malformed_documents_are_rejected() {
        assert!(CampaignReport::from_json_str("{}").is_err());
        assert!(CampaignReport::from_json_str("not json").is_err());
        let wrong_format = "{\"format\": \"ivc-campaign-report-v2\"}";
        let err = CampaignReport::from_json_str(wrong_format).unwrap_err();
        assert!(err.to_string().contains("unsupported format"));
        // A valid report with one member clobbered decodes to an error, not
        // a panic.
        let text = synthetic_report()
            .to_json_string()
            .replace("\"accepted\": true", "\"accepted\": 3");
        assert!(CampaignReport::from_json_str(&text).is_err());
    }

    #[test]
    fn infinity_voice_cap_archives_as_null() {
        let report = synthetic_report();
        let text = report.to_json_string();
        assert!(text.contains("\"max_voice_duration_s\": null"));
        let parsed = CampaignReport::from_json_str(&text).unwrap();
        assert_eq!(parsed.spec.max_voice_duration_s, f64::INFINITY);
    }

    #[test]
    fn v3_members_are_archived() {
        let text = synthetic_report().to_json_string();
        for member in [
            "\"detectors\"",
            "\"carriers_hz\"",
            "\"powers_w\"",
            "\"shadow_suppression\"",
            "\"defense_features\"",
            "\"detection_probability\"",
            "\"recording_band_summary\"",
            "\"mean_detection_probability\"",
            "\"standard detector\"",
        ] {
            assert!(text.contains(member), "archive missing {member}");
        }
        assert!(text.contains(REPORT_FORMAT));
    }
}
