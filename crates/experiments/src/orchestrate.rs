//! The self-driving shard orchestrator: supervision, retry, straggler
//! re-issue and checkpoint/resume on top of the [`crate::shard`] contract.
//!
//! PR 5 made campaigns shard across processes and machines, but a human
//! ferried the files and a dead worker killed the run.  This module is
//! the control plane: [`orchestrate`] owns a [`ShardPlan`], hands each
//! shard to a worker through a [`ShardLauncher`], and supervises the
//! fleet with a small per-shard state machine
//! (`Pending → Issued → Retrying → Done`, see [`ShardState`]):
//!
//! * **Retry** — a failed attempt is retried up to a bounded budget
//!   ([`OrchestratorConfig::max_retries`]) with exponential backoff.
//! * **Straggler re-issue** — an attempt running past
//!   [`OrchestratorConfig::straggler_timeout`] gets a duplicate attempt;
//!   the first completed result wins and the loser is killed and
//!   discarded.  Because every trial is a pure function of
//!   `(spec, cell, seed)` and the merge is deterministic, retries and
//!   duplicates are always safe: any completed attempt of a shard
//!   produces the same bytes.
//! * **Checkpoint/resume** — each finished shard is atomically renamed to
//!   its canonical partial-archive name in the scratch directory.  On
//!   startup the orchestrator scans for surviving checkpoints, validates
//!   them with the same code the merge uses
//!   ([`ShardArchive::validate_for`]), and re-runs only what is missing —
//!   a killed orchestrator resumes instead of restarting.
//! * **Interim aggregates** — as shards land, per-cell success rates with
//!   95 % Wilson intervals are streamed for every newly-completed cell.
//!
//! Every supervision event is a structured [`RunEvent`].  The single
//! source of truth is the append-only JSONL **run manifest**
//! (`<spec>.manifest.jsonl`, format [`MANIFEST_FORMAT`]) next to the
//! checkpoints; the human-readable status stream (stderr in the CLI) is
//! *derived* from the same events by [`RunEvent::render`], so the two can
//! never drift apart.
//!
//! The final report is produced by [`crate::shard::merge_shard_files`]
//! streaming the checkpointed partials one at a time through per-cell
//! accumulators, so it is **byte-identical** to the in-process
//! [`crate::run_campaign`] run no matter how many failures, retries,
//! re-issues or resumes happened along the way — and the orchestrator
//! never holds more than one shard's records in memory at once.
//!
//! ## Checkpoint layout
//!
//! Everything lives flat in one scratch directory, named by the spec.
//! Partials default to the compact columnar format
//! ([`crate::columns::COLUMNS_FORMAT`], extension `.bin`); setting
//! [`OrchestratorConfig::partial_format`] to [`PartialFormat::Json`]
//! switches every partial file below to `.json`:
//!
//! ```text
//! <spec>.shard-i-of-n.job.json                 shard job (input, rewritten on start)
//! <spec>.shard-i-of-n.part.bin                 checkpoint: a complete, validated partial
//! <spec>.shard-i-of-n.part.metrics.json        the checkpoint's telemetry sidecar
//! <spec>.shard-i-of-n.part.attempt-<nonce>-<k>.bin  in-flight attempt output
//! <spec>.shard-i-of-n.part.attempt-<nonce>-<k>.metrics.json  its in-flight sidecar
//! <spec>.manifest.jsonl                        append-only JSONL run manifest
//! ```
//!
//! Process workers (`repro shard-worker`) always write an `ivc-metrics-v1`
//! telemetry sidecar next to their attempt output
//! ([`crate::shard::metrics_sidecar_path`]).  The sidecar shares the
//! attempt file's fate: renamed with the checkpoint on acceptance, deleted
//! with a failed or duplicate attempt, resumed with a surviving
//! checkpoint — so after a run every partial checkpoint has a matching
//! `*.part.metrics.json` and the driver can merge them into one
//! fleet-wide metrics document.
//!
//! The canonical checkpoint name only ever holds a finished partial
//! that passed [`ShardArchive::validate_for`] — attempts write to their
//! own uniquely-named file and are renamed into place on success, so a
//! crash mid-write can never corrupt a checkpoint.

use crate::aggregate::wilson_interval;
use crate::error::{ExperimentError, Result};
use crate::grid::CampaignSpec;
use crate::shard::{
    merge_shard_files, metrics_sidecar_path, run_shard, shard_archive_file_name_with,
    shard_job_file_name, PartialFormat, ShardArchive, ShardJob, ShardPlan,
};
use ivc_core::json::{u64_to_json, JsonValue};
use ivc_core::telemetry;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

/// Environment variable carrying the attempt index to spawned workers
/// (0 for a shard's first attempt).  The `repro shard-worker` CLI reads
/// it so fault injection ([`ENV_FAULT_SHARD`]) can target first attempts
/// only.
pub const ENV_SHARD_ATTEMPT: &str = "IVC_SHARD_ATTEMPT";

/// Environment variable for CI fault injection: `IVC_FAULT_SHARD=<i>`
/// makes `repro shard-worker` exit non-zero on the **first** attempt at
/// shard `i`, so the retry path runs under a real process failure.
pub const ENV_FAULT_SHARD: &str = "IVC_FAULT_SHARD";

/// Where a shard is in its lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardState {
    /// Not yet issued to any worker.
    Pending,
    /// At least one attempt is in flight.
    Issued,
    /// The last attempt failed; waiting out the backoff before the next.
    Retrying,
    /// A validated partial is checkpointed; the shard is finished.
    Done,
}

/// Tuning knobs of the supervision loop.
#[derive(Debug, Clone)]
pub struct OrchestratorConfig {
    /// Number of shards to partition the campaign into.  Must not exceed
    /// the campaign's job count: the orchestrator refuses plans with
    /// idle (empty) shards.
    pub num_shards: usize,
    /// Extra attempts a shard may consume after a failure before the
    /// whole run aborts (`0` = fail fast on the first worker failure).
    pub max_retries: usize,
    /// Base backoff before a retry; doubles with each consecutive
    /// failure of the same shard.
    pub retry_backoff: Duration,
    /// Re-issue a duplicate attempt when one runs longer than this
    /// (`None` = never; a shard keeps at most two attempts in flight).
    pub straggler_timeout: Option<Duration>,
    /// Cap on concurrently in-flight attempts across all shards.
    pub max_concurrent: usize,
    /// Sleep between supervision sweeps when nothing happened.
    pub poll_interval: Duration,
    /// Emit a heartbeat `progress` event when none has been emitted for
    /// this long (one is also emitted at startup and after every finished
    /// shard).
    pub progress_interval: Duration,
    /// Wire format for partial archives (checkpoints and attempt
    /// outputs): compact columnar by default, JSON for humans and old
    /// tooling.  Checkpoints left by a previous run in the *other*
    /// format still resume — [`ShardArchive::load`] detects the format
    /// from the bytes.
    pub partial_format: PartialFormat,
}

impl OrchestratorConfig {
    /// A conservative default supervision policy for `num_shards` shards:
    /// 2 retries with 500 ms base backoff, no straggler re-issue, every
    /// shard in flight at once.
    pub fn new(num_shards: usize) -> Self {
        OrchestratorConfig {
            num_shards,
            max_retries: 2,
            retry_backoff: Duration::from_millis(500),
            straggler_timeout: None,
            max_concurrent: num_shards,
            poll_interval: Duration::from_millis(25),
            progress_interval: Duration::from_secs(5),
            partial_format: PartialFormat::default(),
        }
    }
}

/// The result of polling an in-flight attempt.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AttemptStatus {
    /// Still running.
    Running,
    /// Finished: `Ok` means the worker reported success and its partial
    /// should be at the attempt's output path; `Err` carries the failure.
    Exited(std::result::Result<(), String>),
}

/// One in-flight attempt at a shard, as seen by the supervisor.
pub trait ShardAttempt {
    /// Non-blocking status check.
    fn poll(&mut self) -> AttemptStatus;
    /// Terminates the attempt.  Polling after a kill must still report a
    /// completion that had already happened (so a duplicate that finished
    /// just as it was killed is drained, not lost).
    fn kill(&mut self);
}

/// Launches attempts at shards.  The orchestrator is agnostic about what
/// a worker is — a forked `repro shard-worker` process
/// ([`ProcessLauncher`]), an in-process thread ([`ThreadLauncher`]), or a
/// test mock — as long as a successful attempt leaves a loadable
/// [`ShardArchive`] at `out_path`.
pub trait ShardLauncher {
    /// Starts attempt number `attempt` (0-based) at `job`, whose job file
    /// has been written to `job_path`; the partial must be written to
    /// `out_path` on success.
    fn launch(
        &mut self,
        job: &ShardJob,
        job_path: &Path,
        attempt: usize,
        out_path: &Path,
    ) -> Result<Box<dyn ShardAttempt>>;
}

/// Launches each attempt as a forked worker process (normally the
/// `repro` binary re-entered through its `shard-worker` subcommand).
/// The attempt index travels in the [`ENV_SHARD_ATTEMPT`] environment
/// variable so fault injection can distinguish first attempts.
pub struct ProcessLauncher {
    worker_exe: PathBuf,
    workers_per_shard: usize,
}

impl ProcessLauncher {
    /// A launcher forking `worker_exe` with `workers_per_shard` threads
    /// per worker process.
    pub fn new(worker_exe: impl Into<PathBuf>, workers_per_shard: usize) -> Self {
        ProcessLauncher {
            worker_exe: worker_exe.into(),
            workers_per_shard: workers_per_shard.max(1),
        }
    }
}

struct ProcessAttempt {
    child: std::process::Child,
}

impl ShardAttempt for ProcessAttempt {
    fn poll(&mut self) -> AttemptStatus {
        match self.child.try_wait() {
            Ok(None) => AttemptStatus::Running,
            Ok(Some(status)) if status.success() => AttemptStatus::Exited(Ok(())),
            Ok(Some(status)) => AttemptStatus::Exited(Err(format!("worker exited with {status}"))),
            Err(e) => AttemptStatus::Exited(Err(format!("waiting for worker: {e}"))),
        }
    }

    fn kill(&mut self) {
        // Reap after the kill; `try_wait` then reports the cached status,
        // so an attempt that exited cleanly just before the kill still
        // drains as a completion.
        self.child.kill().ok();
        self.child.wait().ok();
    }
}

impl ShardLauncher for ProcessLauncher {
    fn launch(
        &mut self,
        job: &ShardJob,
        job_path: &Path,
        attempt: usize,
        out_path: &Path,
    ) -> Result<Box<dyn ShardAttempt>> {
        let child = std::process::Command::new(&self.worker_exe)
            .arg("shard-worker")
            .arg("--job")
            .arg(job_path)
            .arg("--out")
            .arg(out_path)
            .arg("--workers")
            .arg(self.workers_per_shard.to_string())
            .env(ENV_SHARD_ATTEMPT, attempt.to_string())
            .stdout(std::process::Stdio::null())
            .spawn()
            .map_err(|e| {
                ExperimentError::Orchestrate(format!(
                    "spawning worker for shard {}: {e}",
                    job.shard.shard_index
                ))
            })?;
        Ok(Box::new(ProcessAttempt { child }))
    }
}

/// Runs each attempt as an in-process thread calling
/// [`crate::shard::run_shard`].  Threads cannot be killed, so a
/// "killed" attempt is merely abandoned (it finishes in the background
/// and its output file is ignored) — fine for tests and single-machine
/// runs without process isolation.
pub struct ThreadLauncher {
    workers_per_shard: usize,
}

impl ThreadLauncher {
    /// A launcher running shards on `workers_per_shard` executor threads.
    pub fn new(workers_per_shard: usize) -> Self {
        ThreadLauncher {
            workers_per_shard: workers_per_shard.max(1),
        }
    }
}

struct ThreadAttempt {
    rx: std::sync::mpsc::Receiver<std::result::Result<(), String>>,
    outcome: Option<std::result::Result<(), String>>,
}

impl ShardAttempt for ThreadAttempt {
    fn poll(&mut self) -> AttemptStatus {
        if self.outcome.is_none() {
            match self.rx.try_recv() {
                Ok(result) => self.outcome = Some(result),
                Err(std::sync::mpsc::TryRecvError::Empty) => return AttemptStatus::Running,
                Err(std::sync::mpsc::TryRecvError::Disconnected) => {
                    self.outcome = Some(Err("worker thread died".to_string()))
                }
            }
        }
        AttemptStatus::Exited(self.outcome.clone().expect("outcome set above"))
    }

    fn kill(&mut self) {}
}

impl ShardLauncher for ThreadLauncher {
    fn launch(
        &mut self,
        job: &ShardJob,
        _job_path: &Path,
        _attempt: usize,
        out_path: &Path,
    ) -> Result<Box<dyn ShardAttempt>> {
        let job = job.clone();
        let out_path = out_path.to_path_buf();
        let workers = self.workers_per_shard;
        let (tx, rx) = std::sync::mpsc::channel();
        std::thread::spawn(move || {
            let result = run_shard(&job, workers)
                .and_then(|archive| archive.save(&out_path))
                .map_err(|e| e.to_string());
            let _ = tx.send(result);
        });
        Ok(Box::new(ThreadAttempt { rx, outcome: None }))
    }
}

/// Counters describing what the supervision loop actually did.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct OrchestratorStats {
    /// Shards in the plan.
    pub shards: usize,
    /// Shards satisfied by checkpoints found on startup (resume).
    pub resumed: usize,
    /// Checkpoints found on startup that failed validation and were
    /// quarantined (their shards re-ran).
    pub invalid_checkpoints: usize,
    /// Attempts launched, including first attempts.
    pub launched: usize,
    /// Attempts launched because a previous attempt failed.
    pub retries: usize,
    /// Duplicate attempts issued because the running one straggled.
    pub reissues: usize,
    /// Completed results discarded because the shard was already done
    /// (the losing side of a straggler race).
    pub duplicate_results: usize,
}

/// A finished orchestrated campaign: the merged report (byte-identical
/// to the in-process run) plus the supervision counters.
#[derive(Debug, Clone)]
pub struct OrchestratorRun {
    /// The merged campaign report.
    pub report: crate::report::CampaignReport,
    /// What supervision did to get there.
    pub stats: OrchestratorStats,
}

/// Format tag of the per-run JSONL manifest (carried by the `run_start`
/// event on the manifest's first line).
pub const MANIFEST_FORMAT: &str = "ivc-run-manifest-v1";

/// The run-manifest file name an orchestrated run of `spec_name` writes
/// next to its checkpoints.
pub fn manifest_file_name(spec_name: &str) -> String {
    format!("{spec_name}.manifest.jsonl")
}

/// One structured supervision event: what the orchestrator did, when
/// (seconds since supervision started), with kind-specific fields.
///
/// Events are the single source of truth for run reporting: they are
/// appended verbatim (as JSON lines) to the run manifest, and the
/// human-readable status stream is derived from the same data by
/// [`RunEvent::render`].
#[derive(Debug, Clone)]
pub struct RunEvent {
    /// Seconds since the orchestrator started.
    pub t_s: f64,
    /// Event kind: `run_start`, `checkpoint_resumed`,
    /// `checkpoint_quarantined`, `plan_summary`, `shard_issued`,
    /// `shard_done`, `shard_failed`, `shard_retry`, `straggler_reissue`,
    /// `duplicate_discarded`, `cell_complete`, `progress`, `run_complete`
    /// or `run_failed`.
    pub kind: &'static str,
    /// Kind-specific fields, in emit order.
    pub fields: Vec<(&'static str, JsonValue)>,
}

impl RunEvent {
    fn field(&self, name: &str) -> Option<&JsonValue> {
        self.fields.iter().find(|(k, _)| *k == name).map(|(_, v)| v)
    }

    fn str_field(&self, name: &str) -> &str {
        self.field(name).and_then(JsonValue::as_str).unwrap_or("?")
    }

    fn u64_field(&self, name: &str) -> u64 {
        self.field(name).and_then(JsonValue::as_u64).unwrap_or(0)
    }

    fn f64_field(&self, name: &str) -> f64 {
        self.field(name).and_then(JsonValue::as_f64).unwrap_or(0.0)
    }

    /// The event as one manifest object: `t_s` and `kind` first, then the
    /// kind-specific fields.
    pub fn to_json(&self) -> JsonValue {
        let mut object = vec![
            ("t_s".to_string(), JsonValue::number(self.t_s)),
            ("kind".to_string(), JsonValue::string(self.kind)),
        ];
        object.extend(self.fields.iter().map(|(k, v)| (k.to_string(), v.clone())));
        JsonValue::Object(object)
    }

    /// The human status line for this event, derived entirely from the
    /// structured fields (no second formatting path to drift).
    pub fn render(&self) -> String {
        match self.kind {
            "run_start" => format!(
                "campaign '{}': supervising {} trial(s) in {} shard(s); manifest format {}",
                self.str_field("spec"),
                self.u64_field("trials"),
                self.u64_field("shards"),
                self.str_field("format")
            ),
            "checkpoint_resumed" => format!(
                "shard {}/{}: resumed from checkpoint ({} trial(s))",
                self.u64_field("shard"),
                self.u64_field("num_shards"),
                self.u64_field("trials")
            ),
            "checkpoint_quarantined" => format!(
                "shard {}: checkpoint rejected ({}); {} and re-running",
                self.u64_field("shard"),
                self.str_field("error"),
                match self.field("quarantine").and_then(JsonValue::as_str) {
                    Some(path) => format!("quarantined as {path}"),
                    None => "could not be quarantined".to_string(),
                }
            ),
            "plan_summary" => format!(
                "campaign '{}': {} trial(s) across {} shard(s); {} resumed, {} to run",
                self.str_field("spec"),
                self.u64_field("trials"),
                self.u64_field("shards"),
                self.u64_field("resumed"),
                self.u64_field("to_run")
            ),
            "shard_issued" => format!(
                "shard {} attempt {} issued ({} trial(s))",
                self.u64_field("shard"),
                self.u64_field("attempt"),
                self.u64_field("trials")
            ),
            "shard_done" => format!(
                "shard {}/{} done (attempt {}): {} trial(s) checkpointed [{}/{}]",
                self.u64_field("shard"),
                self.u64_field("total"),
                self.u64_field("attempt"),
                self.u64_field("trials"),
                self.u64_field("done"),
                self.u64_field("total")
            ),
            "shard_failed" => format!(
                "shard {} attempt {} failed ({}); a duplicate attempt is still running",
                self.u64_field("shard"),
                self.u64_field("attempt"),
                self.str_field("error")
            ),
            "shard_retry" => format!(
                "shard {} attempt {} failed ({}); retry {}/{} in {:.1?}",
                self.u64_field("shard"),
                self.u64_field("attempt"),
                self.str_field("error"),
                self.u64_field("retry"),
                self.u64_field("max_retries"),
                Duration::from_secs_f64(self.f64_field("backoff_s"))
            ),
            "straggler_reissue" => format!(
                "shard {} straggling past {:.1?}; re-issued as attempt {} (first completed \
                 result wins)",
                self.u64_field("shard"),
                Duration::from_secs_f64(self.f64_field("timeout_s")),
                self.u64_field("attempt")
            ),
            "duplicate_discarded" => format!(
                "shard {} attempt {}: duplicate completion discarded",
                self.u64_field("shard"),
                self.u64_field("attempt")
            ),
            "cell_complete" => format!(
                "cell {}/{} complete — {}: success {}/{} = {:.2} [95% CI {:.2}, {:.2}]",
                self.u64_field("cell"),
                self.u64_field("cells"),
                self.str_field("label"),
                self.u64_field("successes"),
                self.u64_field("trials"),
                self.f64_field("rate"),
                self.f64_field("ci_low"),
                self.f64_field("ci_high")
            ),
            "progress" => {
                let base = format!(
                    "progress: {}/{} trial(s) done",
                    self.u64_field("done"),
                    self.u64_field("total")
                );
                match self.field("eta_s").and_then(JsonValue::as_f64) {
                    Some(eta_s) => format!(
                        "{base}, {:.2} trial(s)/s, ETA {:.0}s",
                        self.f64_field("trials_per_s"),
                        eta_s
                    ),
                    None => base,
                }
            }
            "run_complete" => format!(
                "campaign '{}' complete: {} shard(s) ({} resumed), {} attempt(s) launched, \
                 {} retried, {} re-issued, {} duplicate result(s) discarded — {} trial(s) in \
                 {:.1}s ({:.2} trial(s)/s)",
                self.str_field("spec"),
                self.u64_field("shards"),
                self.u64_field("resumed"),
                self.u64_field("launched"),
                self.u64_field("retries"),
                self.u64_field("reissues"),
                self.u64_field("duplicates"),
                self.u64_field("trials_total"),
                self.f64_field("wall_s"),
                self.f64_field("trials_per_s")
            ),
            "run_failed" => format!(
                "shard {} failed {} time(s), retry budget of {} exhausted (last failure: {})",
                self.u64_field("shard"),
                self.u64_field("failures"),
                self.u64_field("max_retries"),
                self.str_field("error")
            ),
            other => other.to_string(),
        }
    }
}

/// The event sink: appends each event to the JSONL run manifest and
/// writes its derived human rendering to the caller's stream (stderr in
/// the CLI).
struct EventLog<'a> {
    start: Instant,
    stream: &'a mut dyn Write,
    manifest: Option<std::fs::File>,
}

impl EventLog<'_> {
    fn emit(&mut self, kind: &'static str, fields: Vec<(&'static str, JsonValue)>) {
        let event = RunEvent {
            t_s: self.start.elapsed().as_secs_f64(),
            kind,
            fields,
        };
        if let Some(manifest) = &mut self.manifest {
            let _ = manifest.write_all(event.to_json().to_json_string().as_bytes());
            let _ = manifest.write_all(b"\n");
        }
        let line = format!("[orchestrate +{:8.2}s] {}\n", event.t_s, event.render());
        let _ = self.stream.write_all(line.as_bytes());
        let _ = self.stream.flush();
    }
}

/// Per-shard bookkeeping of the supervision loop.
///
/// Deliberately **not** holding the shard's records: a validated partial
/// lives on disk at `checkpoint_path` until the final streaming merge.
/// Only the per-trial acceptance flags are kept (one bool per trial) so
/// the interim per-cell aggregates can stream without re-reading files.
struct Slot {
    job: ShardJob,
    job_path: PathBuf,
    checkpoint_path: PathBuf,
    state: ShardState,
    attempts_started: usize,
    failures: usize,
    /// Earliest instant the next retry may launch (backoff).
    not_before: Instant,
    /// `Some` once the shard is Done: `accepted[i]` for slot
    /// `start_job + i`.
    accepted: Option<Vec<bool>>,
}

/// One in-flight attempt.
struct Inflight {
    shard_index: usize,
    attempt: usize,
    out_path: PathBuf,
    started: Instant,
    handle: Box<dyn ShardAttempt>,
}

/// The attempt-output file name: the canonical checkpoint name plus a
/// `(run nonce, attempt)` suffix, so concurrent attempts — including
/// orphans of a killed previous orchestrator — never collide, and the
/// canonical name is only ever written by an atomic rename.
fn attempt_file_name(slot: &Slot, nonce: u32, attempt: usize) -> String {
    let base = slot
        .checkpoint_path
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_default();
    let (stem, extension) = match base.strip_suffix(".json") {
        Some(stem) => (stem, "json"),
        None => (base.strip_suffix(".bin").unwrap_or(&base), "bin"),
    };
    format!("{stem}.attempt-{nonce}-{attempt}.{extension}")
}

/// Runs one campaign under supervision: shards are issued to `launcher`,
/// failures retried, stragglers re-issued, finished partials checkpointed
/// into `scratch_dir`, and surviving checkpoints from a previous
/// (killed) run resumed.  Returns the merged report, byte-identical to
/// [`crate::run_campaign`] on the same spec.
pub fn orchestrate(
    spec: &CampaignSpec,
    config: &OrchestratorConfig,
    scratch_dir: &Path,
    launcher: &mut dyn ShardLauncher,
    status_stream: &mut dyn Write,
) -> Result<OrchestratorRun> {
    spec.validate()?;
    let num_jobs = spec.num_trials();
    if config.num_shards > num_jobs {
        return Err(ExperimentError::invalid(
            "shards",
            format!(
                "{} shards for a campaign of {num_jobs} trial(s) — every shard must own at \
                 least one trial (use at most {num_jobs})",
                config.num_shards
            ),
        ));
    }
    let _run_span = telemetry::span("orchestrate.run");
    let plan = ShardPlan::partition(spec, config.num_shards)?;
    std::fs::create_dir_all(scratch_dir)
        .map_err(|e| ExperimentError::Io(format!("creating {}: {e}", scratch_dir.display())))?;
    let manifest_path = scratch_dir.join(manifest_file_name(&spec.name));
    let mut status = EventLog {
        start: Instant::now(),
        stream: status_stream,
        manifest: std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&manifest_path)
            .ok(),
    };
    let nonce = std::process::id();
    let mut stats = OrchestratorStats {
        shards: plan.shards.len(),
        ..OrchestratorStats::default()
    };
    status.emit(
        "run_start",
        vec![
            ("format", JsonValue::string(MANIFEST_FORMAT)),
            ("spec", JsonValue::string(spec.name.clone())),
            ("trials", u64_to_json(num_jobs as u64)),
            ("shards", u64_to_json(plan.shards.len() as u64)),
        ],
    );

    // Write the job files and scan for checkpoints left by a previous
    // run: a valid one marks its shard Done, an invalid one is
    // quarantined and its shard re-runs.
    let now = Instant::now();
    let mut slots: Vec<Slot> = Vec::with_capacity(plan.shards.len());
    for job in plan.jobs() {
        let job_path = scratch_dir.join(shard_job_file_name(&spec.name, &job.shard));
        job.save(&job_path)?;
        let checkpoint_path = scratch_dir.join(shard_archive_file_name_with(
            &spec.name,
            &job.shard,
            config.partial_format,
        ));
        let mut slot = Slot {
            job,
            job_path,
            checkpoint_path,
            state: ShardState::Pending,
            attempts_started: 0,
            failures: 0,
            not_before: now,
            accepted: None,
        };
        // A previous run may have checkpointed in the other format (a
        // pre-columnar run, or a format switch between runs): its
        // checkpoint is just as valid, so resume from it where it is.
        if !slot.checkpoint_path.exists() {
            let other = match config.partial_format {
                PartialFormat::Columns => PartialFormat::Json,
                PartialFormat::Json => PartialFormat::Columns,
            };
            let legacy = scratch_dir.join(shard_archive_file_name_with(
                &spec.name,
                &slot.job.shard,
                other,
            ));
            if legacy.exists() {
                slot.checkpoint_path = legacy;
            }
        }
        if slot.checkpoint_path.exists() {
            let loaded = ShardArchive::load(&slot.checkpoint_path).and_then(|partial| {
                partial.validate_for(&slot.job)?;
                Ok(partial)
            });
            match loaded {
                Ok(partial) => {
                    status.emit(
                        "checkpoint_resumed",
                        vec![
                            ("shard", u64_to_json(slot.job.shard.shard_index as u64)),
                            ("num_shards", u64_to_json(slot.job.shard.num_shards as u64)),
                            ("trials", u64_to_json(partial.records.len() as u64)),
                        ],
                    );
                    slot.accepted = Some(partial.records.iter().map(|r| r.accepted).collect());
                    slot.state = ShardState::Done;
                    stats.resumed += 1;
                    telemetry::add_count("orchestrate.resumed", 1);
                }
                Err(e) => {
                    stats.invalid_checkpoints += 1;
                    telemetry::add_count("orchestrate.checkpoints_quarantined", 1);
                    // The rejected checkpoint's telemetry sidecar (if any)
                    // is stale with it; the re-run writes a fresh one.
                    let _ = std::fs::remove_file(metrics_sidecar_path(&slot.checkpoint_path));
                    let quarantine = slot.checkpoint_path.with_file_name(format!(
                        "{}.invalid-{nonce}",
                        slot.checkpoint_path
                            .file_name()
                            .map(|n| n.to_string_lossy().into_owned())
                            .unwrap_or_default()
                    ));
                    let moved = std::fs::rename(&slot.checkpoint_path, &quarantine).is_ok();
                    status.emit(
                        "checkpoint_quarantined",
                        vec![
                            ("shard", u64_to_json(slot.job.shard.shard_index as u64)),
                            ("error", JsonValue::string(e.to_string())),
                            (
                                "quarantine",
                                if moved {
                                    JsonValue::string(quarantine.display().to_string())
                                } else {
                                    JsonValue::Null
                                },
                            ),
                        ],
                    );
                }
            }
        }
        slots.push(slot);
    }

    let total = slots.len();
    let mut done = slots.iter().filter(|s| s.state == ShardState::Done).count();
    status.emit(
        "plan_summary",
        vec![
            ("spec", JsonValue::string(spec.name.clone())),
            ("trials", u64_to_json(num_jobs as u64)),
            ("shards", u64_to_json(total as u64)),
            ("resumed", u64_to_json(done as u64)),
            ("to_run", u64_to_json((total - done) as u64)),
        ],
    );
    let cells = spec.cells();
    let mut reported_cells = vec![false; cells.len()];
    report_completed_cells(spec, &cells, &slots, &mut reported_cells, &mut status);

    // Progress/ETA bookkeeping: trials already covered by resumed
    // checkpoints are excluded from the throughput estimate, so the ETA
    // reflects what this run actually executes.
    let resumed_trials: usize = slots
        .iter()
        .filter(|s| s.state == ShardState::Done)
        .map(|s| s.job.shard.num_jobs())
        .sum();
    let mut done_trials = resumed_trials;
    emit_progress(&mut status, done_trials, num_jobs, resumed_trials);
    let mut last_progress = Instant::now();

    let max_concurrent = config.max_concurrent.max(1);
    let mut inflight: Vec<Inflight> = Vec::new();

    while done < total {
        let mut progressed = false;

        // 1. Poll in-flight attempts; completions checkpoint their shard
        //    and kill+drain any duplicate attempts of the same shard.
        let mut i = 0;
        while i < inflight.len() {
            let outcome = match inflight[i].handle.poll() {
                AttemptStatus::Running => {
                    i += 1;
                    continue;
                }
                AttemptStatus::Exited(outcome) => outcome,
            };
            let attempt = inflight.swap_remove(i);
            progressed = true;
            let failure = match outcome {
                Err(message) => Some(message),
                Ok(()) => {
                    if slots[attempt.shard_index].state == ShardState::Done {
                        // A duplicate landing after its shard finished:
                        // determinism makes it identical, so discard it.
                        stats.duplicate_results += 1;
                        telemetry::add_count("orchestrate.duplicates_discarded", 1);
                        let _ = std::fs::remove_file(&attempt.out_path);
                        let _ = std::fs::remove_file(metrics_sidecar_path(&attempt.out_path));
                        status.emit(
                            "duplicate_discarded",
                            vec![
                                ("shard", u64_to_json(attempt.shard_index as u64)),
                                ("attempt", u64_to_json(attempt.attempt as u64)),
                            ],
                        );
                        continue;
                    }
                    let slot = &mut slots[attempt.shard_index];
                    let loaded = ShardArchive::load(&attempt.out_path).and_then(|partial| {
                        partial.validate_for(&slot.job)?;
                        Ok(partial)
                    });
                    match loaded {
                        Ok(partial) => {
                            std::fs::rename(&attempt.out_path, &slot.checkpoint_path).map_err(
                                |e| {
                                    ExperimentError::Io(format!(
                                        "checkpointing shard {}: {e}",
                                        attempt.shard_index
                                    ))
                                },
                            )?;
                            // A process worker leaves a telemetry sidecar
                            // next to its attempt output; it follows the
                            // checkpoint (thread/mock launchers write
                            // none, so a missing sidecar is not an error
                            // here — only metrics collection cares).
                            let attempt_sidecar = metrics_sidecar_path(&attempt.out_path);
                            if attempt_sidecar.exists() {
                                let _ = std::fs::rename(
                                    &attempt_sidecar,
                                    metrics_sidecar_path(&slot.checkpoint_path),
                                );
                            }
                            slot.accepted =
                                Some(partial.records.iter().map(|r| r.accepted).collect());
                            slot.state = ShardState::Done;
                            done += 1;
                            done_trials += slot.job.shard.num_jobs();
                            telemetry::add_count("orchestrate.shards_done", 1);
                            status.emit(
                                "shard_done",
                                vec![
                                    ("shard", u64_to_json(attempt.shard_index as u64)),
                                    ("attempt", u64_to_json(attempt.attempt as u64)),
                                    ("trials", u64_to_json(slot.job.shard.num_jobs() as u64)),
                                    ("done", u64_to_json(done as u64)),
                                    ("total", u64_to_json(total as u64)),
                                ],
                            );
                            // First completed result wins: kill the
                            // duplicates, but drain one that finished in
                            // the same window.
                            let mut j = 0;
                            while j < inflight.len() {
                                if inflight[j].shard_index != attempt.shard_index {
                                    j += 1;
                                    continue;
                                }
                                let mut dup = inflight.swap_remove(j);
                                dup.handle.kill();
                                if let AttemptStatus::Exited(Ok(())) = dup.handle.poll() {
                                    stats.duplicate_results += 1;
                                    telemetry::add_count("orchestrate.duplicates_discarded", 1);
                                    status.emit(
                                        "duplicate_discarded",
                                        vec![
                                            ("shard", u64_to_json(dup.shard_index as u64)),
                                            ("attempt", u64_to_json(dup.attempt as u64)),
                                        ],
                                    );
                                }
                                let _ = std::fs::remove_file(&dup.out_path);
                                let _ = std::fs::remove_file(metrics_sidecar_path(&dup.out_path));
                            }
                            report_completed_cells(
                                spec,
                                &cells,
                                &slots,
                                &mut reported_cells,
                                &mut status,
                            );
                            emit_progress(&mut status, done_trials, num_jobs, resumed_trials);
                            last_progress = Instant::now();
                            None
                        }
                        // The worker exited 0 but its partial is missing
                        // or wrong: treat it exactly like a failure.
                        Err(e) => Some(format!("partial rejected: {e}")),
                    }
                }
            };
            if let Some(message) = failure {
                let _ = std::fs::remove_file(&attempt.out_path);
                let _ = std::fs::remove_file(metrics_sidecar_path(&attempt.out_path));
                let slot = &mut slots[attempt.shard_index];
                if slot.state == ShardState::Done {
                    continue; // a killed duplicate being reaped
                }
                slot.failures += 1;
                let others = inflight
                    .iter()
                    .any(|a| a.shard_index == attempt.shard_index);
                if slot.failures > config.max_retries && !others {
                    for a in &mut inflight {
                        a.handle.kill();
                    }
                    let event = RunEvent {
                        t_s: 0.0,
                        kind: "run_failed",
                        fields: vec![
                            ("shard", u64_to_json(attempt.shard_index as u64)),
                            ("failures", u64_to_json(slot.failures as u64)),
                            ("max_retries", u64_to_json(config.max_retries as u64)),
                            ("error", JsonValue::string(message)),
                        ],
                    };
                    let final_message = event.render();
                    status.emit("run_failed", event.fields);
                    return Err(ExperimentError::Orchestrate(final_message));
                }
                if others {
                    status.emit(
                        "shard_failed",
                        vec![
                            ("shard", u64_to_json(attempt.shard_index as u64)),
                            ("attempt", u64_to_json(attempt.attempt as u64)),
                            ("error", JsonValue::string(message)),
                        ],
                    );
                } else {
                    let exponent = (slot.failures - 1).min(6) as u32;
                    let backoff = config.retry_backoff.saturating_mul(1 << exponent);
                    slot.state = ShardState::Retrying;
                    slot.not_before = Instant::now() + backoff;
                    status.emit(
                        "shard_retry",
                        vec![
                            ("shard", u64_to_json(attempt.shard_index as u64)),
                            ("attempt", u64_to_json(attempt.attempt as u64)),
                            ("error", JsonValue::string(message)),
                            ("retry", u64_to_json(slot.failures as u64)),
                            ("max_retries", u64_to_json(config.max_retries as u64)),
                            ("backoff_s", JsonValue::number(backoff.as_secs_f64())),
                        ],
                    );
                }
            }
        }

        // 2. Straggler re-issue: a lone attempt past the deadline gets a
        //    duplicate (bounded to two in-flight attempts per shard).
        if let Some(timeout) = config.straggler_timeout {
            let now = Instant::now();
            let stragglers: Vec<usize> = inflight
                .iter()
                .filter(|a| {
                    slots[a.shard_index].state == ShardState::Issued
                        && now.duration_since(a.started) > timeout
                        && inflight
                            .iter()
                            .filter(|b| b.shard_index == a.shard_index)
                            .count()
                            == 1
                })
                .map(|a| a.shard_index)
                .collect();
            for shard_index in stragglers {
                if inflight.len() >= max_concurrent.max(2) {
                    break; // never let re-issues starve first attempts
                }
                let slot = &mut slots[shard_index];
                let attempt = slot.attempts_started;
                let out_path = scratch_dir.join(attempt_file_name(slot, nonce, attempt));
                let handle = launcher.launch(&slot.job, &slot.job_path, attempt, &out_path)?;
                slot.attempts_started += 1;
                stats.launched += 1;
                stats.reissues += 1;
                telemetry::add_count("orchestrate.launched", 1);
                telemetry::add_count("orchestrate.reissues", 1);
                status.emit(
                    "straggler_reissue",
                    vec![
                        ("shard", u64_to_json(shard_index as u64)),
                        ("attempt", u64_to_json(attempt as u64)),
                        ("timeout_s", JsonValue::number(timeout.as_secs_f64())),
                    ],
                );
                inflight.push(Inflight {
                    shard_index,
                    attempt,
                    out_path,
                    started: Instant::now(),
                    handle,
                });
                progressed = true;
            }
        }

        // 3. Issue new attempts while there is capacity.
        for (shard_index, slot) in slots.iter_mut().enumerate() {
            if inflight.len() >= max_concurrent {
                break;
            }
            let now = Instant::now();
            let eligible = match slot.state {
                ShardState::Pending => true,
                ShardState::Retrying => now >= slot.not_before,
                ShardState::Issued | ShardState::Done => false,
            };
            if !eligible {
                continue;
            }
            let retry = slot.state == ShardState::Retrying;
            let attempt = slot.attempts_started;
            let out_path = scratch_dir.join(attempt_file_name(slot, nonce, attempt));
            let handle = launcher.launch(&slot.job, &slot.job_path, attempt, &out_path)?;
            slot.attempts_started += 1;
            slot.state = ShardState::Issued;
            stats.launched += 1;
            telemetry::add_count("orchestrate.launched", 1);
            if retry {
                stats.retries += 1;
                telemetry::add_count("orchestrate.retries", 1);
            }
            status.emit(
                "shard_issued",
                vec![
                    ("shard", u64_to_json(shard_index as u64)),
                    ("attempt", u64_to_json(attempt as u64)),
                    ("trials", u64_to_json(slot.job.shard.num_jobs() as u64)),
                ],
            );
            inflight.push(Inflight {
                shard_index,
                attempt,
                out_path,
                started: Instant::now(),
                handle,
            });
            progressed = true;
        }

        // Heartbeat: long-running shards would otherwise leave the
        // manifest silent between completions.
        if last_progress.elapsed() >= config.progress_interval {
            emit_progress(&mut status, done_trials, num_jobs, resumed_trials);
            last_progress = Instant::now();
        }

        if !progressed {
            std::thread::sleep(config.poll_interval);
        }
    }

    // Stream the final merge from the checkpoint files: each partial is
    // loaded, folded into the per-cell accumulators and dropped before
    // the next one — the old gather-then-clone path held every record
    // twice.
    let checkpoint_paths: Vec<PathBuf> = slots.iter().map(|s| s.checkpoint_path.clone()).collect();
    let report = merge_shard_files(&checkpoint_paths)?;
    let wall_s = status.start.elapsed().as_secs_f64();
    let trials_per_s = if wall_s > 0.0 {
        num_jobs as f64 / wall_s
    } else {
        0.0
    };
    status.emit(
        "run_complete",
        vec![
            ("spec", JsonValue::string(spec.name.clone())),
            ("shards", u64_to_json(stats.shards as u64)),
            ("resumed", u64_to_json(stats.resumed as u64)),
            ("launched", u64_to_json(stats.launched as u64)),
            ("retries", u64_to_json(stats.retries as u64)),
            ("reissues", u64_to_json(stats.reissues as u64)),
            ("duplicates", u64_to_json(stats.duplicate_results as u64)),
            ("wall_s", JsonValue::number(wall_s)),
            ("trials_total", u64_to_json(num_jobs as u64)),
            ("trials_per_s", JsonValue::number(trials_per_s)),
        ],
    );
    Ok(OrchestratorRun { report, stats })
}

/// Emits one `progress` event: slots done over the total, plus
/// throughput and ETA once this run has completed slots of its own
/// (resumed checkpoints land instantly and would inflate the estimate,
/// so they count toward `done` but not toward the rate).
fn emit_progress(
    status: &mut EventLog<'_>,
    done_trials: usize,
    total_trials: usize,
    resumed: usize,
) {
    let elapsed = status.start.elapsed().as_secs_f64();
    let fresh = done_trials.saturating_sub(resumed);
    let mut fields = vec![
        ("done", u64_to_json(done_trials as u64)),
        ("total", u64_to_json(total_trials as u64)),
    ];
    if fresh > 0 && elapsed > 0.0 {
        let rate = fresh as f64 / elapsed;
        fields.push(("trials_per_s", JsonValue::number(rate)));
        let remaining = total_trials.saturating_sub(done_trials);
        fields.push(("eta_s", JsonValue::number(remaining as f64 / rate)));
    }
    status.emit("progress", fields);
}

/// Streams the interim aggregate for every cell that has just become
/// fully covered by Done shards: success counts with the 95 % Wilson
/// interval, computed from the checkpointed records.
fn report_completed_cells(
    spec: &CampaignSpec,
    cells: &[crate::grid::CellSpec],
    slots: &[Slot],
    reported: &mut [bool],
    status: &mut EventLog<'_>,
) {
    let trials_per_cell = spec.trials_per_cell;
    for (cell_index, cell) in cells.iter().enumerate() {
        if reported[cell_index] {
            continue;
        }
        let start = cell_index * trials_per_cell;
        let end = start + trials_per_cell;
        let covered = slots
            .iter()
            .filter(|s| s.job.shard.start_job < end && s.job.shard.end_job > start)
            .all(|s| s.state == ShardState::Done);
        if !covered {
            continue;
        }
        let mut successes = 0;
        let mut trials = 0;
        for slot in slots {
            let range = &slot.job.shard;
            let (lo, hi) = (range.start_job.max(start), range.end_job.min(end));
            if lo >= hi {
                continue;
            }
            let accepted = slot.accepted.as_ref().expect("covered shards are done");
            for slot_index in lo..hi {
                trials += 1;
                if accepted[slot_index - range.start_job] {
                    successes += 1;
                }
            }
        }
        let (ci_low, ci_high) = wilson_interval(successes, trials);
        let rate = if trials == 0 {
            0.0
        } else {
            successes as f64 / trials as f64
        };
        status.emit(
            "cell_complete",
            vec![
                ("cell", u64_to_json(cell_index as u64 + 1)),
                ("cells", u64_to_json(cells.len() as u64)),
                ("label", JsonValue::string(spec.cell_label(cell))),
                ("successes", u64_to_json(successes as u64)),
                ("trials", u64_to_json(trials as u64)),
                ("rate", JsonValue::number(rate)),
                ("ci_low", JsonValue::number(ci_low)),
                ("ci_high", JsonValue::number(ci_high)),
            ],
        );
        reported[cell_index] = true;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::TrialRecord;
    use crate::grid::DeliverySpec;
    use crate::shard::{merge_shards, shard_archive_file_name};
    use std::cell::RefCell;
    use std::collections::HashMap;
    use std::rc::Rc;

    fn spec_with(cells: usize, trials_per_cell: usize) -> CampaignSpec {
        CampaignSpec {
            deliveries: (0..cells)
                .map(|i| DeliverySpec::array(format!("array {i}"), 4 + i, 40.0, 40_000.0))
                .collect(),
            trials_per_cell,
            ..CampaignSpec::new("orchestrated")
        }
    }

    /// A fabricated-but-valid partial for one shard of `spec` — records
    /// agree with their slots, so it passes `validate_for` and merges.
    fn fabricated_partial(spec: &CampaignSpec, job: &ShardJob) -> ShardArchive {
        let trials_per_cell = spec.trials_per_cell;
        ShardArchive {
            spec: spec.clone(),
            shard: job.shard,
            records: (job.shard.start_job..job.shard.end_job)
                .map(|slot| TrialRecord {
                    cell_index: slot / trials_per_cell,
                    trial_index: slot % trials_per_cell,
                    seed: spec.trial_seed(slot % trials_per_cell),
                    accepted: slot % 2 == 0,
                    word_accuracy: 0.75,
                    recognized_words: vec![],
                    bystander_spl_db: None,
                    bystander_spl_dba: None,
                    bystander_voice_spl_db: None,
                    leak_audible: None,
                    power_shortfall_w: 0.0,
                    defense_features: vec![0.0; 4],
                    detection_probability: None,
                    recording_band_summary_db: None,
                })
                .collect(),
        }
    }

    /// What a scripted mock attempt should do.
    #[derive(Clone, Copy, PartialEq, Eq)]
    enum Behavior {
        /// Write the partial and exit 0 on the first poll.
        Ok,
        /// Exit non-zero on the first poll.
        Fail,
        /// Run forever (until killed).
        Hang,
        /// Run until killed, at which point the partial turns out to
        /// have completed successfully — the deterministic script of the
        /// "duplicate finished just as it was killed" race.
        OkOnKill,
    }

    struct MockAttempt {
        behavior: Behavior,
        payload: String,
        out_path: PathBuf,
        finished: bool,
        killed: bool,
    }

    impl ShardAttempt for MockAttempt {
        fn poll(&mut self) -> AttemptStatus {
            match self.behavior {
                Behavior::Ok => {
                    if !self.finished {
                        std::fs::write(&self.out_path, &self.payload).unwrap();
                        self.finished = true;
                    }
                    AttemptStatus::Exited(Ok(()))
                }
                Behavior::Fail => AttemptStatus::Exited(Err("scripted failure".to_string())),
                Behavior::Hang => {
                    if self.killed {
                        AttemptStatus::Exited(Err("killed".to_string()))
                    } else {
                        AttemptStatus::Running
                    }
                }
                Behavior::OkOnKill => {
                    if self.finished {
                        AttemptStatus::Exited(Ok(()))
                    } else {
                        AttemptStatus::Running
                    }
                }
            }
        }

        fn kill(&mut self) {
            self.killed = true;
            if self.behavior == Behavior::OkOnKill {
                std::fs::write(&self.out_path, &self.payload).unwrap();
                self.finished = true;
            }
        }
    }

    /// Scripted launcher: behavior per `(shard, attempt)` (default
    /// [`Behavior::Ok`]), recording every launch it was asked for.
    struct MockLauncher {
        spec: CampaignSpec,
        scripts: HashMap<(usize, usize), Behavior>,
        launches: Rc<RefCell<Vec<(usize, usize)>>>,
    }

    impl MockLauncher {
        fn new(spec: &CampaignSpec, scripts: &[((usize, usize), Behavior)]) -> Self {
            MockLauncher {
                spec: spec.clone(),
                scripts: scripts.iter().copied().collect(),
                launches: Rc::new(RefCell::new(Vec::new())),
            }
        }
    }

    impl ShardLauncher for MockLauncher {
        fn launch(
            &mut self,
            job: &ShardJob,
            _job_path: &Path,
            attempt: usize,
            out_path: &Path,
        ) -> Result<Box<dyn ShardAttempt>> {
            let key = (job.shard.shard_index, attempt);
            self.launches.borrow_mut().push(key);
            let behavior = self.scripts.get(&key).copied().unwrap_or(Behavior::Ok);
            Ok(Box::new(MockAttempt {
                behavior,
                payload: fabricated_partial(&self.spec, job).to_json_string(),
                out_path: out_path.to_path_buf(),
                finished: false,
                killed: false,
            }))
        }
    }

    fn test_scratch(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("ivc-orchestrate-test-{tag}-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn fast_config(num_shards: usize) -> OrchestratorConfig {
        OrchestratorConfig {
            retry_backoff: Duration::from_millis(1),
            poll_interval: Duration::from_millis(1),
            ..OrchestratorConfig::new(num_shards)
        }
    }

    /// The report an orchestrated run of the mocked campaign must equal:
    /// the merge of the fabricated partials.
    fn expected_report(spec: &CampaignSpec, num_shards: usize) -> String {
        let plan = ShardPlan::partition(spec, num_shards).unwrap();
        let partials: Vec<ShardArchive> = plan
            .jobs()
            .iter()
            .map(|job| fabricated_partial(spec, job))
            .collect();
        merge_shards(partials).unwrap().to_json_string()
    }

    #[test]
    fn healthy_shards_run_once_and_merge_byte_identically() {
        let spec = spec_with(2, 2);
        let scratch = test_scratch("healthy");
        let mut launcher = MockLauncher::new(&spec, &[]);
        let launches = Rc::clone(&launcher.launches);
        let mut status = Vec::new();
        let run = orchestrate(&spec, &fast_config(2), &scratch, &mut launcher, &mut status)
            .expect("healthy run");
        assert_eq!(run.report.to_json_string(), expected_report(&spec, 2));
        assert_eq!(run.stats.launched, 2);
        assert_eq!(run.stats.retries, 0);
        assert_eq!(run.stats.reissues, 0);
        assert_eq!(run.stats.resumed, 0);
        assert_eq!(&*launches.borrow(), &[(0, 0), (1, 0)]);
        // Checkpoints were written under the canonical names.
        for shard in &ShardPlan::partition(&spec, 2).unwrap().shards {
            assert!(scratch
                .join(shard_archive_file_name(&spec.name, shard))
                .exists());
        }
        // The interim aggregate stream reported every cell with a CI.
        let text = String::from_utf8(status).unwrap();
        assert!(text.contains("cell 1/2 complete"), "{text}");
        assert!(text.contains("cell 2/2 complete"), "{text}");
        assert!(text.contains("95% CI"), "{text}");
        // The run manifest holds the same events as structured JSONL:
        // every line parses, the first carries the format tag, and the
        // lifecycle kinds are all present.
        let manifest =
            std::fs::read_to_string(scratch.join(manifest_file_name(&spec.name))).unwrap();
        let events: Vec<JsonValue> = manifest
            .lines()
            .map(|line| JsonValue::parse(line).expect("manifest line parses"))
            .collect();
        assert_eq!(
            events[0].get("kind").and_then(JsonValue::as_str),
            Some("run_start")
        );
        assert_eq!(
            events[0].get("format").and_then(JsonValue::as_str),
            Some(MANIFEST_FORMAT)
        );
        for kind in [
            "plan_summary",
            "shard_issued",
            "shard_done",
            "cell_complete",
        ] {
            assert!(
                events
                    .iter()
                    .any(|e| e.get("kind").and_then(JsonValue::as_str) == Some(kind)),
                "manifest is missing a {kind} event"
            );
        }
        assert_eq!(
            events
                .last()
                .unwrap()
                .get("kind")
                .and_then(JsonValue::as_str),
            Some("run_complete")
        );
        std::fs::remove_dir_all(&scratch).ok();
    }

    #[test]
    fn failed_shard_is_retried_and_the_bytes_still_match() {
        let spec = spec_with(2, 2);
        let scratch = test_scratch("retry");
        let mut launcher = MockLauncher::new(&spec, &[((1, 0), Behavior::Fail)]);
        let launches = Rc::clone(&launcher.launches);
        let mut status = Vec::new();
        let run = orchestrate(&spec, &fast_config(2), &scratch, &mut launcher, &mut status)
            .expect("retried run");
        assert_eq!(run.report.to_json_string(), expected_report(&spec, 2));
        assert_eq!(run.stats.retries, 1);
        assert_eq!(run.stats.launched, 3);
        assert!(launches.borrow().contains(&(1, 1)), "retry was launched");
        let text = String::from_utf8(status).unwrap();
        assert!(text.contains("retry 1/2"), "{text}");
        // The manifest records the retry as a structured event.
        let manifest =
            std::fs::read_to_string(scratch.join(manifest_file_name(&spec.name))).unwrap();
        let retry = manifest
            .lines()
            .map(|line| JsonValue::parse(line).unwrap())
            .find(|e| e.get("kind").and_then(JsonValue::as_str) == Some("shard_retry"))
            .expect("manifest records the retry");
        assert_eq!(retry.get("shard").and_then(JsonValue::as_u64), Some(1));
        assert_eq!(retry.get("retry").and_then(JsonValue::as_u64), Some(1));
        std::fs::remove_dir_all(&scratch).ok();
    }

    #[test]
    fn exhausted_retry_budget_aborts_with_the_shard_named() {
        let spec = spec_with(2, 1);
        let scratch = test_scratch("budget");
        let mut launcher =
            MockLauncher::new(&spec, &[((0, 0), Behavior::Fail), ((0, 1), Behavior::Fail)]);
        let config = OrchestratorConfig {
            max_retries: 1,
            ..fast_config(2)
        };
        let mut status = Vec::new();
        let err = orchestrate(&spec, &config, &scratch, &mut launcher, &mut status)
            .expect_err("budget exhausted");
        let message = err.to_string();
        assert!(message.contains("shard 0"), "{message}");
        assert!(message.contains("retry budget"), "{message}");
        std::fs::remove_dir_all(&scratch).ok();
    }

    #[test]
    fn straggler_is_reissued_and_the_first_completed_result_wins() {
        let spec = spec_with(2, 1);
        let scratch = test_scratch("straggler");
        // Shard 0's first attempt hangs forever; the re-issue succeeds.
        let mut launcher = MockLauncher::new(&spec, &[((0, 0), Behavior::Hang)]);
        let config = OrchestratorConfig {
            straggler_timeout: Some(Duration::from_millis(20)),
            ..fast_config(2)
        };
        let mut status = Vec::new();
        let run = orchestrate(&spec, &config, &scratch, &mut launcher, &mut status)
            .expect("straggler run");
        assert_eq!(run.report.to_json_string(), expected_report(&spec, 2));
        assert_eq!(run.stats.reissues, 1);
        assert_eq!(run.stats.duplicate_results, 0);
        let text = String::from_utf8(status).unwrap();
        assert!(text.contains("straggling"), "{text}");
        std::fs::remove_dir_all(&scratch).ok();
    }

    #[test]
    fn duplicate_completion_is_discarded_not_merged_twice() {
        let spec = spec_with(2, 1);
        let scratch = test_scratch("duplicate");
        // Shard 0's first attempt completes exactly as it is killed —
        // the scripted version of the duplicate-completion race.  The
        // re-issue wins; the original's result must be drained and
        // discarded, never merged twice.
        let mut launcher = MockLauncher::new(&spec, &[((0, 0), Behavior::OkOnKill)]);
        let config = OrchestratorConfig {
            straggler_timeout: Some(Duration::from_millis(20)),
            ..fast_config(2)
        };
        let mut status = Vec::new();
        let run = orchestrate(&spec, &config, &scratch, &mut launcher, &mut status)
            .expect("duplicate run");
        assert_eq!(run.report.to_json_string(), expected_report(&spec, 2));
        assert_eq!(run.stats.reissues, 1);
        assert_eq!(run.stats.duplicate_results, 1);
        // Only the canonical checkpoints remain — no stray attempt files.
        let stray: Vec<String> = std::fs::read_dir(&scratch)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .filter(|n| n.contains(".attempt-"))
            .collect();
        assert!(stray.is_empty(), "stray attempt files: {stray:?}");
        std::fs::remove_dir_all(&scratch).ok();
    }

    #[test]
    fn resume_skips_valid_checkpoints_and_quarantines_corrupt_ones() {
        let spec = spec_with(2, 2);
        let scratch = test_scratch("resume");
        let plan = ShardPlan::partition(&spec, 2).unwrap();
        // Shard 0: a valid surviving checkpoint.  Shard 1: garbage.
        fabricated_partial(&spec, &plan.jobs()[0])
            .save(&scratch.join(shard_archive_file_name(&spec.name, &plan.shards[0])))
            .unwrap();
        std::fs::write(
            scratch.join(shard_archive_file_name(&spec.name, &plan.shards[1])),
            "not a partial at all",
        )
        .unwrap();
        let mut launcher = MockLauncher::new(&spec, &[]);
        let launches = Rc::clone(&launcher.launches);
        let mut status = Vec::new();
        let run = orchestrate(&spec, &fast_config(2), &scratch, &mut launcher, &mut status)
            .expect("resumed run");
        assert_eq!(run.report.to_json_string(), expected_report(&spec, 2));
        assert_eq!(run.stats.resumed, 1);
        assert_eq!(run.stats.invalid_checkpoints, 1);
        assert_eq!(
            &*launches.borrow(),
            &[(1, 0)],
            "only the shard without a valid checkpoint may run"
        );
        let text = String::from_utf8(status).unwrap();
        assert!(text.contains("resumed from checkpoint"), "{text}");
        assert!(text.contains("checkpoint rejected"), "{text}");
        std::fs::remove_dir_all(&scratch).ok();
    }

    #[test]
    fn checkpoint_from_a_different_spec_is_rejected_on_resume() {
        let spec = spec_with(2, 2);
        let scratch = test_scratch("foreign");
        let plan = ShardPlan::partition(&spec, 2).unwrap();
        // A checkpoint fabricated from a *different* spec under shard 0's
        // canonical name: validate_for must reject it and the shard must
        // re-run.
        let mut foreign = spec_with(2, 2);
        foreign.name = "someone-else".to_string();
        foreign.base_seed = 99;
        let foreign_plan = ShardPlan::partition(&foreign, 2).unwrap();
        let mut partial = fabricated_partial(&foreign, &foreign_plan.jobs()[0]);
        partial.spec = foreign;
        partial
            .save(&scratch.join(shard_archive_file_name(&spec.name, &plan.shards[0])))
            .unwrap();
        let mut launcher = MockLauncher::new(&spec, &[]);
        let mut status = Vec::new();
        let run = orchestrate(&spec, &fast_config(2), &scratch, &mut launcher, &mut status)
            .expect("run after rejecting the foreign checkpoint");
        assert_eq!(run.report.to_json_string(), expected_report(&spec, 2));
        assert_eq!(run.stats.resumed, 0);
        assert_eq!(run.stats.invalid_checkpoints, 1);
        std::fs::remove_dir_all(&scratch).ok();
    }

    #[test]
    fn oversharded_plans_are_refused_up_front() {
        let spec = spec_with(2, 1); // 2 jobs
        let scratch = test_scratch("overshard");
        let mut launcher = MockLauncher::new(&spec, &[]);
        let mut status = Vec::new();
        let err = orchestrate(&spec, &fast_config(5), &scratch, &mut launcher, &mut status)
            .expect_err("5 shards for 2 jobs");
        let message = err.to_string();
        assert!(message.contains("at least one trial"), "{message}");
        assert!(message.contains('2'), "{message}");
        std::fs::remove_dir_all(&scratch).ok();
    }
}
