//! Error type of the campaign engine.

use std::fmt;

/// Everything that can go wrong while expanding, running or archiving a
/// campaign.
#[derive(Debug, Clone, PartialEq)]
pub enum ExperimentError {
    /// A campaign specification field failed validation.
    InvalidSpec {
        /// Which field.
        field: &'static str,
        /// Why it was rejected.
        reason: String,
    },
    /// Campaign-wide setup failed before any trial ran (e.g. the
    /// recogniser could not be built).
    Setup(String),
    /// A trial of the underlying pipeline failed.
    Trial {
        /// Index of the grid cell the trial belonged to.
        cell_index: usize,
        /// Trial index within the cell.
        trial_index: usize,
        /// The pipeline's error message.
        message: String,
    },
    /// A report could not be decoded from JSON.
    Decode(String),
    /// Reading or writing an archive file failed.
    Io(String),
    /// Merging shard archives failed (spec mismatch, gaps, overlaps or
    /// records that disagree with their slots).
    Merge(String),
    /// The shard orchestrator failed (a shard exhausted its retry budget,
    /// a worker could not be spawned, or supervision broke down).
    Orchestrate(String),
}

impl ExperimentError {
    /// Convenience constructor for [`ExperimentError::InvalidSpec`].
    pub fn invalid(field: &'static str, reason: impl Into<String>) -> Self {
        ExperimentError::InvalidSpec {
            field,
            reason: reason.into(),
        }
    }

    /// Convenience constructor for [`ExperimentError::Decode`].
    pub fn decode(reason: impl Into<String>) -> Self {
        ExperimentError::Decode(reason.into())
    }
}

impl fmt::Display for ExperimentError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExperimentError::InvalidSpec { field, reason } => {
                write!(f, "invalid campaign spec: {field}: {reason}")
            }
            ExperimentError::Setup(reason) => write!(f, "campaign setup failed: {reason}"),
            ExperimentError::Trial {
                cell_index,
                trial_index,
                message,
            } => write!(
                f,
                "trial {trial_index} of cell {cell_index} failed: {message}"
            ),
            ExperimentError::Decode(reason) => write!(f, "report decode error: {reason}"),
            ExperimentError::Io(reason) => write!(f, "archive I/O error: {reason}"),
            ExperimentError::Merge(reason) => write!(f, "shard merge error: {reason}"),
            ExperimentError::Orchestrate(reason) => write!(f, "orchestrator error: {reason}"),
        }
    }
}

impl std::error::Error for ExperimentError {}

/// Result alias of the campaign engine.
pub type Result<T> = std::result::Result<T, ExperimentError>;
