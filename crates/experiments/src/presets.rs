//! Built-in campaign specs: the paper sweeps (`a1`–`a6`, `b1`–`b3`, the
//! `d`-series defense evaluation), a defense false-accept sweep, the room
//! × distance sweep, and the tiny CI smoke campaign.
//!
//! Every preset takes `quick` — `true` trims the grids and truncates the
//! commands the way the repro harness's `Fidelity::Quick` does, `false`
//! runs the full paper grids.

use crate::grid::{BandSummarySpec, CampaignSpec, DeliverySpec, DetectorSpec, EnvironmentPreset};
use ivc_acoustics::microphone::DevicePreset;
use ivc_room::RoomPreset;

fn voice_cap_s(quick: bool) -> f64 {
    if quick {
        1.1
    } else {
        f64::INFINITY
    }
}

/// E-A1 — single-speaker leakage vs drive power (bystander at 1 m).
pub fn a1(quick: bool) -> CampaignSpec {
    let powers: &[f64] = if quick {
        &[1.0, 8.0, 29.0]
    } else {
        &[0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 29.0]
    };
    CampaignSpec {
        deliveries: powers
            .iter()
            .map(|&p| DeliverySpec::single_speaker(format!("single speaker, {p} W"), p, 40_000.0))
            .collect(),
        distances_m: vec![2.0],
        max_voice_duration_s: voice_cap_s(quick),
        ..CampaignSpec::new("a1-leakage-vs-power")
    }
}

/// E-A2 — word accuracy vs distance: single speaker vs the two arrays.
pub fn a2(quick: bool) -> CampaignSpec {
    let distances: Vec<f64> = if quick {
        vec![1.0, 3.0, 6.0]
    } else {
        vec![0.5, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.6, 9.0]
    };
    // Quick mode stands the full 61-element rig down to 8 elements; the
    // label must describe what actually ran (it is archived as provenance).
    let (big_elements, big_power) = if quick { (8, 60.0) } else { (61, 400.0) };
    CampaignSpec {
        deliveries: vec![
            DeliverySpec::single_speaker(
                "single speaker (inaudibility-constrained, 3 W)",
                3.0,
                40_000.0,
            ),
            DeliverySpec::array("array (16 elements, 120 W total)", 16, 120.0, 40_000.0),
            DeliverySpec::array(
                format!("array ({big_elements} elements, {big_power} W total)"),
                big_elements,
                big_power,
                40_000.0,
            ),
        ],
        distances_m: distances,
        max_voice_duration_s: voice_cap_s(quick),
        ..CampaignSpec::new("a2-accuracy-vs-distance")
    }
}

/// Element counts shared by the `a3`/`a4` element sweeps.
fn element_counts(quick: bool) -> Vec<usize> {
    if quick {
        vec![1, 4, 8]
    } else {
        vec![1, 2, 4, 8, 16, 32, 61]
    }
}

/// E-A3 — word accuracy vs number of array elements at long range
/// (7 W per element).
pub fn a3(quick: bool) -> CampaignSpec {
    CampaignSpec {
        deliveries: element_counts(quick)
            .into_iter()
            .map(|n| {
                let power = 7.0 * n as f64;
                DeliverySpec::array(format!("{n} elements, {power} W"), n, power, 40_000.0)
            })
            .collect(),
        distances_m: vec![if quick { 4.0 } else { 7.6 }],
        max_voice_duration_s: voice_cap_s(quick),
        ..CampaignSpec::new("a3-accuracy-vs-elements")
    }
}

/// E-A4 — leakage audibility vs number of elements at equal total power
/// (30 W split across the array, bystander at 1 m).
pub fn a4(quick: bool) -> CampaignSpec {
    CampaignSpec {
        deliveries: element_counts(quick)
            .into_iter()
            .map(|n| DeliverySpec::array(format!("{n} elements, 30 W total"), n, 30.0, 40_000.0))
            .collect(),
        max_voice_duration_s: voice_cap_s(quick),
        ..CampaignSpec::new("a4-leakage-vs-elements")
    }
}

/// E-A5 — attack range per device at a fixed array configuration
/// (16 elements, 120 W): a device × distance grid whose per-device curves
/// yield the range at the 0.6-accuracy threshold.
pub fn a5(quick: bool) -> CampaignSpec {
    CampaignSpec {
        devices: vec![DevicePreset::AndroidPhone, DevicePreset::AmazonEcho],
        deliveries: vec![DeliverySpec::array(
            "array (16 elements, 120 W)",
            16,
            120.0,
            40_000.0,
        )],
        distances_m: if quick {
            vec![1.0, 2.0, 4.0, 6.0]
        } else {
            vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0]
        },
        max_voice_duration_s: voice_cap_s(quick),
        ..CampaignSpec::new("a5-range-per-device")
    }
}

/// E-A6 — demodulated quality vs carrier frequency: the carrier-frequency
/// axis over a fixed 10 W single speaker at 1.5 m.
pub fn a6(quick: bool) -> CampaignSpec {
    let carriers: &[f64] = if quick {
        &[30_000.0, 40_000.0, 60_000.0]
    } else {
        &[
            28_000.0, 32_000.0, 36_000.0, 40_000.0, 48_000.0, 56_000.0, 64_000.0,
        ]
    };
    CampaignSpec {
        deliveries: vec![DeliverySpec::single_speaker(
            "single speaker, 10 W",
            10.0,
            40_000.0,
        )],
        carriers_hz: carriers.iter().map(|&hz| Some(hz)).collect(),
        distances_m: vec![1.5],
        max_voice_duration_s: voice_cap_s(quick),
        ..CampaignSpec::new("a6-carrier-frequency")
    }
}

/// E-B1 — Song–Mittal Table 1: attack range vs speaker input power — the
/// power axis × devices × a fine distance grid (30 kHz carrier).
pub fn b1(quick: bool) -> CampaignSpec {
    let powers = [9.2, 11.8, 14.8, 18.7, 23.7];
    CampaignSpec {
        devices: vec![DevicePreset::AndroidPhone, DevicePreset::AmazonEcho],
        deliveries: vec![DeliverySpec::single_speaker(
            "single speaker",
            18.7,
            30_000.0,
        )],
        powers_w: powers.iter().map(|&w| Some(w)).collect(),
        distances_m: if quick {
            vec![0.5, 1.0, 1.5, 2.0, 2.5, 3.0, 3.5, 4.0]
        } else {
            (1..=45).map(|i| i as f64 * 0.1).collect()
        },
        max_voice_duration_s: voice_cap_s(quick),
        ..CampaignSpec::new("b1-range-vs-power")
    }
}

/// E-B2 — the recording leg of the spectrogram triplet: one cell whose
/// trial archives the recording's band-energy summary (the normal-voice
/// and attack-drive legs are signal analysis, not trials).
pub fn b2(quick: bool) -> CampaignSpec {
    CampaignSpec {
        deliveries: vec![DeliverySpec::single_speaker(
            "single speaker, 18.7 W",
            18.7,
            30_000.0,
        )],
        recording_band_summary: Some(BandSummarySpec {
            bands: 8,
            max_hz: 8_000.0,
        }),
        max_voice_duration_s: voice_cap_s(quick),
        ..CampaignSpec::new("b2-spectrogram-recording")
    }
}

/// Room × distance sweep: the same array attack in every room preset,
/// from the free-field-equivalent `Anechoic` baseline to the occluded
/// `ThroughDoorway` layout.
pub fn rooms(quick: bool) -> CampaignSpec {
    let room_axis: Vec<Option<RoomPreset>> = if quick {
        vec![
            Some(RoomPreset::Anechoic),
            Some(RoomPreset::Office),
            Some(RoomPreset::ConferenceRoom),
            Some(RoomPreset::ThroughDoorway),
        ]
    } else {
        vec![
            Some(RoomPreset::Anechoic),
            Some(RoomPreset::Office),
            Some(RoomPreset::ConferenceRoom),
            Some(RoomPreset::Corridor),
            Some(RoomPreset::ThroughDoorway),
        ]
    };
    CampaignSpec {
        deliveries: vec![DeliverySpec::array(
            "array (12 elements, 100 W)",
            12,
            100.0,
            40_000.0,
        )],
        rooms: room_axis,
        distances_m: if quick {
            vec![1.0, 2.0, 4.0]
        } else {
            vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]
        },
        trials_per_cell: if quick { 1 } else { 3 },
        max_voice_duration_s: voice_cap_s(quick),
        ..CampaignSpec::new("rooms-vs-distance")
    }
}

/// E-B3 — success rate over repeated trials (Song–Mittal §4.2): one spec
/// per (device, distance, command) case.
pub fn b3(quick: bool) -> Vec<CampaignSpec> {
    let trials = if quick { 5 } else { 50 };
    let cases = [
        (
            "b3-success-android",
            DevicePreset::AndroidPhone,
            3.0,
            2usize,
        ),
        ("b3-success-echo", DevicePreset::AmazonEcho, 2.0, 1usize),
    ];
    cases
        .into_iter()
        .map(|(name, device, distance, command_index)| CampaignSpec {
            devices: vec![device],
            deliveries: vec![DeliverySpec::single_speaker(
                "single speaker, 18.7 W",
                18.7,
                30_000.0,
            )],
            command_indices: vec![command_index],
            distances_m: vec![distance],
            trials_per_cell: trials,
            base_seed: 1_000,
            max_voice_duration_s: voice_cap_s(quick),
            ..CampaignSpec::new(name)
        })
        .collect()
}

/// A defense-oriented false-accept sweep: a legitimate talker against the
/// two attack flavours, across distances and environments, with repeated
/// trials — the acceptance-rate side of the defense evaluation.
pub fn defense(quick: bool) -> CampaignSpec {
    CampaignSpec {
        deliveries: vec![
            DeliverySpec::legitimate("legitimate talker, 65 dB", 65.0),
            DeliverySpec::single_speaker("single speaker, 18.7 W", 18.7, 40_000.0),
            DeliverySpec::array("array (8 elements, 60 W)", 8, 60.0, 40_000.0),
        ],
        environments: if quick {
            vec![EnvironmentPreset::MeetingRoom]
        } else {
            vec![
                EnvironmentPreset::MeetingRoom,
                EnvironmentPreset::SummerHumid,
            ]
        },
        distances_m: if quick {
            vec![1.5, 3.0]
        } else {
            vec![1.0, 2.0, 3.0, 5.0]
        },
        trials_per_cell: if quick { 2 } else { 5 },
        base_seed: 42,
        max_voice_duration_s: voice_cap_s(quick),
        ..CampaignSpec::new("defense-acceptance-sweep")
    }
}

/// The shared shape of the d-series evaluation grids: a legitimate talker
/// and the standard 8-element attack, scored by the trained detector.
fn d_series_base(name: &str, quick: bool) -> CampaignSpec {
    CampaignSpec {
        detectors: vec![Some(DetectorSpec::standard(quick))],
        deliveries: vec![
            DeliverySpec::legitimate("legitimate talker, 65 dB", 65.0),
            DeliverySpec::array("array (8 elements, 40 W)", 8, 40.0, 40_000.0),
        ],
        trials_per_cell: if quick { 2 } else { 4 },
        base_seed: 100,
        max_voice_duration_s: voice_cap_s(quick),
        ..CampaignSpec::new(name)
    }
}

/// E-D1/E-D2 — defense feature separation: legitimate vs attack trials
/// whose archived feature vectors (and detector probabilities) feed the
/// per-class feature-mean table.
pub fn d1(quick: bool) -> CampaignSpec {
    CampaignSpec {
        distances_m: if quick {
            vec![1.5, 3.0]
        } else {
            vec![1.0, 2.0, 3.0, 5.0]
        },
        command_indices: if quick { vec![0] } else { vec![0, 1, 2, 3] },
        ..d_series_base("d1-feature-separation", quick)
    }
}

/// E-D3 — the detector's ROC corpus: the d1 grid with more repeated
/// trials, so the per-trial `(probability, label)` pairs trace a curve.
pub fn d3(quick: bool) -> CampaignSpec {
    CampaignSpec {
        distances_m: if quick {
            vec![1.5, 3.0]
        } else {
            vec![1.0, 2.0, 3.0, 5.0]
        },
        command_indices: if quick { vec![0] } else { vec![0, 1, 2, 3] },
        trials_per_cell: if quick { 3 } else { 6 },
        ..d_series_base("d3-roc", quick)
    }
}

/// E-D4 — detection accuracy per device and distance.
pub fn d4(quick: bool) -> CampaignSpec {
    CampaignSpec {
        devices: vec![DevicePreset::AndroidPhone, DevicePreset::AmazonEcho],
        distances_m: if quick {
            vec![2.0]
        } else {
            vec![1.0, 3.0, 5.0]
        },
        command_indices: if quick { vec![1] } else { vec![1, 2, 4] },
        ..d_series_base("d4-detection-grid", quick)
    }
}

/// E-D5 — detection robustness vs ambient noise: one spec per noise
/// level (the ambient level is a campaign scalar, like `b3`'s cases).
pub fn d5(quick: bool) -> Vec<CampaignSpec> {
    let levels: &[f64] = if quick {
        &[40.0, 60.0]
    } else {
        &[35.0, 45.0, 55.0, 65.0]
    };
    levels
        .iter()
        .map(|&spl| CampaignSpec {
            ambient_noise_spl_db: spl,
            distances_m: vec![2.0],
            ..d_series_base(&format!("d5-noise-{spl:.0}db"), quick)
        })
        .collect()
}

/// E-D6 — the adaptive attacker: a shadow-suppression sweep of the attack
/// delivery, scored by the trained detector.
pub fn d6(quick: bool) -> CampaignSpec {
    let suppressions: &[f64] = if quick {
        &[0.0, 0.5, 1.0]
    } else {
        &[0.0, 0.25, 0.5, 0.75, 1.0]
    };
    CampaignSpec {
        detectors: vec![Some(DetectorSpec::standard(quick))],
        deliveries: suppressions
            .iter()
            .map(|&alpha| {
                DeliverySpec::array(
                    format!("array (8 elements, 60 W), suppression {alpha}"),
                    8,
                    60.0,
                    40_000.0,
                )
                .with_shadow_suppression(alpha)
            })
            .collect(),
        max_voice_duration_s: voice_cap_s(quick),
        ..CampaignSpec::new("d6-adaptive-attacker")
    }
}

/// The CI smoke campaign: a 2 x 2 grid, one trial per cell, truncated
/// commands — seconds of wall clock, exercising the whole engine.
pub fn smoke() -> CampaignSpec {
    CampaignSpec {
        deliveries: vec![
            DeliverySpec::single_speaker("single speaker, 18.7 W", 18.7, 30_000.0),
            DeliverySpec::array("array (6 elements, 60 W)", 6, 60.0, 40_000.0),
        ],
        distances_m: vec![1.0, 2.0],
        max_voice_duration_s: 0.9,
        ..CampaignSpec::new("smoke")
    }
}

/// Preset names accepted by [`by_name`], for help text.
pub const PRESET_NAMES: [&str; 17] = [
    "smoke", "a1", "a2", "a3", "a4", "a5", "a6", "b1", "b2", "b3", "defense", "rooms", "d1", "d3",
    "d4", "d5", "d6",
];

/// Looks a preset up by name; `b3` and `d5` expand to their per-case
/// campaigns, and `d2` is an alias of `d1` (one corpus feeds both the
/// E-D1 and E-D2 tables).
pub fn by_name(name: &str, quick: bool) -> Option<Vec<CampaignSpec>> {
    match name {
        "smoke" => Some(vec![smoke()]),
        "a1" => Some(vec![a1(quick)]),
        "a2" => Some(vec![a2(quick)]),
        "a3" => Some(vec![a3(quick)]),
        "a4" => Some(vec![a4(quick)]),
        "a5" => Some(vec![a5(quick)]),
        "a6" => Some(vec![a6(quick)]),
        "b1" => Some(vec![b1(quick)]),
        "b2" => Some(vec![b2(quick)]),
        "b3" => Some(b3(quick)),
        "defense" => Some(vec![defense(quick)]),
        "rooms" => Some(vec![rooms(quick)]),
        "d1" | "d2" => Some(vec![d1(quick)]),
        "d3" => Some(vec![d3(quick)]),
        "d4" => Some(vec![d4(quick)]),
        "d5" => Some(d5(quick)),
        "d6" => Some(vec![d6(quick)]),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_validate_and_have_the_documented_shapes() {
        for name in PRESET_NAMES {
            for quick in [true, false] {
                let specs = by_name(name, quick).unwrap();
                assert!(!specs.is_empty(), "{name}");
                for spec in &specs {
                    spec.validate().unwrap_or_else(|e| panic!("{name}: {e}"));
                }
            }
        }
        assert!(by_name("nonexistent", true).is_none());
        // Shapes the harness depends on.
        assert_eq!(a1(true).num_cells(), 3);
        assert_eq!(a1(false).num_cells(), 7);
        assert_eq!(a2(true).num_cells(), 9);
        assert_eq!(a2(false).num_cells(), 27);
        assert_eq!(a3(true).num_cells(), 3);
        assert_eq!(a3(false).num_cells(), 7);
        assert_eq!(a4(true).num_cells(), 3);
        assert_eq!(a5(true).num_cells(), 2 * 4);
        assert_eq!(a5(false).num_cells(), 2 * 9);
        assert_eq!(a6(true).num_cells(), 3);
        assert_eq!(a6(false).num_cells(), 7);
        assert_eq!(b1(true).num_cells(), 2 * 5 * 8);
        assert_eq!(b1(false).num_cells(), 2 * 5 * 45);
        assert_eq!(b2(true).num_cells(), 1);
        assert_eq!(rooms(true).num_cells(), 4 * 3);
        assert_eq!(rooms(false).num_cells(), 5 * 6);
        // The a3/a4 sweeps pin the element-sweep scenarios of the bespoke
        // loops they replaced: one trial at seed 1 per cell.
        assert_eq!(a3(true).trials_per_cell, 1);
        assert_eq!(a3(true).base_seed, 1);
        assert_eq!(a4(true).distances_m, vec![2.0]);
        assert_eq!(b3(true).len(), 2);
        assert_eq!(b3(true)[0].num_trials(), 5);
        assert_eq!(b3(false)[0].num_trials(), 50);
        // The migrated element/carrier/power sweeps pin the scenarios of
        // the bespoke loops they replaced: one trial at seed 1 per cell.
        for spec in [a5(true), a6(true), b1(true), b2(true)] {
            assert_eq!(spec.trials_per_cell, 1, "{}", spec.name);
            assert_eq!(spec.base_seed, 1, "{}", spec.name);
        }
        // The d-series runs with a trained detector on every cell; d6
        // sweeps the adaptive attacker's suppression across deliveries.
        for spec in [d1(true), d3(true), d4(true), d6(true)] {
            assert!(spec.detectors[0].is_some(), "{}", spec.name);
        }
        assert_eq!(d4(true).devices.len(), 2);
        assert_eq!(d5(true).len(), 2);
        assert_eq!(d5(false).len(), 4);
        assert_eq!(d5(true)[1].ambient_noise_spl_db, 60.0);
        let d6_spec = d6(true);
        assert_eq!(d6_spec.deliveries.len(), 3);
        assert_eq!(d6_spec.deliveries[0].shadow_suppression, 0.0);
        assert_eq!(d6_spec.deliveries[2].shadow_suppression, 1.0);
        assert_eq!(
            b2(true).recording_band_summary,
            Some(BandSummarySpec {
                bands: 8,
                max_hz: 8_000.0
            })
        );
        let smoke = smoke();
        assert_eq!(smoke.num_cells(), 4);
        assert_eq!(smoke.trials_per_cell, 1);
        // The smoke campaign must stay tiny: it runs on every CI push.
        assert!(smoke.num_trials() <= 4);
        assert!(smoke.max_voice_duration_s <= 1.0);
    }

    #[test]
    fn a2_quick_and_full_differ_only_where_documented() {
        let quick = a2(true);
        let full = a2(false);
        assert_eq!(quick.deliveries.len(), full.deliveries.len());
        assert_eq!(quick.deliveries[0], full.deliveries[0]);
        assert_eq!(quick.deliveries[1], full.deliveries[1]);
        assert_ne!(quick.deliveries[2], full.deliveries[2]);
        assert!(quick.distances_m.len() < full.distances_m.len());
    }
}
