//! Built-in campaign specs: the paper sweeps (`a1`, `a2`, `b3`), a defense
//! false-accept sweep, and the tiny CI smoke campaign.
//!
//! Every preset takes `quick` — `true` trims the grids and truncates the
//! commands the way the repro harness's `Fidelity::Quick` does, `false`
//! runs the full paper grids.

use crate::grid::{CampaignSpec, DeliverySpec, EnvironmentPreset};
use ivc_acoustics::microphone::DevicePreset;

fn voice_cap_s(quick: bool) -> f64 {
    if quick {
        1.1
    } else {
        f64::INFINITY
    }
}

/// E-A1 — single-speaker leakage vs drive power (bystander at 1 m).
pub fn a1(quick: bool) -> CampaignSpec {
    let powers: &[f64] = if quick {
        &[1.0, 8.0, 29.0]
    } else {
        &[0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 29.0]
    };
    CampaignSpec {
        deliveries: powers
            .iter()
            .map(|&p| DeliverySpec::single_speaker(format!("single speaker, {p} W"), p, 40_000.0))
            .collect(),
        distances_m: vec![2.0],
        max_voice_duration_s: voice_cap_s(quick),
        ..CampaignSpec::new("a1-leakage-vs-power")
    }
}

/// E-A2 — word accuracy vs distance: single speaker vs the two arrays.
pub fn a2(quick: bool) -> CampaignSpec {
    let distances: Vec<f64> = if quick {
        vec![1.0, 3.0, 6.0]
    } else {
        vec![0.5, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.6, 9.0]
    };
    // Quick mode stands the full 61-element rig down to 8 elements; the
    // label must describe what actually ran (it is archived as provenance).
    let (big_elements, big_power) = if quick { (8, 60.0) } else { (61, 400.0) };
    CampaignSpec {
        deliveries: vec![
            DeliverySpec::single_speaker(
                "single speaker (inaudibility-constrained, 3 W)",
                3.0,
                40_000.0,
            ),
            DeliverySpec::array("array (16 elements, 120 W total)", 16, 120.0, 40_000.0),
            DeliverySpec::array(
                format!("array ({big_elements} elements, {big_power} W total)"),
                big_elements,
                big_power,
                40_000.0,
            ),
        ],
        distances_m: distances,
        max_voice_duration_s: voice_cap_s(quick),
        ..CampaignSpec::new("a2-accuracy-vs-distance")
    }
}

/// E-B3 — success rate over repeated trials (Song–Mittal §4.2): one spec
/// per (device, distance, command) case.
pub fn b3(quick: bool) -> Vec<CampaignSpec> {
    let trials = if quick { 5 } else { 50 };
    let cases = [
        (
            "b3-success-android",
            DevicePreset::AndroidPhone,
            3.0,
            2usize,
        ),
        ("b3-success-echo", DevicePreset::AmazonEcho, 2.0, 1usize),
    ];
    cases
        .into_iter()
        .map(|(name, device, distance, command_index)| CampaignSpec {
            devices: vec![device],
            deliveries: vec![DeliverySpec::single_speaker(
                "single speaker, 18.7 W",
                18.7,
                30_000.0,
            )],
            command_indices: vec![command_index],
            distances_m: vec![distance],
            trials_per_cell: trials,
            base_seed: 1_000,
            max_voice_duration_s: voice_cap_s(quick),
            ..CampaignSpec::new(name)
        })
        .collect()
}

/// A defense-oriented false-accept sweep: a legitimate talker against the
/// two attack flavours, across distances and environments, with repeated
/// trials — the acceptance-rate side of the defense evaluation.
pub fn defense(quick: bool) -> CampaignSpec {
    CampaignSpec {
        deliveries: vec![
            DeliverySpec::legitimate("legitimate talker, 65 dB", 65.0),
            DeliverySpec::single_speaker("single speaker, 18.7 W", 18.7, 40_000.0),
            DeliverySpec::array("array (8 elements, 60 W)", 8, 60.0, 40_000.0),
        ],
        environments: if quick {
            vec![EnvironmentPreset::MeetingRoom]
        } else {
            vec![
                EnvironmentPreset::MeetingRoom,
                EnvironmentPreset::SummerHumid,
            ]
        },
        distances_m: if quick {
            vec![1.5, 3.0]
        } else {
            vec![1.0, 2.0, 3.0, 5.0]
        },
        trials_per_cell: if quick { 2 } else { 5 },
        base_seed: 42,
        max_voice_duration_s: voice_cap_s(quick),
        ..CampaignSpec::new("defense-acceptance-sweep")
    }
}

/// The CI smoke campaign: a 2 x 2 grid, one trial per cell, truncated
/// commands — seconds of wall clock, exercising the whole engine.
pub fn smoke() -> CampaignSpec {
    CampaignSpec {
        deliveries: vec![
            DeliverySpec::single_speaker("single speaker, 18.7 W", 18.7, 30_000.0),
            DeliverySpec::array("array (6 elements, 60 W)", 6, 60.0, 40_000.0),
        ],
        distances_m: vec![1.0, 2.0],
        max_voice_duration_s: 0.9,
        ..CampaignSpec::new("smoke")
    }
}

/// Preset names accepted by [`by_name`], for help text.
pub const PRESET_NAMES: [&str; 5] = ["smoke", "a1", "a2", "b3", "defense"];

/// Looks a preset up by name; `b3` expands to its two case campaigns.
pub fn by_name(name: &str, quick: bool) -> Option<Vec<CampaignSpec>> {
    match name {
        "smoke" => Some(vec![smoke()]),
        "a1" => Some(vec![a1(quick)]),
        "a2" => Some(vec![a2(quick)]),
        "b3" => Some(b3(quick)),
        "defense" => Some(vec![defense(quick)]),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_validate_and_have_the_documented_shapes() {
        for name in PRESET_NAMES {
            for quick in [true, false] {
                let specs = by_name(name, quick).unwrap();
                assert!(!specs.is_empty(), "{name}");
                for spec in &specs {
                    spec.validate().unwrap_or_else(|e| panic!("{name}: {e}"));
                }
            }
        }
        assert!(by_name("nonexistent", true).is_none());
        // Shapes the harness depends on.
        assert_eq!(a1(true).num_cells(), 3);
        assert_eq!(a1(false).num_cells(), 7);
        assert_eq!(a2(true).num_cells(), 9);
        assert_eq!(a2(false).num_cells(), 27);
        assert_eq!(b3(true).len(), 2);
        assert_eq!(b3(true)[0].num_trials(), 5);
        assert_eq!(b3(false)[0].num_trials(), 50);
        let smoke = smoke();
        assert_eq!(smoke.num_cells(), 4);
        assert_eq!(smoke.trials_per_cell, 1);
        // The smoke campaign must stay tiny: it runs on every CI push.
        assert!(smoke.num_trials() <= 4);
        assert!(smoke.max_voice_duration_s <= 1.0);
    }

    #[test]
    fn a2_quick_and_full_differ_only_where_documented() {
        let quick = a2(true);
        let full = a2(false);
        assert_eq!(quick.deliveries.len(), full.deliveries.len());
        assert_eq!(quick.deliveries[0], full.deliveries[0]);
        assert_eq!(quick.deliveries[1], full.deliveries[1]);
        assert_ne!(quick.deliveries[2], full.deliveries[2]);
        assert!(quick.distances_m.len() < full.distances_m.len());
    }
}
