//! The compact binary columnar trial-record format,
//! [`ivc-trial-columns-v1`](COLUMNS_FORMAT) — the wire and checkpoint
//! format shard workers ship their partial archives in.
//!
//! Layout (everything little-endian, built on [`ivc_core::columns`]):
//!
//! ```text
//! str   format tag        "ivc-trial-columns-v1" (length-prefixed)
//! str   spec              the CampaignSpec as its deterministic JSON text
//! u64×4 shard range       shard_index, num_shards, start_job, end_job
//! u64   record count
//! u64   column count      always 14 (one column per TrialRecord field)
//! col×14                  length-prefixed columns, in field order
//! ```
//!
//! One column per [`TrialRecord`] field, each framed with a u64 byte
//! length so a reader can skip to any column in O(1); fixed-width columns
//! (indices, seeds, flags, scalars — 1 or 8 bytes per record) are then
//! directly addressable by record number, which keeps the layout
//! mmap-friendly.  Optional fields carry one presence byte per record
//! (`0` = absent) ahead of the value; vector fields a u64 element count.
//! `f64` values travel as raw IEEE-754 bits, so every record — including
//! negative zeros and NaN payloads — round-trips exactly, and the same
//! archive always serialises to the same bytes.
//!
//! JSON ([`SHARD_FORMAT`](crate::shard::SHARD_FORMAT)) remains the
//! human-facing export: [`ShardArchive::load`](crate::ShardArchive::load)
//! accepts both formats, and `repro export-json` converts a columnar
//! partial back to its JSON form.

use crate::error::{ExperimentError, Result};
use crate::executor::TrialRecord;
use crate::report::{spec_from_json, spec_to_json};
use crate::shard::{ShardArchive, ShardRange};
use ivc_core::columns as col;
use ivc_core::json::JsonValue;

/// Format tag of the columnar shard archive.
pub const COLUMNS_FORMAT: &str = "ivc-trial-columns-v1";

/// Number of columns: one per [`TrialRecord`] field.
const NUM_COLUMNS: u64 = 14;

fn decode_err(e: impl std::fmt::Display) -> ExperimentError {
    ExperimentError::decode(format!("columnar shard archive: {e}"))
}

/// Serialises a shard archive to its deterministic columnar bytes.
pub fn to_column_bytes(archive: &ShardArchive) -> Vec<u8> {
    let records = &archive.records;
    let mut out = Vec::new();
    col::put_str(&mut out, COLUMNS_FORMAT);
    col::put_str(&mut out, &spec_to_json(&archive.spec).to_json_string());
    col::put_u64(&mut out, archive.shard.shard_index as u64);
    col::put_u64(&mut out, archive.shard.num_shards as u64);
    col::put_u64(&mut out, archive.shard.start_job as u64);
    col::put_u64(&mut out, archive.shard.end_job as u64);
    col::put_u64(&mut out, records.len() as u64);
    col::put_u64(&mut out, NUM_COLUMNS);
    let column = |out: &mut Vec<u8>, write: &dyn Fn(&mut Vec<u8>, &TrialRecord)| {
        col::put_column(out, |buf| {
            for record in records {
                write(buf, record);
            }
        });
    };
    column(&mut out, &|b, r| col::put_u64(b, r.cell_index as u64));
    column(&mut out, &|b, r| col::put_u64(b, r.trial_index as u64));
    column(&mut out, &|b, r| col::put_u64(b, r.seed));
    column(&mut out, &|b, r| col::put_u8(b, u8::from(r.accepted)));
    column(&mut out, &|b, r| col::put_f64(b, r.word_accuracy));
    column(&mut out, &|b, r| {
        col::put_u64(b, r.recognized_words.len() as u64);
        for word in &r.recognized_words {
            col::put_str(b, word);
        }
    });
    column(&mut out, &|b, r| put_opt_f64(b, r.bystander_spl_db));
    column(&mut out, &|b, r| put_opt_f64(b, r.bystander_spl_dba));
    column(&mut out, &|b, r| put_opt_f64(b, r.bystander_voice_spl_db));
    column(&mut out, &|b, r| {
        // 0 = None, 1 = Some(false), 2 = Some(true).
        col::put_u8(b, r.leak_audible.map_or(0, |a| 1 + u8::from(a)));
    });
    column(&mut out, &|b, r| col::put_f64(b, r.power_shortfall_w));
    column(&mut out, &|b, r| {
        col::put_u64(b, r.defense_features.len() as u64);
        for value in &r.defense_features {
            col::put_f64(b, *value);
        }
    });
    column(&mut out, &|b, r| put_opt_f64(b, r.detection_probability));
    column(&mut out, &|b, r| match &r.recording_band_summary_db {
        None => col::put_u8(b, 0),
        Some(bands) => {
            col::put_u8(b, 1);
            col::put_u64(b, bands.len() as u64);
            for value in bands {
                col::put_f64(b, *value);
            }
        }
    });
    out
}

fn put_opt_f64(out: &mut Vec<u8>, value: Option<f64>) {
    match value {
        None => col::put_u8(out, 0),
        Some(value) => {
            col::put_u8(out, 1);
            col::put_f64(out, value);
        }
    }
}

/// Whether `bytes` claim to be a columnar shard archive (any version):
/// the content-sniff [`ShardArchive::load`] uses to keep accepting JSON
/// partials from the same call site.  JSON documents start with `{`;
/// a columnar one starts with the length prefix of its format tag.
pub fn looks_columnar(bytes: &[u8]) -> bool {
    !bytes.starts_with(b"{")
}

/// Parses columnar bytes back into a shard archive, rejecting wrong or
/// old format tags with a versioned error and truncated or trailing
/// bytes loudly.
pub fn from_column_bytes(bytes: &[u8]) -> Result<ShardArchive> {
    let mut cursor = col::Cursor::new(bytes);
    let format = cursor.take_str().map_err(decode_err)?;
    if format != COLUMNS_FORMAT {
        return Err(ExperimentError::decode(format!(
            "unsupported shard archive format '{format}' (expected '{COLUMNS_FORMAT}')"
        )));
    }
    let spec_text = cursor.take_str().map_err(decode_err)?;
    let spec_json =
        JsonValue::parse(spec_text).map_err(|e| decode_err(format!("spec JSON: {e}")))?;
    let spec = spec_from_json(&spec_json)?;
    let shard = ShardRange {
        shard_index: cursor.take_len().map_err(decode_err)?,
        num_shards: cursor.take_len().map_err(decode_err)?,
        start_job: cursor.take_len().map_err(decode_err)?,
        end_job: cursor.take_len().map_err(decode_err)?,
    };
    let count = cursor.take_len().map_err(decode_err)?;
    let columns = cursor.take_u64().map_err(decode_err)?;
    if columns != NUM_COLUMNS {
        return Err(ExperimentError::decode(format!(
            "columnar shard archive carries {columns} column(s), expected {NUM_COLUMNS}"
        )));
    }
    // Guard the allocation before trusting the count: every record costs
    // at least one byte per fixed-width column, so a count the document
    // cannot possibly back is rejected without allocating for it.
    if count > bytes.len() {
        return Err(ExperimentError::decode(format!(
            "columnar shard archive claims {count} record(s) in a {}-byte document",
            bytes.len()
        )));
    }

    let mut take = |what: &str| -> Result<col::Cursor<'_>> {
        cursor
            .take_column()
            .map_err(|e| decode_err(format!("{what} column: {e}")))
    };
    let mut cell_index = take("cell_index")?;
    let mut trial_index = take("trial_index")?;
    let mut seed = take("seed")?;
    let mut accepted = take("accepted")?;
    let mut word_accuracy = take("word_accuracy")?;
    let mut recognized_words = take("recognized_words")?;
    let mut bystander_spl_db = take("bystander_spl_db")?;
    let mut bystander_spl_dba = take("bystander_spl_dba")?;
    let mut bystander_voice_spl_db = take("bystander_voice_spl_db")?;
    let mut leak_audible = take("leak_audible")?;
    let mut power_shortfall = take("power_shortfall_w")?;
    let mut defense_features = take("defense_features")?;
    let mut detection_probability = take("detection_probability")?;
    let mut band_summary = take("recording_band_summary_db")?;
    cursor.expect_end().map_err(decode_err)?;

    let mut records = Vec::with_capacity(count);
    for _ in 0..count {
        records.push(TrialRecord {
            cell_index: cell_index.take_len().map_err(decode_err)?,
            trial_index: trial_index.take_len().map_err(decode_err)?,
            seed: seed.take_u64().map_err(decode_err)?,
            accepted: match accepted.take_u8().map_err(decode_err)? {
                0 => false,
                1 => true,
                other => {
                    return Err(decode_err(format!("accepted flag byte {other}")));
                }
            },
            word_accuracy: word_accuracy.take_f64().map_err(decode_err)?,
            recognized_words: {
                let n = recognized_words.take_len().map_err(decode_err)?;
                let mut words = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    words.push(recognized_words.take_str().map_err(decode_err)?.to_string());
                }
                words
            },
            bystander_spl_db: take_opt_f64(&mut bystander_spl_db)?,
            bystander_spl_dba: take_opt_f64(&mut bystander_spl_dba)?,
            bystander_voice_spl_db: take_opt_f64(&mut bystander_voice_spl_db)?,
            leak_audible: match leak_audible.take_u8().map_err(decode_err)? {
                0 => None,
                1 => Some(false),
                2 => Some(true),
                other => {
                    return Err(decode_err(format!("leak_audible flag byte {other}")));
                }
            },
            power_shortfall_w: power_shortfall.take_f64().map_err(decode_err)?,
            defense_features: {
                let n = defense_features.take_len().map_err(decode_err)?;
                let mut values = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    values.push(defense_features.take_f64().map_err(decode_err)?);
                }
                values
            },
            detection_probability: take_opt_f64(&mut detection_probability)?,
            recording_band_summary_db: match band_summary.take_u8().map_err(decode_err)? {
                0 => None,
                1 => {
                    let n = band_summary.take_len().map_err(decode_err)?;
                    let mut values = Vec::with_capacity(n.min(1024));
                    for _ in 0..n {
                        values.push(band_summary.take_f64().map_err(decode_err)?);
                    }
                    Some(values)
                }
                other => {
                    return Err(decode_err(format!("band summary presence byte {other}")));
                }
            },
        });
    }
    for (name, column) in [
        ("cell_index", &cell_index),
        ("trial_index", &trial_index),
        ("seed", &seed),
        ("accepted", &accepted),
        ("word_accuracy", &word_accuracy),
        ("recognized_words", &recognized_words),
        ("bystander_spl_db", &bystander_spl_db),
        ("bystander_spl_dba", &bystander_spl_dba),
        ("bystander_voice_spl_db", &bystander_voice_spl_db),
        ("leak_audible", &leak_audible),
        ("power_shortfall_w", &power_shortfall),
        ("defense_features", &defense_features),
        ("detection_probability", &detection_probability),
        ("recording_band_summary_db", &band_summary),
    ] {
        if column.remaining() != 0 {
            return Err(decode_err(format!(
                "{name} column carries {} trailing byte(s) after {count} record(s)",
                column.remaining()
            )));
        }
    }
    Ok(ShardArchive {
        spec,
        shard,
        records,
    })
}

fn take_opt_f64(cursor: &mut col::Cursor<'_>) -> Result<Option<f64>> {
    match cursor.take_u8().map_err(decode_err)? {
        0 => Ok(None),
        1 => Ok(Some(cursor.take_f64().map_err(decode_err)?)),
        other => Err(decode_err(format!("presence byte {other}"))),
    }
}

/// Reads just the shard range from columnar bytes — the header is a few
/// length-prefixed fields, so ordering partials for a streaming merge
/// never decodes their record columns.
pub fn peek_column_range(bytes: &[u8]) -> Result<ShardRange> {
    let mut cursor = col::Cursor::new(bytes);
    let format = cursor.take_str().map_err(decode_err)?;
    if format != COLUMNS_FORMAT {
        return Err(ExperimentError::decode(format!(
            "unsupported shard archive format '{format}' (expected '{COLUMNS_FORMAT}')"
        )));
    }
    cursor.take_bytes().map_err(decode_err)?; // spec JSON, skipped
    Ok(ShardRange {
        shard_index: cursor.take_len().map_err(decode_err)?,
        num_shards: cursor.take_len().map_err(decode_err)?,
        start_job: cursor.take_len().map_err(decode_err)?,
        end_job: cursor.take_len().map_err(decode_err)?,
    })
}
