//! Streaming-aggregation regression tests: the per-cell accumulator must
//! reproduce the batch statistics bit for bit, the shard merger must
//! stream arbitrarily fine shard tilings to the same report as a bulk
//! merge, and the accumulator state must stay O(cells) — no per-trial
//! growth — which is the memory contract this PR exists to protect.

use ivc_experiments::aggregate::aggregate_cells;
use ivc_experiments::shard::{merge_shards, ShardArchive, ShardMerger, ShardRange};
use ivc_experiments::{CampaignSpec, CellAccumulator, DeliverySpec, TrialRecord};

fn spec_with(trials_per_cell: usize) -> CampaignSpec {
    CampaignSpec {
        deliveries: vec![
            DeliverySpec::legitimate("talker 63 dB", 63.0),
            DeliverySpec::array("8-element array, 50 W", 8, 50.0, 40_000.0),
        ],
        distances_m: vec![1.0, 3.0],
        trials_per_cell,
        ..CampaignSpec::new("streaming-merge")
    }
}

/// A deterministic synthetic record for a slot, with deliberately messy
/// f64 values (irrational multiples, sign flips) so any reordering of the
/// floating-point sums shows up as a bit difference.
fn synthetic_record(spec: &CampaignSpec, slot: usize) -> TrialRecord {
    let trials_per_cell = spec.trials_per_cell;
    let cell_index = slot / trials_per_cell;
    let trial_index = slot % trials_per_cell;
    let x = (slot as f64 + 0.5) * std::f64::consts::PI / 7.0;
    TrialRecord {
        cell_index,
        trial_index,
        seed: spec.trial_seed(trial_index),
        accepted: slot % 3 != 1,
        word_accuracy: (x.sin() * 0.5 + 0.5).min(1.0),
        recognized_words: vec!["ok".to_string()],
        bystander_spl_db: (slot % 4 != 0).then_some(40.0 + x.cos() * 9.0),
        bystander_spl_dba: (slot % 5 != 0).then_some(31.0 - x.sin() * 3.0),
        bystander_voice_spl_db: (slot % 2 == 0).then_some(17.0 + x.fract()),
        leak_audible: (slot % 6 != 0).then_some(slot % 7 < 3),
        power_shortfall_w: if slot % 8 == 0 { x.abs() } else { 0.0 },
        defense_features: vec![x, -x, x * x],
        detection_probability: (slot % 3 == 0).then_some((x.sin().abs()).min(1.0)),
        recording_band_summary_db: (slot % 2 == 1).then(|| vec![-x, -2.0 * x, -3.0 * x]),
    }
}

fn whole_campaign_records(spec: &CampaignSpec) -> Vec<TrialRecord> {
    (0..spec.num_trials())
        .map(|slot| synthetic_record(spec, slot))
        .collect()
}

/// The accumulator's statistics must be **bit**-identical to the batch
/// aggregation over the same records in the same order — f64 equality is
/// not enough, the byte-identity contract needs the exact bit patterns.
#[test]
fn accumulator_matches_batch_aggregation_bit_for_bit() {
    let spec = spec_with(9);
    let cells = spec.cells();
    let records = whole_campaign_records(&spec);

    let mut streamed = Vec::new();
    for cell in &cells {
        let mut accumulator = CellAccumulator::new();
        for trial in 0..spec.trials_per_cell {
            accumulator.fold(&records[cell.cell_index * spec.trials_per_cell + trial]);
        }
        assert_eq!(accumulator.trials(), spec.trials_per_cell);
        streamed.push(accumulator.stats());
    }

    let batch = aggregate_cells(&spec, &cells, records);
    for (cell, (streamed, batch)) in streamed.iter().zip(&batch).enumerate() {
        assert_eq!(streamed, &batch.stats, "cell {cell} stats diverged");
        let bits = |v: f64| v.to_bits();
        assert_eq!(
            bits(streamed.mean_word_accuracy),
            bits(batch.stats.mean_word_accuracy),
            "cell {cell}: mean word accuracy must match in bits, not just value"
        );
        assert_eq!(
            streamed.mean_bystander_spl_db.map(bits),
            batch.stats.mean_bystander_spl_db.map(bits),
            "cell {cell}: mean bystander SPL must match in bits"
        );
    }
}

/// Streaming one-slot shards through a [`ShardMerger`] — the finest
/// possible tiling, 18 partials here — must finish to the same report as
/// the bulk [`merge_shards`] of one whole-campaign partial.
#[test]
fn merger_streams_the_finest_tiling_to_the_bulk_merge_bytes() {
    let spec = spec_with(3);
    let num_jobs = spec.num_trials();

    let whole = ShardArchive {
        spec: spec.clone(),
        shard: ShardRange {
            shard_index: 0,
            num_shards: 1,
            start_job: 0,
            end_job: num_jobs,
        },
        records: whole_campaign_records(&spec),
    };
    let bulk = merge_shards(vec![whole]).unwrap();

    let mut merger = ShardMerger::new(spec.clone()).unwrap();
    for slot in 0..num_jobs {
        merger
            .absorb(ShardArchive {
                spec: spec.clone(),
                shard: ShardRange {
                    shard_index: slot,
                    num_shards: num_jobs,
                    start_job: slot,
                    end_job: slot + 1,
                },
                records: vec![synthetic_record(&spec, slot)],
            })
            .unwrap();
    }
    let streamed = merger.finish().unwrap();

    assert_eq!(streamed, bulk);
    assert_eq!(streamed.to_json_string(), bulk.to_json_string());
}

/// The memory regression this PR fixes: aggregation state must not grow
/// with the trial count.  Records are generated on the fly and folded one
/// at a time — never materialized — and after 200 000 trials the
/// accumulator still owns nothing but its fixed struct plus one sum per
/// band-summary band.
#[test]
fn accumulator_state_stays_o_cells_under_many_trials() {
    const TRIALS: usize = 200_000;
    // The inline state is a small constant — no record vector hides here.
    assert!(
        std::mem::size_of::<CellAccumulator>() <= 256,
        "CellAccumulator grew past a plain running-sums struct: {} bytes",
        std::mem::size_of::<CellAccumulator>()
    );

    let spec = spec_with(TRIALS);
    let mut accumulator = CellAccumulator::new();
    for trial in 0..TRIALS {
        // Fold a freshly generated record and drop it: the only state that
        // survives the loop body is the accumulator.
        accumulator.fold(&synthetic_record(&spec, trial));
    }
    assert_eq!(accumulator.trials(), TRIALS);
    assert!(accumulator.successes() > 0 && accumulator.successes() < TRIALS);
    // The only heap the accumulator holds tracks the band-summary band
    // count (3 in the synthetic records), not the trial count.
    assert_eq!(accumulator.mean_band_summary_db().map(|b| b.len()), Some(3));

    let stats = accumulator.stats();
    assert_eq!(stats.trials, TRIALS);
    assert!(stats.success_ci_low < stats.success_rate);
    assert!(stats.success_ci_high > stats.success_rate);
}
