//! Property tests of the fleet-telemetry merge: for fuzzed snapshot
//! contents, [`Snapshot::merge`] is commutative and associative (so a
//! fleet document is independent of worker arrival order), preserves
//! total span counts / durations / histogram mass / counter sums, and
//! the merged document survives a `metrics_json` → `parse_metrics`
//! round trip unchanged.

use ivc_core::telemetry::{bucket_index, Snapshot, SpanStat, HISTOGRAM_BUCKETS};
use proptest::prelude::*;

const SPAN_NAMES: &[&str] = &[
    "stage.prepare",
    "stage.perturb",
    "stage.evaluate",
    "prepare.convolution",
];
const COUNTER_NAMES: &[&str] = &[
    "executor.trials_completed",
    "executor.cells_prepared",
    "rng.draws",
];

/// Deterministically expand fuzz words into a snapshot: each word
/// contributes either one span duration or one counter increment, plus a
/// trace event (merging must clear those).  Only shapes the collector
/// itself can produce are generated — span names never carry zero
/// counts, and histograms always match their counts.
fn build_snapshot(label: &str, words: &[u64]) -> Snapshot {
    let mut spans: Vec<(String, SpanStat)> = Vec::new();
    let mut counters: Vec<(String, u64)> = Vec::new();
    let mut events = Vec::new();
    for &w in words {
        if w % 3 < 2 {
            let name = SPAN_NAMES[(w >> 2) as usize % SPAN_NAMES.len()];
            let ns = (w >> 8) % 10_000_000_000 + 1;
            let stat = match spans.iter_mut().find(|(k, _)| k == name) {
                Some((_, stat)) => stat,
                None => {
                    spans.push((
                        name.to_string(),
                        SpanStat {
                            count: 0,
                            total_ns: 0,
                            min_ns: u64::MAX,
                            max_ns: 0,
                            buckets: [0; HISTOGRAM_BUCKETS],
                        },
                    ));
                    &mut spans.last_mut().expect("just pushed").1
                }
            };
            stat.count += 1;
            stat.total_ns += ns;
            stat.min_ns = stat.min_ns.min(ns);
            stat.max_ns = stat.max_ns.max(ns);
            stat.buckets[bucket_index(ns)] += 1;
            events.push((name.to_string(), w % 4, w % 1_000, w % 500 + 1));
        } else {
            let name = COUNTER_NAMES[(w >> 2) as usize % COUNTER_NAMES.len()];
            let add = (w >> 8) % 1_000_000;
            match counters.iter_mut().find(|(k, _)| k == name) {
                Some((_, v)) => *v += add,
                None => counters.push((name.to_string(), add)),
            }
        }
    }
    spans.sort_by(|a, b| a.0.cmp(&b.0));
    counters.sort_by(|a, b| a.0.cmp(&b.0));
    Snapshot {
        spans,
        counters,
        events,
        dropped_events: words.len() as u64 % 3,
        sources: Vec::new(),
    }
    .with_source(label)
}

fn merged(x: &Snapshot, y: &Snapshot) -> Snapshot {
    let mut m = x.clone();
    m.merge(y);
    m
}

fn span_count(s: &Snapshot) -> u64 {
    s.spans.iter().map(|(_, stat)| stat.count).sum()
}

fn histogram_mass(s: &Snapshot) -> u64 {
    s.spans
        .iter()
        .map(|(_, stat)| stat.buckets.iter().sum::<u64>())
        .sum()
}

fn total_ns(s: &Snapshot) -> u64 {
    s.spans.iter().map(|(_, stat)| stat.total_ns).sum()
}

fn counter_sum(s: &Snapshot) -> u64 {
    s.counters.iter().map(|(_, v)| *v).sum()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn merge_is_commutative(
        a_words in prop::collection::vec(0u64..u64::MAX, 1..24),
        b_words in prop::collection::vec(0u64..u64::MAX, 1..24),
    ) {
        let a = build_snapshot("worker-a", &a_words);
        let b = build_snapshot("worker-b", &b_words);
        prop_assert_eq!(merged(&a, &b), merged(&b, &a));
    }

    #[test]
    fn merge_is_associative(
        a_words in prop::collection::vec(0u64..u64::MAX, 1..24),
        b_words in prop::collection::vec(0u64..u64::MAX, 1..24),
        c_words in prop::collection::vec(0u64..u64::MAX, 1..24),
    ) {
        let a = build_snapshot("worker-a", &a_words);
        let b = build_snapshot("worker-b", &b_words);
        let c = build_snapshot("worker-c", &c_words);
        prop_assert_eq!(
            merged(&merged(&a, &b), &c),
            merged(&a, &merged(&b, &c))
        );
    }

    #[test]
    fn merge_preserves_counts_mass_and_sums(
        a_words in prop::collection::vec(0u64..u64::MAX, 1..24),
        b_words in prop::collection::vec(0u64..u64::MAX, 1..24),
    ) {
        let a = build_snapshot("worker-a", &a_words);
        let b = build_snapshot("worker-b", &b_words);
        let m = merged(&a, &b);
        prop_assert_eq!(span_count(&m), span_count(&a) + span_count(&b));
        prop_assert_eq!(histogram_mass(&m), histogram_mass(&a) + histogram_mass(&b));
        prop_assert_eq!(total_ns(&m), total_ns(&a) + total_ns(&b));
        prop_assert_eq!(counter_sum(&m), counter_sum(&a) + counter_sum(&b));
        prop_assert_eq!(m.dropped_events, a.dropped_events + b.dropped_events);
        // Each merged aggregate keeps its internal invariant: histogram
        // mass equals the span count, and min/max bound the mean.
        for (name, stat) in &m.spans {
            prop_assert!(
                stat.buckets.iter().sum::<u64>() == stat.count,
                "histogram mass of '{}' drifted from its count",
                name
            );
            prop_assert!(stat.min_ns <= stat.max_ns, "span '{}' has min > max", name);
        }
        // Provenance accounts for every span: the per-source contribution
        // counts sum to the fleet's span count.
        prop_assert_eq!(m.sources.iter().map(|(_, n)| *n).sum::<u64>(), span_count(&m));
        // Trace events are process-local and must not survive a merge.
        prop_assert!(m.events.is_empty());
    }

    #[test]
    fn fleet_documents_round_trip(
        a_words in prop::collection::vec(0u64..u64::MAX, 1..24),
        b_words in prop::collection::vec(0u64..u64::MAX, 1..24),
    ) {
        let a = build_snapshot("worker-a", &a_words);
        let b = build_snapshot("worker-b", &b_words);
        let m = merged(&a, &b);
        let text = m.metrics_json(1.25).to_json_string_pretty();
        let parsed = Snapshot::parse_metrics(&text)
            .map_err(|e| TestCaseError::fail(e.to_string()))?;
        prop_assert_eq!(parsed, m);
    }
}
