//! The prepare cache's correctness contract: archives are **byte
//! identical** with the cache on or off, warm or cold, at any worker
//! count — the cache may only change how fast a campaign runs, never a
//! single archived byte — and the content-addressed keys never collide
//! across distinct axis sub-tuples (fuzzed below).

use ivc_core::prepare_cache;
use ivc_experiments::grid::{CampaignSpec, DeliverySpec};
use ivc_experiments::run_campaign;
use ivc_room::RoomPreset;
use ivc_speech::cache::TalkerKey;
use ivc_speech::commands::corpus;
use proptest::prelude::*;

/// A small multi-axis campaign: delivery × room, two trials per cell, so
/// the run exercises utterance, attack-build, RIR, propagation and
/// leakage caching plus the legitimate talker-variant paths.
fn multi_axis_spec() -> CampaignSpec {
    CampaignSpec {
        deliveries: vec![
            DeliverySpec::legitimate("legit talker", 68.0),
            DeliverySpec::array("array (4 elements, 40 W)", 4, 40.0, 40_000.0),
        ],
        rooms: vec![None, Some(RoomPreset::Office)],
        distances_m: vec![1.0],
        trials_per_cell: 2,
        max_voice_duration_s: 0.25,
        ..CampaignSpec::new("prepare-cache-identity")
    }
}

/// One test function (not several) because the cache toggle is process
/// global: interleaving enable/disable across parallel tests would race.
/// The proptest below never touches the toggle, so it may run alongside.
#[test]
fn archives_are_byte_identical_with_cache_on_off_warm_cold_any_workers() {
    let spec = multi_axis_spec();
    prepare_cache::clear();
    prepare_cache::set_enabled(true);

    // Cold cache: every product is a miss.
    let before = prepare_cache::stats();
    let warm1 = run_campaign(&spec, 1).expect("warm run 1").to_json_string();
    let after_first = prepare_cache::stats();
    assert!(
        after_first.misses > before.misses,
        "a cold cache must record misses"
    );

    // Fully warm cache: the same campaign re-prepares nothing.
    let warm2 = run_campaign(&spec, 1).expect("warm run 2").to_json_string();
    let after_second = prepare_cache::stats();
    assert_eq!(
        after_second.misses, after_first.misses,
        "a fully warm re-run must not miss"
    );
    assert!(
        after_second.hits > after_first.hits,
        "a fully warm re-run must hit"
    );

    // Worker count never reaches the archive, warm or not.
    let warm4 = run_campaign(&spec, 4)
        .expect("warm run, 4 workers")
        .to_json_string();

    // Cache disabled: everything rebuilt from scratch.
    prepare_cache::set_enabled(false);
    let cold = run_campaign(&spec, 2)
        .expect("cache-off run")
        .to_json_string();
    prepare_cache::set_enabled(true);

    assert_eq!(warm1, warm2, "warm re-run changed the archive");
    assert_eq!(warm1, warm4, "worker count changed the archive");
    assert_eq!(warm1, cold, "disabling the cache changed the archive");
}

/// Renders the determining sub-tuple of each product family for a point
/// in the fuzzed axis space.
fn family_keys(
    command_index: usize,
    variant: usize,
    cap_ds: u8,
    spl_tenth_db: u16,
    fs_khz: u8,
    room: u8,
    dist_cm: u32,
    bystander_cm: u32,
) -> Vec<String> {
    let commands = corpus();
    let command = &commands[command_index % commands.len()];
    let talker = if variant == 0 {
        TalkerKey::Canonical
    } else {
        TalkerKey::Variant(variant)
    };
    let preset = match room % 4 {
        0 => RoomPreset::Anechoic,
        1 => RoomPreset::Office,
        2 => RoomPreset::ConferenceRoom,
        _ => RoomPreset::Corridor,
    };
    let cap_s = f64::from(cap_ds) / 10.0;
    let spl_db = f64::from(spl_tenth_db) / 10.0;
    vec![
        prepare_cache::utterance_key(command, &talker, f64::from(fs_khz) * 1_000.0),
        prepare_cache::legitimate_source_key(command, variant, cap_s, spl_db),
        prepare_cache::room_key(
            preset,
            f64::from(dist_cm) / 100.0,
            f64::from(bystander_cm) / 100.0,
        ),
    ]
}

/// One fuzzed point in the axis space, split into two 4-tuples.
type Axes = ((usize, usize, u8, u16), (u8, u8, u32, u32));

/// The vendored proptest has no tuple strategies, so draw the axes with a
/// hand-rolled [`Strategy`] impl over its deterministic PRNG.
struct AxesStrategy;

impl Strategy for AxesStrategy {
    type Value = Axes;

    fn generate(&self, rng: &mut proptest::TestRng) -> Axes {
        (
            (
                rng.usize_in(0, 6),
                rng.usize_in(0, 9),
                rng.usize_in(1, 20) as u8,
                rng.usize_in(500, 900) as u16,
            ),
            (
                rng.usize_in(44, 49) as u8,
                rng.usize_in(0, 4) as u8,
                rng.usize_in(50, 500) as u32,
                rng.usize_in(50, 500) as u32,
            ),
        )
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Distinct axis sub-tuples must render distinct keys (no collisions),
    /// and identical sub-tuples identical keys (no spurious misses).
    #[test]
    fn keys_collide_exactly_when_the_sub_tuple_matches(a in AxesStrategy, b in AxesStrategy) {
        let ka = family_keys(a.0 .0, a.0 .1, a.0 .2, a.0 .3, a.1 .0, a.1 .1, a.1 .2, a.1 .3);
        let kb = family_keys(b.0 .0, b.0 .1, b.0 .2, b.0 .3, b.1 .0, b.1 .1, b.1 .2, b.1 .3);
        // Keys from different product families never collide (each is
        // prefixed by its family tag).
        for (i, x) in ka.iter().enumerate() {
            for (j, y) in kb.iter().enumerate() {
                if i != j {
                    prop_assert_ne!(x, y);
                }
            }
        }
        if a == b {
            prop_assert_eq!(&ka, &kb);
        } else {
            // Compare family by family: the key must differ whenever any
            // axis *that family depends on* differs.
            let commands = corpus().len();
            // Variant 0 maps to `Canonical`, which is distinct from every
            // `Variant(v)` — so the raw variant number identifies the talker.
            let utterance_tuple = |t: &Axes| (t.0 .0 % commands, t.0 .1, t.1 .0);
            if utterance_tuple(&a) != utterance_tuple(&b) {
                prop_assert_ne!(&ka[0], &kb[0]);
            }
            let legit_tuple = |t: &Axes| (t.0 .0 % commands, t.0 .1, t.0 .2, t.0 .3);
            if legit_tuple(&a) != legit_tuple(&b) {
                prop_assert_ne!(&ka[1], &kb[1]);
            }
            let room_tuple = |t: &Axes| (t.1 .1 % 4, t.1 .2, t.1 .3);
            if room_tuple(&a) != room_tuple(&b) {
                prop_assert_ne!(&ka[2], &kb[2]);
            }
        }
    }
}
