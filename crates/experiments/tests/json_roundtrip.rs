//! Property tests: campaign reports and raw JSON values survive
//! serialise → parse → serialise byte-for-byte.

use ivc_core::json::{u64_to_json, JsonValue};
use ivc_experiments::aggregate::{aggregate_cells, psychometric_curves};
use ivc_experiments::{CampaignReport, CampaignSpec, DeliverySpec, EnvironmentPreset, TrialRecord};
use proptest::prelude::*;

const WORDS: [&str; 6] = ["ok", "google", "alexa", "turn", "airplane", "mode"];

/// Builds a structurally valid report from fuzzed numeric inputs.
#[allow(clippy::too_many_arguments)]
fn build_report(
    base_seed: u64,
    noise_db: f64,
    n_deliveries: usize,
    n_distances: usize,
    trials_per_cell: usize,
    accuracies: &[f64],
    spls: &[f64],
    word_picks: &[usize],
) -> CampaignReport {
    let deliveries: Vec<DeliverySpec> = (0..n_deliveries)
        .map(|i| match i % 3 {
            0 => DeliverySpec::legitimate(format!("talker {i}"), 55.0 + i as f64),
            1 => DeliverySpec::single_speaker(format!("single {i}"), 1.0 + i as f64, 40_000.0),
            _ => DeliverySpec::array(format!("array {i}"), 4 + i, 30.0 * i as f64, 40_000.0),
        })
        .collect();
    let spec = CampaignSpec {
        deliveries,
        rooms: vec![None, Some(ivc_room::RoomPreset::Office)],
        environments: vec![EnvironmentPreset::MeetingRoom, EnvironmentPreset::Outdoor],
        distances_m: (0..n_distances).map(|i| 0.5 + i as f64 * 1.3).collect(),
        ambient_noise_spl_db: noise_db,
        trials_per_cell,
        base_seed,
        ..CampaignSpec::new("fuzzed")
    };
    let cells = spec.cells();
    let mut records = Vec::new();
    let mut pick = 0usize;
    for cell in &cells {
        for trial in 0..trials_per_cell {
            let accuracy = accuracies[pick % accuracies.len()];
            let spl = spls[pick % spls.len()];
            let attack = spec.deliveries[cell.coords.delivery_index]
                .delivery
                .is_attack();
            let words: Vec<String> = (0..word_picks[pick % word_picks.len()] % WORDS.len())
                .map(|w| WORDS[w].to_string())
                .collect();
            records.push(TrialRecord {
                cell_index: cell.cell_index,
                trial_index: trial,
                seed: spec.trial_seed(trial),
                accepted: accuracy > 0.5,
                word_accuracy: accuracy,
                recognized_words: words,
                bystander_spl_db: attack.then_some(spl),
                bystander_spl_dba: attack.then_some(spl - 4.2),
                bystander_voice_spl_db: attack.then_some(spl - 11.7),
                leak_audible: attack.then_some(spl > 30.0),
                power_shortfall_w: if pick % 4 == 0 { spl.abs() } else { 0.0 },
                defense_features: accuracies.iter().take(4).copied().collect(),
                detection_probability: (pick % 3 == 0).then_some(accuracy),
                recording_band_summary_db: (pick % 5 == 0)
                    .then(|| spls.iter().take(3).copied().collect()),
            });
            pick += 1;
        }
    }
    let cell_reports = aggregate_cells(&spec, &cells, records);
    let curves = psychometric_curves(&spec, &cell_reports);
    CampaignReport {
        spec,
        cells: cell_reports,
        curves,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn campaign_reports_round_trip_byte_exactly(
        base_seed in 0u64..u64::MAX,
        noise_db in 20.0f64..70.0,
        n_deliveries in 1usize..4,
        n_distances in 1usize..4,
        trials_per_cell in 1usize..4,
        accuracies in prop::collection::vec(0.0f64..1.0, 1..24),
        spls in prop::collection::vec(-40.0f64..95.0, 1..24),
        word_picks in prop::collection::vec(0usize..64, 1..24),
    ) {
        let report = build_report(
            base_seed,
            noise_db,
            n_deliveries,
            n_distances,
            trials_per_cell,
            &accuracies,
            &spls,
            &word_picks,
        );
        let text = report.to_json_string();
        let parsed = CampaignReport::from_json_str(&text)
            .map_err(|e| TestCaseError::fail(e.to_string()))?;
        prop_assert_eq!(&parsed, &report);
        // Determinism all the way down: re-serialising the parse is
        // byte-identical to the original archive.
        prop_assert_eq!(parsed.to_json_string(), text);
    }

    #[test]
    fn json_numbers_and_strings_round_trip(
        numbers in prop::collection::vec(-1.0e12f64..1.0e12, 0..32),
        scale_exponents in prop::collection::vec(0i32..40, 0..32),
        seeds in prop::collection::vec(0u64..u64::MAX, 0..8),
    ) {
        // Mix magnitudes: raw values and the same values scaled far below
        // 1, where shortest-round-trip formatting matters most.
        let mut values: Vec<JsonValue> = Vec::new();
        for (i, &n) in numbers.iter().enumerate() {
            values.push(JsonValue::number(n));
            let exponent = scale_exponents.get(i % scale_exponents.len().max(1)).copied().unwrap_or(0);
            values.push(JsonValue::number(n * 10f64.powi(-exponent)));
        }
        for &s in &seeds {
            values.push(u64_to_json(s));
        }
        values.push(JsonValue::String("escape \"me\"\n\t\\ \u{1F980}".into()));
        let doc = JsonValue::Array(values);
        let compact = doc.to_json_string();
        let parsed = JsonValue::parse(&compact)
            .map_err(|e| TestCaseError::fail(e.to_string()))?;
        prop_assert_eq!(&parsed, &doc);
        let pretty = doc.to_json_string_pretty();
        let parsed_pretty = JsonValue::parse(&pretty)
            .map_err(|e| TestCaseError::fail(e.to_string()))?;
        prop_assert_eq!(&parsed_pretty, &doc);
    }
}
