//! Property tests of the `ivc-trial-columns-v1` wire format: a shard
//! archive with fuzzed records — every optional field flipping between
//! present and absent, f64s at arbitrary bit patterns in range — must
//! survive encode → decode exactly, and re-encoding the decode must be
//! byte-identical (the determinism the byte-identity contract rests on).

use ivc_experiments::shard::{ShardArchive, ShardRange};
use ivc_experiments::{CampaignSpec, DeliverySpec, EnvironmentPreset, TrialRecord};
use proptest::prelude::*;

const WORDS: [&str; 6] = ["ok", "google", "alexa", "turn", "airplane", "mode"];

/// Builds a structurally valid shard archive from fuzzed inputs: the
/// spec is small, the shard covers a genuine sub-range of its job space
/// (boundaries may fall mid-cell), and each record's optional members
/// are driven independently by the fuzz vectors.
#[allow(clippy::too_many_arguments)]
fn build_shard(
    base_seed: u64,
    n_deliveries: usize,
    trials_per_cell: usize,
    start_frac: f64,
    len_frac: f64,
    values: &[f64],
    picks: &[usize],
) -> ShardArchive {
    let deliveries: Vec<DeliverySpec> = (0..n_deliveries)
        .map(|i| match i % 3 {
            0 => DeliverySpec::legitimate(format!("talker {i}"), 55.0 + i as f64),
            1 => DeliverySpec::single_speaker(format!("single {i}"), 1.0 + i as f64, 40_000.0),
            _ => DeliverySpec::array(format!("array {i}"), 4 + i, 30.0 * i as f64, 40_000.0),
        })
        .collect();
    let spec = CampaignSpec {
        deliveries,
        environments: vec![EnvironmentPreset::MeetingRoom],
        distances_m: vec![1.0, 2.0],
        trials_per_cell,
        base_seed,
        ..CampaignSpec::new("columns-fuzzed")
    };
    let num_jobs = spec.num_trials();
    let start_job = ((num_jobs as f64 * start_frac) as usize).min(num_jobs - 1);
    let end_job = (start_job + 1 + ((num_jobs - start_job) as f64 * len_frac) as usize)
        .clamp(start_job + 1, num_jobs);
    let shard = ShardRange {
        shard_index: 0,
        num_shards: 1,
        start_job,
        end_job,
    };
    let records = (start_job..end_job)
        .map(|slot| {
            let value = values[slot % values.len()];
            let pick = picks[slot % picks.len()];
            let words: Vec<String> = (0..pick % WORDS.len())
                .map(|w| WORDS[w].to_string())
                .collect();
            TrialRecord {
                cell_index: slot / trials_per_cell,
                trial_index: slot % trials_per_cell,
                seed: spec.trial_seed(slot % trials_per_cell),
                accepted: pick % 2 == 0,
                word_accuracy: value.abs().min(1.0),
                recognized_words: words,
                bystander_spl_db: (pick % 3 != 0).then_some(value),
                bystander_spl_dba: (pick % 5 != 0).then_some(value - 4.25),
                bystander_voice_spl_db: (pick % 7 != 0).then_some(-value),
                leak_audible: (pick % 4 != 0).then_some(pick % 8 < 4),
                power_shortfall_w: if pick % 6 == 0 { value.abs() } else { 0.0 },
                defense_features: if pick % 9 == 0 {
                    vec![]
                } else {
                    values.iter().take(pick % 5 + 1).copied().collect()
                },
                detection_probability: (pick % 2 == 1).then_some(value.abs().min(1.0)),
                recording_band_summary_db: (pick % 3 == 1)
                    .then(|| values.iter().take(pick % 4 + 1).map(|v| -v.abs()).collect()),
            }
        })
        .collect();
    ShardArchive {
        spec,
        shard,
        records,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn shard_archives_round_trip_through_columns_byte_exactly(
        base_seed in 0u64..u64::MAX,
        n_deliveries in 1usize..4,
        trials_per_cell in 1usize..4,
        start_frac in 0.0f64..1.0,
        len_frac in 0.0f64..1.0,
        values in prop::collection::vec(-1.0e6f64..1.0e6, 1..24),
        picks in prop::collection::vec(0usize..630, 1..24),
    ) {
        let shard = build_shard(
            base_seed,
            n_deliveries,
            trials_per_cell,
            start_frac,
            len_frac,
            &values,
            &picks,
        );
        let bytes = shard.to_column_bytes();
        let decoded = ShardArchive::from_column_bytes(&bytes)
            .map_err(|e| TestCaseError::fail(e.to_string()))?;
        prop_assert_eq!(&decoded, &shard);
        // Determinism all the way down: re-encoding the decode is
        // byte-identical to the original document.
        prop_assert_eq!(decoded.to_column_bytes(), bytes);
        // And the columnar wire never disagrees with the JSON wire about
        // what the archive means.
        let via_json = ShardArchive::from_json_str(&shard.to_json_string())
            .map_err(|e| TestCaseError::fail(e.to_string()))?;
        prop_assert_eq!(&via_json, &decoded);
    }
}
