//! Property tests of the shard planner: for fuzzed spec shapes and shard
//! counts, the union of all shards' `(cell, trial)` jobs covers every job
//! of the campaign exactly once — no gaps, no overlaps, order-stable —
//! and the split is never more than one job uneven.

use ivc_experiments::{CampaignSpec, DeliverySpec, ShardPlan};
use proptest::prelude::*;

/// A structurally valid spec with the given axis sizes (never executed —
/// the planner only reads the job-space shape).
fn spec_shape(n_deliveries: usize, n_distances: usize, trials_per_cell: usize) -> CampaignSpec {
    CampaignSpec {
        deliveries: (0..n_deliveries)
            .map(|i| DeliverySpec::array(format!("array {i}"), 4 + i, 40.0, 40_000.0))
            .collect(),
        distances_m: (0..n_distances).map(|i| 1.0 + i as f64 * 0.5).collect(),
        trials_per_cell,
        ..CampaignSpec::new("fuzzed-plan")
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn plans_cover_every_job_exactly_once(
        n_deliveries in 1usize..6,
        n_distances in 1usize..6,
        trials_per_cell in 1usize..5,
        num_shards in 1usize..40,
    ) {
        let spec = spec_shape(n_deliveries, n_distances, trials_per_cell);
        let plan = ShardPlan::partition(&spec, num_shards)
            .map_err(|e| TestCaseError::fail(e.to_string()))?;
        prop_assert_eq!(plan.shards.len(), num_shards);

        // Shards are self-describing, contiguous and in order.
        let mut expected_start = 0;
        for (i, shard) in plan.shards.iter().enumerate() {
            prop_assert_eq!(shard.shard_index, i);
            prop_assert_eq!(shard.num_shards, num_shards);
            prop_assert_eq!(shard.start_job, expected_start);
            prop_assert!(shard.end_job >= shard.start_job);
            expected_start = shard.end_job;
        }
        prop_assert_eq!(expected_start, spec.num_trials());

        // The union of the shards' jobs is the full job space, in the
        // cell-major order the archive stores records in: every job
        // exactly once, no gaps, no overlaps.
        let all_jobs: Vec<(usize, usize)> = plan
            .shards
            .iter()
            .flat_map(|shard| shard.jobs(spec.trials_per_cell))
            .collect();
        let expected: Vec<(usize, usize)> = (0..spec.num_cells())
            .flat_map(|cell| (0..spec.trials_per_cell).map(move |trial| (cell, trial)))
            .collect();
        prop_assert_eq!(all_jobs, expected);

        // Near-even split: shard sizes differ by at most one job, and the
        // larger shards lead (so early workers never idle last).
        let sizes: Vec<usize> = plan.shards.iter().map(|s| s.num_jobs()).collect();
        let max = *sizes.iter().max().expect("at least one shard");
        let min = *sizes.iter().min().expect("at least one shard");
        prop_assert!(max - min <= 1, "uneven split: {:?}", sizes);
        let mut sorted_desc = sizes.clone();
        sorted_desc.sort_unstable_by(|a, b| b.cmp(a));
        prop_assert_eq!(sizes, sorted_desc);
    }
}
