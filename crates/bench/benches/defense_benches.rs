//! Criterion benches for the defense: feature extraction and classifier
//! training, the per-recording costs a deployed detector would pay.

use criterion::{criterion_group, criterion_main, Criterion};
use ivc_defense::classifier::{LogisticRegression, TrainingConfig};
use ivc_defense::features::DefenseFeatures;
use ivc_dsp::signal::Signal;

fn synthetic_recording() -> Signal {
    let fs = 48_000.0;
    let n = fs as usize;
    let samples: Vec<f64> = (0..n)
        .map(|i| {
            let t = i as f64 / fs;
            let syllable = 0.55 + 0.45 * (2.0 * std::f64::consts::PI * 4.0 * t).sin();
            syllable
                * (0.4 * (2.0 * std::f64::consts::PI * 350.0 * t).sin()
                    + 0.3 * (2.0 * std::f64::consts::PI * 1_200.0 * t).sin())
        })
        .collect();
    Signal::new(samples, fs).unwrap()
}

fn bench_defense(c: &mut Criterion) {
    let mut group = c.benchmark_group("defense");
    group.sample_size(10);
    let rec = synthetic_recording();
    group.bench_function("feature_extraction_1s_recording", |b| {
        b.iter(|| DefenseFeatures::extract(std::hint::black_box(&rec)).unwrap())
    });

    let samples: Vec<(Vec<f64>, bool)> = (0..60)
        .map(|i| {
            let attack = i % 2 == 0;
            let jitter = (i as f64 * 0.37).sin();
            if attack {
                (vec![-15.0 + jitter, 0.8, -9.0], true)
            } else {
                (vec![-40.0 + jitter, 0.05, -5.0], false)
            }
        })
        .collect();
    group.bench_function("logistic_regression_training_60x3", |b| {
        b.iter(|| {
            LogisticRegression::train(std::hint::black_box(&samples), &TrainingConfig::default())
                .unwrap()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_defense);
criterion_main!(benches);
