//! Criterion benches for attack construction: baseband preparation, the
//! single-speaker AM attack and the segmented multi-speaker attack.

use criterion::{criterion_group, criterion_main, Criterion};
use ivc_attack::baseband::{prepare_baseband, BasebandConfig};
use ivc_attack::multispeaker::MultiSpeakerAttack;
use ivc_attack::single::SingleSpeakerAttack;
use ivc_dsp::signal::Signal;

fn voice() -> Signal {
    let fs = 48_000.0;
    let mut s = Signal::tone(400.0, 0.5, 0.5, fs).unwrap();
    s.mix(&Signal::tone(1_300.0, 0.4, 0.5, fs).unwrap())
        .unwrap();
    s.mix(&Signal::tone(2_700.0, 0.3, 0.5, fs).unwrap())
        .unwrap();
    s.normalize_peak(0.5);
    s
}

fn bench_attack(c: &mut Criterion) {
    let mut group = c.benchmark_group("attack");
    group.sample_size(10);
    let v = voice();
    let cfg = BasebandConfig::default();

    group.bench_function("prepare_baseband_0p5s", |b| {
        b.iter(|| prepare_baseband(std::hint::black_box(&v), &cfg).unwrap())
    });
    group.bench_function("single_speaker_attack_0p5s", |b| {
        b.iter(|| {
            SingleSpeakerAttack::build(std::hint::black_box(&v), 40_000.0, 0.9, &cfg).unwrap()
        })
    });
    group.bench_function("multispeaker_attack_8el_0p5s", |b| {
        b.iter(|| MultiSpeakerAttack::build(std::hint::black_box(&v), 40_000.0, 8, &cfg).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_attack);
criterion_main!(benches);
