//! Criterion benches for the DSP hot paths used by every experiment:
//! FFT, FIR filtering, resampling and Welch PSD estimation.

use criterion::{criterion_group, criterion_main, Criterion};
use ivc_dsp::fft::fft_real_n;
use ivc_dsp::filter::fir::FirFilter;
use ivc_dsp::resample::upsample;
use ivc_dsp::signal::Signal;
use ivc_dsp::spectrum::welch_psd;
use ivc_dsp::window::WindowKind;

fn bench_dsp(c: &mut Criterion) {
    let mut group = c.benchmark_group("dsp");
    group.sample_size(20);

    let tone = Signal::tone(1_000.0, 0.5, 0.25, 48_000.0).unwrap();
    group.bench_function("fft_real_16k", |b| {
        b.iter(|| fft_real_n(std::hint::black_box(tone.samples()), 16_384).unwrap())
    });

    let fir = FirFilter::low_pass(8_000.0, 48_000.0, 255, WindowKind::Hamming).unwrap();
    group.bench_function("fir_255_taps_12k_samples", |b| {
        b.iter(|| fir.filter(std::hint::black_box(tone.samples())).unwrap())
    });

    group.bench_function("upsample_4x_12k_samples", |b| {
        b.iter(|| upsample(std::hint::black_box(&tone), 4).unwrap())
    });

    group.bench_function("welch_psd_12k_samples", |b| {
        b.iter(|| {
            welch_psd(
                std::hint::black_box(tone.samples()),
                48_000.0,
                2_048,
                0.5,
                WindowKind::Hann,
            )
            .unwrap()
        })
    });

    group.finish();
}

criterion_group!(benches, bench_dsp);
criterion_main!(benches);
