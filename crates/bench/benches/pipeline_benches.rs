//! Criterion benches for the end-to-end trial pipeline (the unit of work
//! behind every accuracy-vs-distance point in the reproduction).

use criterion::{criterion_group, criterion_main, Criterion};
use ivc_core::run_trial;
use ivc_core::scenario::{Delivery, Scenario};
use ivc_speech::commands::corpus;
use ivc_speech::recognizer::Recognizer;

fn bench_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("pipeline");
    group.sample_size(10);
    let recognizer = Recognizer::with_default_corpus().unwrap();
    let command = &corpus()[0];

    let legit = Scenario {
        delivery: Delivery::Legitimate {
            talker_spl_db: 65.0,
        },
        max_voice_duration_s: 1.0,
        ..Scenario::default_attack()
    };
    group.bench_function("trial_legitimate_1s", |b| {
        b.iter(|| run_trial(command, &legit, &recognizer, None).unwrap())
    });

    let attack = Scenario {
        delivery: Delivery::ArrayUltrasound {
            num_elements: 8,
            total_power_w: 60.0,
            carrier_hz: 40_000.0,
        },
        max_voice_duration_s: 1.0,
        ..Scenario::default_attack()
    };
    group.bench_function("trial_array_attack_8el_1s", |b| {
        b.iter(|| run_trial(command, &attack, &recognizer, None).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_pipeline);
criterion_main!(benches);
