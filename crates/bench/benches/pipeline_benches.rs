//! Criterion benches for the end-to-end trial pipeline (the unit of work
//! behind every accuracy-vs-distance point in the reproduction), including
//! the staged-pipeline reuse criterion: a campaign cell's trials through
//! one shared `PreparedCell` versus rebuilding everything per trial.

use criterion::{criterion_group, criterion_main, Criterion};
use ivc_core::scenario::{Delivery, Scenario};
use ivc_core::{run_trial, PrepareContext, PreparedCell};
use ivc_experiments::shard::{merge_shards, ShardArchive, ShardPlan};
use ivc_experiments::{CampaignSpec, DeliverySpec, TrialRecord};
use ivc_speech::commands::corpus;
use ivc_speech::recognizer::Recognizer;

fn bench_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("pipeline");
    group.sample_size(10);
    let recognizer = Recognizer::with_default_corpus().unwrap();
    let command = &corpus()[0];

    let legit = Scenario {
        delivery: Delivery::Legitimate {
            talker_spl_db: 65.0,
        },
        max_voice_duration_s: 1.0,
        ..Scenario::default_attack()
    };
    group.bench_function("trial_legitimate_1s", |b| {
        b.iter(|| run_trial(command, &legit, &recognizer, None).unwrap())
    });

    let attack = Scenario {
        delivery: Delivery::ArrayUltrasound {
            num_elements: 8,
            total_power_w: 60.0,
            carrier_hz: 40_000.0,
        },
        max_voice_duration_s: 1.0,
        ..Scenario::default_attack()
    };
    group.bench_function("trial_array_attack_8el_1s", |b| {
        b.iter(|| run_trial(command, &attack, &recognizer, None).unwrap())
    });

    // The PreparedCell reuse criterion: a 4-trial campaign cell run by
    // rebuilding the full pipeline per trial vs preparing once and
    // perturbing/evaluating per seed.  The ratio of these two numbers is
    // the campaign speed-up the staged refactor buys.
    let seeds: Vec<u64> = (1..=4).collect();
    group.bench_function("prepared_vs_rebuild/rebuild_4_trials", |b| {
        b.iter(|| {
            for &seed in &seeds {
                run_trial(command, &attack.with_seed(seed), &recognizer, None).unwrap();
            }
        })
    });
    group.bench_function("prepared_vs_rebuild/prepared_4_trials", |b| {
        b.iter(|| {
            let ctx = PrepareContext::new().unwrap();
            let prepared = PreparedCell::prepare(&ctx, command, &attack, &seeds).unwrap();
            for &seed in &seeds {
                prepared.run(seed, &recognizer, None).unwrap();
            }
        })
    });
    group.finish();
}

fn bench_campaign(c: &mut Criterion) {
    // Wall clock of a whole built-in campaign through the staged
    // executor (quick a1: 3 cells x 1 trial on 4 workers).
    let mut group = c.benchmark_group("campaign");
    group.sample_size(10);
    let spec = ivc_experiments::presets::a1(true);
    group.bench_function("a1_quick_4_workers", |b| {
        b.iter(|| ivc_experiments::run_campaign(&spec, 4).unwrap())
    });
    group.finish();
}

/// A deterministic synthetic record for a merge bench slot: no trials are
/// run, so the numbers isolate aggregation and serialisation.
fn synthetic_record(spec: &CampaignSpec, slot: usize) -> TrialRecord {
    let x = (slot as f64 + 0.5) * 0.37;
    TrialRecord {
        cell_index: slot / spec.trials_per_cell,
        trial_index: slot % spec.trials_per_cell,
        seed: spec.trial_seed(slot % spec.trials_per_cell),
        accepted: slot % 3 != 1,
        word_accuracy: (x.sin() * 0.5 + 0.5).min(1.0),
        recognized_words: vec!["ok".to_string(), "google".to_string()],
        bystander_spl_db: Some(40.0 + x.cos()),
        bystander_spl_dba: Some(32.0 - x.sin()),
        bystander_voice_spl_db: Some(18.0 + x.fract()),
        leak_audible: Some(slot % 5 < 2),
        power_shortfall_w: 0.0,
        defense_features: vec![x, -x, x * x, 0.5],
        detection_probability: Some(x.sin().abs().min(1.0)),
        recording_band_summary_db: Some(vec![-x, -2.0 * x, -3.0 * x]),
    }
}

fn bench_merge(c: &mut Criterion) {
    // Merge throughput over synthetic partials: the streaming shard merge
    // (per-cell accumulators, records moved not cloned) and the columnar
    // wire format's encode/decode against the legacy JSON decode — the
    // numbers behind the PR-10 merge-memory fix.
    let mut group = c.benchmark_group("merge");
    group.sample_size(10);
    let spec = CampaignSpec {
        deliveries: (0..4)
            .map(|i| DeliverySpec::array(format!("array {i}"), 4 + i, 40.0, 40_000.0))
            .collect(),
        distances_m: vec![1.0, 2.0],
        trials_per_cell: 64,
        ..CampaignSpec::new("merge-bench")
    };
    let plan = ShardPlan::partition(&spec, 4).unwrap();
    let partials: Vec<ShardArchive> = plan
        .shards
        .iter()
        .map(|&shard| ShardArchive {
            spec: spec.clone(),
            shard,
            records: (shard.start_job..shard.end_job)
                .map(|slot| synthetic_record(&spec, slot))
                .collect(),
        })
        .collect();
    group.bench_function("merge_4_shards_512_trials", |b| {
        b.iter(|| merge_shards(partials.clone()).unwrap())
    });
    let one = &partials[0];
    let bytes = one.to_column_bytes();
    let json = one.to_json_string();
    group.bench_function("columns_encode_128_trials", |b| {
        b.iter(|| one.to_column_bytes())
    });
    group.bench_function("columns_decode_128_trials", |b| {
        b.iter(|| ShardArchive::from_column_bytes(&bytes).unwrap())
    });
    group.bench_function("json_decode_128_trials", |b| {
        b.iter(|| ShardArchive::from_json_str(&json).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_pipeline, bench_campaign, bench_merge);
criterion_main!(benches);
