//! Criterion benches for the end-to-end trial pipeline (the unit of work
//! behind every accuracy-vs-distance point in the reproduction), including
//! the staged-pipeline reuse criterion: a campaign cell's trials through
//! one shared `PreparedCell` versus rebuilding everything per trial.

use criterion::{criterion_group, criterion_main, Criterion};
use ivc_core::scenario::{Delivery, Scenario};
use ivc_core::{run_trial, PrepareContext, PreparedCell};
use ivc_speech::commands::corpus;
use ivc_speech::recognizer::Recognizer;

fn bench_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("pipeline");
    group.sample_size(10);
    let recognizer = Recognizer::with_default_corpus().unwrap();
    let command = &corpus()[0];

    let legit = Scenario {
        delivery: Delivery::Legitimate {
            talker_spl_db: 65.0,
        },
        max_voice_duration_s: 1.0,
        ..Scenario::default_attack()
    };
    group.bench_function("trial_legitimate_1s", |b| {
        b.iter(|| run_trial(command, &legit, &recognizer, None).unwrap())
    });

    let attack = Scenario {
        delivery: Delivery::ArrayUltrasound {
            num_elements: 8,
            total_power_w: 60.0,
            carrier_hz: 40_000.0,
        },
        max_voice_duration_s: 1.0,
        ..Scenario::default_attack()
    };
    group.bench_function("trial_array_attack_8el_1s", |b| {
        b.iter(|| run_trial(command, &attack, &recognizer, None).unwrap())
    });

    // The PreparedCell reuse criterion: a 4-trial campaign cell run by
    // rebuilding the full pipeline per trial vs preparing once and
    // perturbing/evaluating per seed.  The ratio of these two numbers is
    // the campaign speed-up the staged refactor buys.
    let seeds: Vec<u64> = (1..=4).collect();
    group.bench_function("prepared_vs_rebuild/rebuild_4_trials", |b| {
        b.iter(|| {
            for &seed in &seeds {
                run_trial(command, &attack.with_seed(seed), &recognizer, None).unwrap();
            }
        })
    });
    group.bench_function("prepared_vs_rebuild/prepared_4_trials", |b| {
        b.iter(|| {
            let ctx = PrepareContext::new().unwrap();
            let prepared = PreparedCell::prepare(&ctx, command, &attack, &seeds).unwrap();
            for &seed in &seeds {
                prepared.run(seed, &recognizer, None).unwrap();
            }
        })
    });
    group.finish();
}

fn bench_campaign(c: &mut Criterion) {
    // Wall clock of a whole built-in campaign through the staged
    // executor (quick a1: 3 cells x 1 trial on 4 workers).
    let mut group = c.benchmark_group("campaign");
    group.sample_size(10);
    let spec = ivc_experiments::presets::a1(true);
    group.bench_function("a1_quick_4_workers", |b| {
        b.iter(|| ivc_experiments::run_campaign(&spec, 4).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_pipeline, bench_campaign);
criterion_main!(benches);
