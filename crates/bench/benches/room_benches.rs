//! Criterion benches for the room-acoustics hot paths: sparse-tap
//! convolution, impulse-response construction, and full in-room
//! propagation.

use criterion::{criterion_group, criterion_main, Criterion};
use ivc_acoustics::environment::AirEnvironment;
use ivc_dsp::signal::Signal;
use ivc_dsp::sparse::{convolve_sparse, SparseTap, SparseTaps};
use ivc_room::propagate::propagate_in_room;
use ivc_room::RoomPreset;

fn bench_room(c: &mut Criterion) {
    let mut group = c.benchmark_group("room");
    group.sample_size(20);

    // Sparse convolution at attack scale: a 0.5 s drive at 192 kHz
    // against the tap count of an order-2 shoebox response.
    let drive = Signal::tone(40_000.0, 0.5, 0.5, 192_000.0).unwrap();
    let taps = SparseTaps::new(
        (0..24)
            .map(|i| SparseTap {
                delay_samples: 700 * (i + 1),
                gain: 0.8f64.powi(i as i32 + 1),
            })
            .collect(),
    )
    .unwrap();
    group.bench_function("sparse_convolution_24taps_96k", |b| {
        b.iter(|| convolve_sparse(std::hint::black_box(&drive), &taps).unwrap())
    });

    // Impulse-response construction: geometry + material curves for the
    // order-3 conference room, both receiver paths.
    let instance = RoomPreset::ConferenceRoom.instantiate(4.0, 1.0).unwrap();
    group.bench_function("impulse_response_conference_order3", |b| {
        b.iter(|| {
            let target = instance.target_rir(std::hint::black_box(0.33)).unwrap();
            let bystander = instance.bystander_rir().unwrap();
            (target.num_taps(), bystander.num_taps())
        })
    });

    // Full multipath propagation of a short ultrasonic burst through the
    // office (order 2): forward FFT + active-band inverse FFTs + sparse
    // convolutions.
    let env = AirEnvironment::default();
    let office = RoomPreset::Office.instantiate(3.0, 1.0).unwrap();
    let rir = office.target_rir(0.33).unwrap();
    let burst = Signal::tone(40_000.0, 0.5, 0.25, 192_000.0).unwrap();
    group.bench_function("propagate_in_room_office_order2", |b| {
        b.iter(|| propagate_in_room(std::hint::black_box(&burst), &rir, &env).unwrap())
    });

    group.finish();
}

criterion_group!(benches, bench_room);
criterion_main!(benches);
