//! # ivc-bench — the reproduction harness
//!
//! One function per paper table/figure.  Every experiment runs through the
//! campaign engine (`ivc_experiments`): the function builds (or looks up)
//! a campaign preset, runs it on the worker pool, and renders the paper's
//! table from the archived report — there are no bespoke trial loops left
//! here, so the staged `Prepare → Perturb → Evaluate` pipeline is the one
//! and only trial-execution path in the codebase.
//!
//! Two fidelity levels are supported to keep wall-clock time manageable:
//! [`Fidelity::Quick`] (trimmed sweeps, truncated commands — minutes) and
//! [`Fidelity::Full`] (the full grids — tens of minutes).  The experiment
//! *shapes* are identical; EXPERIMENTS.md records which level produced the
//! archived numbers.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use ivc_core::json::JsonValue;
use ivc_core::results::{fmt, Series, Table};
use ivc_core::scenario::Delivery;
use ivc_core::telemetry;
use ivc_core::Result;
use ivc_defense::evaluation::{ConfusionMatrix, RocCurve};
use ivc_defense::features::DefenseFeatures;
use ivc_experiments::orchestrate::{orchestrate, OrchestratorConfig, ProcessLauncher};
use ivc_experiments::shard::{
    merge_shard_files, metrics_sidecar_path, shard_archive_file_name, shard_archive_file_name_with,
    shard_job_file_name, PartialFormat, ShardPlan,
};
use ivc_experiments::{
    presets, run_campaign, CampaignReport, CampaignSpec, CellCoords, TrialRecord,
};
use std::path::{Path, PathBuf};

/// How exhaustive the sweeps should be.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fidelity {
    /// Trimmed sweeps and truncated commands; finishes in minutes.
    Quick,
    /// The full grids reported in EXPERIMENTS.md's "full" runs.
    Full,
}

impl Fidelity {
    /// Reads the fidelity from the `IVC_FULL` environment variable
    /// (`Full` when set to `1`, `Quick` otherwise).
    pub fn from_env() -> Fidelity {
        Fidelity::from_flag(std::env::var("IVC_FULL").ok().as_deref())
    }

    /// The fidelity an `IVC_FULL` value selects (`None` = unset).
    pub fn from_flag(value: Option<&str>) -> Fidelity {
        match value {
            Some("1") | Some("true") => Fidelity::Full,
            _ => Fidelity::Quick,
        }
    }

    /// The campaign-preset flavour of this fidelity.
    pub fn quick(self) -> bool {
        self == Fidelity::Quick
    }
}

/// E-A1 — audible leakage of a single speaker versus drive power.
///
/// Runs as a built-in campaign (`ivc_experiments::presets::a1`) through
/// the parallel engine; the returned report is the archivable record.
pub fn fig_a1_leakage_vs_power(
    fidelity: Fidelity,
    workers: usize,
) -> Result<(Table, CampaignReport)> {
    let spec = presets::a1(fidelity.quick());
    let report = run_campaign(&spec, workers)?;
    let mut table = Table::new(
        "E-A1: single-speaker leakage vs drive power (bystander at 1 m)",
        &[
            "Power (W)",
            "Leakage SPL (dB)",
            "Voice-band leak (dB)",
            "Audible?",
        ],
    );
    for (i, delivery) in spec.deliveries.iter().enumerate() {
        let Delivery::SingleSpeakerUltrasound { power_w, .. } = delivery.delivery else {
            unreachable!("a1 sweeps single-speaker powers");
        };
        let cell = report
            .find_cell(&CellCoords {
                delivery_index: i,
                ..CellCoords::default()
            })
            .expect("a1 grid covers every power");
        let audible = cell
            .stats
            .leak_audible_fraction
            .expect("attack delivery has leakage")
            >= 0.5;
        table.push_row(vec![
            fmt(power_w, 1),
            fmt(cell.stats.mean_bystander_spl_db.unwrap_or(f64::NAN), 1),
            fmt(
                cell.stats.mean_bystander_voice_spl_db.unwrap_or(f64::NAN),
                1,
            ),
            if audible { "yes".into() } else { "no".into() },
        ]);
    }
    Ok((table, report))
}

/// E-A2 — word accuracy versus distance: single speaker vs array.
///
/// Runs as a built-in campaign (`ivc_experiments::presets::a2`); the
/// series are the report's psychometric curves read as accuracy curves.
pub fn fig_a2_accuracy_vs_distance(
    fidelity: Fidelity,
    workers: usize,
) -> Result<(Table, Vec<Series>, CampaignReport)> {
    let spec = presets::a2(fidelity.quick());
    let report = run_campaign(&spec, workers)?;
    let mut table = Table::new(
        "E-A2: injected-command word accuracy vs distance",
        &["Distance (m)", "Single 3 W", "Array 16", "Array 61"],
    );
    for (di, &distance) in spec.distances_m.iter().enumerate() {
        let accuracy = |delivery_index: usize| -> f64 {
            report
                .find_cell(&CellCoords {
                    delivery_index,
                    distance_index: di,
                    ..CellCoords::default()
                })
                .expect("a2 grid covers every (delivery, distance)")
                .stats
                .mean_word_accuracy
        };
        table.push_row(vec![
            fmt(distance, 1),
            fmt(accuracy(0), 2),
            fmt(accuracy(1), 2),
            fmt(accuracy(2), 2),
        ]);
    }
    let series = report
        .curves
        .iter()
        .map(|curve| {
            Series::new(
                curve.label.clone(),
                curve.distances_m.clone(),
                curve.mean_word_accuracy.clone(),
            )
        })
        .collect();
    Ok((table, series, report))
}

/// E-A3 — word accuracy versus number of array elements at long range.
///
/// Runs as a built-in campaign (`ivc_experiments::presets::a3`) through
/// the parallel engine; the table reproduces the bespoke loop it replaced.
pub fn fig_a3_accuracy_vs_speakers(
    fidelity: Fidelity,
    workers: usize,
) -> Result<(Table, CampaignReport)> {
    let spec = presets::a3(fidelity.quick());
    let report = run_campaign(&spec, workers)?;
    let distance = spec.distances_m[0];
    let mut table = Table::new(
        format!("E-A3: word accuracy vs number of elements (distance {distance} m)"),
        &[
            "Elements",
            "Total power (W)",
            "Word accuracy",
            "Leak voice-band SPL (dB)",
        ],
    );
    for (i, delivery) in spec.deliveries.iter().enumerate() {
        let Delivery::ArrayUltrasound {
            num_elements,
            total_power_w,
            ..
        } = delivery.delivery
        else {
            unreachable!("a3 sweeps array element counts");
        };
        let cell = report
            .find_cell(&CellCoords {
                delivery_index: i,
                ..CellCoords::default()
            })
            .expect("a3 grid covers every element count");
        table.push_row(vec![
            num_elements.to_string(),
            fmt(total_power_w, 1),
            fmt(cell.stats.mean_word_accuracy, 2),
            fmt(
                cell.stats.mean_bystander_voice_spl_db.unwrap_or(f64::NAN),
                1,
            ),
        ]);
    }
    Ok((table, report))
}

/// E-A4 — leakage audibility versus number of elements at equal total power.
///
/// Runs as a built-in campaign (`ivc_experiments::presets::a4`); the
/// A-weighted column comes from the report's `mean_bystander_spl_dba`.
pub fn fig_a4_leakage_vs_speakers(
    fidelity: Fidelity,
    workers: usize,
) -> Result<(Table, CampaignReport)> {
    let spec = presets::a4(fidelity.quick());
    let report = run_campaign(&spec, workers)?;
    let Delivery::ArrayUltrasound { total_power_w, .. } = spec.deliveries[0].delivery else {
        unreachable!("a4 sweeps array element counts");
    };
    let mut table = Table::new(
        format!(
            "E-A4: leakage vs number of elements (total power {total_power_w} W, bystander 1 m)"
        ),
        &[
            "Elements",
            "Leak SPL (dB)",
            "Leak dB(A)",
            "Voice-band leak (dB)",
            "Audible?",
        ],
    );
    for (i, delivery) in spec.deliveries.iter().enumerate() {
        let Delivery::ArrayUltrasound { num_elements, .. } = delivery.delivery else {
            unreachable!("a4 sweeps array element counts");
        };
        let cell = report
            .find_cell(&CellCoords {
                delivery_index: i,
                ..CellCoords::default()
            })
            .expect("a4 grid covers every element count");
        let audible = cell
            .stats
            .leak_audible_fraction
            .expect("attack delivery has leakage")
            >= 0.5;
        table.push_row(vec![
            num_elements.to_string(),
            fmt(cell.stats.mean_bystander_spl_db.unwrap_or(f64::NAN), 1),
            fmt(cell.stats.mean_bystander_spl_dba.unwrap_or(f64::NAN), 1),
            fmt(
                cell.stats.mean_bystander_voice_spl_db.unwrap_or(f64::NAN),
                1,
            ),
            if audible { "yes".into() } else { "no".into() },
        ]);
    }
    Ok((table, report))
}

/// Room × distance sweep: the same array attack in every room preset,
/// rendered as a word-accuracy pivot (rows = distances, columns = rooms)
/// plus a bystander-leak pivot in the same table.
pub fn fig_rooms_sweep(fidelity: Fidelity, workers: usize) -> Result<(Table, CampaignReport)> {
    let spec = presets::rooms(fidelity.quick());
    let report = run_campaign(&spec, workers)?;
    let mut columns: Vec<String> = vec!["Distance (m)".into()];
    for &room in &spec.rooms {
        columns.push(format!("{} acc.", ivc_experiments::room_token(room)));
    }
    for &room in &spec.rooms {
        columns.push(format!("{} leak dB", ivc_experiments::room_token(room)));
    }
    let column_refs: Vec<&str> = columns.iter().map(String::as_str).collect();
    let mut table = Table::new(
        "Rooms: word accuracy and bystander leak vs distance per room preset",
        &column_refs,
    );
    for (di, &distance) in spec.distances_m.iter().enumerate() {
        let cells: Vec<_> = (0..spec.rooms.len())
            .map(|ri| {
                report
                    .find_cell(&CellCoords {
                        room_index: ri,
                        distance_index: di,
                        ..CellCoords::default()
                    })
                    .expect("rooms grid covers every (room, distance)")
            })
            .collect();
        let mut row = vec![fmt(distance, 1)];
        row.extend(cells.iter().map(|c| fmt(c.stats.mean_word_accuracy, 2)));
        row.extend(
            cells
                .iter()
                .map(|c| fmt(c.stats.mean_bystander_spl_db.unwrap_or(f64::NAN), 1)),
        );
        table.push_row(row);
    }
    Ok((table, report))
}

/// E-A5 — attack range per device at a fixed array configuration.
///
/// Runs as a built-in campaign (`ivc_experiments::presets::a5`); each
/// device's range is read off its psychometric accuracy curve.
pub fn tab_a5_range_per_device(
    fidelity: Fidelity,
    workers: usize,
) -> Result<(Table, CampaignReport)> {
    let spec = presets::a5(fidelity.quick());
    let report = run_campaign(&spec, workers)?;
    let mut table = Table::new(
        "E-A5: attack range per device (accuracy >= 0.6, 16-element array, 120 W)",
        &["Device", "Range (m)"],
    );
    for (device_index, device) in spec.devices.iter().enumerate() {
        let curve = report
            .curves
            .iter()
            .find(|c| c.coords.device_index == device_index)
            .expect("a5 produces one curve per device");
        let series = Series::new(
            device.name(),
            curve.distances_m.clone(),
            curve.mean_word_accuracy.clone(),
        );
        let range = series.last_x_with_y_at_least(0.6).unwrap_or(0.0);
        table.push_row(vec![device.name().to_string(), fmt(range, 1)]);
    }
    Ok((table, report))
}

/// E-A6 — demodulated quality versus carrier frequency.
///
/// Runs as a built-in campaign (`ivc_experiments::presets::a6`) over the
/// engine's carrier-frequency axis.
pub fn fig_a6_carrier_frequency(
    fidelity: Fidelity,
    workers: usize,
) -> Result<(Table, CampaignReport)> {
    let spec = presets::a6(fidelity.quick());
    let report = run_campaign(&spec, workers)?;
    let mut table = Table::new(
        "E-A6: word accuracy vs carrier frequency (single speaker, 10 W, 1.5 m)",
        &["Carrier (kHz)", "Word accuracy"],
    );
    for (ci, carrier) in spec.carriers_hz.iter().enumerate() {
        let fc = carrier.expect("a6's carrier axis is fully specified");
        let cell = report
            .find_cell(&CellCoords {
                carrier_index: ci,
                ..CellCoords::default()
            })
            .expect("a6 grid covers every carrier");
        table.push_row(vec![
            fmt(fc / 1_000.0, 0),
            fmt(cell.stats.mean_word_accuracy, 2),
        ]);
    }
    Ok((table, report))
}

/// E-B1 — Song–Mittal Table 1: attack range versus speaker input power.
///
/// Runs as a built-in campaign (`ivc_experiments::presets::b1`) over the
/// engine's power axis; ranges are read off the per-(device, power)
/// accuracy curves.
pub fn tab_b1_range_vs_power(
    fidelity: Fidelity,
    workers: usize,
) -> Result<(Table, CampaignReport)> {
    let spec = presets::b1(fidelity.quick());
    let report = run_campaign(&spec, workers)?;
    let mut table = Table::new(
        "E-B1: attack range vs speaker input power (single speaker)",
        &["Power (W)", "Phone range (cm)", "Echo range (cm)"],
    );
    for (pi, power) in spec.powers_w.iter().enumerate() {
        let p = power.expect("b1's power axis is fully specified");
        let mut ranges = Vec::new();
        for (device_index, device) in spec.devices.iter().enumerate() {
            let curve = report
                .curves
                .iter()
                .find(|c| c.coords.device_index == device_index && c.coords.power_index == pi)
                .expect("b1 produces one curve per (device, power)");
            let range_m = Series::new(
                device.name(),
                curve.distances_m.clone(),
                curve.mean_word_accuracy.clone(),
            )
            .last_x_with_y_at_least(0.6)
            .unwrap_or(0.0);
            ranges.push(range_m * 100.0);
        }
        table.push_row(vec![fmt(p, 1), fmt(ranges[0], 0), fmt(ranges[1], 0)]);
    }
    Ok((table, report))
}

/// E-B2 — spectrogram band-energy summary of normal / attack / recorded.
///
/// The recording column comes from the `b2` campaign's archived band
/// summary; the normal-voice and attack-drive columns are pure signal
/// analysis of the synthesiser and attack-construction outputs (no trial
/// is run outside the engine).
pub fn fig_b2_spectrogram_triplet(
    fidelity: Fidelity,
    workers: usize,
) -> Result<(Table, CampaignReport)> {
    use ivc_dsp::stft::{spectrogram, StftConfig};
    let spec = presets::b2(fidelity.quick());
    let report = run_campaign(&spec, workers)?;
    let band_spec = spec
        .recording_band_summary
        .expect("b2 archives the recording band summary");
    let bands = band_spec.bands;

    // Normal voice (the full render — the triplet compares signal
    // classes, not the trial's truncation).
    let synth = ivc_speech::synthesis::Synthesizer::new(48_000.0)?;
    let command = &ivc_speech::commands::corpus()[spec.command_indices[0]];
    let voice = synth
        .render(command, &ivc_speech::synthesis::SpeakerProfile::canonical())?
        .signal;
    // Attack drive.
    let Delivery::SingleSpeakerUltrasound { carrier_hz, .. } = spec.deliveries[0].delivery else {
        unreachable!("b2 is the single-speaker attack");
    };
    let attack = ivc_attack::single::SingleSpeakerAttack::build(
        &voice,
        carrier_hz,
        0.9,
        &ivc_attack::baseband::BasebandConfig::default(),
    )?;

    let mut table = Table::new(
        "E-B2: band-energy summaries (dB) of normal voice / attack ultrasound / recording",
        &[
            "Band",
            "Normal (0-8 kHz)",
            "Attack drive (0-96 kHz)",
            "Recording (0-8 kHz)",
        ],
    );
    let sg_voice = spectrogram(
        voice.samples(),
        voice.sample_rate_hz(),
        &StftConfig::default(),
    )?;
    let sg_attack = spectrogram(
        attack.drive.samples(),
        attack.drive.sample_rate_hz(),
        &StftConfig::default(),
    )?;
    let voice_bands = sg_voice.band_summary_db(8_000.0, bands);
    let attack_bands = sg_attack.band_summary_db(96_000.0, bands);
    let rec_bands = report.cells[0].trials[0]
        .recording_band_summary_db
        .clone()
        .expect("b2 archives the recording band summary");
    for i in 0..bands {
        table.push_row(vec![
            format!("{i}"),
            fmt(voice_bands[i], 1),
            fmt(attack_bands[i], 1),
            fmt(rec_bands[i], 1),
        ]);
    }
    Ok((table, report))
}

/// E-B3 — success rates over repeated trials (Song–Mittal §4.2).
///
/// Runs each (device, distance, command) case as its own built-in
/// campaign (`ivc_experiments::presets::b3`) so the success rates come
/// with Wilson confidence intervals for free.
pub fn tab_b3_success_rate(
    fidelity: Fidelity,
    workers: usize,
) -> Result<(Table, Vec<CampaignReport>)> {
    let specs = presets::b3(fidelity.quick());
    let trials = specs[0].trials_per_cell;
    let mut table = Table::new(
        format!("E-B3: attack success rate over {trials} trials"),
        &[
            "Device",
            "Distance (m)",
            "Command",
            "Success rate",
            "95% CI",
        ],
    );
    let mut reports = Vec::with_capacity(specs.len());
    for spec in specs {
        let report = run_campaign(&spec, workers)?;
        let cell = &report.cells[0];
        table.push_row(vec![
            spec.devices[0].name().to_string(),
            fmt(spec.distances_m[0], 1),
            ivc_speech::commands::corpus()[spec.command_indices[0]]
                .text
                .to_string(),
            fmt(cell.stats.success_rate, 2),
            format!(
                "[{}, {}]",
                fmt(cell.stats.success_ci_low, 2),
                fmt(cell.stats.success_ci_high, 2)
            ),
        ]);
        reports.push(report);
    }
    Ok((table, reports))
}

/// Runs a named campaign preset through the engine, returning one report
/// per expanded spec (`b3` and `d5` expand to several).
pub fn run_campaign_preset(
    name: &str,
    fidelity: Fidelity,
    workers: usize,
) -> Result<Vec<CampaignReport>> {
    let specs = presets::by_name(name, fidelity.quick()).ok_or_else(|| {
        format!(
            "unknown campaign preset '{name}' (available: {})",
            presets::PRESET_NAMES.join(", ")
        )
    })?;
    let mut reports = Vec::with_capacity(specs.len());
    for spec in &specs {
        reports.push(run_campaign(spec, workers)?);
    }
    Ok(reports)
}

/// Runs one campaign spec as `num_shards` forked worker processes of
/// `worker_exe` (normally the `repro` binary itself, re-entered through
/// its `shard-worker` subcommand), then merges the partial archives into
/// a report **byte-identical** to the in-process [`run_campaign`] run.
///
/// Job files and partial archives pass through `scratch_dir` using the
/// same file contract the `shard-plan` / `shard-worker` / `shard-merge`
/// subcommands expose for multi-machine runs — this is that contract,
/// driven across local processes.  `scratch_dir` is created if missing
/// and left in place for the caller to inspect or delete.
///
/// `partial_format` picks the wire format the workers write (the `.bin`
/// columnar default, or `.json` for humans); the merged bytes are
/// identical either way.  The merge streams the partial files one at a
/// time through per-cell accumulators, so driver memory stays O(cells)
/// plus a single shard's records.
pub fn run_campaign_spec_sharded(
    spec: &CampaignSpec,
    num_shards: usize,
    workers: usize,
    worker_exe: &Path,
    scratch_dir: &Path,
    partial_format: PartialFormat,
) -> Result<CampaignReport> {
    // The library-level `ShardPlan::partition` tolerates more shards than
    // jobs (empty tails merge as no-ops), but at the driver level that
    // silently forks workers with nothing to do — reject it with one line.
    let num_jobs = spec.num_trials();
    if num_shards > num_jobs {
        return Err(format!(
            "campaign '{}' has {num_jobs} trial(s) but {num_shards} shards were requested — \
             every shard must own at least one trial (use --shards <= {num_jobs})",
            spec.name
        )
        .into());
    }
    let plan = ShardPlan::partition(spec, num_shards)?;
    std::fs::create_dir_all(scratch_dir)?;
    let mut children = Vec::with_capacity(num_shards);
    for job in plan.jobs() {
        let job_path = scratch_dir.join(shard_job_file_name(&spec.name, &job.shard));
        let out_path = scratch_dir.join(shard_archive_file_name_with(
            &spec.name,
            &job.shard,
            partial_format,
        ));
        let spawned = job.save(&job_path).map_err(Into::into).and_then(|()| {
            std::process::Command::new(worker_exe)
                .arg("shard-worker")
                .arg("--job")
                .arg(&job_path)
                .arg("--out")
                .arg(&out_path)
                .arg("--workers")
                .arg(workers.to_string())
                .spawn()
                .map_err(|e| {
                    ivc_core::Error::from(format!(
                        "spawning shard worker {}: {e}",
                        job.shard.shard_index
                    ))
                })
        });
        match spawned {
            Ok(child) => children.push((job.shard.shard_index, out_path, child)),
            Err(e) => {
                // Never leave already-spawned workers orphaned, burning
                // CPU and writing into a scratch dir the caller may
                // delete: reap them before reporting the failure.
                for (_, _, mut child) in children {
                    child.kill().ok();
                    child.wait().ok();
                }
                return Err(e);
            }
        }
    }
    // Wait for every worker before reporting, so a failure message never
    // races with surviving children still writing partials.  Partials
    // stay on disk until the streaming merge below — the driver never
    // gathers every shard's records in memory at once.
    let mut partial_paths = Vec::with_capacity(num_shards);
    let mut failures: Vec<String> = Vec::new();
    for (shard_index, out_path, mut child) in children {
        match child.wait() {
            Err(e) => failures.push(format!("waiting for shard {shard_index}: {e}")),
            Ok(status) if !status.success() => {
                failures.push(format!("shard {shard_index} worker exited with {status}"))
            }
            Ok(_) if !out_path.exists() => failures.push(format!(
                "shard {shard_index} worker exited 0 but left no partial at {}",
                out_path.display()
            )),
            Ok(_) => partial_paths.push(out_path),
        }
    }
    if !failures.is_empty() {
        return Err(failures.join("; ").into());
    }
    Ok(merge_shard_files(&partial_paths)?)
}

/// The sharded flavour of [`run_campaign_preset`]: each of the preset's
/// specs runs as `num_shards` forked `worker_exe` processes (scratch
/// files are per-spec, so one directory serves the whole preset).
pub fn run_campaign_preset_sharded(
    name: &str,
    fidelity: Fidelity,
    num_shards: usize,
    workers: usize,
    worker_exe: &Path,
    scratch_dir: &Path,
    partial_format: PartialFormat,
) -> Result<Vec<CampaignReport>> {
    let specs = presets::by_name(name, fidelity.quick()).ok_or_else(|| {
        format!(
            "unknown campaign preset '{name}' (available: {})",
            presets::PRESET_NAMES.join(", ")
        )
    })?;
    specs
        .iter()
        .map(|spec| {
            run_campaign_spec_sharded(
                spec,
                num_shards,
                workers,
                worker_exe,
                scratch_dir,
                partial_format,
            )
        })
        .collect()
}

/// A per-invocation unique scratch-directory path under the system temp
/// dir (the path is returned, not created).  The pid alone is not unique
/// enough — a failed run keeps its directory behind for inspection and
/// pids recycle — so the name also carries a timestamp and a
/// process-wide counter.
pub fn unique_scratch_dir(tag: &str) -> PathBuf {
    use std::sync::atomic::{AtomicUsize, Ordering};
    static COUNTER: AtomicUsize = AtomicUsize::new(0);
    let stamp = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_millis())
        .unwrap_or(0);
    std::env::temp_dir().join(format!(
        "ivc-{tag}-{}-{stamp}-{}",
        std::process::id(),
        COUNTER.fetch_add(1, Ordering::Relaxed)
    ))
}

/// Runs one campaign spec under the supervising orchestrator: `repro
/// shard-worker` child processes launched from `worker_exe` (`workers`
/// threads each), failed shards retried, stragglers re-issued, finished
/// partials checkpointed into `scratch_dir` and surviving checkpoints
/// resumed — see [`ivc_experiments::orchestrate`].  The report is
/// byte-identical to the in-process [`run_campaign`] run.
pub fn run_campaign_spec_orchestrated(
    spec: &CampaignSpec,
    config: &OrchestratorConfig,
    workers: usize,
    worker_exe: &Path,
    scratch_dir: &Path,
    status: &mut dyn std::io::Write,
) -> Result<CampaignReport> {
    let mut launcher = ProcessLauncher::new(worker_exe, workers);
    let run = orchestrate(spec, config, scratch_dir, &mut launcher, status)?;
    Ok(run.report)
}

/// The orchestrated flavour of [`run_campaign_preset`]: each of the
/// preset's specs runs under [`run_campaign_spec_orchestrated`] (shard
/// file names carry the spec name, so one scratch directory serves the
/// whole preset — and resuming a multi-spec preset re-runs only the
/// shards whose checkpoints are missing).
pub fn run_campaign_preset_orchestrated(
    name: &str,
    fidelity: Fidelity,
    config: &OrchestratorConfig,
    workers: usize,
    worker_exe: &Path,
    scratch_dir: &Path,
    status: &mut dyn std::io::Write,
) -> Result<Vec<CampaignReport>> {
    let specs = presets::by_name(name, fidelity.quick()).ok_or_else(|| {
        format!(
            "unknown campaign preset '{name}' (available: {})",
            presets::PRESET_NAMES.join(", ")
        )
    })?;
    specs
        .iter()
        .map(|spec| {
            run_campaign_spec_orchestrated(spec, config, workers, worker_exe, scratch_dir, status)
        })
        .collect()
}

/// Loads and parses the telemetry sidecars the workers of a sharded or
/// orchestrated run left next to their canonical partial archives — one
/// `ivc-metrics-v1` document per shard of `spec`'s `num_shards` plan.
///
/// A missing or unparseable sidecar is a **loud error**, never an
/// under-reported fleet document: a silently dropped worker is exactly
/// the failure mode fleet telemetry exists to prevent.
pub fn collect_worker_metrics(
    spec: &CampaignSpec,
    num_shards: usize,
    scratch_dir: &Path,
) -> Result<Vec<telemetry::Snapshot>> {
    let plan = ShardPlan::partition(spec, num_shards)?;
    let mut snapshots = Vec::with_capacity(plan.shards.len());
    for shard in &plan.shards {
        let sidecar =
            metrics_sidecar_path(&scratch_dir.join(shard_archive_file_name(&spec.name, shard)));
        let text = std::fs::read_to_string(&sidecar).map_err(|e| {
            format!(
                "shard {} of campaign '{}' left no telemetry sidecar at {} ({e}); refusing to \
                 emit under-reported fleet metrics",
                shard.shard_index,
                spec.name,
                sidecar.display()
            )
        })?;
        snapshots.push(
            telemetry::Snapshot::parse_metrics(&text)
                .map_err(|e| format!("parsing {}: {e}", sidecar.display()))?,
        );
    }
    Ok(snapshots)
}

/// Total `stage.*` time of a snapshot, in nanoseconds.
fn stage_time_ns(snapshot: &telemetry::Snapshot) -> u64 {
    [
        telemetry::SPAN_STAGE_PREPARE,
        telemetry::SPAN_STAGE_PERTURB,
        telemetry::SPAN_STAGE_EVALUATE,
    ]
    .iter()
    .map(|name| snapshot.span(name).map(|s| s.total_ns).unwrap_or(0))
    .sum()
}

/// Merges worker sidecar snapshots into the coordinator's local snapshot,
/// producing the fleet-wide metrics document, and asserts the merge is
/// honest: at least 95 % of the fleet's `stage.*` time must come from the
/// workers (in a sharded run the coordinator executes no trials, so
/// anything less means worker telemetry was dropped on the floor).
pub fn merge_fleet_metrics(
    local: telemetry::Snapshot,
    workers: &[telemetry::Snapshot],
) -> Result<telemetry::Snapshot> {
    let worker_stage_ns: u64 = workers.iter().map(stage_time_ns).sum();
    let mut fleet = local.with_source("coordinator");
    for worker in workers {
        fleet.merge(worker);
    }
    let fleet_stage_ns = stage_time_ns(&fleet);
    if fleet_stage_ns > 0 && (worker_stage_ns as f64) < 0.95 * fleet_stage_ns as f64 {
        return Err(format!(
            "fleet metrics report only {:.1}% of stage time from workers (worker {:.3}s of \
             fleet {:.3}s) — worker telemetry was lost in the merge",
            100.0 * worker_stage_ns as f64 / fleet_stage_ns as f64,
            worker_stage_ns as f64 / 1e9,
            fleet_stage_ns as f64 / 1e9,
        )
        .into());
    }
    Ok(fleet)
}

/// A profiled campaign run: the per-stage time-attribution table plus
/// the raw telemetry snapshot it was built from (for `--metrics` /
/// `--trace` export alongside the table).
pub struct ProfileReport {
    /// Per-stage attribution: span counts, total seconds, mean
    /// milliseconds and share of wall clock, with pipeline sub-steps
    /// indented under their stage.
    pub table: Table,
    /// Seconds covered by the non-overlapping top-level spans (setup,
    /// detector training, the three stages, band summary, aggregation
    /// and cell-lock waits).  With one worker this should track the
    /// wall clock closely; the gap is unattributed engine overhead.
    pub stage_total_s: f64,
    /// Wall-clock seconds of the profiled run.
    pub wall_s: f64,
    /// The telemetry snapshot the table was rendered from.
    pub snapshot: telemetry::Snapshot,
}

/// The top-level attribution rows, in pipeline order, each with the
/// sub-step spans nested inside it.  Top-level spans never overlap each
/// other, so their totals sum to attributable engine time; sub-steps
/// are informational (they nest inside their parent's total).
const PROFILE_ROWS: &[(&str, &[&str])] = &[
    ("campaign.setup", &[]),
    ("campaign.detector_train", &[]),
    ("executor.cell_wait", &[]),
    (
        telemetry::SPAN_STAGE_PREPARE,
        &[
            "prepare.utterance_render",
            "prepare.attack_build",
            "prepare.rir_build",
            "prepare.convolution",
            "prepare.leakage",
        ],
    ),
    (
        telemetry::SPAN_STAGE_PERTURB,
        &["perturb.ambient_noise", "perturb.mic_capture"],
    ),
    (
        telemetry::SPAN_STAGE_EVALUATE,
        &[
            "evaluate.recognition",
            "evaluate.defense_features",
            "evaluate.detector",
        ],
    ),
    ("executor.band_summary", &[]),
    ("campaign.aggregate", &[]),
];

/// Profiles a campaign preset: runs it with telemetry enabled and
/// returns the per-stage time-attribution table.  The preset's reports
/// are computed and discarded — the profile is the product.  Call with
/// `workers = 1` for attribution that tracks wall clock (parallel
/// workers overlap stage time, so stage totals then exceed wall).
///
/// Resets the process-global telemetry collector, so the snapshot
/// covers exactly this run; the collector is left disabled.
pub fn profile_campaign_preset(
    name: &str,
    fidelity: Fidelity,
    workers: usize,
) -> Result<ProfileReport> {
    telemetry::reset();
    telemetry::set_enabled(true);
    let start = std::time::Instant::now();
    let outcome = run_campaign_preset(name, fidelity, workers);
    let wall_s = start.elapsed().as_secs_f64();
    telemetry::set_enabled(false);
    let snapshot = telemetry::snapshot();
    outcome?;
    Ok(attribution_report(
        name,
        &format!("{workers} worker(s)"),
        snapshot,
        wall_s,
    ))
}

/// The multi-process flavour of [`profile_campaign_preset`]: the preset
/// runs as `num_shards` forked `worker_exe` processes, each worker's
/// telemetry sidecar is collected, and the attribution table is rendered
/// from the merged **fleet** snapshot — so the table finally covers the
/// work that actually happened in the workers, not just coordinator
/// overhead.  Stage totals aggregate across concurrent processes, so
/// their sum can exceed wall clock, exactly as with `workers > 1`.
pub fn profile_campaign_preset_sharded(
    name: &str,
    fidelity: Fidelity,
    num_shards: usize,
    workers: usize,
    worker_exe: &Path,
    scratch_dir: &Path,
) -> Result<ProfileReport> {
    telemetry::reset();
    telemetry::set_enabled(true);
    let start = std::time::Instant::now();
    let outcome = run_campaign_preset_sharded(
        name,
        fidelity,
        num_shards,
        workers,
        worker_exe,
        scratch_dir,
        PartialFormat::default(),
    );
    let wall_s = start.elapsed().as_secs_f64();
    telemetry::set_enabled(false);
    let local = telemetry::snapshot();
    outcome?;
    let specs = presets::by_name(name, fidelity.quick()).expect("preset ran above");
    let mut worker_snapshots = Vec::new();
    for spec in &specs {
        worker_snapshots.extend(collect_worker_metrics(spec, num_shards, scratch_dir)?);
    }
    let fleet = merge_fleet_metrics(local, &worker_snapshots)?;
    Ok(attribution_report(
        name,
        &format!("{num_shards} shard(s) x {workers} worker(s)"),
        fleet,
        wall_s,
    ))
}

/// Renders the per-stage attribution table from a (possibly fleet-merged)
/// snapshot: span counts, totals, means, histogram-derived p50/p90/p99
/// estimates and share of wall clock.
fn attribution_report(
    name: &str,
    workers_label: &str,
    snapshot: telemetry::Snapshot,
    wall_s: f64,
) -> ProfileReport {
    let mut table = Table::new(
        format!("Stage attribution — preset '{name}' ({workers_label})"),
        &[
            "Stage",
            "Spans",
            "Total (s)",
            "Mean (ms)",
            "p50 (ms)",
            "p90 (ms)",
            "p99 (ms)",
            "% wall",
        ],
    );
    let mut stage_total_s = 0.0;
    let mut row = |label: String, name: &str| {
        if let Some(stat) = snapshot.span(name) {
            let total_s = stat.total_ns as f64 / 1e9;
            let mean_ms = if stat.count == 0 {
                0.0
            } else {
                stat.total_ns as f64 / stat.count as f64 / 1e6
            };
            let pct = if wall_s > 0.0 {
                100.0 * total_s / wall_s
            } else {
                0.0
            };
            table.push_row(vec![
                label,
                stat.count.to_string(),
                fmt(total_s, 3),
                fmt(mean_ms, 3),
                fmt(stat.p50_ns() as f64 / 1e6, 3),
                fmt(stat.p90_ns() as f64 / 1e6, 3),
                fmt(stat.p99_ns() as f64 / 1e6, 3),
                fmt(pct, 1),
            ]);
            return total_s;
        }
        0.0
    };
    for (top, subs) in PROFILE_ROWS {
        stage_total_s += row((*top).to_string(), top);
        for sub in *subs {
            row(format!("  {sub}"), sub);
        }
    }
    // Prepare-cache effectiveness: hit/miss/eviction counters plus the
    // per-product reuse counts.  Counters carry no duration, so they
    // render count-only rows and never perturb the time attribution.
    for (name, value) in snapshot.counters.iter() {
        if name.starts_with("executor.prepare_cache") || name.ends_with("_reused") {
            table.push_row(vec![
                format!("counter:{name}"),
                value.to_string(),
                "-".into(),
                "-".into(),
                "-".into(),
                "-".into(),
                "-".into(),
                "-".into(),
            ]);
        }
    }
    ProfileReport {
        table,
        stage_total_s,
        wall_s,
        snapshot,
    }
}

/// Writes a telemetry snapshot as a pretty-printed `ivc-metrics-v1`
/// JSON document (see [`ivc_core::telemetry::Snapshot::metrics_json`]).
pub fn write_metrics_file(path: &Path, snapshot: &telemetry::Snapshot, wall_s: f64) -> Result<()> {
    let mut text = snapshot.metrics_json(wall_s).to_json_string_pretty();
    text.push('\n');
    std::fs::write(path, text).map_err(|e| format!("writing {}: {e}", path.display()))?;
    Ok(())
}

/// Writes a telemetry snapshot as a Chrome trace-event JSON document
/// loadable in `chrome://tracing` / Perfetto (see
/// [`ivc_core::telemetry::Snapshot::trace_json`]).
pub fn write_trace_file(path: &Path, snapshot: &telemetry::Snapshot) -> Result<()> {
    let mut text = snapshot.trace_json().to_json_string_pretty();
    text.push('\n');
    std::fs::write(path, text).map_err(|e| format!("writing {}: {e}", path.display()))?;
    Ok(())
}

/// The format tag of the committed machine-readable bench snapshot
/// (`BENCH_*.json`, regenerated by `scripts/bench-snapshot.sh`).
pub const BENCH_SNAPSHOT_FORMAT: &str = "ivc-bench-snapshot-v1";

/// The outcome of comparing two bench snapshots: a one-row-per-entry
/// delta table plus the list of entries whose mean regressed past the
/// threshold (the gate — empty means the diff passes).
pub struct BenchDiffReport {
    /// Per-entry mean deltas; bench entries first, then the per-stage
    /// attribution deltas (annotate-only — stage means move with worker
    /// counts and runner load, so they inform but never gate).
    pub table: Table,
    /// One line per bench entry over the regression threshold.
    pub regressions: Vec<String>,
}

/// The comparable content of an `ivc-bench-snapshot-v1` document:
/// `group/name → mean_ns` for the bench entries and `span → mean_ns`
/// for the folded-in stage attribution.
struct BenchSnapshot {
    benches: Vec<(String, f64)>,
    stages: Vec<(String, f64)>,
}

fn parse_bench_snapshot(text: &str, label: &str) -> Result<BenchSnapshot> {
    let doc = JsonValue::parse(text).map_err(|e| format!("parsing {label}: {e}"))?;
    if doc.get("format").and_then(JsonValue::as_str) != Some(BENCH_SNAPSHOT_FORMAT) {
        return Err(format!("{label} is not an {BENCH_SNAPSHOT_FORMAT} document").into());
    }
    let mut benches = Vec::new();
    for entry in doc
        .get("benches")
        .and_then(JsonValue::as_array)
        .unwrap_or(&[])
    {
        let key = match (
            entry.get("group").and_then(JsonValue::as_str),
            entry.get("name").and_then(JsonValue::as_str),
        ) {
            (Some(group), Some(name)) => format!("{group}/{name}"),
            _ => return Err(format!("{label} has a bench entry without group/name").into()),
        };
        let mean = entry
            .get("mean_ns")
            .and_then(JsonValue::as_f64)
            .ok_or_else(|| format!("{label} bench entry '{key}' is missing mean_ns"))?;
        benches.push((key, mean));
    }
    let mut stages = Vec::new();
    if let Some(spans) = doc
        .get("stage_attribution")
        .and_then(|s| s.get("spans"))
        .and_then(JsonValue::as_array)
    {
        for span in spans {
            let name = span
                .get("name")
                .and_then(JsonValue::as_str)
                .ok_or_else(|| format!("{label} has a stage-attribution span without a name"))?;
            let mean = span
                .get("mean_ns")
                .and_then(JsonValue::as_f64)
                .ok_or_else(|| format!("{label} stage span '{name}' is missing mean_ns"))?;
            stages.push((name.to_string(), mean));
        }
    }
    Ok(BenchSnapshot { benches, stages })
}

/// The key union of two `(key, value)` lists: old order first, then
/// new-only keys in their own order.
fn key_union(old: &[(String, f64)], new: &[(String, f64)]) -> Vec<String> {
    let mut keys: Vec<String> = old.iter().map(|(k, _)| k.clone()).collect();
    for (k, _) in new {
        if !keys.contains(k) {
            keys.push(k.clone());
        }
    }
    keys
}

/// Compares two `ivc-bench-snapshot-v1` documents entry by entry.  A
/// bench entry whose mean grew by more than `max_regress_pct` percent is
/// a **regression** (listed in [`BenchDiffReport::regressions`]); stage
/// attribution deltas appear in the table for context but never gate.
/// Entries present on only one side are reported as added/removed.
pub fn bench_diff(old_text: &str, new_text: &str, max_regress_pct: f64) -> Result<BenchDiffReport> {
    let old = parse_bench_snapshot(old_text, "OLD")?;
    let new = parse_bench_snapshot(new_text, "NEW")?;
    let mut table = Table::new(
        format!("Bench diff — mean per entry (gate: > +{max_regress_pct:.0}% on bench entries)"),
        &[
            "Entry",
            "Old mean (ms)",
            "New mean (ms)",
            "Delta (%)",
            "Status",
        ],
    );
    let mut regressions = Vec::new();
    let mut push = |key: &str, old_mean: Option<f64>, new_mean: Option<f64>, gated: bool| {
        let (delta, status) = match (old_mean, new_mean) {
            (Some(o), Some(n)) if o > 0.0 => {
                let pct = 100.0 * (n - o) / o;
                let status = if !gated {
                    "info"
                } else if pct > max_regress_pct {
                    regressions.push(format!(
                        "{key}: mean {:.3} ms -> {:.3} ms (+{:.1}% > {:.0}%)",
                        o / 1e6,
                        n / 1e6,
                        pct,
                        max_regress_pct
                    ));
                    "REGRESSED"
                } else if pct < -max_regress_pct {
                    // Improvements past the gate threshold get their own
                    // annotation so perf wins are visible in CI logs, not
                    // just the absence of a failure.
                    "IMPROVED"
                } else {
                    "ok"
                };
                (format!("{pct:+.1}"), status)
            }
            (Some(_), Some(_)) => ("-".into(), "info"),
            (Some(_), None) => ("-".into(), "removed"),
            (None, Some(_)) => ("-".into(), "added"),
            (None, None) => ("-".into(), "-"),
        };
        table.push_row(vec![
            key.to_string(),
            old_mean
                .map(|v| fmt(v / 1e6, 3))
                .unwrap_or_else(|| "-".into()),
            new_mean
                .map(|v| fmt(v / 1e6, 3))
                .unwrap_or_else(|| "-".into()),
            delta,
            status.to_string(),
        ]);
    };
    let lookup =
        |list: &[(String, f64)], key: &str| list.iter().find(|(k, _)| k == key).map(|(_, v)| *v);
    for key in key_union(&old.benches, &new.benches) {
        push(
            &key,
            lookup(&old.benches, &key),
            lookup(&new.benches, &key),
            true,
        );
    }
    for key in key_union(&old.stages, &new.stages) {
        let label = format!("stage:{key}");
        push(
            &label,
            lookup(&old.stages, &key),
            lookup(&new.stages, &key),
            false,
        );
    }
    Ok(BenchDiffReport { table, regressions })
}

/// Trial records of a report paired with their attack/legitimate label
/// (derived from the cell's delivery).
fn labelled_trials<'a>(
    report: &'a CampaignReport,
) -> impl Iterator<Item = (&'a TrialRecord, bool)> + 'a {
    report.cells.iter().flat_map(move |cell| {
        let is_attack = report.spec.deliveries[cell.cell.coords.delivery_index]
            .delivery
            .is_attack();
        cell.trials.iter().map(move |t| (t, is_attack))
    })
}

/// `(detection probability, is_attack)` pairs of every trial of a report.
fn scored_trials(report: &CampaignReport) -> Result<Vec<(f64, bool)>> {
    labelled_trials(report)
        .map(|(t, y)| {
            t.detection_probability
                .map(|p| (p, y))
                .ok_or_else(|| "trial is missing its detection probability".into())
        })
        .collect()
}

/// E-D1 / E-D2 — defense feature separation between legit and attack.
///
/// Runs the `d1` campaign (legitimate talker vs the standard attack, the
/// trained detector on the axis) and averages the archived per-trial
/// feature vectors per class; the final row is the detector's mean attack
/// probability per class — the detector-probability line the trained-
/// detector axis adds to the d-series.
pub fn fig_d1_d2_feature_separation(
    fidelity: Fidelity,
    workers: usize,
) -> Result<(Table, CampaignReport)> {
    let report = run_campaign(&presets::d1(fidelity.quick()), workers)?;
    let mut table = Table::new(
        "E-D1/E-D2: defense feature means (legitimate vs attack recordings)",
        &["Feature", "Legit mean", "Attack mean"],
    );
    let mut sums = [[0.0f64; 2]; DefenseFeatures::DIMENSION];
    let mut probability_sums = [0.0f64; 2];
    let mut counts = [0usize; 2];
    for (trial, is_attack) in labelled_trials(&report) {
        let class = usize::from(is_attack);
        counts[class] += 1;
        for (i, v) in trial.defense_features.iter().enumerate() {
            sums[i][class] += v;
        }
        probability_sums[class] += trial.detection_probability.unwrap_or(f64::NAN);
    }
    for (i, name) in DefenseFeatures::NAMES.iter().enumerate() {
        table.push_row(vec![
            name.to_string(),
            fmt(sums[i][0] / counts[0].max(1) as f64, 2),
            fmt(sums[i][1] / counts[1].max(1) as f64, 2),
        ]);
    }
    table.push_row(vec![
        "detector P(attack)".to_string(),
        fmt(probability_sums[0] / counts[0].max(1) as f64, 2),
        fmt(probability_sums[1] / counts[1].max(1) as f64, 2),
    ]);
    Ok((table, report))
}

/// E-D3 — the detector's ROC curve, traced from the `d3` campaign's
/// archived per-trial `(probability, label)` pairs.
pub fn fig_d3_roc(fidelity: Fidelity, workers: usize) -> Result<(Table, CampaignReport)> {
    let report = run_campaign(&presets::d3(fidelity.quick()), workers)?;
    let scored = scored_trials(&report)?;
    let roc = RocCurve::compute(&scored)?;
    let mut table = Table::new(
        format!("E-D3: detector ROC (AUC = {:.3})", roc.auc),
        &["FPR", "TPR"],
    );
    for p in roc.points.iter().take(12) {
        table.push_row(vec![
            fmt(p.false_positive_rate, 3),
            fmt(p.true_positive_rate, 3),
        ]);
    }
    Ok((table, report))
}

/// E-D4 — detection accuracy per device and distance, from the `d4`
/// campaign's archived detection probabilities (threshold 0.5), with the
/// trained-detector axis's mean-probability column.
pub fn tab_d4_detection_grid(
    fidelity: Fidelity,
    workers: usize,
) -> Result<(Table, CampaignReport)> {
    let spec = presets::d4(fidelity.quick());
    let report = run_campaign(&spec, workers)?;
    let mut table = Table::new(
        "E-D4: detection accuracy / FPR per device and distance",
        &[
            "Device",
            "Distance (m)",
            "Accuracy",
            "FPR",
            "TPR",
            "Mean P(attack)",
        ],
    );
    for (device_index, device) in spec.devices.iter().enumerate() {
        for (distance_index, &distance) in spec.distances_m.iter().enumerate() {
            let mut scored = Vec::new();
            for (trial, is_attack) in labelled_trials(&report) {
                let cell = &report.cells[trial.cell_index].cell.coords;
                if cell.device_index != device_index || cell.distance_index != distance_index {
                    continue;
                }
                let p = trial
                    .detection_probability
                    .ok_or("d4 trials carry detection probabilities")?;
                scored.push((p, is_attack));
            }
            let matrix = ConfusionMatrix::from_scores(&scored, 0.5);
            let mean_p = scored.iter().map(|(p, _)| p).sum::<f64>() / scored.len().max(1) as f64;
            table.push_row(vec![
                device.name().to_string(),
                fmt(distance, 1),
                fmt(matrix.accuracy(), 2),
                fmt(matrix.false_positive_rate(), 2),
                fmt(matrix.true_positive_rate(), 2),
                fmt(mean_p, 2),
            ]);
        }
    }
    Ok((table, report))
}

/// E-D5 — detection robustness versus ambient noise: one campaign per
/// noise level, each scored by its trained detector.
pub fn fig_d5_noise_robustness(
    fidelity: Fidelity,
    workers: usize,
) -> Result<(Table, Vec<CampaignReport>)> {
    let specs = presets::d5(fidelity.quick());
    let mut table = Table::new(
        "E-D5: detection accuracy vs ambient noise",
        &[
            "Ambient SPL (dB)",
            "Accuracy",
            "TPR",
            "FPR",
            "Mean P(attack)",
        ],
    );
    let mut reports = Vec::with_capacity(specs.len());
    for spec in specs {
        let report = run_campaign(&spec, workers)?;
        let scored = scored_trials(&report)?;
        let matrix = ConfusionMatrix::from_scores(&scored, 0.5);
        let mean_p = scored.iter().map(|(p, _)| p).sum::<f64>() / scored.len().max(1) as f64;
        table.push_row(vec![
            fmt(spec.ambient_noise_spl_db, 0),
            fmt(matrix.accuracy(), 2),
            fmt(matrix.true_positive_rate(), 2),
            fmt(matrix.false_positive_rate(), 2),
            fmt(mean_p, 2),
        ]);
        reports.push(report);
    }
    Ok((table, reports))
}

/// E-D6 — the adaptive attacker: shadow suppression vs detection and
/// command intelligibility, from the `d6` campaign's suppression-swept
/// delivery axis.
pub fn fig_d6_adaptive_attacker(
    fidelity: Fidelity,
    workers: usize,
) -> Result<(Table, CampaignReport)> {
    let spec = presets::d6(fidelity.quick());
    let report = run_campaign(&spec, workers)?;
    let mut table = Table::new(
        "E-D6: adaptive attacker (shadow suppression)",
        &[
            "Suppression",
            "Detection prob.",
            "Attack word accuracy",
            "Attacker wins?",
        ],
    );
    for (i, delivery) in spec.deliveries.iter().enumerate() {
        let cell = report
            .find_cell(&CellCoords {
                delivery_index: i,
                ..CellCoords::default()
            })
            .expect("d6 grid covers every suppression");
        let outcome = ivc_defense::countermeasures::CountermeasureOutcome {
            suppression: delivery.shadow_suppression,
            detection_probability: cell
                .stats
                .mean_detection_probability
                .ok_or("d6 cells carry detection probabilities")?,
            attack_word_accuracy: cell.stats.mean_word_accuracy,
        };
        table.push_row(vec![
            fmt(outcome.suppression, 2),
            fmt(outcome.detection_probability, 2),
            fmt(outcome.attack_word_accuracy, 2),
            if outcome.attacker_wins() {
                "yes".into()
            } else {
                "no".into()
            },
        ]);
    }
    Ok((table, report))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_trial_loop_escapes_the_campaign_engine() {
        // The migration's structural guarantee, checked at the source
        // level: the harness never calls the pipeline directly — every
        // experiment goes through `run_campaign`.
        let source = include_str!("lib.rs");
        // Built from pieces so this test's own text does not trip it.
        let needle = concat!("run_", "trial(");
        assert!(
            !source.contains(needle),
            "bespoke trial execution crept back into ivc-bench"
        );
    }

    #[test]
    fn fidelity_flag_parsing() {
        // Parsed from explicit values, not the live environment, so the
        // suite passes even in a shell that exported IVC_FULL=1.
        assert_eq!(Fidelity::from_flag(None), Fidelity::Quick);
        assert_eq!(Fidelity::from_flag(Some("0")), Fidelity::Quick);
        assert_eq!(Fidelity::from_flag(Some("1")), Fidelity::Full);
        assert_eq!(Fidelity::from_flag(Some("true")), Fidelity::Full);
        assert!(Fidelity::Quick.quick());
        assert!(!Fidelity::Full.quick());
    }
}
