//! # ivc-bench — the reproduction harness
//!
//! One function per paper table/figure.  Each function runs the relevant
//! sweep through the end-to-end pipeline and returns a printable
//! [`Table`]/[`Series`]; the `repro` binary exposes them as sub-commands and
//! the Criterion benches in `benches/` measure the hot paths.
//!
//! Two fidelity levels are supported to keep wall-clock time manageable:
//! [`Fidelity::Quick`] (trimmed sweeps, truncated commands — minutes) and
//! [`Fidelity::Full`] (the full grids — tens of minutes).  The experiment
//! *shapes* are identical; EXPERIMENTS.md records which level produced the
//! archived numbers.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use ivc_acoustics::microphone::DevicePreset;
use ivc_core::results::{fmt, Series, Table};
use ivc_core::scenario::{Delivery, Scenario};
use ivc_core::{run_trial, Result};
use ivc_defense::classifier::{LogisticRegression, TrainingConfig};
use ivc_defense::dataset::{Dataset, DatasetConfig};
use ivc_defense::evaluation::{evaluate, RocCurve};
use ivc_defense::features::DefenseFeatures;
use ivc_experiments::{presets, run_campaign, CampaignReport};
use ivc_speech::commands::corpus;
use ivc_speech::recognizer::Recognizer;

/// How exhaustive the sweeps should be.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fidelity {
    /// Trimmed sweeps and truncated commands; finishes in minutes.
    Quick,
    /// The full grids reported in EXPERIMENTS.md's "full" runs.
    Full,
}

impl Fidelity {
    /// Reads the fidelity from the `IVC_FULL` environment variable
    /// (`Full` when set to `1`, `Quick` otherwise).
    pub fn from_env() -> Fidelity {
        match std::env::var("IVC_FULL").as_deref() {
            Ok("1") | Ok("true") => Fidelity::Full,
            _ => Fidelity::Quick,
        }
    }

    /// The campaign-preset flavour of this fidelity.
    pub fn quick(self) -> bool {
        self == Fidelity::Quick
    }

    fn voice_cap_s(self) -> f64 {
        match self {
            Fidelity::Quick => 1.1,
            Fidelity::Full => f64::INFINITY,
        }
    }

    fn trials(self, quick: usize, full: usize) -> usize {
        match self {
            Fidelity::Quick => quick,
            Fidelity::Full => full,
        }
    }
}

fn base_attack_scenario(fidelity: Fidelity) -> Scenario {
    Scenario {
        max_voice_duration_s: fidelity.voice_cap_s(),
        ..Scenario::default_attack()
    }
}

/// E-A1 — audible leakage of a single speaker versus drive power.
///
/// Runs as a built-in campaign (`ivc_experiments::presets::a1`) through
/// the parallel engine; the returned report is the archivable record.
pub fn fig_a1_leakage_vs_power(
    fidelity: Fidelity,
    workers: usize,
) -> Result<(Table, CampaignReport)> {
    let spec = presets::a1(fidelity.quick());
    let report = run_campaign(&spec, workers)?;
    let mut table = Table::new(
        "E-A1: single-speaker leakage vs drive power (bystander at 1 m)",
        &[
            "Power (W)",
            "Leakage SPL (dB)",
            "Voice-band leak (dB)",
            "Audible?",
        ],
    );
    for (i, delivery) in spec.deliveries.iter().enumerate() {
        let Delivery::SingleSpeakerUltrasound { power_w, .. } = delivery.delivery else {
            unreachable!("a1 sweeps single-speaker powers");
        };
        let cell = report
            .find_cell(0, i, 0, 0, 0, 0)
            .expect("a1 grid covers every power");
        let audible = cell
            .stats
            .leak_audible_fraction
            .expect("attack delivery has leakage")
            >= 0.5;
        table.push_row(vec![
            fmt(power_w, 1),
            fmt(cell.stats.mean_bystander_spl_db.unwrap_or(f64::NAN), 1),
            fmt(
                cell.stats.mean_bystander_voice_spl_db.unwrap_or(f64::NAN),
                1,
            ),
            if audible { "yes".into() } else { "no".into() },
        ]);
    }
    Ok((table, report))
}

/// E-A2 — word accuracy versus distance: single speaker vs array.
///
/// Runs as a built-in campaign (`ivc_experiments::presets::a2`); the
/// series are the report's psychometric curves read as accuracy curves.
pub fn fig_a2_accuracy_vs_distance(
    fidelity: Fidelity,
    workers: usize,
) -> Result<(Table, Vec<Series>, CampaignReport)> {
    let spec = presets::a2(fidelity.quick());
    let report = run_campaign(&spec, workers)?;
    let mut table = Table::new(
        "E-A2: injected-command word accuracy vs distance",
        &["Distance (m)", "Single 3 W", "Array 16", "Array 61"],
    );
    for (di, &distance) in spec.distances_m.iter().enumerate() {
        let accuracy = |delivery_index: usize| -> f64 {
            report
                .find_cell(0, delivery_index, 0, 0, 0, di)
                .expect("a2 grid covers every (delivery, distance)")
                .stats
                .mean_word_accuracy
        };
        table.push_row(vec![
            fmt(distance, 1),
            fmt(accuracy(0), 2),
            fmt(accuracy(1), 2),
            fmt(accuracy(2), 2),
        ]);
    }
    let series = report
        .curves
        .iter()
        .map(|curve| {
            Series::new(
                curve.label.clone(),
                curve.distances_m.clone(),
                curve.mean_word_accuracy.clone(),
            )
        })
        .collect();
    Ok((table, series, report))
}

/// E-A3 — word accuracy versus number of array elements at long range.
///
/// Runs as a built-in campaign (`ivc_experiments::presets::a3`) through
/// the parallel engine; the table reproduces the bespoke loop it replaced.
pub fn fig_a3_accuracy_vs_speakers(
    fidelity: Fidelity,
    workers: usize,
) -> Result<(Table, CampaignReport)> {
    let spec = presets::a3(fidelity.quick());
    let report = run_campaign(&spec, workers)?;
    let distance = spec.distances_m[0];
    let mut table = Table::new(
        format!("E-A3: word accuracy vs number of elements (distance {distance} m)"),
        &[
            "Elements",
            "Total power (W)",
            "Word accuracy",
            "Leak voice-band SPL (dB)",
        ],
    );
    for (i, delivery) in spec.deliveries.iter().enumerate() {
        let Delivery::ArrayUltrasound {
            num_elements,
            total_power_w,
            ..
        } = delivery.delivery
        else {
            unreachable!("a3 sweeps array element counts");
        };
        let cell = report
            .find_cell(0, i, 0, 0, 0, 0)
            .expect("a3 grid covers every element count");
        table.push_row(vec![
            num_elements.to_string(),
            fmt(total_power_w, 1),
            fmt(cell.stats.mean_word_accuracy, 2),
            fmt(
                cell.stats.mean_bystander_voice_spl_db.unwrap_or(f64::NAN),
                1,
            ),
        ]);
    }
    Ok((table, report))
}

/// E-A4 — leakage audibility versus number of elements at equal total power.
///
/// Runs as a built-in campaign (`ivc_experiments::presets::a4`); the
/// A-weighted column comes from the report's `mean_bystander_spl_dba`.
pub fn fig_a4_leakage_vs_speakers(
    fidelity: Fidelity,
    workers: usize,
) -> Result<(Table, CampaignReport)> {
    let spec = presets::a4(fidelity.quick());
    let report = run_campaign(&spec, workers)?;
    let Delivery::ArrayUltrasound { total_power_w, .. } = spec.deliveries[0].delivery else {
        unreachable!("a4 sweeps array element counts");
    };
    let mut table = Table::new(
        format!(
            "E-A4: leakage vs number of elements (total power {total_power_w} W, bystander 1 m)"
        ),
        &[
            "Elements",
            "Leak SPL (dB)",
            "Leak dB(A)",
            "Voice-band leak (dB)",
            "Audible?",
        ],
    );
    for (i, delivery) in spec.deliveries.iter().enumerate() {
        let Delivery::ArrayUltrasound { num_elements, .. } = delivery.delivery else {
            unreachable!("a4 sweeps array element counts");
        };
        let cell = report
            .find_cell(0, i, 0, 0, 0, 0)
            .expect("a4 grid covers every element count");
        let audible = cell
            .stats
            .leak_audible_fraction
            .expect("attack delivery has leakage")
            >= 0.5;
        table.push_row(vec![
            num_elements.to_string(),
            fmt(cell.stats.mean_bystander_spl_db.unwrap_or(f64::NAN), 1),
            fmt(cell.stats.mean_bystander_spl_dba.unwrap_or(f64::NAN), 1),
            fmt(
                cell.stats.mean_bystander_voice_spl_db.unwrap_or(f64::NAN),
                1,
            ),
            if audible { "yes".into() } else { "no".into() },
        ]);
    }
    Ok((table, report))
}

/// Room × distance sweep: the same array attack in every room preset,
/// rendered as a word-accuracy pivot (rows = distances, columns = rooms)
/// plus a bystander-leak pivot in the same table.
pub fn fig_rooms_sweep(fidelity: Fidelity, workers: usize) -> Result<(Table, CampaignReport)> {
    let spec = presets::rooms(fidelity.quick());
    let report = run_campaign(&spec, workers)?;
    let mut columns: Vec<String> = vec!["Distance (m)".into()];
    for &room in &spec.rooms {
        columns.push(format!("{} acc.", ivc_experiments::room_token(room)));
    }
    for &room in &spec.rooms {
        columns.push(format!("{} leak dB", ivc_experiments::room_token(room)));
    }
    let column_refs: Vec<&str> = columns.iter().map(String::as_str).collect();
    let mut table = Table::new(
        "Rooms: word accuracy and bystander leak vs distance per room preset",
        &column_refs,
    );
    for (di, &distance) in spec.distances_m.iter().enumerate() {
        let cells: Vec<_> = (0..spec.rooms.len())
            .map(|ri| {
                report
                    .find_cell(0, 0, ri, 0, 0, di)
                    .expect("rooms grid covers every (room, distance)")
            })
            .collect();
        let mut row = vec![fmt(distance, 1)];
        row.extend(cells.iter().map(|c| fmt(c.stats.mean_word_accuracy, 2)));
        row.extend(
            cells
                .iter()
                .map(|c| fmt(c.stats.mean_bystander_spl_db.unwrap_or(f64::NAN), 1)),
        );
        table.push_row(row);
    }
    Ok((table, report))
}

/// E-A5 — attack range per device at a fixed array configuration.
pub fn tab_a5_range_per_device(fidelity: Fidelity) -> Result<Table> {
    let recognizer = Recognizer::with_default_corpus()?;
    let command = &corpus()[0];
    let distances: Vec<f64> = match fidelity {
        Fidelity::Quick => vec![1.0, 2.0, 4.0, 6.0],
        Fidelity::Full => vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0],
    };
    let mut table = Table::new(
        "E-A5: attack range per device (accuracy >= 0.6, 16-element array, 120 W)",
        &["Device", "Range (m)"],
    );
    for device in [DevicePreset::AndroidPhone, DevicePreset::AmazonEcho] {
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for &d in &distances {
            let scenario = Scenario {
                device,
                delivery: Delivery::ArrayUltrasound {
                    num_elements: 16,
                    total_power_w: 120.0,
                    carrier_hz: 40_000.0,
                },
                ..base_attack_scenario(fidelity)
            }
            .at_distance(d);
            let outcome = run_trial(command, &scenario, &recognizer, None)?;
            xs.push(d);
            ys.push(outcome.word_accuracy);
        }
        let series = Series::new(device.name(), xs, ys);
        let range = series.last_x_with_y_at_least(0.6).unwrap_or(0.0);
        table.push_row(vec![device.name().to_string(), fmt(range, 1)]);
    }
    Ok(table)
}

/// E-A6 — demodulated quality versus carrier frequency.
pub fn fig_a6_carrier_frequency(fidelity: Fidelity) -> Result<Table> {
    let recognizer = Recognizer::with_default_corpus()?;
    let command = &corpus()[0];
    let carriers: Vec<f64> = match fidelity {
        Fidelity::Quick => vec![30_000.0, 40_000.0, 60_000.0],
        Fidelity::Full => vec![
            28_000.0, 32_000.0, 36_000.0, 40_000.0, 48_000.0, 56_000.0, 64_000.0,
        ],
    };
    let mut table = Table::new(
        "E-A6: word accuracy vs carrier frequency (single speaker, 10 W, 1.5 m)",
        &["Carrier (kHz)", "Word accuracy"],
    );
    for &fc in &carriers {
        let scenario = Scenario {
            delivery: Delivery::SingleSpeakerUltrasound {
                power_w: 10.0,
                carrier_hz: fc,
            },
            ..base_attack_scenario(fidelity)
        }
        .at_distance(1.5);
        let outcome = run_trial(command, &scenario, &recognizer, None)?;
        table.push_row(vec![fmt(fc / 1_000.0, 0), fmt(outcome.word_accuracy, 2)]);
    }
    Ok(table)
}

/// E-B1 — Song–Mittal Table 1: attack range versus speaker input power.
pub fn tab_b1_range_vs_power(fidelity: Fidelity) -> Result<Table> {
    let recognizer = Recognizer::with_default_corpus()?;
    let command = &corpus()[0];
    let powers = [9.2, 11.8, 14.8, 18.7, 23.7];
    let distances: Vec<f64> = match fidelity {
        Fidelity::Quick => vec![0.5, 1.0, 1.5, 2.0, 2.5, 3.0, 3.5, 4.0],
        Fidelity::Full => (1..=45).map(|i| i as f64 * 0.1).collect(),
    };
    let mut table = Table::new(
        "E-B1: attack range vs speaker input power (single speaker)",
        &["Power (W)", "Phone range (cm)", "Echo range (cm)"],
    );
    for &p in &powers {
        let mut ranges = Vec::new();
        for device in [DevicePreset::AndroidPhone, DevicePreset::AmazonEcho] {
            let mut xs = Vec::new();
            let mut ys = Vec::new();
            for &d in &distances {
                let scenario = Scenario {
                    device,
                    delivery: Delivery::SingleSpeakerUltrasound {
                        power_w: p,
                        carrier_hz: 30_000.0,
                    },
                    ..base_attack_scenario(fidelity)
                }
                .at_distance(d);
                let outcome = run_trial(command, &scenario, &recognizer, None)?;
                xs.push(d);
                ys.push(outcome.word_accuracy);
            }
            let range_m = Series::new(device.name(), xs, ys)
                .last_x_with_y_at_least(0.6)
                .unwrap_or(0.0);
            ranges.push(range_m * 100.0);
        }
        table.push_row(vec![fmt(p, 1), fmt(ranges[0], 0), fmt(ranges[1], 0)]);
    }
    Ok(table)
}

/// E-B2 — spectrogram band-energy summary of normal / attack / recorded.
pub fn fig_b2_spectrogram_triplet(fidelity: Fidelity) -> Result<Table> {
    use ivc_dsp::stft::{spectrogram, StftConfig};
    let recognizer = Recognizer::with_default_corpus()?;
    let command = &corpus()[0];
    let scenario = Scenario {
        delivery: Delivery::SingleSpeakerUltrasound {
            power_w: 18.7,
            carrier_hz: 30_000.0,
        },
        ..base_attack_scenario(fidelity)
    };
    // Normal voice.
    let synth = ivc_speech::synthesis::Synthesizer::new(48_000.0)?;
    let voice = synth
        .render(command, &ivc_speech::synthesis::SpeakerProfile::canonical())?
        .signal;
    // Attack drive.
    let attack = ivc_attack::single::SingleSpeakerAttack::build(
        &voice,
        30_000.0,
        0.9,
        &ivc_attack::baseband::BasebandConfig::default(),
    )?;
    // Recording at the device.
    let outcome = run_trial(command, &scenario, &recognizer, None)?;

    let bands = 8;
    let mut table = Table::new(
        "E-B2: band-energy summaries (dB) of normal voice / attack ultrasound / recording",
        &[
            "Band",
            "Normal (0-8 kHz)",
            "Attack drive (0-96 kHz)",
            "Recording (0-8 kHz)",
        ],
    );
    let sg_voice = spectrogram(
        voice.samples(),
        voice.sample_rate_hz(),
        &StftConfig::default(),
    )?;
    let sg_attack = spectrogram(
        attack.drive.samples(),
        attack.drive.sample_rate_hz(),
        &StftConfig::default(),
    )?;
    let sg_rec = spectrogram(
        outcome.recording.samples(),
        outcome.recording.sample_rate_hz(),
        &StftConfig::default(),
    )?;
    let voice_bands = sg_voice.band_summary_db(8_000.0, bands);
    let attack_bands = sg_attack.band_summary_db(96_000.0, bands);
    let rec_bands = sg_rec.band_summary_db(8_000.0, bands);
    for i in 0..bands {
        table.push_row(vec![
            format!("{i}"),
            fmt(voice_bands[i], 1),
            fmt(attack_bands[i], 1),
            fmt(rec_bands[i], 1),
        ]);
    }
    Ok(table)
}

/// E-B3 — success rates over repeated trials (Song–Mittal §4.2).
///
/// Runs each (device, distance, command) case as its own built-in
/// campaign (`ivc_experiments::presets::b3`) so the success rates come
/// with Wilson confidence intervals for free.
pub fn tab_b3_success_rate(
    fidelity: Fidelity,
    workers: usize,
) -> Result<(Table, Vec<CampaignReport>)> {
    let specs = presets::b3(fidelity.quick());
    let trials = specs[0].trials_per_cell;
    let mut table = Table::new(
        format!("E-B3: attack success rate over {trials} trials"),
        &[
            "Device",
            "Distance (m)",
            "Command",
            "Success rate",
            "95% CI",
        ],
    );
    let mut reports = Vec::with_capacity(specs.len());
    for spec in specs {
        let report = run_campaign(&spec, workers)?;
        let cell = &report.cells[0];
        table.push_row(vec![
            spec.devices[0].name().to_string(),
            fmt(spec.distances_m[0], 1),
            corpus()[spec.command_indices[0]].text.to_string(),
            fmt(cell.stats.success_rate, 2),
            format!(
                "[{}, {}]",
                fmt(cell.stats.success_ci_low, 2),
                fmt(cell.stats.success_ci_high, 2)
            ),
        ]);
        reports.push(report);
    }
    Ok((table, reports))
}

/// Runs a named campaign preset through the engine, returning one report
/// per expanded spec (`b3` expands to two).
pub fn run_campaign_preset(
    name: &str,
    fidelity: Fidelity,
    workers: usize,
) -> Result<Vec<CampaignReport>> {
    let specs = presets::by_name(name, fidelity.quick()).ok_or_else(|| {
        format!(
            "unknown campaign preset '{name}' (available: {})",
            presets::PRESET_NAMES.join(", ")
        )
    })?;
    let mut reports = Vec::with_capacity(specs.len());
    for spec in &specs {
        reports.push(run_campaign(spec, workers)?);
    }
    Ok(reports)
}

/// Builds the detector's training corpus and a trained model.
pub fn train_detector(fidelity: Fidelity) -> Result<(Dataset, LogisticRegression)> {
    let config = DatasetConfig {
        distances_m: match fidelity {
            Fidelity::Quick => vec![1.5, 3.0],
            Fidelity::Full => vec![1.0, 2.0, 3.0, 5.0],
        },
        num_speaker_variants: fidelity.trials(2, 4),
        command_indices: match fidelity {
            Fidelity::Quick => vec![0],
            Fidelity::Full => vec![0, 1, 2, 3],
        },
        attack_elements: 8,
        max_voice_duration_s: fidelity.voice_cap_s(),
        ..DatasetConfig::default()
    };
    let dataset = Dataset::generate(&config)?;
    let samples = dataset.to_feature_samples()?;
    let model = LogisticRegression::train(&samples, &TrainingConfig::default())?;
    Ok((dataset, model))
}

/// E-D1 / E-D2 — defense feature separation between legit and attack.
pub fn fig_d1_d2_feature_separation(fidelity: Fidelity) -> Result<Table> {
    let (dataset, _) = train_detector(fidelity)?;
    let mut table = Table::new(
        "E-D1/E-D2: defense feature means (legitimate vs attack recordings)",
        &["Feature", "Legit mean", "Attack mean"],
    );
    let mut sums = [[0.0f64; 2]; DefenseFeatures::DIMENSION];
    let mut counts = [0usize; 2];
    for r in &dataset.recordings {
        let f = DefenseFeatures::extract(&r.recording)?.to_vector();
        let class = usize::from(r.is_attack);
        counts[class] += 1;
        for (i, v) in f.iter().enumerate() {
            sums[i][class] += v;
        }
    }
    for (i, name) in DefenseFeatures::NAMES.iter().enumerate() {
        table.push_row(vec![
            name.to_string(),
            fmt(sums[i][0] / counts[0].max(1) as f64, 2),
            fmt(sums[i][1] / counts[1].max(1) as f64, 2),
        ]);
    }
    Ok(table)
}

/// E-D3 — the detector's ROC curve.
pub fn fig_d3_roc(fidelity: Fidelity) -> Result<Table> {
    let (dataset, model) = train_detector(fidelity)?;
    let samples = dataset.to_feature_samples()?;
    let roc = RocCurve::from_model(&model, &samples)?;
    let mut table = Table::new(
        format!("E-D3: detector ROC (AUC = {:.3})", roc.auc),
        &["FPR", "TPR"],
    );
    for p in roc.points.iter().take(12) {
        table.push_row(vec![
            fmt(p.false_positive_rate, 3),
            fmt(p.true_positive_rate, 3),
        ]);
    }
    Ok(table)
}

/// E-D4 — detection accuracy per device and distance.
pub fn tab_d4_detection_grid(fidelity: Fidelity) -> Result<Table> {
    let (_, model) = train_detector(fidelity)?;
    let mut table = Table::new(
        "E-D4: detection accuracy / FPR per device and distance",
        &["Device", "Distance (m)", "Accuracy", "FPR", "TPR"],
    );
    let distances = match fidelity {
        Fidelity::Quick => vec![2.0],
        Fidelity::Full => vec![1.0, 3.0, 5.0],
    };
    for device in [DevicePreset::AndroidPhone, DevicePreset::AmazonEcho] {
        for &d in &distances {
            let config = DatasetConfig {
                device,
                distances_m: vec![d],
                num_speaker_variants: fidelity.trials(2, 4),
                command_indices: match fidelity {
                    Fidelity::Quick => vec![1],
                    Fidelity::Full => vec![1, 2, 4],
                },
                attack_elements: 8,
                max_voice_duration_s: fidelity.voice_cap_s(),
                seed: 100 + d as u64,
                ..DatasetConfig::default()
            };
            let test_set = Dataset::generate(&config)?.to_feature_samples()?;
            let matrix = evaluate(&model, &test_set)?;
            table.push_row(vec![
                device.name().to_string(),
                fmt(d, 1),
                fmt(matrix.accuracy(), 2),
                fmt(matrix.false_positive_rate(), 2),
                fmt(matrix.true_positive_rate(), 2),
            ]);
        }
    }
    Ok(table)
}

/// E-D5 — detection robustness versus ambient noise level.
pub fn fig_d5_noise_robustness(fidelity: Fidelity) -> Result<Table> {
    let (_, model) = train_detector(fidelity)?;
    let noise_levels = match fidelity {
        Fidelity::Quick => vec![40.0, 60.0],
        Fidelity::Full => vec![35.0, 45.0, 55.0, 65.0],
    };
    let mut table = Table::new(
        "E-D5: detection accuracy vs ambient noise",
        &["Ambient SPL (dB)", "Accuracy", "TPR", "FPR"],
    );
    for &spl in &noise_levels {
        let config = DatasetConfig {
            distances_m: vec![2.0],
            num_speaker_variants: fidelity.trials(2, 4),
            command_indices: vec![0],
            ambient_noise_spl_db: spl,
            attack_elements: 8,
            max_voice_duration_s: fidelity.voice_cap_s(),
            seed: 500 + spl as u64,
            ..DatasetConfig::default()
        };
        let test_set = Dataset::generate(&config)?.to_feature_samples()?;
        let matrix = evaluate(&model, &test_set)?;
        table.push_row(vec![
            fmt(spl, 0),
            fmt(matrix.accuracy(), 2),
            fmt(matrix.true_positive_rate(), 2),
            fmt(matrix.false_positive_rate(), 2),
        ]);
    }
    Ok(table)
}

/// E-D6 — the adaptive attacker: shadow suppression vs detection and
/// command intelligibility.
pub fn fig_d6_adaptive_attacker(fidelity: Fidelity) -> Result<Table> {
    use ivc_defense::countermeasures::precompensated_baseband;
    let (_, model) = train_detector(fidelity)?;
    let recognizer = Recognizer::with_default_corpus()?;
    let command = &corpus()[0];
    let synth = ivc_speech::synthesis::Synthesizer::new(48_000.0)?;
    let voice_full = synth
        .render(command, &ivc_speech::synthesis::SpeakerProfile::canonical())?
        .signal;
    let voice = if voice_full.duration_s() > fidelity.voice_cap_s() {
        voice_full.slice_seconds(0.0, fidelity.voice_cap_s())
    } else {
        voice_full
    };
    let suppressions = match fidelity {
        Fidelity::Quick => vec![0.0, 0.5, 1.0],
        Fidelity::Full => vec![0.0, 0.25, 0.5, 0.75, 1.0],
    };
    let mut table = Table::new(
        "E-D6: adaptive attacker (shadow suppression)",
        &[
            "Suppression",
            "Detection prob.",
            "Attack word accuracy",
            "Attacker wins?",
        ],
    );
    for &alpha in &suppressions {
        let compensated = precompensated_baseband(&voice, alpha)?;
        let rec = ivc_defense::dataset::generate_attack_recording(
            &compensated,
            DevicePreset::AndroidPhone,
            2.0,
            8,
            60.0,
            40_000.0,
            40.0,
            &ivc_acoustics::environment::AirEnvironment::default(),
            77,
        )?;
        let features = DefenseFeatures::extract(&rec)?.to_vector();
        let p = model.predict_probability(&features)?;
        let accuracy = recognizer.word_accuracy(&rec, command.id)?;
        let outcome = ivc_defense::countermeasures::CountermeasureOutcome {
            suppression: alpha,
            detection_probability: p,
            attack_word_accuracy: accuracy,
        };
        table.push_row(vec![
            fmt(alpha, 2),
            fmt(p, 2),
            fmt(accuracy, 2),
            if outcome.attacker_wins() {
                "yes".into()
            } else {
                "no".into()
            },
        ]);
    }
    Ok(table)
}
