//! Reproduction driver: prints the rows/series of every paper table and
//! figure, and runs campaign presets through the parallel engine.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p ivc-bench --bin repro -- all        # every experiment
//! cargo run --release -p ivc-bench --bin repro -- a2 d3      # a subset
//! IVC_FULL=1 cargo run --release -p ivc-bench --bin repro -- all   # full-fidelity sweeps
//!
//! # Campaign presets (smoke, a1-a6, b1-b3, defense, rooms, d1-d6)
//! # through the engine:
//! cargo run --release -p ivc-bench --bin repro -- campaign smoke --workers 2
//! cargo run --release -p ivc-bench --bin repro -- campaign rooms
//!
//! # Flags (every experiment is campaign-backed and honours both):
//! #   --workers N     worker threads (default: all cores)
//! #   --archive DIR   write each campaign's JSON report into DIR
//! ```

use ivc_bench::*;
use ivc_experiments::{default_workers, CampaignReport};
use std::path::{Path, PathBuf};

struct Options {
    workers: usize,
    archive: Option<PathBuf>,
    campaign_presets: Vec<String>,
    experiments: Vec<String>,
}

/// The next token as a flag's value, rejecting another flag in that slot
/// (so `--archive --workers 2` errors instead of archiving to "--workers").
fn flag_value<'a, I: Iterator<Item = &'a String>>(
    iter: &mut std::iter::Peekable<I>,
    flag: &str,
    wants: &str,
) -> Result<&'a String, String> {
    match iter.peek() {
        Some(value) if !value.starts_with("--") => Ok(iter.next().expect("peeked")),
        _ => Err(format!("{flag} needs {wants}")),
    }
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut options = Options {
        workers: default_workers(),
        archive: None,
        campaign_presets: Vec::new(),
        experiments: Vec::new(),
    };
    let mut campaign_mode = false;
    let mut iter = args.iter().peekable();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--workers" => {
                let value = flag_value(&mut iter, "--workers", "a number")?;
                options.workers = value
                    .parse::<usize>()
                    .map_err(|_| format!("invalid --workers value '{value}'"))?
                    .max(1);
            }
            "--archive" => {
                let value = flag_value(&mut iter, "--archive", "a directory")?;
                options.archive = Some(PathBuf::from(value));
            }
            "campaign" if !campaign_mode => {
                // `campaign` is a subcommand, not a modifier: mixing it
                // with experiment ids would silently drop them.
                if !options.experiments.is_empty() {
                    return Err(format!(
                        "'campaign' cannot be combined with experiment ids ({})",
                        options.experiments.join(", ")
                    ));
                }
                campaign_mode = true;
            }
            other if other.starts_with("--") => {
                return Err(format!("unknown flag '{other}'"));
            }
            other => {
                if campaign_mode {
                    options.campaign_presets.push(other.to_string());
                } else {
                    options.experiments.push(other.to_string());
                }
            }
        }
    }
    if campaign_mode && options.campaign_presets.is_empty() {
        return Err(format!(
            "campaign needs a preset name (available: {})",
            ivc_experiments::presets::PRESET_NAMES.join(", ")
        ));
    }
    Ok(options)
}

fn archive_report(report: &CampaignReport, dir: &Path) -> ivc_core::Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("{}.json", report.spec.name));
    report.save(&path)?;
    Ok(path)
}

/// Archives every report into the `--archive` directory (when set).
/// Returns `false` if any write failed, so callers can fail the process —
/// a requested archive that was not produced must not exit 0.
#[must_use]
fn archive_all(reports: &[CampaignReport], archive: &Option<PathBuf>) -> bool {
    let Some(dir) = archive else {
        return true;
    };
    let mut ok = true;
    for report in reports {
        match archive_report(report, dir) {
            Ok(path) => println!("archived {}", path.display()),
            Err(e) => {
                eprintln!("archiving {} failed: {e}", report.spec.name);
                ok = false;
            }
        }
    }
    ok
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let options = match parse_args(&args) {
        Ok(options) => options,
        Err(message) => {
            eprintln!("{message}");
            std::process::exit(2);
        }
    };
    let fidelity = Fidelity::from_env();
    println!(
        "fidelity: {fidelity:?} (set IVC_FULL=1 for full sweeps); workers: {}\n",
        options.workers
    );

    // Campaign mode: run the named presets and print their summaries.
    if !options.campaign_presets.is_empty() {
        for preset in &options.campaign_presets {
            match run_campaign_preset(preset, fidelity, options.workers) {
                Ok(reports) => {
                    for report in &reports {
                        println!("{}", report.summary_table().render());
                        for curve in &report.curves {
                            println!(
                                "range at >= 0.8 success [{}]: {} m",
                                curve.label,
                                curve
                                    .range_at_success_rate(0.8)
                                    .map(|d| format!("{d:.1}"))
                                    .unwrap_or_else(|| "-".into())
                            );
                        }
                        println!();
                    }
                    if !archive_all(&reports, &options.archive) {
                        std::process::exit(1);
                    }
                }
                Err(e) => {
                    eprintln!("campaign {preset} failed: {e}");
                    std::process::exit(1);
                }
            }
        }
        return;
    }

    let selected: Vec<String> =
        if options.experiments.is_empty() || options.experiments.iter().any(|a| a == "all") {
            vec![
                "a1", "a2", "a3", "a4", "a5", "a6", "b1", "b2", "b3", "rooms", "d1", "d3", "d4",
                "d5", "d6",
            ]
            .into_iter()
            .map(String::from)
            .collect()
        } else {
            options.experiments.clone()
        };
    let mut archives_ok = true;
    let mut experiments_ok = true;
    for experiment in &selected {
        let result = run_one(experiment, fidelity, &options, &mut archives_ok);
        match result {
            Ok(output) => println!("{output}"),
            Err(e) => {
                eprintln!("experiment {experiment} failed: {e}");
                experiments_ok = false;
            }
        }
    }
    if !archives_ok || !experiments_ok {
        std::process::exit(1);
    }
}

fn run_one(
    name: &str,
    fidelity: Fidelity,
    options: &Options,
    archives_ok: &mut bool,
) -> ivc_core::Result<String> {
    Ok(match name {
        "a1" => {
            let (table, report) = fig_a1_leakage_vs_power(fidelity, options.workers)?;
            *archives_ok &= archive_all(std::slice::from_ref(&report), &options.archive);
            table.render()
        }
        "a2" => {
            let (table, series, report) = fig_a2_accuracy_vs_distance(fidelity, options.workers)?;
            *archives_ok &= archive_all(std::slice::from_ref(&report), &options.archive);
            let mut out = table.render();
            for s in series {
                out.push_str(&format!(
                    "range at >= 0.8 accuracy [{}]: {:.1} m\n",
                    s.name,
                    s.last_x_with_y_at_least(0.8).unwrap_or(0.0)
                ));
            }
            out
        }
        "a3" => {
            let (table, report) = fig_a3_accuracy_vs_speakers(fidelity, options.workers)?;
            *archives_ok &= archive_all(std::slice::from_ref(&report), &options.archive);
            table.render()
        }
        "a4" => {
            let (table, report) = fig_a4_leakage_vs_speakers(fidelity, options.workers)?;
            *archives_ok &= archive_all(std::slice::from_ref(&report), &options.archive);
            table.render()
        }
        "rooms" => {
            let (table, report) = fig_rooms_sweep(fidelity, options.workers)?;
            *archives_ok &= archive_all(std::slice::from_ref(&report), &options.archive);
            table.render()
        }
        "a5" => {
            let (table, report) = tab_a5_range_per_device(fidelity, options.workers)?;
            *archives_ok &= archive_all(std::slice::from_ref(&report), &options.archive);
            table.render()
        }
        "a6" => {
            let (table, report) = fig_a6_carrier_frequency(fidelity, options.workers)?;
            *archives_ok &= archive_all(std::slice::from_ref(&report), &options.archive);
            table.render()
        }
        "b1" => {
            let (table, report) = tab_b1_range_vs_power(fidelity, options.workers)?;
            *archives_ok &= archive_all(std::slice::from_ref(&report), &options.archive);
            table.render()
        }
        "b2" => {
            let (table, report) = fig_b2_spectrogram_triplet(fidelity, options.workers)?;
            *archives_ok &= archive_all(std::slice::from_ref(&report), &options.archive);
            table.render()
        }
        "b3" => {
            let (table, reports) = tab_b3_success_rate(fidelity, options.workers)?;
            *archives_ok &= archive_all(&reports, &options.archive);
            table.render()
        }
        "d1" | "d2" => {
            let (table, report) = fig_d1_d2_feature_separation(fidelity, options.workers)?;
            *archives_ok &= archive_all(std::slice::from_ref(&report), &options.archive);
            table.render()
        }
        "d3" => {
            let (table, report) = fig_d3_roc(fidelity, options.workers)?;
            *archives_ok &= archive_all(std::slice::from_ref(&report), &options.archive);
            table.render()
        }
        "d4" => {
            let (table, report) = tab_d4_detection_grid(fidelity, options.workers)?;
            *archives_ok &= archive_all(std::slice::from_ref(&report), &options.archive);
            table.render()
        }
        "d5" => {
            let (table, reports) = fig_d5_noise_robustness(fidelity, options.workers)?;
            *archives_ok &= archive_all(&reports, &options.archive);
            table.render()
        }
        "d6" => {
            let (table, report) = fig_d6_adaptive_attacker(fidelity, options.workers)?;
            *archives_ok &= archive_all(std::slice::from_ref(&report), &options.archive);
            table.render()
        }
        other => format!("unknown experiment id: {other}\n"),
    })
}
