//! Reproduction driver: prints the rows/series of every paper table and
//! figure, and runs campaign presets through the parallel engine —
//! in-process, or sharded across forked worker processes.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p ivc-bench --bin repro -- all        # every experiment
//! cargo run --release -p ivc-bench --bin repro -- a2 d3      # a subset
//! IVC_FULL=1 cargo run --release -p ivc-bench --bin repro -- all   # full-fidelity sweeps
//!
//! # Campaign presets (smoke, a1-a6, b1-b3, defense, rooms, d1-d6)
//! # through the engine:
//! cargo run --release -p ivc-bench --bin repro -- campaign smoke --workers 2
//! cargo run --release -p ivc-bench --bin repro -- campaign a6 --shards 4 --workers 2
//!
//! # The same shard contract as standalone steps (file transfer is the
//! # only coupling, so the three can run on different machines).  Partials
//! # travel in the compact columnar format (ivc-trial-columns-v1) when the
//! # --out file ends in .bin, and as JSON when it ends in .json; the merge
//! # streams them one at a time and accepts either:
//! cargo run --release -p ivc-bench --bin repro -- shard-plan a6 --shards 4 --out-dir jobs/
//! cargo run --release -p ivc-bench --bin repro -- shard-worker --job jobs/a6-carrier-frequency.shard-0-of-4.job.json --out parts/part0.bin
//! cargo run --release -p ivc-bench --bin repro -- shard-merge --out a6.json parts/*.bin
//!
//! # Re-encode one binary partial archive as JSON for human inspection:
//! cargo run --release -p ivc-bench --bin repro -- export-json parts/part0.bin --out part0.json
//!
//! # Supervised sharding: retries, straggler re-issue, checkpoint/resume.
//! cargo run --release -p ivc-bench --bin repro -- orchestrate smoke --shards 2 --workers 2
//! cargo run --release -p ivc-bench --bin repro -- orchestrate smoke --shards 2 --resume DIR
//!
//! # Per-stage time attribution for a preset (telemetry-instrumented run;
//! # with --shards the table covers the merged fleet of worker processes):
//! cargo run --release -p ivc-bench --bin repro -- profile a1
//! cargo run --release -p ivc-bench --bin repro -- profile smoke --shards 2
//!
//! # Compare two committed bench snapshots (exit 1 past the threshold):
//! cargo run --release -p ivc-bench --bin repro -- bench-diff BENCH_pr7.json fresh.json
//!
//! # Flags:
//! #   --workers N             worker threads (default: all cores; per process when sharded)
//! #   --shards N              fork N shard-worker processes per campaign
//! #   --partial-format F      wire format for shard partials: columns (default) or json
//! #                           (campaign --shards and orchestrate)
//! #   --archive DIR           write each campaign's JSON report into DIR
//! #   --max-retries N         extra attempts per failed shard (orchestrate; default 2)
//! #   --straggler-timeout S   re-issue attempts running longer than S seconds (orchestrate)
//! #   --resume DIR            resume from the checkpoints in DIR (orchestrate)
//! #   --metrics FILE          write span/counter metrics JSON (ivc-metrics-v1;
//! #                           fleet-merged across workers when sharded)
//! #   --trace FILE            write a Chrome trace-event JSON (chrome://tracing / Perfetto)
//! #   --max-regress PCT       bench-diff regression threshold in percent (default 25)
//! ```

use ivc_bench::*;
use ivc_core::telemetry;
use ivc_experiments::orchestrate::{OrchestratorConfig, ENV_FAULT_SHARD, ENV_SHARD_ATTEMPT};
use ivc_experiments::shard::{
    merge_shard_files, metrics_sidecar_path, run_shard, shard_job_file_name, PartialFormat,
    ShardArchive, ShardJob, ShardPlan,
};
use ivc_experiments::{default_workers, presets, CampaignReport};
use std::path::{Path, PathBuf};

/// What the invocation asked the driver to do.
enum Mode {
    /// Render paper experiments (the default; empty or `all` = everything).
    Experiments(Vec<String>),
    /// Run campaign presets through the engine.
    Campaign(Vec<String>),
    /// Write shard job files for presets (`--shards`, `--out-dir`).
    ShardPlanFiles(Vec<String>),
    /// Execute one shard job file (`--job`, `--out`).
    ShardWorker,
    /// Merge partial archives into a final report (`--out`, inputs).
    ShardMerge(Vec<PathBuf>),
    /// Re-encode one partial archive as JSON (`export-json IN --out OUT`).
    ExportJson(PathBuf),
    /// Run campaign presets under the supervising orchestrator
    /// (`--shards`, optional `--max-retries`/`--straggler-timeout`/
    /// `--resume`).
    Orchestrate(Vec<String>),
    /// Profile campaign presets: run with telemetry enabled and print
    /// the per-stage time-attribution table (default `--workers 1`, so
    /// stage totals track wall clock; with `--shards N` the table is the
    /// merged fleet of forked worker processes).
    Profile(Vec<String>),
    /// Compare two bench snapshots (`bench-diff OLD NEW`), exiting
    /// non-zero when a bench entry's mean regressed past `--max-regress`.
    BenchDiff(PathBuf, PathBuf),
}

struct Options {
    workers: Option<usize>,
    archive: Option<PathBuf>,
    shards: Option<usize>,
    job: Option<PathBuf>,
    out: Option<PathBuf>,
    out_dir: Option<PathBuf>,
    max_retries: Option<usize>,
    straggler_timeout: Option<f64>,
    resume: Option<PathBuf>,
    metrics: Option<PathBuf>,
    trace: Option<PathBuf>,
    max_regress: Option<f64>,
    partial_format: Option<PartialFormat>,
}

impl Options {
    /// `--workers`, defaulting to the machine's parallelism.
    fn worker_threads(&self) -> usize {
        self.workers.unwrap_or_else(default_workers)
    }
}

/// The next token as a flag's value, rejecting another flag in that slot
/// (so `--archive --workers 2` errors instead of archiving to "--workers").
fn flag_value<'a, I: Iterator<Item = &'a String>>(
    iter: &mut std::iter::Peekable<I>,
    flag: &str,
    wants: &str,
) -> Result<&'a String, String> {
    match iter.peek() {
        Some(value) if !value.starts_with("--") => Ok(iter.next().expect("peeked")),
        _ => Err(format!("{flag} needs {wants}")),
    }
}

fn parse_args(args: &[String]) -> Result<(Mode, Options), String> {
    let mut options = Options {
        workers: None,
        archive: None,
        shards: None,
        job: None,
        out: None,
        out_dir: None,
        max_retries: None,
        straggler_timeout: None,
        resume: None,
        metrics: None,
        trace: None,
        max_regress: None,
        partial_format: None,
    };
    let mut subcommand: Option<String> = None;
    let mut positionals: Vec<String> = Vec::new();
    let mut iter = args.iter().peekable();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--workers" => {
                let value = flag_value(&mut iter, "--workers", "a number")?;
                let workers = value
                    .parse::<usize>()
                    .map_err(|_| format!("invalid --workers value '{value}'"))?;
                if workers == 0 {
                    return Err("invalid --workers value '0' (need at least 1)".to_string());
                }
                options.workers = Some(workers);
            }
            "--shards" => {
                let value = flag_value(&mut iter, "--shards", "a number")?;
                let shards = value
                    .parse::<usize>()
                    .map_err(|_| format!("invalid --shards value '{value}'"))?;
                if shards == 0 {
                    return Err("invalid --shards value '0' (need at least 1)".to_string());
                }
                options.shards = Some(shards);
            }
            "--archive" => {
                let value = flag_value(&mut iter, "--archive", "a directory")?;
                options.archive = Some(PathBuf::from(value));
            }
            "--job" => {
                let value = flag_value(&mut iter, "--job", "a shard job file")?;
                options.job = Some(PathBuf::from(value));
            }
            "--out" => {
                let value = flag_value(&mut iter, "--out", "an output file")?;
                options.out = Some(PathBuf::from(value));
            }
            "--out-dir" => {
                let value = flag_value(&mut iter, "--out-dir", "an output directory")?;
                options.out_dir = Some(PathBuf::from(value));
            }
            "--max-retries" => {
                let value = flag_value(&mut iter, "--max-retries", "a number")?;
                let retries = value
                    .parse::<usize>()
                    .map_err(|_| format!("invalid --max-retries value '{value}'"))?;
                options.max_retries = Some(retries);
            }
            "--straggler-timeout" => {
                let value = flag_value(&mut iter, "--straggler-timeout", "seconds")?;
                let seconds = value
                    .parse::<f64>()
                    .map_err(|_| format!("invalid --straggler-timeout value '{value}'"))?;
                if !(seconds > 0.0) || !seconds.is_finite() {
                    return Err(format!(
                        "invalid --straggler-timeout value '{value}' (need positive seconds)"
                    ));
                }
                options.straggler_timeout = Some(seconds);
            }
            "--resume" => {
                let value = flag_value(&mut iter, "--resume", "a checkpoint directory")?;
                options.resume = Some(PathBuf::from(value));
            }
            "--metrics" => {
                let value = flag_value(&mut iter, "--metrics", "an output file")?;
                options.metrics = Some(PathBuf::from(value));
            }
            "--trace" => {
                let value = flag_value(&mut iter, "--trace", "an output file")?;
                options.trace = Some(PathBuf::from(value));
            }
            "--partial-format" => {
                let value = flag_value(&mut iter, "--partial-format", "'columns' or 'json'")?;
                options.partial_format =
                    Some(PartialFormat::parse(value).map_err(|e| e.to_string())?);
            }
            "--max-regress" => {
                let value = flag_value(&mut iter, "--max-regress", "a percentage")?;
                let pct = value
                    .parse::<f64>()
                    .map_err(|_| format!("invalid --max-regress value '{value}'"))?;
                if !(pct > 0.0) || !pct.is_finite() {
                    return Err(format!(
                        "invalid --max-regress value '{value}' (need a positive percentage)"
                    ));
                }
                options.max_regress = Some(pct);
            }
            name @ ("campaign" | "shard-plan" | "shard-worker" | "shard-merge" | "export-json"
            | "orchestrate" | "profile" | "bench-diff")
                if subcommand.is_none() =>
            {
                // A subcommand after positionals would silently demote
                // them (or itself) to experiment ids: refuse up front.
                if !positionals.is_empty() {
                    return Err(format!(
                        "'{name}' cannot be combined with experiment ids ({})",
                        positionals.join(", ")
                    ));
                }
                subcommand = Some(name.to_string());
            }
            other if other.starts_with("--") => {
                return Err(format!("unknown flag '{other}'"));
            }
            other => positionals.push(other.to_string()),
        }
    }
    // Each flag belongs to specific subcommands; a misplaced flag is an
    // error, never silently ignored.
    let reject_flag = |set: bool, flag: &str, wants: &str| -> Result<(), String> {
        if set {
            return Err(format!("{flag} applies to {wants} only"));
        }
        Ok(())
    };
    let subcommand = subcommand.as_deref();
    if matches!(
        subcommand,
        Some("shard-plan" | "shard-merge" | "export-json" | "bench-diff")
    ) {
        reject_flag(
            options.workers.is_some(),
            "--workers",
            "experiment runs and the campaign and shard-worker subcommands",
        )?;
    }
    if !matches!(
        subcommand,
        Some("campaign" | "shard-plan" | "orchestrate" | "profile")
    ) {
        reject_flag(
            options.shards.is_some(),
            "--shards",
            "the campaign, shard-plan, orchestrate and profile subcommands",
        )?;
    }
    if !matches!(subcommand, Some("bench-diff")) {
        reject_flag(
            options.max_regress.is_some(),
            "--max-regress",
            "the bench-diff subcommand",
        )?;
    }
    if !matches!(subcommand, Some("campaign" | "orchestrate")) {
        reject_flag(
            options.partial_format.is_some(),
            "--partial-format",
            "the campaign (with --shards) and orchestrate subcommands",
        )?;
    }
    if !matches!(subcommand, None | Some("campaign" | "orchestrate")) {
        reject_flag(
            options.archive.is_some(),
            "--archive",
            "experiment runs and the campaign and orchestrate subcommands",
        )?;
    }
    if !matches!(subcommand, Some("orchestrate")) {
        reject_flag(
            options.max_retries.is_some(),
            "--max-retries",
            "the orchestrate subcommand",
        )?;
        reject_flag(
            options.straggler_timeout.is_some(),
            "--straggler-timeout",
            "the orchestrate subcommand",
        )?;
        reject_flag(
            options.resume.is_some(),
            "--resume",
            "the orchestrate subcommand",
        )?;
    }
    if matches!(
        subcommand,
        Some("shard-plan" | "shard-worker" | "shard-merge" | "export-json" | "bench-diff")
    ) {
        reject_flag(
            options.metrics.is_some(),
            "--metrics",
            "experiment runs and the campaign, orchestrate and profile subcommands",
        )?;
        reject_flag(
            options.trace.is_some(),
            "--trace",
            "experiment runs and the campaign, orchestrate and profile subcommands",
        )?;
    }
    if !matches!(subcommand, Some("shard-worker")) {
        reject_flag(
            options.job.is_some(),
            "--job",
            "the shard-worker subcommand",
        )?;
    }
    if !matches!(
        subcommand,
        Some("shard-worker" | "shard-merge" | "export-json")
    ) {
        reject_flag(
            options.out.is_some(),
            "--out",
            "the shard-worker, shard-merge and export-json subcommands",
        )?;
    }
    if !matches!(subcommand, Some("shard-plan")) {
        reject_flag(
            options.out_dir.is_some(),
            "--out-dir",
            "the shard-plan subcommand",
        )?;
    }
    let mode = match subcommand {
        None => Mode::Experiments(positionals),
        Some("campaign") => {
            if positionals.is_empty() {
                return Err(format!(
                    "campaign needs a preset name (available: {})",
                    presets::PRESET_NAMES.join(", ")
                ));
            }
            // An in-process campaign writes no partials, so a requested
            // wire format would be silently meaningless.
            if options.partial_format.is_some() && options.shards.is_none() {
                return Err("--partial-format needs --shards N (an in-process campaign \
                            writes no partial archives)"
                    .to_string());
            }
            Mode::Campaign(positionals)
        }
        Some("shard-plan") => {
            if positionals.is_empty() {
                return Err(format!(
                    "shard-plan needs a preset name (available: {})",
                    presets::PRESET_NAMES.join(", ")
                ));
            }
            if options.shards.is_none() {
                return Err("shard-plan needs --shards N".to_string());
            }
            if options.out_dir.is_none() {
                return Err("shard-plan needs --out-dir DIR".to_string());
            }
            Mode::ShardPlanFiles(positionals)
        }
        Some("shard-worker") => {
            if !positionals.is_empty() {
                return Err(format!(
                    "shard-worker takes no positional arguments (got '{}')",
                    positionals.join(" ")
                ));
            }
            if options.job.is_none() {
                return Err("shard-worker needs --job FILE".to_string());
            }
            if options.out.is_none() {
                return Err("shard-worker needs --out FILE".to_string());
            }
            Mode::ShardWorker
        }
        Some("shard-merge") => {
            if options.out.is_none() {
                return Err("shard-merge needs --out FILE".to_string());
            }
            if positionals.is_empty() {
                return Err("shard-merge needs at least one partial archive".to_string());
            }
            Mode::ShardMerge(positionals.into_iter().map(PathBuf::from).collect())
        }
        Some("export-json") => {
            if options.out.is_none() {
                return Err("export-json needs --out FILE".to_string());
            }
            if positionals.len() != 1 {
                return Err(
                    "export-json needs exactly one partial archive: export-json IN --out OUT"
                        .to_string(),
                );
            }
            Mode::ExportJson(PathBuf::from(positionals.into_iter().next().expect("one")))
        }
        Some("orchestrate") => {
            if positionals.is_empty() {
                return Err(format!(
                    "orchestrate needs a preset name (available: {})",
                    presets::PRESET_NAMES.join(", ")
                ));
            }
            if options.shards.is_none() {
                return Err("orchestrate needs --shards N".to_string());
            }
            Mode::Orchestrate(positionals)
        }
        Some("profile") => {
            if positionals.is_empty() {
                return Err(format!(
                    "profile needs a preset name (available: {})",
                    presets::PRESET_NAMES.join(", ")
                ));
            }
            Mode::Profile(positionals)
        }
        Some("bench-diff") => {
            if positionals.len() != 2 {
                return Err(
                    "bench-diff needs exactly two snapshot files: bench-diff OLD NEW".to_string(),
                );
            }
            let mut paths = positionals.into_iter().map(PathBuf::from);
            Mode::BenchDiff(paths.next().expect("two"), paths.next().expect("two"))
        }
        Some(_) => unreachable!(),
    };
    Ok((mode, options))
}

fn archive_report(report: &CampaignReport, dir: &Path) -> ivc_core::Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("{}.json", report.spec.name));
    report.save(&path)?;
    Ok(path)
}

/// Archives every report into the `--archive` directory (when set).
/// Returns `false` if any write failed, so callers can fail the process —
/// a requested archive that was not produced must not exit 0.
#[must_use]
fn archive_all(reports: &[CampaignReport], archive: &Option<PathBuf>) -> bool {
    let Some(dir) = archive else {
        return true;
    };
    let mut ok = true;
    for report in reports {
        match archive_report(report, dir) {
            Ok(path) => println!("archived {}", path.display()),
            Err(e) => {
                eprintln!("archiving {} failed: {e}", report.spec.name);
                ok = false;
            }
        }
    }
    ok
}

/// Prints a campaign report's summary table and per-curve attack ranges —
/// shared by the in-process and sharded campaign paths, so the two differ
/// in nothing but how the trials were executed.
fn print_reports(reports: &[CampaignReport]) {
    for report in reports {
        println!("{}", report.summary_table().render());
        for curve in &report.curves {
            println!(
                "range at >= 0.8 success [{}]: {} m",
                curve.label,
                curve
                    .range_at_success_rate(0.8)
                    .map(|d| format!("{d:.1}"))
                    .unwrap_or_else(|| "-".into())
            );
        }
        println!();
    }
}

/// A one-line error followed by a non-zero exit: every runtime failure
/// path of the driver funnels through here (exit 2 is reserved for
/// argument parsing).
fn fail(message: impl std::fmt::Display) -> ! {
    eprintln!("{message}");
    std::process::exit(1);
}

fn run_campaigns(
    presets_named: &[String],
    fidelity: Fidelity,
    options: &Options,
    workers: usize,
    worker_metrics: &mut Vec<telemetry::Snapshot>,
) {
    for preset in presets_named {
        let reports = match options.shards {
            None => run_campaign_preset(preset, fidelity, workers),
            Some(num_shards) => {
                let exe = std::env::current_exe()
                    .map_err(|e| format!("locating the shard-worker binary: {e}").into());
                exe.and_then(|exe| {
                    // Unique per run: pids recycle, and a failed earlier
                    // run legitimately leaves its directory behind.
                    let scratch = unique_scratch_dir(&format!("shards-{preset}"));
                    let result = run_campaign_preset_sharded(
                        preset,
                        fidelity,
                        num_shards,
                        workers,
                        &exe,
                        &scratch,
                        options.partial_format.unwrap_or_default(),
                    )
                    .and_then(|reports| {
                        // Collect the workers' telemetry sidecars before
                        // the scratch directory disappears; a missing
                        // sidecar is a hard error (an under-reported
                        // fleet document would be worse than none).
                        if options.metrics.is_some() {
                            let specs = presets::by_name(preset, fidelity.quick())
                                .expect("preset ran above");
                            for spec in &specs {
                                worker_metrics
                                    .extend(collect_worker_metrics(spec, num_shards, &scratch)?);
                            }
                        }
                        Ok(reports)
                    });
                    // Clean up on success only: a failed run's job files
                    // and partials are the evidence the error points at.
                    match result {
                        Ok(reports) => {
                            let _ = std::fs::remove_dir_all(&scratch);
                            Ok(reports)
                        }
                        Err(e) if scratch.exists() => Err(format!(
                            "{e} (job files and partials kept in {})",
                            scratch.display()
                        )
                        .into()),
                        Err(e) => Err(e),
                    }
                })
            }
        };
        match reports {
            Ok(reports) => {
                print_reports(&reports);
                if !archive_all(&reports, &options.archive) {
                    std::process::exit(1);
                }
            }
            Err(e) => fail(format_args!("campaign {preset} failed: {e}")),
        }
    }
}

/// Runs campaign presets under the supervising orchestrator.  Without
/// `--resume` the checkpoints go to a fresh unique scratch directory,
/// removed on success and kept on failure (the failure message names it,
/// so an interrupted run can be resumed); with `--resume DIR` the run
/// picks up the surviving checkpoints in DIR first.
fn run_orchestrate(
    presets_named: &[String],
    fidelity: Fidelity,
    options: &Options,
    workers: usize,
    worker_metrics: &mut Vec<telemetry::Snapshot>,
) {
    let num_shards = options.shards.expect("checked at parse time");
    let exe = match std::env::current_exe() {
        Ok(exe) => exe,
        Err(e) => fail(format_args!("locating the shard-worker binary: {e}")),
    };
    let scratch = options
        .resume
        .clone()
        .unwrap_or_else(|| unique_scratch_dir("orchestrate"));
    let config = OrchestratorConfig {
        max_retries: options.max_retries.unwrap_or(2),
        straggler_timeout: options
            .straggler_timeout
            .map(std::time::Duration::from_secs_f64),
        partial_format: options.partial_format.unwrap_or_default(),
        ..OrchestratorConfig::new(num_shards)
    };
    let mut stderr = std::io::stderr();
    for preset in presets_named {
        let reports = run_campaign_preset_orchestrated(
            preset,
            fidelity,
            &config,
            workers,
            &exe,
            &scratch,
            &mut stderr,
        );
        match reports {
            Ok(reports) => {
                print_reports(&reports);
                if !archive_all(&reports, &options.archive) {
                    std::process::exit(1);
                }
            }
            Err(e) if scratch.exists() => fail(format_args!(
                "campaign {preset} failed: {e} (checkpoints kept in {}; pick up where it \
                 stopped with --resume {})",
                scratch.display(),
                scratch.display()
            )),
            Err(e) => fail(format_args!("campaign {preset} failed: {e}")),
        }
    }
    // Collect the workers' telemetry sidecars (renamed alongside their
    // checkpoints by the orchestrator) before the scratch directory
    // disappears; missing worker telemetry is a hard error.
    if options.metrics.is_some() {
        for preset in presets_named {
            let specs = presets::by_name(preset, fidelity.quick()).expect("presets ran above");
            for spec in &specs {
                match collect_worker_metrics(spec, num_shards, &scratch) {
                    Ok(snapshots) => worker_metrics.extend(snapshots),
                    Err(e) => fail(format_args!(
                        "{e} (checkpoints kept in {})",
                        scratch.display()
                    )),
                }
            }
        }
    }
    // The structured run manifests are part of the run's record: copy
    // them into the archive directory (when one was asked for) before
    // the scratch directory disappears.
    if let Some(dir) = &options.archive {
        if let Err(e) = copy_manifests(&scratch, dir) {
            fail(format_args!("archiving run manifests: {e}"));
        }
    }
    let _ = std::fs::remove_dir_all(&scratch);
}

/// Copies every `<spec>.manifest.jsonl` run manifest from the scratch
/// directory into the archive directory, so the structured event record
/// of an orchestrated run survives scratch cleanup.
fn copy_manifests(scratch: &Path, dir: &Path) -> std::io::Result<()> {
    std::fs::create_dir_all(dir)?;
    for entry in std::fs::read_dir(scratch)? {
        let entry = entry?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if name.ends_with(".manifest.jsonl") {
            let to = dir.join(name);
            std::fs::copy(entry.path(), &to)?;
            println!("archived {}", to.display());
        }
    }
    Ok(())
}

fn run_shard_plan(presets_named: &[String], fidelity: Fidelity, options: &Options) {
    let num_shards = options.shards.expect("checked at parse time");
    let out_dir = options.out_dir.as_ref().expect("checked at parse time");
    if let Err(e) = std::fs::create_dir_all(out_dir) {
        fail(format_args!("creating {}: {e}", out_dir.display()));
    }
    for preset in presets_named {
        let specs = match presets::by_name(preset, fidelity.quick()) {
            Some(specs) => specs,
            None => fail(format_args!(
                "unknown campaign preset '{preset}' (available: {})",
                presets::PRESET_NAMES.join(", ")
            )),
        };
        for spec in &specs {
            let plan = match ShardPlan::partition(spec, num_shards) {
                Ok(plan) => plan,
                Err(e) => fail(format_args!("planning {}: {e}", spec.name)),
            };
            for job in plan.jobs() {
                let path = out_dir.join(shard_job_file_name(&spec.name, &job.shard));
                if let Err(e) = job.save(&path) {
                    fail(e);
                }
                println!(
                    "wrote {} ({} jobs: slots [{}, {}))",
                    path.display(),
                    job.shard.num_jobs(),
                    job.shard.start_job,
                    job.shard.end_job,
                );
            }
        }
    }
}

/// Creates the parent directory of an output file up front, so a typo'd
/// path fails before the work runs, not after minutes of computation.
fn ensure_parent_dir(path: &Path) {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            if let Err(e) = std::fs::create_dir_all(parent) {
                fail(format_args!("creating {}: {e}", parent.display()));
            }
        }
    }
}

fn run_shard_worker(options: &Options) {
    let job_path = options.job.as_ref().expect("checked at parse time");
    let out_path = options.out.as_ref().expect("checked at parse time");
    ensure_parent_dir(out_path);
    let job = match ShardJob::load(job_path) {
        Ok(job) => job,
        Err(e) => fail(e),
    };
    // CI fault injection: `IVC_FAULT_SHARD=<i>` makes the *first* attempt
    // at shard i exit non-zero (the orchestrator stamps the attempt index
    // into IVC_SHARD_ATTEMPT; absent means attempt 0), so the retry path
    // is exercised by a real worker-process failure.
    if let Ok(value) = std::env::var(ENV_FAULT_SHARD) {
        let attempt = std::env::var(ENV_SHARD_ATTEMPT)
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .unwrap_or(0);
        if value.parse::<usize>().ok() == Some(job.shard.shard_index) && attempt == 0 {
            fail(format_args!(
                "injected fault: failing first attempt at shard {} ({ENV_FAULT_SHARD}={value})",
                job.shard.shard_index
            ));
        }
    }
    // Workers always collect telemetry: the coordinator merges the
    // sidecars into the fleet-wide metrics document, and without them a
    // sharded `--metrics` run would silently report coordinator overhead
    // only.  The sidecar is written after the archive, so a failed
    // attempt leaves neither file behind.
    telemetry::reset();
    telemetry::set_enabled(true);
    let start = std::time::Instant::now();
    let outcome = run_shard(&job, options.worker_threads());
    let wall_s = start.elapsed().as_secs_f64();
    telemetry::set_enabled(false);
    let archive = match outcome {
        Ok(archive) => archive,
        Err(e) => fail(format_args!("running shard {}: {e}", job.shard.shard_index)),
    };
    if let Err(e) = archive.save(out_path) {
        fail(e);
    }
    let snapshot = telemetry::snapshot().with_source(&format!(
        "shard-{}-of-{}",
        job.shard.shard_index, job.shard.num_shards
    ));
    if let Err(e) = write_metrics_file(&metrics_sidecar_path(out_path), &snapshot, wall_s) {
        fail(e);
    }
    println!(
        "shard {}/{} of '{}': {} trial(s) -> {}",
        job.shard.shard_index,
        job.shard.num_shards,
        job.spec.name,
        job.shard.num_jobs(),
        out_path.display(),
    );
}

fn run_shard_merge(partial_paths: &[PathBuf], options: &Options) {
    let out_path = options.out.as_ref().expect("checked at parse time");
    ensure_parent_dir(out_path);
    // Streaming merge: each partial (columnar or JSON, detected from its
    // bytes) is loaded, folded into the per-cell accumulators and dropped
    // before the next — the driver never holds every shard's records.
    let report = match merge_shard_files(partial_paths) {
        Ok(report) => report,
        Err(e) => fail(e),
    };
    if let Err(e) = report.save(out_path) {
        fail(e);
    }
    println!(
        "merged {} shard(s) of '{}' ({} trials) -> {}",
        partial_paths.len(),
        report.spec.name,
        report.spec.num_trials(),
        out_path.display(),
    );
}

fn run_export_json(input: &Path, options: &Options) {
    let out_path = options.out.as_ref().expect("checked at parse time");
    ensure_parent_dir(out_path);
    let archive = match ShardArchive::load(input) {
        Ok(archive) => archive,
        Err(e) => fail(e),
    };
    // Always JSON, whatever the --out file is called: that is the point
    // of the subcommand.
    if let Err(e) = std::fs::write(out_path, archive.to_json_string()) {
        fail(format_args!("writing {}: {e}", out_path.display()));
    }
    println!(
        "exported shard {}/{} of '{}' ({} trial(s)) as JSON -> {}",
        archive.shard.shard_index,
        archive.shard.num_shards,
        archive.spec.name,
        archive.records.len(),
        out_path.display(),
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (mode, options) = match parse_args(&args) {
        Ok(parsed) => parsed,
        Err(message) => {
            eprintln!("{message}");
            std::process::exit(2);
        }
    };
    let fidelity = Fidelity::from_env();

    // Telemetry export: fail on an unwritable destination before the run,
    // then collect for the whole invocation and write at the end.  The
    // profile subcommand manages its own per-preset collection instead.
    let telemetry_on = options.metrics.is_some() || options.trace.is_some();
    if let Some(path) = &options.metrics {
        ensure_parent_dir(path);
    }
    if let Some(path) = &options.trace {
        ensure_parent_dir(path);
    }
    let is_profile = matches!(mode, Mode::Profile(_));
    if telemetry_on && !is_profile {
        telemetry::reset();
        telemetry::set_enabled(true);
    }
    let run_start = std::time::Instant::now();
    // Worker sidecar snapshots collected by the sharded paths, merged
    // into the fleet-wide `--metrics` document at the end of the run.
    let mut worker_metrics: Vec<telemetry::Snapshot> = Vec::new();

    match mode {
        Mode::ShardWorker => {
            // Workers are quiet children of a sharded campaign: no banner,
            // their stdout is the one summary line.
            run_shard_worker(&options);
        }
        Mode::ShardMerge(partials) => {
            run_shard_merge(&partials, &options);
        }
        Mode::ExportJson(input) => {
            run_export_json(&input, &options);
        }
        Mode::ShardPlanFiles(presets_named) => {
            println!(
                "fidelity: {fidelity:?} (set IVC_FULL=1 for full sweeps); shards: {}\n",
                options.shards.unwrap_or(1)
            );
            run_shard_plan(&presets_named, fidelity, &options);
        }
        Mode::Campaign(presets_named) => {
            // When sharding without an explicit --workers, split the
            // machine across the concurrent worker processes instead of
            // giving each one every core (num_shards x all-cores threads
            // would thrash, not speed up).
            let workers = match options.shards {
                Some(num_shards) => options
                    .workers
                    .unwrap_or_else(|| (default_workers() / num_shards).max(1)),
                None => options.worker_threads(),
            };
            println!(
                "fidelity: {fidelity:?} (set IVC_FULL=1 for full sweeps); workers: {workers}{}\n",
                options
                    .shards
                    .map(|n| format!("; shards: {n}"))
                    .unwrap_or_default(),
            );
            run_campaigns(
                &presets_named,
                fidelity,
                &options,
                workers,
                &mut worker_metrics,
            );
        }
        Mode::Orchestrate(presets_named) => {
            let num_shards = options.shards.expect("checked at parse time");
            // Same core-splitting default as sharded campaign mode.
            let workers = options
                .workers
                .unwrap_or_else(|| (default_workers() / num_shards).max(1));
            println!(
                "fidelity: {fidelity:?} (set IVC_FULL=1 for full sweeps); workers: {workers}; \
                 shards: {num_shards} (orchestrated)\n"
            );
            run_orchestrate(
                &presets_named,
                fidelity,
                &options,
                workers,
                &mut worker_metrics,
            );
        }
        Mode::Profile(presets_named) => {
            // One worker by default: stages then run back-to-back, so
            // their totals track wall clock instead of overlapping.
            // Sharded profiles split the cores like sharded campaigns.
            let workers = match options.shards {
                Some(num_shards) => options
                    .workers
                    .unwrap_or_else(|| (default_workers() / num_shards).max(1)),
                None => options.workers.unwrap_or(1),
            };
            println!(
                "fidelity: {fidelity:?} (set IVC_FULL=1 for full sweeps); workers: {workers}{} \
                 (profiling)\n",
                options
                    .shards
                    .map(|n| format!("; shards: {n}"))
                    .unwrap_or_default(),
            );
            for preset in &presets_named {
                let result = match options.shards {
                    None => profile_campaign_preset(preset, fidelity, workers),
                    Some(num_shards) => std::env::current_exe()
                        .map_err(|e| format!("locating the shard-worker binary: {e}").into())
                        .and_then(|exe| {
                            let scratch = unique_scratch_dir(&format!("profile-{preset}"));
                            let result = profile_campaign_preset_sharded(
                                preset, fidelity, num_shards, workers, &exe, &scratch,
                            );
                            match result {
                                Ok(profile) => {
                                    let _ = std::fs::remove_dir_all(&scratch);
                                    Ok(profile)
                                }
                                Err(e) if scratch.exists() => Err(format!(
                                    "{e} (job files and partials kept in {})",
                                    scratch.display()
                                )
                                .into()),
                                Err(e) => Err(e),
                            }
                        }),
                };
                match result {
                    Ok(profile) => {
                        println!("{}", profile.table.render());
                        println!(
                            "stages account for {:.2} s of {:.2} s wall ({:.1}%)\n",
                            profile.stage_total_s,
                            profile.wall_s,
                            100.0 * profile.stage_total_s / profile.wall_s.max(f64::EPSILON),
                        );
                        write_telemetry_files(&options, &profile.snapshot, profile.wall_s);
                    }
                    Err(e) => fail(format_args!("profile {preset} failed: {e}")),
                }
            }
        }
        Mode::BenchDiff(old_path, new_path) => {
            let threshold = options.max_regress.unwrap_or(25.0);
            let read = |path: &Path| -> String {
                std::fs::read_to_string(path)
                    .unwrap_or_else(|e| fail(format_args!("reading {}: {e}", path.display())))
            };
            let (old_text, new_text) = (read(&old_path), read(&new_path));
            match bench_diff(&old_text, &new_text, threshold) {
                Ok(report) => {
                    println!("{}", report.table.render());
                    if !report.regressions.is_empty() {
                        fail(format_args!(
                            "{} bench regression(s) past {threshold}%: {}",
                            report.regressions.len(),
                            report.regressions.join("; ")
                        ));
                    }
                    println!("no bench regression past {threshold}%");
                }
                Err(e) => fail(e),
            }
        }
        Mode::Experiments(experiments) => {
            println!(
                "fidelity: {fidelity:?} (set IVC_FULL=1 for full sweeps); workers: {}\n",
                options.worker_threads()
            );
            let selected: Vec<String> =
                if experiments.is_empty() || experiments.iter().any(|a| a == "all") {
                    vec![
                        "a1", "a2", "a3", "a4", "a5", "a6", "b1", "b2", "b3", "rooms", "d1", "d3",
                        "d4", "d5", "d6",
                    ]
                    .into_iter()
                    .map(String::from)
                    .collect()
                } else {
                    experiments
                };
            let mut archives_ok = true;
            let mut experiments_ok = true;
            for experiment in &selected {
                let result = run_one(experiment, fidelity, &options, &mut archives_ok);
                match result {
                    Ok(output) => println!("{output}"),
                    Err(e) => {
                        eprintln!("experiment {experiment} failed: {e}");
                        experiments_ok = false;
                    }
                }
            }
            if !archives_ok || !experiments_ok {
                std::process::exit(1);
            }
        }
    }

    if telemetry_on && !is_profile {
        telemetry::set_enabled(false);
        let local = telemetry::snapshot();
        let wall_s = run_start.elapsed().as_secs_f64();
        // The metrics document is fleet-wide: the coordinator's snapshot
        // merged with every worker sidecar.  The Chrome trace stays
        // process-local by design (merging drops per-event detail), so it
        // is written from the coordinator's own snapshot.
        if let Some(path) = &options.metrics {
            let fleet = if worker_metrics.is_empty() {
                local.clone()
            } else {
                match merge_fleet_metrics(local.clone(), &worker_metrics) {
                    Ok(fleet) => fleet,
                    Err(e) => fail(e),
                }
            };
            if let Err(e) = write_metrics_file(path, &fleet, wall_s) {
                fail(e);
            }
            println!("metrics written to {}", path.display());
        }
        if let Some(path) = &options.trace {
            if let Err(e) = write_trace_file(path, &local) {
                fail(e);
            }
            println!("trace written to {}", path.display());
        }
    }
}

/// Writes the `--metrics` / `--trace` documents from a snapshot — shared
/// by the whole-invocation path and the per-preset profile subcommand.
fn write_telemetry_files(options: &Options, snapshot: &telemetry::Snapshot, wall_s: f64) {
    if let Some(path) = &options.metrics {
        if let Err(e) = write_metrics_file(path, snapshot, wall_s) {
            fail(e);
        }
        println!("metrics written to {}", path.display());
    }
    if let Some(path) = &options.trace {
        if let Err(e) = write_trace_file(path, snapshot) {
            fail(e);
        }
        println!("trace written to {}", path.display());
    }
}

fn run_one(
    name: &str,
    fidelity: Fidelity,
    options: &Options,
    archives_ok: &mut bool,
) -> ivc_core::Result<String> {
    Ok(match name {
        "a1" => {
            let (table, report) = fig_a1_leakage_vs_power(fidelity, options.worker_threads())?;
            *archives_ok &= archive_all(std::slice::from_ref(&report), &options.archive);
            table.render()
        }
        "a2" => {
            let (table, series, report) =
                fig_a2_accuracy_vs_distance(fidelity, options.worker_threads())?;
            *archives_ok &= archive_all(std::slice::from_ref(&report), &options.archive);
            let mut out = table.render();
            for s in series {
                out.push_str(&format!(
                    "range at >= 0.8 accuracy [{}]: {:.1} m\n",
                    s.name,
                    s.last_x_with_y_at_least(0.8).unwrap_or(0.0)
                ));
            }
            out
        }
        "a3" => {
            let (table, report) = fig_a3_accuracy_vs_speakers(fidelity, options.worker_threads())?;
            *archives_ok &= archive_all(std::slice::from_ref(&report), &options.archive);
            table.render()
        }
        "a4" => {
            let (table, report) = fig_a4_leakage_vs_speakers(fidelity, options.worker_threads())?;
            *archives_ok &= archive_all(std::slice::from_ref(&report), &options.archive);
            table.render()
        }
        "rooms" => {
            let (table, report) = fig_rooms_sweep(fidelity, options.worker_threads())?;
            *archives_ok &= archive_all(std::slice::from_ref(&report), &options.archive);
            table.render()
        }
        "a5" => {
            let (table, report) = tab_a5_range_per_device(fidelity, options.worker_threads())?;
            *archives_ok &= archive_all(std::slice::from_ref(&report), &options.archive);
            table.render()
        }
        "a6" => {
            let (table, report) = fig_a6_carrier_frequency(fidelity, options.worker_threads())?;
            *archives_ok &= archive_all(std::slice::from_ref(&report), &options.archive);
            table.render()
        }
        "b1" => {
            let (table, report) = tab_b1_range_vs_power(fidelity, options.worker_threads())?;
            *archives_ok &= archive_all(std::slice::from_ref(&report), &options.archive);
            table.render()
        }
        "b2" => {
            let (table, report) = fig_b2_spectrogram_triplet(fidelity, options.worker_threads())?;
            *archives_ok &= archive_all(std::slice::from_ref(&report), &options.archive);
            table.render()
        }
        "b3" => {
            let (table, reports) = tab_b3_success_rate(fidelity, options.worker_threads())?;
            *archives_ok &= archive_all(&reports, &options.archive);
            table.render()
        }
        "d1" | "d2" => {
            let (table, report) = fig_d1_d2_feature_separation(fidelity, options.worker_threads())?;
            *archives_ok &= archive_all(std::slice::from_ref(&report), &options.archive);
            table.render()
        }
        "d3" => {
            let (table, report) = fig_d3_roc(fidelity, options.worker_threads())?;
            *archives_ok &= archive_all(std::slice::from_ref(&report), &options.archive);
            table.render()
        }
        "d4" => {
            let (table, report) = tab_d4_detection_grid(fidelity, options.worker_threads())?;
            *archives_ok &= archive_all(std::slice::from_ref(&report), &options.archive);
            table.render()
        }
        "d5" => {
            let (table, reports) = fig_d5_noise_robustness(fidelity, options.worker_threads())?;
            *archives_ok &= archive_all(&reports, &options.archive);
            table.render()
        }
        "d6" => {
            let (table, report) = fig_d6_adaptive_attacker(fidelity, options.worker_threads())?;
            *archives_ok &= archive_all(std::slice::from_ref(&report), &options.archive);
            table.render()
        }
        other => return Err(format!("unknown experiment id '{other}'").into()),
    })
}
