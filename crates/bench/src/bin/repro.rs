//! Reproduction driver: prints the rows/series of every paper table and
//! figure.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p ivc-bench --bin repro -- all        # every experiment
//! cargo run --release -p ivc-bench --bin repro -- a2 d3      # a subset
//! IVC_FULL=1 cargo run --release -p ivc-bench --bin repro -- all   # full-fidelity sweeps
//! ```

use ivc_bench::*;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let fidelity = Fidelity::from_env();
    let selected: Vec<String> = if args.is_empty() || args.iter().any(|a| a == "all") {
        vec![
            "a1", "a2", "a3", "a4", "a5", "a6", "b1", "b2", "b3", "d1", "d3", "d4", "d5", "d6",
        ]
        .into_iter()
        .map(String::from)
        .collect()
    } else {
        args
    };
    println!("fidelity: {fidelity:?} (set IVC_FULL=1 for full sweeps)\n");
    for experiment in &selected {
        let result = run_one(experiment, fidelity);
        match result {
            Ok(output) => println!("{output}"),
            Err(e) => eprintln!("experiment {experiment} failed: {e}"),
        }
    }
}

fn run_one(name: &str, fidelity: Fidelity) -> ivc_core::Result<String> {
    Ok(match name {
        "a1" => fig_a1_leakage_vs_power(fidelity)?.render(),
        "a2" => {
            let (table, series) = fig_a2_accuracy_vs_distance(fidelity)?;
            let mut out = table.render();
            for s in series {
                out.push_str(&format!(
                    "range at >= 0.8 accuracy [{}]: {:.1} m\n",
                    s.name,
                    s.last_x_with_y_at_least(0.8).unwrap_or(0.0)
                ));
            }
            out
        }
        "a3" => fig_a3_accuracy_vs_speakers(fidelity)?.render(),
        "a4" => fig_a4_leakage_vs_speakers(fidelity)?.render(),
        "a5" => tab_a5_range_per_device(fidelity)?.render(),
        "a6" => fig_a6_carrier_frequency(fidelity)?.render(),
        "b1" => tab_b1_range_vs_power(fidelity)?.render(),
        "b2" => fig_b2_spectrogram_triplet(fidelity)?.render(),
        "b3" => tab_b3_success_rate(fidelity)?.render(),
        "d1" | "d2" => fig_d1_d2_feature_separation(fidelity)?.render(),
        "d3" => fig_d3_roc(fidelity)?.render(),
        "d4" => tab_d4_detection_grid(fidelity)?.render(),
        "d5" => fig_d5_noise_robustness(fidelity)?.render(),
        "d6" => fig_d6_adaptive_attacker(fidelity)?.render(),
        other => format!("unknown experiment id: {other}\n"),
    })
}
