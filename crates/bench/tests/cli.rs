//! CLI-level tests of the `repro` binary: every bad input must exit
//! non-zero with a one-line error — never a panic — and the shard
//! subcommands must hold the file-based contract end to end.

use std::path::PathBuf;
use std::process::{Command, Output};

fn repro(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(args)
        .output()
        .expect("running the repro binary")
}

/// Stderr of a failed run, asserted to be a single non-empty line (the
/// "one-line error" contract) that never looks like a panic.
fn one_line_error(output: &Output, context: &str) -> String {
    assert!(
        !output.status.success(),
        "{context}: expected a non-zero exit, got {:?}",
        output.status
    );
    let stderr = String::from_utf8_lossy(&output.stderr).into_owned();
    assert!(
        !stderr.contains("panicked"),
        "{context}: the driver panicked:\n{stderr}"
    );
    let lines: Vec<&str> = stderr.lines().filter(|l| !l.trim().is_empty()).collect();
    assert_eq!(
        lines.len(),
        1,
        "{context}: expected exactly one error line, got:\n{stderr}"
    );
    lines[0].to_string()
}

#[test]
fn unknown_campaign_preset_is_a_one_line_error() {
    let output = repro(&["campaign", "nonexistent-preset"]);
    let line = one_line_error(&output, "unknown preset");
    assert!(
        line.contains("unknown campaign preset 'nonexistent-preset'"),
        "{line}"
    );
    assert!(
        line.contains("smoke"),
        "error should list the presets: {line}"
    );
}

#[test]
fn unknown_experiment_id_is_a_one_line_error() {
    let output = repro(&["not-an-experiment"]);
    assert!(!output.status.success());
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(
        stderr.contains("unknown experiment id 'not-an-experiment'"),
        "{stderr}"
    );
}

#[test]
fn malformed_flag_values_are_one_line_errors() {
    for (args, needle) in [
        (
            &["campaign", "smoke", "--workers", "three"][..],
            "invalid --workers value 'three'",
        ),
        (
            &["campaign", "smoke", "--shards", "2.5"][..],
            "invalid --shards value '2.5'",
        ),
        (
            &["campaign", "smoke", "--shards", "0"][..],
            "invalid --shards value '0'",
        ),
        (
            &["campaign", "smoke", "--workers"][..],
            "--workers needs a number",
        ),
        (
            &["campaign", "smoke", "--workers", "0"][..],
            "invalid --workers value '0'",
        ),
        (
            &["campaign", "smoke", "--archive", "--workers", "2"][..],
            "--archive needs a directory",
        ),
        (
            &["campaign", "smoke", "--frobnicate"][..],
            "unknown flag '--frobnicate'",
        ),
        (&["campaign"][..], "campaign needs a preset name"),
        (
            &["a1", "campaign", "smoke"][..],
            "'campaign' cannot be combined with experiment ids (a1)",
        ),
        (&["a1", "--shards", "2"][..], "--shards applies to"),
        (
            &["campaign", "smoke", "--out", "x.json"][..],
            "--out applies to",
        ),
        (
            &["shard-merge", "--out", "x.json", "--archive", "d", "p.json"][..],
            "--archive applies to",
        ),
        (
            &["shard-merge", "--out", "x.json", "--workers", "8", "p.json"][..],
            "--workers applies to",
        ),
        (
            &[
                "shard-plan",
                "smoke",
                "--shards",
                "2",
                "--out-dir",
                "d",
                "--workers",
                "2",
            ][..],
            "--workers applies to",
        ),
        (&["shard-plan", "smoke"][..], "shard-plan needs --shards"),
        (
            &["shard-plan", "smoke", "--shards", "2"][..],
            "shard-plan needs --out-dir",
        ),
        (&["shard-worker"][..], "shard-worker needs --job"),
        (
            &["shard-worker", "--job", "x.json"][..],
            "shard-worker needs --out",
        ),
        (
            &["shard-merge", "--out", "x.json"][..],
            "at least one partial",
        ),
        (&["shard-merge", "a.json"][..], "shard-merge needs --out"),
        (&["orchestrate"][..], "orchestrate needs a preset name"),
        (&["orchestrate", "smoke"][..], "orchestrate needs --shards"),
        (
            &["campaign", "smoke", "--max-retries", "2"][..],
            "--max-retries applies to",
        ),
        (
            &["campaign", "smoke", "--straggler-timeout", "5"][..],
            "--straggler-timeout applies to",
        ),
        (
            &["campaign", "smoke", "--resume", "ckpt"][..],
            "--resume applies to",
        ),
        (
            &[
                "orchestrate",
                "smoke",
                "--shards",
                "2",
                "--max-retries",
                "many",
            ][..],
            "invalid --max-retries value 'many'",
        ),
        (
            &[
                "orchestrate",
                "smoke",
                "--shards",
                "2",
                "--straggler-timeout",
                "soon",
            ][..],
            "invalid --straggler-timeout value 'soon'",
        ),
        (
            &[
                "orchestrate",
                "smoke",
                "--shards",
                "2",
                "--straggler-timeout",
                "0",
            ][..],
            "invalid --straggler-timeout value '0'",
        ),
        (
            &["orchestrate", "smoke", "--shards", "2", "--resume"][..],
            "--resume needs a checkpoint directory",
        ),
        (&["profile"][..], "profile needs a preset name"),
        (
            &["campaign", "smoke", "--metrics"][..],
            "--metrics needs an output file",
        ),
        (
            &["campaign", "smoke", "--trace"][..],
            "--trace needs an output file",
        ),
        (
            &[
                "shard-merge",
                "--out",
                "x.json",
                "--metrics",
                "m.json",
                "p.json",
            ][..],
            "--metrics applies to",
        ),
        (
            &[
                "shard-plan",
                "smoke",
                "--shards",
                "2",
                "--out-dir",
                "d",
                "--trace",
                "t.json",
            ][..],
            "--trace applies to",
        ),
        (
            &["profile", "smoke", "--archive", "d"][..],
            "--archive applies to",
        ),
        (
            &["bench-diff"][..],
            "bench-diff needs exactly two snapshot files",
        ),
        (
            &["bench-diff", "old.json"][..],
            "bench-diff needs exactly two snapshot files",
        ),
        (
            &["bench-diff", "a.json", "b.json", "c.json"][..],
            "bench-diff needs exactly two snapshot files",
        ),
        (
            &["campaign", "smoke", "--max-regress", "10"][..],
            "--max-regress applies to",
        ),
        (
            &["bench-diff", "a.json", "b.json", "--max-regress", "lots"][..],
            "invalid --max-regress value 'lots'",
        ),
        (
            &["bench-diff", "a.json", "b.json", "--max-regress", "0"][..],
            "invalid --max-regress value '0'",
        ),
        (
            &["bench-diff", "a.json", "b.json", "--metrics", "m.json"][..],
            "--metrics applies to",
        ),
        (
            &["bench-diff", "a.json", "b.json", "--workers", "2"][..],
            "--workers applies to",
        ),
        (
            &["campaign", "smoke", "--partial-format", "json"][..],
            "--partial-format needs --shards",
        ),
        (
            &[
                "shard-merge",
                "--out",
                "x.json",
                "--partial-format",
                "json",
                "p.json",
            ][..],
            "--partial-format applies to",
        ),
        (
            &[
                "campaign",
                "smoke",
                "--shards",
                "2",
                "--partial-format",
                "xml",
            ][..],
            "expected 'columns' or 'json'",
        ),
        (&["export-json", "p.bin"][..], "export-json needs --out"),
        (
            &["export-json", "--out", "x.json"][..],
            "exactly one partial archive",
        ),
        (
            &["export-json", "a.bin", "b.bin", "--out", "x.json"][..],
            "exactly one partial archive",
        ),
    ] {
        let output = repro(args);
        let line = one_line_error(&output, &args.join(" "));
        assert!(
            line.contains(needle),
            "`repro {}`: expected '{needle}' in '{line}'",
            args.join(" ")
        );
    }
}

/// More shards than trials cannot be satisfied — every shard must own at
/// least one trial.  Both executing subcommands refuse with a one-line
/// error before running anything (smoke has 4 trials).
#[test]
fn oversharded_runs_are_refused_with_one_line_errors() {
    for subcommand in ["campaign", "orchestrate"] {
        let output = repro(&[subcommand, "smoke", "--shards", "64"]);
        let line = one_line_error(&output, &format!("{subcommand} oversharded"));
        assert!(
            line.contains("every shard must own at least one trial"),
            "`repro {subcommand} smoke --shards 64`: {line}"
        );
    }
}

#[test]
fn unreadable_shard_job_file_is_a_one_line_error() {
    let missing =
        std::env::temp_dir().join(format!("ivc-cli-missing-{}.job.json", std::process::id()));
    let missing_str = missing.to_string_lossy().into_owned();
    let output = repro(&["shard-worker", "--job", &missing_str, "--out", "out.json"]);
    let line = one_line_error(&output, "missing job file");
    assert!(
        line.contains("reading") && line.contains(&missing_str),
        "{line}"
    );

    // A file that exists but is not a job file fails with a decode error,
    // not a panic.
    let garbage =
        std::env::temp_dir().join(format!("ivc-cli-garbage-{}.job.json", std::process::id()));
    std::fs::write(&garbage, "not json at all").unwrap();
    let garbage_str = garbage.to_string_lossy().into_owned();
    let output = repro(&["shard-worker", "--job", &garbage_str, "--out", "out.json"]);
    std::fs::remove_file(&garbage).ok();
    let line = one_line_error(&output, "garbage job file");
    assert!(line.contains("decode"), "{line}");
}

#[test]
fn shard_merge_rejects_unreadable_partials() {
    let missing =
        std::env::temp_dir().join(format!("ivc-cli-missing-{}.part.json", std::process::id()));
    let out = std::env::temp_dir().join(format!("ivc-cli-merge-{}.json", std::process::id()));
    let output = repro(&[
        "shard-merge",
        "--out",
        &out.to_string_lossy(),
        &missing.to_string_lossy(),
    ]);
    let line = one_line_error(&output, "missing partial");
    assert!(line.contains("reading"), "{line}");
}

/// The columnar shard contract end to end at the CLI: a worker writes
/// columnar (`.bin`) or JSON (`.json`) partials depending on nothing but
/// the `--out` extension; `export-json` re-encodes a binary partial to
/// exactly the JSON the worker would have written; and `shard-merge`
/// produces byte-identical reports from either wire format.
#[test]
fn columnar_and_json_partials_merge_to_identical_reports() {
    let scratch = std::env::temp_dir().join(format!("ivc-cli-columnar-{}", std::process::id()));
    std::fs::remove_dir_all(&scratch).ok();
    std::fs::create_dir_all(&scratch).unwrap();
    let path = |name: &str| -> String { scratch.join(name).to_string_lossy().into_owned() };
    let run = |args: &[&str], context: &str| {
        let output = repro(args);
        assert!(output.status.success(), "{context} failed: {output:?}");
    };

    run(
        &[
            "shard-plan",
            "smoke",
            "--shards",
            "2",
            "--out-dir",
            &path(""),
        ],
        "shard-plan",
    );
    for shard in 0..2 {
        let job = path(&format!("smoke.shard-{shard}-of-2.job.json"));
        for ext in ["bin", "json"] {
            run(
                &[
                    "shard-worker",
                    "--job",
                    &job,
                    "--out",
                    &path(&format!("part{shard}.{ext}")),
                    "--workers",
                    "1",
                ],
                &format!("shard-worker {shard} ({ext})"),
            );
        }
    }
    // The binary partial is compact, and its JSON export is byte-equal to
    // what the worker writes when asked for JSON directly.
    for shard in 0..2 {
        let bin = std::fs::read(scratch.join(format!("part{shard}.bin"))).unwrap();
        let json = std::fs::read(scratch.join(format!("part{shard}.json"))).unwrap();
        assert!(
            bin.len() < json.len(),
            "columnar partial ({} bytes) should be smaller than JSON ({} bytes)",
            bin.len(),
            json.len()
        );
        run(
            &[
                "export-json",
                &path(&format!("part{shard}.bin")),
                "--out",
                &path(&format!("export{shard}.json")),
            ],
            &format!("export-json {shard}"),
        );
        let exported = std::fs::read(scratch.join(format!("export{shard}.json"))).unwrap();
        assert_eq!(
            exported, json,
            "export-json must reproduce the worker's JSON bytes for shard {shard}"
        );
    }
    run(
        &[
            "shard-merge",
            "--out",
            &path("from-bin.json"),
            &path("part0.bin"),
            &path("part1.bin"),
        ],
        "merge from columnar",
    );
    run(
        &[
            "shard-merge",
            "--out",
            &path("from-json.json"),
            &path("part0.json"),
            &path("part1.json"),
        ],
        "merge from JSON",
    );
    let from_bin = std::fs::read_to_string(scratch.join("from-bin.json")).unwrap();
    let from_json = std::fs::read_to_string(scratch.join("from-json.json")).unwrap();
    assert_eq!(
        from_bin, from_json,
        "the merged report must not depend on the partial wire format"
    );
    std::fs::remove_dir_all(&scratch).ok();
}

/// An unknown preset through `profile` is the same one-line runtime
/// error the other preset-taking subcommands give.
#[test]
fn unknown_profile_preset_is_a_one_line_error() {
    let output = repro(&["profile", "nonexistent-preset"]);
    let line = one_line_error(&output, "unknown profile preset");
    assert!(
        line.contains("unknown campaign preset 'nonexistent-preset'"),
        "{line}"
    );
}

/// Telemetry is observation, never participation: the smoke archive must
/// be byte-identical with `--metrics`/`--trace` on or off, at any worker
/// count and across forked shard workers — while the metrics document
/// parses as `ivc-metrics-v1` with non-zero span counts for all three
/// pipeline stages and the trace document holds Chrome trace events.
#[test]
fn telemetry_export_leaves_the_archive_bytes_identical() {
    use ivc_core::json::JsonValue;
    let scratch = std::env::temp_dir().join(format!("ivc-cli-telemetry-{}", std::process::id()));
    std::fs::remove_dir_all(&scratch).ok();
    std::fs::create_dir_all(&scratch).unwrap();
    let dir = |name: &str| -> PathBuf { scratch.join(name) };
    let run = |args: &[&str], context: &str| {
        let output = repro(args);
        assert!(output.status.success(), "{context} failed: {output:?}");
    };

    run(
        &[
            "campaign",
            "smoke",
            "--workers",
            "1",
            "--archive",
            &dir("base").to_string_lossy(),
        ],
        "baseline",
    );
    let baseline = std::fs::read_to_string(dir("base").join("smoke.json")).unwrap();

    let metrics_1 = dir("m1.json");
    run(
        &[
            "campaign",
            "smoke",
            "--workers",
            "1",
            "--metrics",
            &metrics_1.to_string_lossy(),
            "--archive",
            &dir("w1").to_string_lossy(),
        ],
        "workers 1 + metrics",
    );
    let metrics_8 = dir("m8.json");
    let trace_8 = dir("t8.json");
    run(
        &[
            "campaign",
            "smoke",
            "--workers",
            "8",
            "--metrics",
            &metrics_8.to_string_lossy(),
            "--trace",
            &trace_8.to_string_lossy(),
            "--archive",
            &dir("w8").to_string_lossy(),
        ],
        "workers 8 + metrics + trace",
    );
    let metrics_sharded = dir("ms.json");
    run(
        &[
            "campaign",
            "smoke",
            "--shards",
            "2",
            "--workers",
            "2",
            "--metrics",
            &metrics_sharded.to_string_lossy(),
            "--archive",
            &dir("sharded").to_string_lossy(),
        ],
        "shards 2 + metrics",
    );
    for flavour in ["w1", "w8", "sharded"] {
        let archived = std::fs::read_to_string(dir(flavour).join("smoke.json")).unwrap();
        assert_eq!(
            archived, baseline,
            "telemetry changed the archive bytes ({flavour})"
        );
    }

    // Every metrics document — in-process AND the fleet-merged sharded
    // one — carries all three pipeline stages with every trial counted.
    // Smoke is 2 cells x 2 trials, so each stage closed 4 spans.
    for path in [&metrics_1, &metrics_8, &metrics_sharded] {
        let doc = JsonValue::parse(&std::fs::read_to_string(path).unwrap())
            .unwrap_or_else(|e| panic!("parsing {}: {e}", path.display()));
        assert_eq!(
            doc.get("format").and_then(JsonValue::as_str),
            Some("ivc-metrics-v1")
        );
        let spans = doc.get("spans").and_then(JsonValue::as_array).unwrap();
        for stage in ["stage.prepare", "stage.perturb", "stage.evaluate"] {
            let span = spans
                .iter()
                .find(|s| s.get("name").and_then(JsonValue::as_str) == Some(stage))
                .unwrap_or_else(|| panic!("{}: no {stage} spans", path.display()));
            let count = span.get("count").and_then(JsonValue::as_u64).unwrap_or(0);
            assert_eq!(count, 4, "{}: wrong {stage} span count", path.display());
            // The percentile estimates are part of the document and sit
            // inside the observed range.
            for (p, name) in [("p50_ns", "p50"), ("p90_ns", "p90"), ("p99_ns", "p99")] {
                let value = span.get(p).and_then(JsonValue::as_u64);
                assert!(
                    value.is_some(),
                    "{}: {stage} missing {name}",
                    path.display()
                );
            }
        }
        let counters = doc.get("counters").and_then(JsonValue::as_array).unwrap();
        let trials = counters
            .iter()
            .find(|c| {
                c.get("name").and_then(JsonValue::as_str) == Some("executor.trials_completed")
            })
            .and_then(|c| c.get("value"))
            .and_then(JsonValue::as_u64)
            .unwrap_or(0);
        assert_eq!(trials, 4, "{}: trial counter drifted", path.display());
    }
    // The sharded document is the merged fleet: provenance names the
    // coordinator and both workers, and the workers own the stage time.
    let doc = JsonValue::parse(&std::fs::read_to_string(&metrics_sharded).unwrap()).unwrap();
    let sources = doc
        .get("sources")
        .and_then(JsonValue::as_array)
        .expect("fleet document carries sources");
    let labels: Vec<&str> = sources
        .iter()
        .filter_map(|s| s.get("name").and_then(JsonValue::as_str))
        .collect();
    for expected in ["coordinator", "shard-0-of-2", "shard-1-of-2"] {
        assert!(
            labels.contains(&expected),
            "missing source {expected}: {labels:?}"
        );
    }

    // The trace document is loadable Chrome trace-event JSON.
    let trace = JsonValue::parse(&std::fs::read_to_string(&trace_8).unwrap()).unwrap();
    let events = trace
        .get("traceEvents")
        .and_then(JsonValue::as_array)
        .expect("traceEvents array");
    assert!(!events.is_empty(), "trace has no events");
    for event in events {
        assert_eq!(event.get("ph").and_then(JsonValue::as_str), Some("X"));
        assert!(event.get("name").and_then(JsonValue::as_str).is_some());
        assert!(event.get("ts").and_then(JsonValue::as_f64).is_some());
        assert!(event.get("dur").and_then(JsonValue::as_f64).is_some());
    }

    std::fs::remove_dir_all(&scratch).ok();
}

/// `repro profile` prints the per-stage attribution table, and with one
/// worker the top-level stage totals track the run's wall clock.
#[test]
fn profile_prints_stage_attribution_covering_the_wall_clock() {
    let metrics = std::env::temp_dir().join(format!("ivc-cli-profile-{}.json", std::process::id()));
    let output = repro(&["profile", "smoke", "--metrics", &metrics.to_string_lossy()]);
    assert!(output.status.success(), "profile failed: {output:?}");
    let stdout = String::from_utf8_lossy(&output.stdout);
    for needle in [
        "Stage attribution",
        "stage.prepare",
        "stage.perturb",
        "stage.evaluate",
        // The smoke grid shares utterances and attack builds across
        // cells, so the prepare cache reports both hits and misses.
        "counter:executor.prepare_cache_hit",
        "counter:executor.prepare_cache_miss",
        "stages account for",
    ] {
        assert!(stdout.contains(needle), "missing '{needle}':\n{stdout}");
    }
    // "stages account for X s of Y s wall (Z%)" — the attribution must
    // cover most of the wall clock (the acceptance bar is 90%; leave
    // headroom for noisy CI machines).
    let percent: f64 = stdout
        .split("wall (")
        .nth(1)
        .and_then(|rest| rest.split('%').next())
        .and_then(|p| p.parse().ok())
        .unwrap_or_else(|| panic!("no coverage footer in:\n{stdout}"));
    assert!(
        percent >= 80.0,
        "stage attribution covers only {percent}% of wall clock:\n{stdout}"
    );
    // --metrics composes with profile.
    assert!(metrics.exists(), "profile did not write --metrics");
    std::fs::remove_file(&metrics).ok();
}

/// A minimal `ivc-bench-snapshot-v1` document with one bench entry at
/// `mean_ns` and one stage-attribution span (for the annotate-only rows).
fn bench_snapshot_doc(mean_ns: f64, stage_mean_ns: f64) -> String {
    format!(
        r#"{{
  "format": "ivc-bench-snapshot-v1",
  "benches": [
    {{"group": "pipeline", "name": "trial_fixture", "min_ns": {min}, "mean_ns": {mean}, "max_ns": {max}, "samples": 10}}
  ],
  "stage_attribution": {{
    "preset": "smoke",
    "workers": 1,
    "wall_s": 1.0,
    "spans": [
      {{"name": "stage.prepare", "count": 4, "total_ns": {stage_total}, "mean_ns": {stage_mean}}}
    ]
  }}
}}
"#,
        min = mean_ns * 0.9,
        mean = mean_ns,
        max = mean_ns * 1.1,
        stage_total = stage_mean_ns * 4.0,
        stage_mean = stage_mean_ns,
    )
}

/// `bench-diff` is the regression gate: exit 0 on a self-diff, exit 1
/// with a one-line error on a synthetic regression past the threshold —
/// and stage-attribution rows never gate, however much they move.
#[test]
fn bench_diff_gates_on_regressions_only() {
    let scratch = std::env::temp_dir().join(format!("ivc-cli-benchdiff-{}", std::process::id()));
    std::fs::remove_dir_all(&scratch).ok();
    std::fs::create_dir_all(&scratch).unwrap();
    let write = |name: &str, text: &str| -> String {
        let path = scratch.join(name);
        std::fs::write(&path, text).unwrap();
        path.to_string_lossy().into_owned()
    };
    let old = write("old.json", &bench_snapshot_doc(100_000_000.0, 50_000_000.0));

    // Self-diff: zero deltas, exit 0, every entry "ok".
    let output = repro(&["bench-diff", &old, &old]);
    assert!(output.status.success(), "self-diff failed: {output:?}");
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(stdout.contains("Bench diff"), "{stdout}");
    assert!(stdout.contains("pipeline/trial_fixture"), "{stdout}");
    assert!(stdout.contains("no bench regression"), "{stdout}");

    // The committed snapshot self-diffs clean through the same path.
    let committed = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_pr7.json");
    let output = repro(&["bench-diff", committed, committed]);
    assert!(
        output.status.success(),
        "committed snapshot self-diff failed: {output:?}"
    );

    // A 10x regression past the default 25% threshold: exit 1, one-line
    // error naming the entry.
    let slow = write(
        "slow.json",
        &bench_snapshot_doc(1_000_000_000.0, 50_000_000.0),
    );
    let output = repro(&["bench-diff", &old, &slow]);
    let line = one_line_error(&output, "synthetic regression");
    assert!(line.contains("regression"), "{line}");
    assert!(line.contains("pipeline/trial_fixture"), "{line}");
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(stdout.contains("REGRESSED"), "{stdout}");

    // A generous threshold tolerates the same movement (the CI blocking
    // step runs at 2x for runner noise).
    let output = repro(&["bench-diff", &old, &slow, "--max-regress", "2000"]);
    assert!(
        output.status.success(),
        "raised threshold still failed: {output:?}"
    );

    // An improvement never gates.
    let fast = write("fast.json", &bench_snapshot_doc(10_000_000.0, 50_000_000.0));
    let output = repro(&["bench-diff", &old, &fast]);
    assert!(output.status.success(), "improvement gated: {output:?}");

    // A stage-attribution blow-up alone is annotate-only: exit 0.
    let slow_stages = write(
        "slow-stages.json",
        &bench_snapshot_doc(100_000_000.0, 500_000_000.0),
    );
    let output = repro(&["bench-diff", &old, &slow_stages]);
    assert!(
        output.status.success(),
        "stage attribution must not gate: {output:?}"
    );
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(stdout.contains("stage:stage.prepare"), "{stdout}");

    // Wrong format tag: one-line error, exit 1.
    let not_snapshot = write("not-snapshot.json", r#"{"format": "something-else"}"#);
    let output = repro(&["bench-diff", &old, &not_snapshot]);
    let line = one_line_error(&output, "wrong format tag");
    assert!(line.contains("ivc-bench-snapshot-v1"), "{line}");

    // Missing file: one-line error, exit 1.
    let missing = scratch.join("missing.json").to_string_lossy().into_owned();
    let output = repro(&["bench-diff", &old, &missing]);
    let line = one_line_error(&output, "missing snapshot file");
    assert!(line.contains("reading"), "{line}");

    std::fs::remove_dir_all(&scratch).ok();
}

/// The acceptance path end to end, through real processes and real files:
/// `campaign smoke` in-process == `campaign smoke --shards 2` (forked
/// workers) == shard-plan → 2x shard-worker → shard-merge.  All three
/// archives must be byte-identical.
#[test]
fn sharded_smoke_campaign_reproduces_the_in_process_bytes() {
    let scratch = std::env::temp_dir().join(format!("ivc-cli-e2e-{}", std::process::id()));
    std::fs::remove_dir_all(&scratch).ok();
    std::fs::create_dir_all(&scratch).unwrap();
    let dir = |name: &str| -> PathBuf { scratch.join(name) };

    // 1. In-process baseline.
    let output = repro(&[
        "campaign",
        "smoke",
        "--workers",
        "2",
        "--archive",
        &dir("in-process").to_string_lossy(),
    ]);
    assert!(output.status.success(), "in-process run failed: {output:?}");
    let baseline = std::fs::read_to_string(dir("in-process").join("smoke.json")).unwrap();

    // 2. Forked shard workers behind the same subcommand.
    let output = repro(&[
        "campaign",
        "smoke",
        "--shards",
        "2",
        "--workers",
        "2",
        "--archive",
        &dir("sharded").to_string_lossy(),
    ]);
    assert!(output.status.success(), "sharded run failed: {output:?}");
    let sharded = std::fs::read_to_string(dir("sharded").join("smoke.json")).unwrap();
    assert_eq!(sharded, baseline, "--shards 2 changed the archive bytes");

    // 3. The standalone file-based path: plan, run each worker, merge.
    let jobs_dir = dir("jobs");
    let output = repro(&[
        "shard-plan",
        "smoke",
        "--shards",
        "2",
        "--out-dir",
        &jobs_dir.to_string_lossy(),
    ]);
    assert!(output.status.success(), "shard-plan failed: {output:?}");
    let mut partials = Vec::new();
    for index in 0..2 {
        let job = jobs_dir.join(format!("smoke.shard-{index}-of-2.job.json"));
        assert!(job.exists(), "shard-plan did not write {}", job.display());
        let part = dir(&format!("part-{index}.json"));
        let output = repro(&[
            "shard-worker",
            "--job",
            &job.to_string_lossy(),
            "--out",
            &part.to_string_lossy(),
        ]);
        assert!(
            output.status.success(),
            "shard-worker {index} failed: {output:?}"
        );
        partials.push(part);
    }
    let merged_path = dir("merged.json");
    let mut args: Vec<String> = vec![
        "shard-merge".to_string(),
        "--out".to_string(),
        merged_path.to_string_lossy().into_owned(),
    ];
    args.extend(partials.iter().map(|p| p.to_string_lossy().into_owned()));
    let arg_refs: Vec<&str> = args.iter().map(String::as_str).collect();
    let output = repro(&arg_refs);
    assert!(output.status.success(), "shard-merge failed: {output:?}");
    let merged = std::fs::read_to_string(&merged_path).unwrap();
    assert_eq!(
        merged, baseline,
        "the file-based shard path changed the archive bytes"
    );

    // Mismatched coverage through the binary: merging the same partial
    // twice is an overlap — one-line error, non-zero exit, no output file.
    let overlap_out = dir("overlap.json");
    let overlap_out_str = overlap_out.to_string_lossy().into_owned();
    let part0 = partials[0].to_string_lossy().into_owned();
    let output = repro(&["shard-merge", "--out", &overlap_out_str, &part0, &part0]);
    let line = one_line_error(&output, "overlapping partials");
    assert!(line.contains("overlap"), "{line}");
    assert!(!overlap_out.exists(), "failed merge must not write output");

    std::fs::remove_dir_all(&scratch).ok();
}
