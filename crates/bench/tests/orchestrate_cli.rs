//! Process-level tests of `repro orchestrate`: real forked shard
//! workers, real failures.  Whatever the orchestrator survives — an
//! injected worker fault, a SIGKILLed worker, a SIGKILLed orchestrator
//! resumed from its checkpoints — the archive must stay byte-identical
//! to the in-process `campaign smoke` run.

use ivc_core::json::JsonValue;
use ivc_experiments::orchestrate::{ENV_FAULT_SHARD, ENV_SHARD_ATTEMPT, MANIFEST_FORMAT};
use ivc_experiments::shard::{shard_job_file_name, ShardArchive, ShardPlan};
use ivc_experiments::{presets, run_campaign, CampaignSpec, DeliverySpec};
use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};
use std::sync::OnceLock;
use std::time::{Duration, Instant};

fn repro_cmd() -> Command {
    Command::new(env!("CARGO_BIN_EXE_repro"))
}

/// A per-test scratch directory under the system temp dir.
fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ivc-orch-cli-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// The in-process smoke archive every orchestrated run must reproduce,
/// computed once and shared by all tests in this binary.
fn smoke_baseline() -> &'static str {
    static BASELINE: OnceLock<String> = OnceLock::new();
    BASELINE.get_or_init(|| {
        run_campaign(&presets::smoke(), 2)
            .expect("in-process smoke baseline")
            .to_json_string()
    })
}

fn read_archive(dir: &Path) -> String {
    std::fs::read_to_string(dir.join("smoke.json"))
        .unwrap_or_else(|e| panic!("reading {}/smoke.json: {e}", dir.display()))
}

/// An injected first-attempt worker failure (the CI fault-injection
/// knob) is retried by the orchestrator and leaves no trace in the
/// bytes.
#[test]
fn fault_injected_worker_failure_is_retried_to_identical_bytes() {
    let scratch = scratch_dir("fault");
    let archive = scratch.join("archive");
    let output = repro_cmd()
        .args(["orchestrate", "smoke", "--shards", "2", "--workers", "2"])
        .args(["--archive", &archive.to_string_lossy()])
        .env(ENV_FAULT_SHARD, "1")
        .output()
        .unwrap();
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(
        output.status.success(),
        "faulted orchestrate run failed:\n{stderr}"
    );
    // Worker stderr interleaves with orchestrator status lines at
    // format-arg boundaries, so match only a single literal segment.
    assert!(
        stderr.contains("injected fault: failing first attempt at shard"),
        "the worker fault did not fire:\n{stderr}"
    );
    assert!(
        stderr.contains("retry 1/"),
        "the orchestrator did not report the retry:\n{stderr}"
    );
    assert_eq!(
        read_archive(&archive),
        smoke_baseline(),
        "the retried run changed the archive bytes"
    );
    // The structured run manifest travels with the archive, and records
    // the retry as a machine-readable event.
    let manifest_path = archive.join("smoke.manifest.jsonl");
    let manifest = std::fs::read_to_string(&manifest_path)
        .unwrap_or_else(|e| panic!("reading {}: {e}", manifest_path.display()));
    let events: Vec<JsonValue> = manifest
        .lines()
        .map(|line| JsonValue::parse(line).unwrap_or_else(|e| panic!("bad manifest line: {e}")))
        .collect();
    assert_eq!(
        events
            .first()
            .and_then(|e| e.get("kind"))
            .and_then(JsonValue::as_str),
        Some("run_start"),
        "manifest must open with run_start"
    );
    assert_eq!(
        events
            .first()
            .and_then(|e| e.get("format"))
            .and_then(JsonValue::as_str),
        Some(MANIFEST_FORMAT),
    );
    let retry = events
        .iter()
        .find(|e| e.get("kind").and_then(JsonValue::as_str) == Some("shard_retry"))
        .expect("manifest must record the injected fault's retry");
    assert_eq!(retry.get("shard").and_then(JsonValue::as_u64), Some(1));
    assert_eq!(retry.get("retry").and_then(JsonValue::as_u64), Some(1));
    std::fs::remove_dir_all(&scratch).ok();
}

/// The tentpole acceptance path: an orchestrated run with `--metrics`
/// produces ONE fleet-wide `ivc-metrics-v1` document whose stage spans
/// aggregate every worker (provenance names them all), while the archive
/// stays byte-identical to the no-telemetry baseline — telemetry is
/// observation, never participation.
#[test]
fn orchestrated_metrics_cover_the_whole_fleet_without_touching_bytes() {
    let scratch = scratch_dir("fleet-metrics");
    let archive = scratch.join("archive");
    let metrics = scratch.join("fleet.json");
    let output = repro_cmd()
        .args(["orchestrate", "smoke", "--shards", "2", "--workers", "2"])
        .args(["--archive", &archive.to_string_lossy()])
        .args(["--metrics", &metrics.to_string_lossy()])
        .output()
        .unwrap();
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(
        output.status.success(),
        "orchestrate --metrics failed:\n{stderr}"
    );
    assert_eq!(
        read_archive(&archive),
        smoke_baseline(),
        "fleet telemetry changed the archive bytes"
    );
    // Live progress reached the status stream.
    assert!(
        stderr.contains("progress:") && stderr.contains("trial(s) done"),
        "no progress lines on stderr:\n{stderr}"
    );
    assert!(
        stderr.contains("trial(s)/s"),
        "run_complete throughput summary missing:\n{stderr}"
    );

    let doc = JsonValue::parse(&std::fs::read_to_string(&metrics).unwrap()).unwrap();
    assert_eq!(
        doc.get("format").and_then(JsonValue::as_str),
        Some("ivc-metrics-v1")
    );
    // Smoke is 2 cells x 2 trials split across 2 shards: the merged
    // fleet document must hold all 4 spans of every pipeline stage —
    // the coordinator alone has none of them.
    let spans = doc.get("spans").and_then(JsonValue::as_array).unwrap();
    for stage in ["stage.prepare", "stage.perturb", "stage.evaluate"] {
        let count = spans
            .iter()
            .find(|s| s.get("name").and_then(JsonValue::as_str) == Some(stage))
            .and_then(|s| s.get("count"))
            .and_then(JsonValue::as_u64)
            .unwrap_or(0);
        assert_eq!(count, 4, "fleet document is missing {stage} spans");
    }
    // Provenance names the coordinator and every shard, and each shard
    // contributed spans.
    let sources = doc
        .get("sources")
        .and_then(JsonValue::as_array)
        .expect("fleet document carries sources");
    for worker in ["shard-0-of-2", "shard-1-of-2"] {
        let spans = sources
            .iter()
            .find(|s| s.get("name").and_then(JsonValue::as_str) == Some(worker))
            .and_then(|s| s.get("spans"))
            .and_then(JsonValue::as_u64)
            .unwrap_or(0);
        assert!(spans > 0, "source {worker} contributed no spans");
    }
    std::fs::remove_dir_all(&scratch).ok();
}

/// Scans `/proc` for a live `shard-worker` process whose command line
/// mentions `marker`, returning its pid.
fn find_worker_pid(marker: &str) -> Option<u32> {
    let entries = std::fs::read_dir("/proc").ok()?;
    for entry in entries.flatten() {
        let name = entry.file_name();
        let Ok(pid) = name.to_string_lossy().parse::<u32>() else {
            continue;
        };
        let Ok(cmdline) = std::fs::read(format!("/proc/{pid}/cmdline")) else {
            continue;
        };
        let cmdline = String::from_utf8_lossy(&cmdline).replace('\0', " ");
        if cmdline.contains("shard-worker") && cmdline.contains(marker) {
            return Some(pid);
        }
    }
    None
}

/// SIGKILLing a real child worker mid-shard: the orchestrator retries
/// the shard and the final archive is still byte-identical.
#[test]
fn killed_worker_is_retried_to_identical_bytes() {
    let scratch = scratch_dir("kill-worker");
    let ckpt = scratch.join("ckpt");
    let archive = scratch.join("archive");
    let ckpt_str = ckpt.to_string_lossy().into_owned();
    let mut child = repro_cmd()
        .args(["orchestrate", "smoke", "--shards", "2", "--workers", "1"])
        .args(["--resume", &ckpt_str])
        .args(["--archive", &archive.to_string_lossy()])
        .stdout(Stdio::null())
        .stderr(Stdio::piped())
        .spawn()
        .unwrap();

    // Hunt for a worker and SIGKILL it.  If the campaign outruns us the
    // kill is skipped and this degrades to a plain byte-identity check.
    let deadline = Instant::now() + Duration::from_secs(120);
    let mut killed = false;
    while Instant::now() < deadline {
        if child.try_wait().unwrap().is_some() {
            break;
        }
        if let Some(pid) = find_worker_pid(&ckpt_str) {
            let status = Command::new("kill")
                .args(["-9", &pid.to_string()])
                .status()
                .unwrap();
            killed = status.success();
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
    }

    let output = child.wait_with_output().unwrap();
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(
        output.status.success(),
        "orchestrate run failed (worker killed: {killed}):\n{stderr}"
    );
    if killed {
        assert!(
            stderr.contains("retry 1/"),
            "the killed worker was not retried:\n{stderr}"
        );
    }
    assert_eq!(
        read_archive(&archive),
        smoke_baseline(),
        "the run with a killed worker changed the archive bytes (killed: {killed})"
    );
    std::fs::remove_dir_all(&scratch).ok();
}

/// SIGKILLing the *orchestrator* mid-campaign, then resuming from its
/// checkpoint directory: the resumed run reuses surviving checkpoints
/// and the archive is byte-identical.
#[test]
fn killed_orchestrator_resumes_to_identical_bytes() {
    let scratch = scratch_dir("kill-orch");
    let ckpt = scratch.join("ckpt");
    let archive = scratch.join("archive");
    let ckpt_str = ckpt.to_string_lossy().into_owned();
    // 4 shards x 1 worker staggers completions so a kill between the
    // first and last checkpoint is likely (but not required: if the run
    // finishes first, the resume below simply re-runs nothing and the
    // byte-identity assertion still stands).
    let mut child = repro_cmd()
        .args(["orchestrate", "smoke", "--shards", "4", "--workers", "1"])
        .args(["--resume", &ckpt_str])
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .unwrap();

    let deadline = Instant::now() + Duration::from_secs(120);
    let mut finished_early = false;
    let mut checkpoints_at_kill = 0;
    loop {
        if child.try_wait().unwrap().is_some() {
            finished_early = true;
            break;
        }
        checkpoints_at_kill = count_checkpoints(&ckpt);
        if checkpoints_at_kill > 0 || Instant::now() >= deadline {
            child.kill().unwrap();
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    child.wait().unwrap();

    let output = repro_cmd()
        .args(["orchestrate", "smoke", "--shards", "4", "--workers", "1"])
        .args(["--resume", &ckpt_str])
        .args(["--archive", &archive.to_string_lossy()])
        .output()
        .unwrap();
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(output.status.success(), "resumed run failed:\n{stderr}");
    if !finished_early && checkpoints_at_kill > 0 {
        assert!(
            stderr.contains("resumed from checkpoint"),
            "{checkpoints_at_kill} checkpoint(s) survived the kill but none resumed:\n{stderr}"
        );
    }
    assert_eq!(
        read_archive(&archive),
        smoke_baseline(),
        "kill + resume changed the archive bytes (finished early: {finished_early})"
    );
    std::fs::remove_dir_all(&scratch).ok();
}

/// Canonical checkpoints in `dir` (attempt files in flight do not count).
fn count_checkpoints(dir: &Path) -> usize {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return 0;
    };
    entries
        .flatten()
        .filter(|e| {
            let name = e.file_name().to_string_lossy().into_owned();
            name.ends_with(".part.bin") && !name.contains(".attempt-")
        })
        .count()
}

/// The `IVC_FAULT_SHARD` knob itself, against a bare `shard-worker`
/// process: attempt 0 of the faulted shard dies with a one-line error
/// and no output file; any later attempt (the orchestrator stamps
/// `IVC_SHARD_ATTEMPT`) runs through.
#[test]
fn fault_knob_fails_only_the_first_attempt_of_its_shard() {
    let spec = CampaignSpec {
        deliveries: vec![DeliverySpec::array(
            "4-element array, 60 W",
            4,
            60.0,
            40_000.0,
        )],
        distances_m: vec![1.0],
        trials_per_cell: 1,
        base_seed: 11,
        max_voice_duration_s: 0.7,
        ..CampaignSpec::new("fault-knob")
    };
    let scratch = scratch_dir("fault-knob");
    let plan = ShardPlan::partition(&spec, 1).unwrap();
    let job = &plan.jobs()[0];
    let job_path = scratch.join(shard_job_file_name(&spec.name, &job.shard));
    job.save(&job_path).unwrap();
    let out_path = scratch.join("part.json");

    let output = repro_cmd()
        .args(["shard-worker", "--job", &job_path.to_string_lossy()])
        .args(["--out", &out_path.to_string_lossy()])
        .env(ENV_FAULT_SHARD, "0")
        .output()
        .unwrap();
    assert!(!output.status.success(), "attempt 0 must fail: {output:?}");
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(
        stderr.contains("injected fault: failing first attempt at shard 0"),
        "{stderr}"
    );
    assert_eq!(
        stderr.lines().filter(|l| !l.trim().is_empty()).count(),
        1,
        "the injected fault must be a one-line error:\n{stderr}"
    );
    assert!(!out_path.exists(), "a failed attempt must not write output");

    let output = repro_cmd()
        .args(["shard-worker", "--job", &job_path.to_string_lossy()])
        .args(["--out", &out_path.to_string_lossy()])
        .env(ENV_FAULT_SHARD, "0")
        .env(ENV_SHARD_ATTEMPT, "1")
        .output()
        .unwrap();
    assert!(
        output.status.success(),
        "attempt 1 must run through the fault knob: {output:?}"
    );
    let partial = ShardArchive::load(&out_path).unwrap();
    assert_eq!(partial.records.len(), job.shard.num_jobs());
    std::fs::remove_dir_all(&scratch).ok();
}
