//! Result containers: tables and series, with plain-text rendering for the
//! reproduction harness and `serde` derives for archival.

use serde::{Deserialize, Serialize};

/// A labelled numeric series (one curve of a figure).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Series {
    /// Name of the series (e.g. "61-speaker array").
    pub name: String,
    /// X values (e.g. distance in metres).
    pub x: Vec<f64>,
    /// Y values (e.g. word accuracy).
    pub y: Vec<f64>,
}

impl Series {
    /// Creates a series, truncating to the shorter of the two vectors.
    pub fn new(name: impl Into<String>, x: Vec<f64>, y: Vec<f64>) -> Self {
        let n = x.len().min(y.len());
        Series {
            name: name.into(),
            x: x.into_iter().take(n).collect(),
            y: y.into_iter().take(n).collect(),
        }
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.x.len()
    }

    /// `true` if the series holds no points.
    pub fn is_empty(&self) -> bool {
        self.x.is_empty()
    }

    /// The largest x whose y meets or exceeds `threshold` (e.g. "attack
    /// range at ≥ 80 % accuracy"); `None` if no point qualifies.
    pub fn last_x_with_y_at_least(&self, threshold: f64) -> Option<f64> {
        self.x
            .iter()
            .zip(self.y.iter())
            .filter(|(_, y)| **y >= threshold)
            .map(|(x, _)| *x)
            .fold(None, |acc, x| Some(acc.map_or(x, |a: f64| a.max(x))))
    }
}

/// A printable table: column headers plus rows of cells.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table {
    /// Table title.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Rows of cells (each row should have `headers.len()` cells).
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table with the given headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|h| h.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    pub fn push_row(&mut self, cells: Vec<String>) {
        self.rows.push(cells);
    }

    /// Renders the table as aligned plain text (what the harness prints and
    /// what EXPERIMENTS.md records).
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                if i < widths.len() {
                    widths[i] = widths[i].max(cell.len());
                } else {
                    widths.push(cell.len());
                }
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        let format_row = |cells: &[String]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| {
                    format!(
                        "{:width$}",
                        c,
                        width = widths.get(i).copied().unwrap_or(c.len())
                    )
                })
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&format_row(&self.headers));
        out.push('\n');
        out.push_str(
            &"-".repeat(widths.iter().sum::<usize>() + 2 * widths.len().saturating_sub(1)),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&format_row(row));
            out.push('\n');
        }
        out
    }
}

/// Formats a float with a fixed number of decimals (harness convenience).
pub fn fmt(value: f64, decimals: usize) -> String {
    format!("{value:.decimals$}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_construction_and_threshold_lookup() {
        let s = Series::new("array", vec![1.0, 2.0, 3.0, 4.0], vec![1.0, 0.9, 0.7, 0.4]);
        assert_eq!(s.len(), 4);
        assert!(!s.is_empty());
        assert_eq!(s.last_x_with_y_at_least(0.8), Some(2.0));
        assert_eq!(s.last_x_with_y_at_least(0.95), Some(1.0));
        assert_eq!(s.last_x_with_y_at_least(1.5), None);
        // Mismatched lengths truncate.
        let t = Series::new("x", vec![1.0, 2.0, 3.0], vec![0.5]);
        assert_eq!(t.len(), 1);
        let empty = Series::new("e", vec![], vec![]);
        assert!(empty.is_empty());
    }

    #[test]
    fn table_rendering_is_aligned_and_complete() {
        let mut table = Table::new(
            "Attack range vs power",
            &["Power (W)", "Phone (cm)", "Echo (cm)"],
        );
        table.push_row(vec!["9.2".into(), "222".into(), "145".into()]);
        table.push_row(vec!["23.7".into(), "354".into(), "239".into()]);
        let rendered = table.render();
        assert!(rendered.contains("Attack range vs power"));
        assert!(rendered.contains("Power (W)"));
        assert!(rendered.contains("354"));
        assert_eq!(rendered.lines().count(), 5);
        // Every data line is at least as wide as the header line.
        let lines: Vec<&str> = rendered.lines().collect();
        assert!(lines[4].len() >= "9.2".len());
    }

    #[test]
    fn fmt_helper() {
        assert_eq!(fmt(3.15159, 2), "3.15");
        assert_eq!(fmt(10.0, 0), "10");
    }
}
