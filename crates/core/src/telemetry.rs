//! Process-wide instrumentation: spans, counters and log-scale duration
//! histograms for the trial pipeline and everything built on top of it.
//!
//! The collector is a single process-global singleton guarded by one
//! atomic `enabled` flag. **When disabled — the default — instrumentation
//! is overhead-free**: every entry point performs one relaxed atomic load
//! and returns without allocating, locking or reading the clock. Spans on
//! the disabled path are inert zero-sized guards.
//!
//! When enabled (via [`set_enabled`]), the collector records:
//!
//! * **spans** — named monotonic timings aggregated per name into count /
//!   total / min / max plus a log₂-nanosecond histogram (40 buckets cover
//!   1 ns … ~9 minutes), and
//! * **trace events** — the individual span intervals, exportable as a
//!   Chrome trace-event JSON file loadable in `chrome://tracing` or
//!   [Perfetto](https://ui.perfetto.dev) (capped; the cap is reported as
//!   a dropped-event count, never an error), and
//! * **counters** — named monotonically increasing totals.
//!
//! Telemetry never touches experiment outputs: wall-clock data lives only
//! in the metrics / trace exports produced from [`snapshot`], never in
//! archived reports, so every byte-identity guarantee holds with
//! telemetry on.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

use crate::json::{u64_to_json, JsonValue};

/// Format tag written into the `--metrics` summary document.
pub const METRICS_FORMAT: &str = "ivc-metrics-v1";

/// Span covering one whole Prepare stage (cell-invariant work).
pub const SPAN_STAGE_PREPARE: &str = "stage.prepare";
/// Span covering one whole Perturb stage (per-trial randomness).
pub const SPAN_STAGE_PERTURB: &str = "stage.perturb";
/// Span covering one whole Evaluate stage (recognition + defense).
pub const SPAN_STAGE_EVALUATE: &str = "stage.evaluate";

/// Number of log₂-ns histogram buckets: bucket `i` holds durations with
/// `floor(log2(ns)) == i`, so bucket 39 starts at 2³⁹ ns ≈ 9.2 minutes.
pub const HISTOGRAM_BUCKETS: usize = 40;

/// Cap on buffered trace events; beyond it events are counted as dropped
/// rather than stored, bounding memory on long campaigns.
const MAX_TRACE_EVENTS: usize = 262_144;

/// Aggregated statistics for one span name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanStat {
    /// How many spans closed under this name.
    pub count: u64,
    /// Sum of all span durations, in nanoseconds.
    pub total_ns: u64,
    /// Shortest observed duration, in nanoseconds.
    pub min_ns: u64,
    /// Longest observed duration, in nanoseconds.
    pub max_ns: u64,
    /// Log₂-nanosecond histogram of durations (see [`bucket_index`]).
    pub buckets: [u64; HISTOGRAM_BUCKETS],
}

impl SpanStat {
    fn new() -> SpanStat {
        SpanStat {
            count: 0,
            total_ns: 0,
            min_ns: u64::MAX,
            max_ns: 0,
            buckets: [0; HISTOGRAM_BUCKETS],
        }
    }

    fn record(&mut self, ns: u64) {
        self.count += 1;
        self.total_ns += ns;
        self.min_ns = self.min_ns.min(ns);
        self.max_ns = self.max_ns.max(ns);
        self.buckets[bucket_index(ns)] += 1;
    }

    /// Mean duration in nanoseconds (0 when no spans were recorded).
    pub fn mean_ns(&self) -> u64 {
        self.total_ns.checked_div(self.count).unwrap_or(0)
    }

    /// Fold another aggregate into this one: counts and totals add,
    /// min/max widen, histograms add bucket-wise. This is the span half
    /// of [`Snapshot::merge`].
    pub fn absorb(&mut self, other: &SpanStat) {
        self.count += other.count;
        self.total_ns += other.total_ns;
        self.min_ns = self.min_ns.min(other.min_ns);
        self.max_ns = self.max_ns.max(other.max_ns);
        for (mine, theirs) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *mine += *theirs;
        }
    }

    /// Estimate the `q`-quantile (`0.0 ..= 1.0`) from the log₂ histogram:
    /// the bucket holding the rank-`⌈q·count⌉` duration, linearly
    /// interpolated across the bucket's `[2^i, 2^(i+1))` range and clamped
    /// to the observed min/max. Returns 0 when nothing was recorded.
    pub fn percentile_ns(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &in_bucket) in self.buckets.iter().enumerate() {
            if in_bucket == 0 {
                continue;
            }
            if seen + in_bucket >= target {
                let lo = if i == 0 { 0u64 } else { 1u64 << i };
                let hi = (1u64 << (i + 1)) - 1;
                let frac = (target - seen) as f64 / in_bucket as f64;
                let estimate = (lo as f64 + frac * (hi - lo) as f64) as u64;
                return estimate.clamp(self.min_ns, self.max_ns);
            }
            seen += in_bucket;
        }
        self.max_ns
    }

    /// Median estimate from the histogram (see [`SpanStat::percentile_ns`]).
    pub fn p50_ns(&self) -> u64 {
        self.percentile_ns(0.50)
    }

    /// 90th-percentile estimate from the histogram.
    pub fn p90_ns(&self) -> u64 {
        self.percentile_ns(0.90)
    }

    /// 99th-percentile estimate from the histogram.
    pub fn p99_ns(&self) -> u64 {
        self.percentile_ns(0.99)
    }
}

/// Histogram bucket for a duration: `floor(log2(ns))`, clamped so that
/// sub-nanosecond readings land in bucket 0 and everything above ~9
/// minutes lands in the last bucket.
pub fn bucket_index(ns: u64) -> usize {
    let bits = 63 - ns.max(1).leading_zeros() as usize;
    bits.min(HISTOGRAM_BUCKETS - 1)
}

/// One closed span interval, kept for trace export.
#[derive(Debug, Clone)]
struct TraceEvent {
    name: &'static str,
    tid: u64,
    start_ns: u64,
    dur_ns: u64,
}

/// Everything the collector accumulates while enabled.
struct Inner {
    /// Time origin for trace timestamps; reset with the collector.
    epoch: Instant,
    /// Per-name aggregates, small enough for a linear scan.
    spans: Vec<(&'static str, SpanStat)>,
    /// Named counters.
    counters: Vec<(&'static str, u64)>,
    /// Individual intervals for trace export, capped.
    events: Vec<TraceEvent>,
    /// Events discarded once `events` hit [`MAX_TRACE_EVENTS`].
    dropped_events: u64,
}

impl Inner {
    fn new() -> Inner {
        Inner {
            epoch: Instant::now(),
            spans: Vec::new(),
            counters: Vec::new(),
            events: Vec::new(),
            dropped_events: 0,
        }
    }
}

struct Collector {
    enabled: AtomicBool,
    inner: Mutex<Inner>,
}

fn collector() -> &'static Collector {
    static COLLECTOR: OnceLock<Collector> = OnceLock::new();
    COLLECTOR.get_or_init(|| Collector {
        enabled: AtomicBool::new(false),
        inner: Mutex::new(Inner::new()),
    })
}

/// Monotonic per-thread identifier for trace lanes (thread 1, 2, ...
/// in order of first instrumentation touch).
fn thread_lane() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(1);
    thread_local! {
        static LANE: u64 = NEXT.fetch_add(1, Ordering::Relaxed);
    }
    LANE.with(|lane| *lane)
}

/// Turn collection on or off. Disabling does not clear accumulated data;
/// use [`reset`] for that.
pub fn set_enabled(enabled: bool) {
    collector().enabled.store(enabled, Ordering::Relaxed);
}

/// Whether the collector is currently recording.
pub fn is_enabled() -> bool {
    collector().enabled.load(Ordering::Relaxed)
}

/// Clear all accumulated spans, counters and trace events and restart the
/// trace clock at zero.
pub fn reset() {
    let mut inner = collector().inner.lock().expect("telemetry poisoned");
    *inner = Inner::new();
}

/// Start a span. Records its duration (and a trace interval) when the
/// returned guard drops. On the disabled path this performs one relaxed
/// atomic load and allocates nothing.
#[must_use = "a span measures until it is dropped"]
pub fn span(name: &'static str) -> Span {
    if !is_enabled() {
        return Span { active: None };
    }
    Span {
        active: Some(ActiveSpan {
            name,
            start: Instant::now(),
        }),
    }
}

/// Add `n` to the named counter. A single relaxed load and no work when
/// disabled.
pub fn add_count(name: &'static str, n: u64) {
    if !is_enabled() {
        return;
    }
    let mut inner = collector().inner.lock().expect("telemetry poisoned");
    match inner.counters.iter_mut().find(|(k, _)| *k == name) {
        Some((_, v)) => *v += n,
        None => inner.counters.push((name, n)),
    }
}

struct ActiveSpan {
    name: &'static str,
    start: Instant,
}

/// Guard returned by [`span`]; measures from creation to drop.
pub struct Span {
    active: Option<ActiveSpan>,
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(active) = self.active.take() else {
            return;
        };
        let end = Instant::now();
        let dur_ns = end.duration_since(active.start).as_nanos() as u64;
        let tid = thread_lane();
        let mut inner = collector().inner.lock().expect("telemetry poisoned");
        let start_ns = active.start.duration_since(inner.epoch).as_nanos() as u64;
        match inner.spans.iter_mut().find(|(k, _)| *k == active.name) {
            Some((_, stat)) => stat.record(dur_ns),
            None => {
                let mut stat = SpanStat::new();
                stat.record(dur_ns);
                inner.spans.push((active.name, stat));
            }
        }
        if inner.events.len() < MAX_TRACE_EVENTS {
            inner.events.push(TraceEvent {
                name: active.name,
                tid,
                start_ns,
                dur_ns,
            });
        } else {
            inner.dropped_events += 1;
        }
    }
}

/// A point-in-time copy of everything the collector has accumulated,
/// with spans and counters sorted by name for deterministic export.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Snapshot {
    /// Per-name span aggregates, sorted by name.
    pub spans: Vec<(String, SpanStat)>,
    /// Named counters, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// Trace intervals `(name, thread lane, start ns, duration ns)` in
    /// completion order.
    pub events: Vec<(String, u64, u64, u64)>,
    /// Trace intervals discarded after the buffer cap was reached.
    pub dropped_events: u64,
    /// Provenance of a merged fleet document: `(source label, spans
    /// contributed)` per process, sorted by label. Empty for a plain
    /// single-process snapshot; [`Snapshot::with_source`] seeds it and
    /// [`Snapshot::merge`] unions it.
    pub sources: Vec<(String, u64)>,
}

/// Copy out the collector's current contents.
pub fn snapshot() -> Snapshot {
    let inner = collector().inner.lock().expect("telemetry poisoned");
    let mut spans: Vec<(String, SpanStat)> = inner
        .spans
        .iter()
        .map(|(name, stat)| (name.to_string(), stat.clone()))
        .collect();
    spans.sort_by(|a, b| a.0.cmp(&b.0));
    let mut counters: Vec<(String, u64)> = inner
        .counters
        .iter()
        .map(|(name, v)| (name.to_string(), *v))
        .collect();
    counters.sort_by(|a, b| a.0.cmp(&b.0));
    let events = inner
        .events
        .iter()
        .map(|e| (e.name.to_string(), e.tid, e.start_ns, e.dur_ns))
        .collect();
    Snapshot {
        spans,
        counters,
        events,
        dropped_events: inner.dropped_events,
        sources: Vec::new(),
    }
}

impl Snapshot {
    /// Look up one span aggregate by name.
    pub fn span(&self, name: &str) -> Option<&SpanStat> {
        self.spans
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, stat)| stat)
    }

    /// Look up one counter by name (0 when never incremented).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| *v)
            .unwrap_or(0)
    }

    /// The `ivc-metrics-v1` summary document: per-span aggregates with
    /// histograms, counters, and the measured wall clock.
    pub fn metrics_json(&self, wall_s: f64) -> JsonValue {
        let spans = self
            .spans
            .iter()
            .map(|(name, stat)| {
                let first = stat.buckets.iter().position(|&b| b != 0).unwrap_or(0);
                let last = stat
                    .buckets
                    .iter()
                    .rposition(|&b| b != 0)
                    .unwrap_or_else(|| first.saturating_sub(1));
                let buckets: Vec<JsonValue> = stat.buckets[first..=last.max(first)]
                    .iter()
                    .map(|&b| u64_to_json(b))
                    .collect();
                JsonValue::Object(vec![
                    ("name".to_string(), JsonValue::string(name.clone())),
                    ("count".to_string(), u64_to_json(stat.count)),
                    ("total_ns".to_string(), u64_to_json(stat.total_ns)),
                    ("mean_ns".to_string(), u64_to_json(stat.mean_ns())),
                    ("min_ns".to_string(), u64_to_json(stat.min_ns)),
                    ("max_ns".to_string(), u64_to_json(stat.max_ns)),
                    ("p50_ns".to_string(), u64_to_json(stat.p50_ns())),
                    ("p90_ns".to_string(), u64_to_json(stat.p90_ns())),
                    ("p99_ns".to_string(), u64_to_json(stat.p99_ns())),
                    (
                        "histogram_log2_ns_offset".to_string(),
                        u64_to_json(first as u64),
                    ),
                    ("histogram_log2_ns".to_string(), JsonValue::Array(buckets)),
                ])
            })
            .collect();
        let counters = self
            .counters
            .iter()
            .map(|(name, v)| {
                JsonValue::Object(vec![
                    ("name".to_string(), JsonValue::string(name.clone())),
                    ("value".to_string(), u64_to_json(*v)),
                ])
            })
            .collect();
        let mut fields = vec![
            ("format".to_string(), JsonValue::string(METRICS_FORMAT)),
            ("wall_s".to_string(), JsonValue::number(wall_s)),
            ("spans".to_string(), JsonValue::Array(spans)),
            ("counters".to_string(), JsonValue::Array(counters)),
        ];
        if !self.sources.is_empty() {
            let sources = self
                .sources
                .iter()
                .map(|(name, spans)| {
                    JsonValue::Object(vec![
                        ("name".to_string(), JsonValue::string(name.clone())),
                        ("spans".to_string(), u64_to_json(*spans)),
                    ])
                })
                .collect();
            fields.push(("sources".to_string(), JsonValue::Array(sources)));
        }
        fields.push((
            "dropped_trace_events".to_string(),
            u64_to_json(self.dropped_events),
        ));
        JsonValue::Object(fields)
    }

    /// Parse an `ivc-metrics-v1` document back into a snapshot, inverting
    /// [`Snapshot::metrics_json`]: trimmed histograms are re-expanded to
    /// the full [`HISTOGRAM_BUCKETS`] width and validated against the span
    /// count. Trace events are process-local and are not part of the
    /// metrics document, so the parsed snapshot has none.
    pub fn from_metrics_json(doc: &JsonValue) -> crate::Result<Snapshot> {
        let format = doc.get("format").and_then(JsonValue::as_str);
        if format != Some(METRICS_FORMAT) {
            return Err(format!(
                "not an {METRICS_FORMAT} document (format: {})",
                format.unwrap_or("missing")
            )
            .into());
        }
        let need_u64 = |entry: &JsonValue, field: &str| -> crate::Result<u64> {
            entry
                .get(field)
                .and_then(JsonValue::as_u64)
                .ok_or_else(|| format!("metrics span missing {field}").into())
        };
        let mut spans = Vec::new();
        for entry in doc
            .get("spans")
            .and_then(JsonValue::as_array)
            .ok_or("metrics document has no spans array")?
        {
            let name = entry
                .get("name")
                .and_then(JsonValue::as_str)
                .ok_or("metrics span missing name")?
                .to_string();
            let mut stat = SpanStat {
                count: need_u64(entry, "count")?,
                total_ns: need_u64(entry, "total_ns")?,
                min_ns: need_u64(entry, "min_ns")?,
                max_ns: need_u64(entry, "max_ns")?,
                buckets: [0; HISTOGRAM_BUCKETS],
            };
            let offset = need_u64(entry, "histogram_log2_ns_offset")? as usize;
            let hist = entry
                .get("histogram_log2_ns")
                .and_then(JsonValue::as_array)
                .ok_or_else(|| format!("span '{name}' missing histogram_log2_ns"))?;
            if offset + hist.len() > HISTOGRAM_BUCKETS {
                return Err(format!(
                    "span '{name}' histogram spills past bucket {HISTOGRAM_BUCKETS}"
                )
                .into());
            }
            for (i, value) in hist.iter().enumerate() {
                stat.buckets[offset + i] = value
                    .as_u64()
                    .ok_or_else(|| format!("span '{name}' has a non-integer histogram bucket"))?;
            }
            if stat.buckets.iter().sum::<u64>() != stat.count {
                return Err(
                    format!("span '{name}' histogram mass does not match its count").into(),
                );
            }
            spans.push((name, stat));
        }
        let mut counters = Vec::new();
        for entry in doc
            .get("counters")
            .and_then(JsonValue::as_array)
            .ok_or("metrics document has no counters array")?
        {
            let name = entry
                .get("name")
                .and_then(JsonValue::as_str)
                .ok_or("metrics counter missing name")?;
            let value = entry
                .get("value")
                .and_then(JsonValue::as_u64)
                .ok_or_else(|| format!("counter '{name}' missing value"))?;
            counters.push((name.to_string(), value));
        }
        let mut sources = Vec::new();
        if let Some(entries) = doc.get("sources").and_then(JsonValue::as_array) {
            for entry in entries {
                let name = entry
                    .get("name")
                    .and_then(JsonValue::as_str)
                    .ok_or("metrics source missing name")?;
                let spans = entry
                    .get("spans")
                    .and_then(JsonValue::as_u64)
                    .ok_or_else(|| format!("source '{name}' missing spans"))?;
                sources.push((name.to_string(), spans));
            }
        }
        Ok(Snapshot {
            spans,
            counters,
            events: Vec::new(),
            dropped_events: doc
                .get("dropped_trace_events")
                .and_then(JsonValue::as_u64)
                .unwrap_or(0),
            sources,
        })
    }

    /// Parse `ivc-metrics-v1` text (see [`Snapshot::from_metrics_json`]).
    pub fn parse_metrics(text: &str) -> crate::Result<Snapshot> {
        let doc = JsonValue::parse(text).map_err(|e| format!("metrics JSON: {e}"))?;
        Snapshot::from_metrics_json(&doc)
    }

    /// Seed provenance on a snapshot that has none: record `label` as the
    /// single source of every span so far. A snapshot that already carries
    /// provenance (a parsed or merged fleet document) is unchanged.
    pub fn with_source(mut self, label: &str) -> Snapshot {
        if self.sources.is_empty() {
            let spans = self.spans.iter().map(|(_, stat)| stat.count).sum();
            self.sources.push((label.to_string(), spans));
        }
        self
    }

    /// Fold another snapshot into this one, CRDT-style: span aggregates
    /// absorb name-wise ([`SpanStat::absorb`]), counters and per-source
    /// span counts sum name-wise, dropped-event counts add, and the result
    /// stays sorted — so merging is associative and commutative and
    /// preserves total span counts and histogram mass. Trace events are
    /// process-local and do not merge: the merged snapshot is a
    /// metrics-level document with no events (export any trace *before*
    /// merging).
    pub fn merge(&mut self, other: &Snapshot) {
        for (name, stat) in &other.spans {
            match self.spans.iter_mut().find(|(k, _)| k == name) {
                Some((_, mine)) => mine.absorb(stat),
                None => self.spans.push((name.clone(), stat.clone())),
            }
        }
        self.spans.sort_by(|a, b| a.0.cmp(&b.0));
        for (name, value) in &other.counters {
            match self.counters.iter_mut().find(|(k, _)| k == name) {
                Some((_, mine)) => *mine += value,
                None => self.counters.push((name.clone(), *value)),
            }
        }
        self.counters.sort_by(|a, b| a.0.cmp(&b.0));
        for (name, spans) in &other.sources {
            match self.sources.iter_mut().find(|(k, _)| k == name) {
                Some((_, mine)) => *mine += spans,
                None => self.sources.push((name.clone(), *spans)),
            }
        }
        self.sources.sort_by(|a, b| a.0.cmp(&b.0));
        self.dropped_events += other.dropped_events;
        self.events.clear();
    }

    /// A Chrome trace-event document (the `{"traceEvents": [...]}` shape
    /// understood by `chrome://tracing` and Perfetto): one complete
    /// (`"ph": "X"`) event per recorded span interval, timestamps and
    /// durations in microseconds.
    pub fn trace_json(&self) -> JsonValue {
        let events = self
            .events
            .iter()
            .map(|(name, tid, start_ns, dur_ns)| {
                JsonValue::Object(vec![
                    ("name".to_string(), JsonValue::string(name.clone())),
                    ("cat".to_string(), JsonValue::string("ivc")),
                    ("ph".to_string(), JsonValue::string("X")),
                    ("pid".to_string(), u64_to_json(1)),
                    ("tid".to_string(), u64_to_json(*tid)),
                    ("ts".to_string(), JsonValue::number(*start_ns as f64 / 1e3)),
                    ("dur".to_string(), JsonValue::number(*dur_ns as f64 / 1e3)),
                ])
            })
            .collect();
        JsonValue::Object(vec![
            ("traceEvents".to_string(), JsonValue::Array(events)),
            ("displayTimeUnit".to_string(), JsonValue::string("ms")),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The collector is process-global; tests that enable it must not
    /// interleave, and stage/executor tests running concurrently may add
    /// their own span names — so these tests use `test.`-prefixed names
    /// and assert only on those.
    fn lock() -> std::sync::MutexGuard<'static, ()> {
        static GATE: Mutex<()> = Mutex::new(());
        GATE.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn bucket_index_is_floor_log2_clamped() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 0);
        assert_eq!(bucket_index(2), 1);
        assert_eq!(bucket_index(3), 1);
        assert_eq!(bucket_index(4), 2);
        assert_eq!(bucket_index(1023), 9);
        assert_eq!(bucket_index(1024), 10);
        assert_eq!(bucket_index(u64::MAX), HISTOGRAM_BUCKETS - 1);
    }

    #[test]
    fn histogram_and_stats_accumulate() {
        let mut stat = SpanStat::new();
        for ns in [1, 2, 3, 1024, 1_000_000] {
            stat.record(ns);
        }
        assert_eq!(stat.count, 5);
        assert_eq!(stat.total_ns, 1 + 2 + 3 + 1024 + 1_000_000);
        assert_eq!(stat.min_ns, 1);
        assert_eq!(stat.max_ns, 1_000_000);
        assert_eq!(stat.buckets[0], 1); // 1 ns
        assert_eq!(stat.buckets[1], 2); // 2 and 3 ns
        assert_eq!(stat.buckets[10], 1); // 1024 ns
        assert_eq!(stat.buckets[19], 1); // 1e6 ns in [2^19, 2^20)
        assert_eq!(stat.mean_ns(), stat.total_ns / 5);
    }

    #[test]
    fn disabled_collector_records_nothing() {
        let _gate = lock();
        set_enabled(false);
        reset();
        {
            let _span = span("test.disabled");
            add_count("test.disabled_counter", 3);
        }
        let snap = snapshot();
        assert!(snap.span("test.disabled").is_none());
        assert_eq!(snap.counter("test.disabled_counter"), 0);
        assert!(snap.events.iter().all(|(name, ..)| name != "test.disabled"));
    }

    #[test]
    fn enabled_collector_aggregates_spans_and_counters() {
        let _gate = lock();
        reset();
        set_enabled(true);
        for _ in 0..3 {
            let _span = span("test.work");
        }
        add_count("test.items", 2);
        add_count("test.items", 5);
        set_enabled(false);
        let snap = snapshot();
        let stat = snap.span("test.work").expect("span recorded");
        assert_eq!(stat.count, 3);
        assert!(stat.min_ns <= stat.max_ns);
        assert_eq!(stat.buckets.iter().sum::<u64>(), 3);
        assert_eq!(snap.counter("test.items"), 7);
        let test_events: Vec<_> = snap
            .events
            .iter()
            .filter(|(name, ..)| name == "test.work")
            .collect();
        assert_eq!(test_events.len(), 3);
    }

    #[test]
    fn metrics_json_round_trips_and_names_spans() {
        let _gate = lock();
        reset();
        set_enabled(true);
        {
            let _span = span("test.metrics");
        }
        add_count("test.metrics_counter", 4);
        set_enabled(false);
        let doc = snapshot().metrics_json(1.5);
        let text = doc.to_json_string_pretty();
        let parsed = JsonValue::parse(&text).expect("metrics JSON parses");
        assert_eq!(
            parsed.get("format").and_then(JsonValue::as_str),
            Some(METRICS_FORMAT)
        );
        assert_eq!(parsed.get("wall_s").and_then(JsonValue::as_f64), Some(1.5));
        let spans = parsed
            .get("spans")
            .and_then(JsonValue::as_array)
            .expect("spans array");
        let entry = spans
            .iter()
            .find(|s| s.get("name").and_then(JsonValue::as_str) == Some("test.metrics"))
            .expect("named span present");
        assert_eq!(entry.get("count").and_then(JsonValue::as_u64), Some(1));
        let hist = entry
            .get("histogram_log2_ns")
            .and_then(JsonValue::as_array)
            .expect("histogram present");
        assert_eq!(
            hist.iter().filter_map(JsonValue::as_u64).sum::<u64>(),
            1,
            "histogram holds exactly the one recorded span"
        );
        let counters = parsed
            .get("counters")
            .and_then(JsonValue::as_array)
            .expect("counters array");
        assert!(counters
            .iter()
            .any(
                |c| c.get("name").and_then(JsonValue::as_str) == Some("test.metrics_counter")
                    && c.get("value").and_then(JsonValue::as_u64) == Some(4)
            ));
    }

    #[test]
    fn trace_json_matches_the_chrome_trace_shape() {
        let _gate = lock();
        reset();
        set_enabled(true);
        {
            let _outer = span("test.trace_outer");
            let _inner = span("test.trace_inner");
        }
        set_enabled(false);
        let doc = snapshot().trace_json();
        let parsed = JsonValue::parse(&doc.to_json_string()).expect("trace JSON parses");
        assert_eq!(
            parsed.get("displayTimeUnit").and_then(JsonValue::as_str),
            Some("ms")
        );
        let events = parsed
            .get("traceEvents")
            .and_then(JsonValue::as_array)
            .expect("traceEvents array");
        let ours: Vec<_> = events
            .iter()
            .filter(|e| {
                e.get("name")
                    .and_then(JsonValue::as_str)
                    .is_some_and(|n| n.starts_with("test.trace_"))
            })
            .collect();
        assert_eq!(ours.len(), 2);
        for event in ours {
            assert_eq!(event.get("ph").and_then(JsonValue::as_str), Some("X"));
            assert_eq!(event.get("cat").and_then(JsonValue::as_str), Some("ivc"));
            assert_eq!(event.get("pid").and_then(JsonValue::as_u64), Some(1));
            assert!(event.get("tid").and_then(JsonValue::as_u64).is_some());
            assert!(event.get("ts").and_then(JsonValue::as_f64).is_some());
            assert!(event
                .get("dur")
                .and_then(JsonValue::as_f64)
                .is_some_and(|d| d >= 0.0));
        }
    }

    #[test]
    fn percentiles_track_the_histogram() {
        let mut stat = SpanStat::new();
        for _ in 0..99 {
            stat.record(1_000); // bucket 9
        }
        stat.record(1_000_000); // bucket 19
        let p50 = stat.p50_ns();
        assert!(
            (512..2048).contains(&p50),
            "p50 must land in the dominant bucket, got {p50}"
        );
        assert!(stat.p90_ns() < 1_000_000);
        assert_eq!(
            stat.p99_ns(),
            stat.percentile_ns(0.99),
            "p99 helper matches the generic estimator"
        );
        // The single outlier is the 100th value: p100 == max.
        assert_eq!(stat.percentile_ns(1.0), 1_000_000);
        // A constant distribution estimates exactly, at every quantile.
        let mut constant = SpanStat::new();
        for _ in 0..7 {
            constant.record(4_096);
        }
        for q in [0.5, 0.9, 0.99] {
            assert_eq!(constant.percentile_ns(q), 4_096);
        }
        assert_eq!(SpanStat::new().p50_ns(), 0, "empty stat estimates 0");
    }

    /// Hand-build an eventless snapshot for merge/parse tests.
    fn synthetic_snapshot(spans: &[(&str, &[u64])], counters: &[(&str, u64)]) -> Snapshot {
        let mut built: Vec<(String, SpanStat)> = Vec::new();
        for (name, durations) in spans {
            let mut stat = SpanStat::new();
            for &ns in *durations {
                stat.record(ns);
            }
            built.push((name.to_string(), stat));
        }
        built.sort_by(|a, b| a.0.cmp(&b.0));
        let mut counters: Vec<(String, u64)> = counters
            .iter()
            .map(|(name, v)| (name.to_string(), *v))
            .collect();
        counters.sort_by(|a, b| a.0.cmp(&b.0));
        Snapshot {
            spans: built,
            counters,
            events: Vec::new(),
            dropped_events: 0,
            sources: Vec::new(),
        }
    }

    #[test]
    fn merge_sums_spans_counters_and_provenance() {
        let mut left = synthetic_snapshot(
            &[("test.shared", &[10, 20]), ("test.left", &[5])],
            &[("test.counter", 3)],
        )
        .with_source("worker-a");
        let right = synthetic_snapshot(
            &[("test.shared", &[30]), ("test.right", &[7])],
            &[("test.counter", 4), ("test.other", 1)],
        )
        .with_source("worker-b");
        left.merge(&right);
        let shared = left.span("test.shared").expect("merged span");
        assert_eq!(shared.count, 3);
        assert_eq!(shared.total_ns, 60);
        assert_eq!(shared.min_ns, 10);
        assert_eq!(shared.max_ns, 30);
        assert_eq!(shared.buckets.iter().sum::<u64>(), 3);
        assert!(left.span("test.left").is_some());
        assert!(left.span("test.right").is_some());
        assert_eq!(left.counter("test.counter"), 7);
        assert_eq!(left.counter("test.other"), 1);
        assert_eq!(
            left.sources,
            vec![("worker-a".to_string(), 3), ("worker-b".to_string(), 2)]
        );
    }

    #[test]
    fn metrics_document_parses_back_to_the_same_snapshot() {
        let snap = synthetic_snapshot(
            &[("test.a", &[1, 2, 3, 1024]), ("test.b", &[1_000_000])],
            &[("test.n", 9)],
        )
        .with_source("worker-0");
        let text = snap.metrics_json(2.0).to_json_string_pretty();
        let parsed = Snapshot::parse_metrics(&text).expect("parses");
        assert_eq!(parsed, snap, "parse inverts metrics_json");
    }

    #[test]
    fn metrics_parser_rejects_corrupt_documents() {
        let snap = synthetic_snapshot(&[("test.a", &[1, 2])], &[]);
        let doc = snap.metrics_json(1.0).to_json_string();
        assert!(
            Snapshot::parse_metrics("{}").is_err(),
            "format tag required"
        );
        let lying = doc.replace("\"count\":2", "\"count\":5");
        let err = Snapshot::parse_metrics(&lying).expect_err("mass mismatch");
        assert!(err.to_string().contains("histogram mass"), "{err}");
    }

    #[test]
    fn reset_clears_accumulated_data() {
        let _gate = lock();
        reset();
        set_enabled(true);
        {
            let _span = span("test.reset");
        }
        add_count("test.reset_counter", 1);
        reset();
        set_enabled(false);
        let snap = snapshot();
        assert!(snap.span("test.reset").is_none());
        assert_eq!(snap.counter("test.reset_counter"), 0);
    }
}
